//! Pooled batch evaluation over the checked-in corpus.
//!
//! Spins up an [`EvalPool`] — one fully-loaded session per worker
//! thread, a bounded job queue, and a shared content-addressed result
//! cache — then evaluates `examples/batch.corpus` through it and prints
//! the answers in submission order next to the cache's verdict.
//!
//! ```text
//! cargo run --example batch_eval
//! ```

use urk::{EvalPool, Options, PoolConfig, Supervisor};

fn main() {
    let corpus: Vec<&str> = include_str!("batch.corpus")
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();

    let pool = EvalPool::start(
        &[],
        Options::default(),
        PoolConfig {
            workers: 4,
            cache_cap: 64,
            supervisor: Supervisor::with_deadline(5_000),
            ..PoolConfig::default()
        },
    )
    .expect("the pool starts");

    let results = pool.eval_batch(&corpus);
    for (src, result) in corpus.iter().zip(&results) {
        match result {
            Ok(out) => {
                let origin = if out.cache_hit { "cache" } else { "fresh" };
                println!("[{origin}] {src}  =>  {}", out.rendered);
            }
            Err(e) => println!("[error] {src}  =>  {e}"),
        }
    }

    let cache = pool.cache_stats();
    println!(
        "\ncache: {} hits, {} misses ({:.0}% hit rate), {} entries",
        cache.hits,
        cache.misses,
        cache.hit_rate() * 100.0,
        cache.entries,
    );
    pool.shutdown();
}
