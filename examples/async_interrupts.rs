//! Asynchronous exceptions (§5.1): interrupts, timeouts, resource limits,
//! and resumable thunks.
//!
//! ```text
//! cargo run --example async_interrupts
//! ```

use std::rc::Rc;

use urk::{Exception, Session};
use urk_machine::{MEnv, Machine, MachineConfig, Outcome};
use urk_syntax::{desugar_expr, parse_expr_src, DataEnv};

fn main() -> Result<(), urk::Error> {
    println!("== 1. A Ctrl-C interrupt delivered through getException ============");
    let mut session = Session::new();
    // The interrupt arrives mid-way through a long sum.
    session.options.machine.event_schedule = vec![(200_000, Exception::Interrupt)];
    session.load(
        r#"main = do
  v <- getException (sum [1 .. 200000])
  case v of
    OK n        -> putStr (strAppend "sum = " (showInt n))
    Bad Interrupt -> putStr "interrupted by ^C"
    Bad e       -> putStr "some other failure""#,
    )?;
    let run = session.run_main("")?;
    println!("  output: {}", run.trace.output());
    println!("  trace : {}", run.trace);

    println!();
    println!("== 2. Timeouts from an external monitor (§5.1) ======================");
    let mut timed = Session::new();
    timed.options.machine.max_steps = 100_000;
    timed.options.machine.timeout_on_step_limit = true;
    timed.load(
        r#"main = do
  v <- getException (length (enumFromTo 1 100000000))
  case v of
    OK n        -> putStr (showInt n)
    Bad Timeout -> putStr "evaluation took too long: Timeout"
    Bad e       -> putStr "other""#,
    )?;
    let run = timed.run_main("")?;
    println!("  output: {}", run.trace.output());

    println!();
    println!("== 3. Resource exhaustion as asynchronous exceptions ===============");
    let mut tight = Session::new();
    tight.options.machine.max_stack = 2_000;
    tight.load(
        r#"deep n = if n == 0 then 0 else 1 + deep (n - 1)
main = do
  v <- getException (deep 100000)
  case v of
    OK n              -> putStr (showInt n)
    Bad StackOverflow -> putStr "caught StackOverflow"
    Bad e             -> putStr "other""#,
    )?;
    let run = tight.run_main("")?;
    println!("  output: {}", run.trace.output());

    println!();
    println!("== 4. Resumable thunks: interrupted work is NOT poisoned (§5.1) ====");
    // Drive the machine directly so we can interrupt a shared thunk, then
    // resume it.
    let data = DataEnv::new();
    let expr = Rc::new(
        desugar_expr(
            &parse_expr_src("let f = \\n -> if n == 0 then 42 else f (n - 1) in f 300000")
                .expect("parses"),
            &data,
        )
        .expect("desugars"),
    );
    let mut m = Machine::new(MachineConfig {
        event_schedule: vec![(50_000, Exception::Interrupt)],
        ..MachineConfig::default()
    });
    let work = m.alloc_thunk(expr, MEnv::empty());
    let first = m.eval_node(work, true).expect("no machine error");
    println!("  first attempt : {first:?}");
    println!(
        "  thunks restored: {} (poisoned: {})",
        m.stats().thunks_restored,
        m.stats().thunks_poisoned
    );
    assert!(matches!(first, Outcome::Caught(Exception::Interrupt)));

    let second = m.eval_node(work, true).expect("no machine error");
    let Outcome::Value(n) = second else {
        panic!("the resumed computation should complete, got {second:?}");
    };
    println!("  second attempt: Value({})", m.render(n, 4));

    println!();
    println!("== 5. Contrast: synchronous exceptions DO poison (§3.3) ============");
    let data2 = DataEnv::new();
    let boom =
        Rc::new(desugar_expr(&parse_expr_src("1/0").expect("parses"), &data2).expect("desugars"));
    let mut m2 = Machine::new(MachineConfig::default());
    let t = m2.alloc_thunk(boom, MEnv::empty());
    let first = m2.eval_node(t, true).expect("no machine error");
    let steps_after_first = m2.stats().steps;
    let second = m2.eval_node(t, true).expect("no machine error");
    println!("  first : {first:?}");
    println!(
        "  second: {second:?} (re-raised in {} steps — no re-evaluation)",
        m2.stats().steps - steps_after_first
    );

    Ok(())
}
