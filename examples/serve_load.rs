//! An open-loop load generator for `urk serve`, reporting p50/p99
//! latency and the shed rate under overload.
//!
//! ```text
//! # terminal 1
//! cargo run --release --bin urk -- serve --listen 127.0.0.1:7199 --jobs 4
//! # terminal 2
//! cargo run --release --example serve_load -- --addr 127.0.0.1:7199 \
//!     --clients 4 --rate 400 --duration 10 --json BENCH_serve.json
//! # CI smoke: one batch end to end, then a graceful remote shutdown
//! cargo run --release --example serve_load -- --addr 127.0.0.1:7199 --smoke --shutdown
//! ```
//!
//! **Open loop** means the arrival schedule is fixed up front: each
//! client pipelines one single-expression batch onto its connection at
//! `rate / clients` per second *regardless of completions*, and latency
//! is measured from the request's **scheduled** arrival time. Under
//! overload this keeps the numbers honest — a closed-loop generator
//! slows its own arrivals to match the server and reports flattering
//! latencies; an open-loop one charges every queueing and shedding
//! delay to the request that suffered it (sheds are counted separately,
//! not folded into the latency distribution).

use std::collections::HashMap;
use std::io::Write;
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use urk::Client;
use urk_io::{read_frame, write_frame, Request, Response};

struct Args {
    addr: String,
    clients: usize,
    /// Total arrival rate across all clients, requests/second.
    rate: f64,
    duration_s: f64,
    json: Option<String>,
    smoke: bool,
    shutdown: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: serve_load --addr HOST:PORT [--clients N] [--rate HZ] [--duration SECS]\n\
         \x20                 [--json FILE] [--smoke] [--shutdown]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut out = Args {
        addr: String::new(),
        clients: 4,
        rate: 200.0,
        duration_s: 5.0,
        json: None,
        smoke: false,
        shutdown: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => out.addr = args.next().unwrap_or_else(|| usage()),
            "--clients" => {
                out.clients = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--rate" => {
                out.rate = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--duration" => {
                out.duration_s = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--json" => out.json = Some(args.next().unwrap_or_else(|| usage())),
            "--smoke" => out.smoke = true,
            "--shutdown" => out.shutdown = true,
            _ => usage(),
        }
    }
    if out.addr.is_empty() || out.clients == 0 || out.rate <= 0.0 {
        usage();
    }
    out
}

/// The workload: arithmetic of varying depth so requests do real,
/// unequal work. A small id-space means later requests hit the server's
/// shared cache — exactly what a production mix looks like.
fn expr_for(seq: u64) -> String {
    format!("sum [1 .. {}]", 10 + (seq % 97) * 7)
}

/// What one client measured.
#[derive(Default)]
struct ClientReport {
    /// Latency per completed request, measured from the scheduled
    /// arrival time, in milliseconds.
    latencies_ms: Vec<f64>,
    sent: u64,
    completed: u64,
    overloaded: u64,
    errors: u64,
}

/// One open-loop client: a writer pipelining requests on schedule and a
/// reader matching `batch_done` frames back to their arrival times.
fn run_client(
    addr: &str,
    per_client_rate: f64,
    duration: Duration,
) -> std::io::Result<ClientReport> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;

    let scheduled: Arc<Mutex<HashMap<u64, Instant>>> = Arc::new(Mutex::new(HashMap::new()));
    let report = Arc::new(Mutex::new(ClientReport::default()));

    let reader = {
        let scheduled = Arc::clone(&scheduled);
        let report = Arc::clone(&report);
        let mut stream = stream;
        std::thread::spawn(move || {
            // Per-batch shed flag: `overloaded` frames arrive before the
            // batch's `batch_done`.
            let mut shed_ids: HashMap<u64, bool> = HashMap::new();
            while let Ok(Some(payload)) = read_frame(&mut stream) {
                let Ok(resp) = Response::decode(&payload) else {
                    report.lock().expect("report lock").errors += 1;
                    continue;
                };
                match resp {
                    Response::Overloaded { id, .. } => {
                        shed_ids.insert(id, true);
                    }
                    Response::JobError { id, .. } => {
                        shed_ids.insert(id, true);
                        report.lock().expect("report lock").errors += 1;
                    }
                    Response::BatchDone { id, .. } => {
                        let started = scheduled.lock().expect("schedule lock").remove(&id);
                        let mut rep = report.lock().expect("report lock");
                        rep.completed += 1;
                        if shed_ids.remove(&id).unwrap_or(false) {
                            rep.overloaded += 1;
                        } else if let Some(started) = started {
                            rep.latencies_ms.push(started.elapsed().as_secs_f64() * 1e3);
                        }
                    }
                    _ => {}
                }
            }
        })
    };

    // The open loop: send request `i` at `start + i/rate`, never
    // skipping a slot and never waiting for a response.
    let start = Instant::now();
    let gap = Duration::from_secs_f64(1.0 / per_client_rate);
    let mut seq: u64 = 0;
    while start.elapsed() < duration {
        let due = start + gap.mul_f64(seq as f64);
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        let id = seq + 1;
        // Charge the full queueing delay to the request: the clock
        // starts at the *scheduled* arrival, not the actual write.
        scheduled.lock().expect("schedule lock").insert(id, due);
        let req = Request::Batch {
            id,
            exprs: vec![expr_for(seq)],
            deadline_ms: Some(2_000),
            max_steps: None,
            max_heap: None,
            max_stack: None,
        };
        if write_frame(&mut writer, &req.encode()).is_err() {
            break;
        }
        seq += 1;
    }

    // Drain: wait (bounded) for every in-flight batch, then hang up.
    let drain_deadline = Instant::now() + Duration::from_secs(30);
    while !scheduled.lock().expect("schedule lock").is_empty() && Instant::now() < drain_deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    let _ = writer.shutdown(std::net::Shutdown::Both);
    let _ = reader.join();

    let mut out = std::mem::take(&mut *report.lock().expect("report lock"));
    out.sent = seq;
    Ok(out)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// One small batch end to end — the CI gate that the server actually
/// serves: a value, an imprecise exception, and a cache hit.
fn smoke(addr: &str) -> std::io::Result<()> {
    let mut client = Client::connect(addr.parse().map_err(|e| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, format!("bad addr: {e}"))
    })?)?;
    client.ping()?;
    let outcomes = client.eval_batch(&["2 + 2", r#"(1/0) + error "Urk""#, "2 + 2"], Some(5_000))?;
    let fail = |msg: String| Err(std::io::Error::other(msg));
    match &outcomes[0] {
        urk::RemoteOutcome::Done { rendered, .. } if rendered == "4" => {}
        other => return fail(format!("expected 4, got {other:?}")),
    }
    match &outcomes[1] {
        urk::RemoteOutcome::Done {
            exception: Some(e), ..
        } if e == "DivideByZero" || e.starts_with("UserError") => {}
        other => return fail(format!("expected an imprecise exception, got {other:?}")),
    }
    match &outcomes[2] {
        urk::RemoteOutcome::Done { rendered, .. } if rendered == "4" => {}
        other => return fail(format!("expected 4 again, got {other:?}")),
    }
    println!("smoke ok: {outcomes:?}");
    Ok(())
}

fn main() -> std::process::ExitCode {
    let args = parse_args();

    if args.smoke {
        if let Err(e) = smoke(&args.addr) {
            eprintln!("serve_load: smoke failed: {e}");
            return std::process::ExitCode::FAILURE;
        }
        if args.shutdown {
            if let Err(e) = shutdown_server(&args.addr) {
                eprintln!("serve_load: shutdown failed: {e}");
                return std::process::ExitCode::FAILURE;
            }
        }
        return std::process::ExitCode::SUCCESS;
    }

    let per_client_rate = args.rate / args.clients as f64;
    let duration = Duration::from_secs_f64(args.duration_s);
    eprintln!(
        "serve_load: {} clients, {:.0} req/s total ({:.1}/client), {:.0}s, open loop",
        args.clients, args.rate, per_client_rate, args.duration_s
    );

    let started = Instant::now();
    let reports: Vec<ClientReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.clients)
            .map(|_| {
                let addr = args.addr.as_str();
                scope.spawn(move || run_client(addr, per_client_rate, duration))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread").expect("client runs"))
            .collect()
    });
    let wall_s = started.elapsed().as_secs_f64();

    let mut latencies: Vec<f64> = Vec::new();
    let (mut sent, mut completed, mut overloaded, mut errors) = (0u64, 0u64, 0u64, 0u64);
    for r in &reports {
        latencies.extend_from_slice(&r.latencies_ms);
        sent += r.sent;
        completed += r.completed;
        overloaded += r.overloaded;
        errors += r.errors;
    }
    latencies.sort_by(|a, b| a.total_cmp(b));
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    let mean = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };
    let max = latencies.last().copied().unwrap_or(0.0);
    let served_rps = completed as f64 / wall_s;

    eprintln!(
        "serve_load: sent {sent}  completed {completed}  overloaded {overloaded}  errors {errors}"
    );
    eprintln!(
        "serve_load: latency ms (scheduled→batch_done)  p50 {p50:.2}  p99 {p99:.2}  mean {mean:.2}  max {max:.2}"
    );
    eprintln!("serve_load: served {served_rps:.1} req/s over {wall_s:.1}s wall");

    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"clients\": {},\n  \"offered_rate_hz\": {:.1},\n  \
         \"duration_s\": {:.1},\n  \"sent\": {sent},\n  \"completed\": {completed},\n  \
         \"overloaded\": {overloaded},\n  \"errors\": {errors},\n  \"served_rps\": {served_rps:.1},\n  \
         \"p50_ms\": {p50:.3},\n  \"p99_ms\": {p99:.3},\n  \"mean_ms\": {mean:.3},\n  \
         \"max_ms\": {max:.3}\n}}\n",
        args.clients, args.rate, args.duration_s
    );
    if let Some(path) = &args.json {
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("serve_load: cannot write {path}: {e}");
            return std::process::ExitCode::FAILURE;
        }
        eprintln!("serve_load: wrote {path}");
    } else {
        print!("{json}");
        let _ = std::io::stdout().flush();
    }

    if args.shutdown {
        if let Err(e) = shutdown_server(&args.addr) {
            eprintln!("serve_load: shutdown failed: {e}");
            return std::process::ExitCode::FAILURE;
        }
    }
    if completed + overloaded == 0 {
        eprintln!("serve_load: nothing completed — is the server up?");
        return std::process::ExitCode::FAILURE;
    }
    std::process::ExitCode::SUCCESS
}

fn shutdown_server(addr: &str) -> std::io::Result<()> {
    let mut client = Client::connect(addr.parse().map_err(|e| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, format!("bad addr: {e}"))
    })?)?;
    client.shutdown()?;
    eprintln!("serve_load: server acknowledged shutdown");
    Ok(())
}
