//! A small interactive REPL for Urk.
//!
//! ```text
//! cargo run --example repl
//! ```
//!
//! Commands:
//!
//! ```text
//! <expr>        evaluate on the graph-reduction machine
//! :t <expr>     show the inferred type
//! :d <expr>     show the denotation (exception sets and all)
//! :s <expr>     show the exception set only
//! :def <decl>   add a top-level definition (e.g. :def f x = x + 1)
//! :order l|r|s  set the machine's evaluation-order policy
//! :laws         print the transformation-law table
//! :q            quit
//! ```

use std::io::{self, BufRead, Write};

use urk::{classify_all, render_table, OrderPolicy, Session};

fn main() {
    let mut session = Session::new();
    println!("urk — imprecise exceptions (PLDI 1999). :q to quit.");
    print_prompt();

    let stdin = io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if line.is_empty() {
            print_prompt();
            continue;
        }
        if line == ":q" || line == ":quit" {
            break;
        }
        if line == ":laws" {
            print!("{}", render_table(&classify_all()));
        } else if let Some(rest) = line.strip_prefix(":t ") {
            match session.type_of(rest) {
                Ok(t) => println!("{rest} :: {t}"),
                Err(e) => println!("error: {e}"),
            }
        } else if let Some(rest) = line.strip_prefix(":d ") {
            match session.denot_show(rest, 16) {
                Ok(d) => println!("{d}"),
                Err(e) => println!("error: {e}"),
            }
        } else if let Some(rest) = line.strip_prefix(":s ") {
            match session.exception_set(rest) {
                Ok(Some(s)) => println!("Bad {s}"),
                Ok(None) => println!("a normal value (empty exception set)"),
                Err(e) => println!("error: {e}"),
            }
        } else if let Some(rest) = line.strip_prefix(":def ") {
            match session.load(rest) {
                Ok(()) => println!("defined."),
                Err(e) => println!("error: {e}"),
            }
        } else if let Some(rest) = line.strip_prefix(":order ") {
            session.options.machine.order = match rest.trim() {
                "l" => OrderPolicy::LeftToRight,
                "r" => OrderPolicy::RightToLeft,
                "s" => OrderPolicy::Seeded(0xC0FFEE),
                other => {
                    println!("unknown order '{other}' (use l, r, or s)");
                    print_prompt();
                    continue;
                }
            };
            println!("order set.");
        } else if line.starts_with(':') {
            println!("unknown command: {line}");
        } else {
            match session.eval(line) {
                Ok(r) => println!("{}", r.rendered),
                Err(e) => println!("error: {e}"),
            }
        }
        print_prompt();
    }
    println!();
}

fn print_prompt() {
    print!("urk> ");
    let _ = io::stdout().flush();
}
