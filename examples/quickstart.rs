//! Quickstart: the paper's headline example, end to end.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Walks through: evaluating pure code, the exception *set* an expression
//! denotes (§3.4), the single representative the machine reports (§3.3),
//! how the representative changes with the evaluation-order policy (§3.5),
//! and catching with `getException` in the IO monad.

use urk::{Exception, OrderPolicy, Session};

fn main() -> Result<(), urk::Error> {
    let mut session = Session::new();

    println!("== Ordinary lazy evaluation =========================================");
    println!(
        "  sum [1 .. 100]        = {}",
        session.eval("sum [1 .. 100]")?.rendered
    );
    println!(
        "  take 5 (iterate (*2)) = {}",
        session.eval(r"take 5 (iterate (\x -> x * 2) 1)")?.rendered
    );

    println!();
    println!("== The headline term: (1/0) + error \"Urk\" ==========================");
    let term = r#"(1/0) + error "Urk""#;

    // The denotational semantics gives the *set* of exceptions (§3.4):
    let set = session.exception_set(term)?.expect("exceptional value");
    println!("  denotation        : Bad {set}");

    // The machine reports one representative — whichever it met first:
    let l2r = session.eval(term)?;
    println!("  machine, L-to-R   : {}", l2r.rendered);
    assert_eq!(l2r.exception, Some(Exception::DivideByZero));

    // "Recompiling with different optimisation settings" = changing the
    // evaluation-order policy (§3.5):
    session.options.machine.order = OrderPolicy::RightToLeft;
    let r2l = session.eval(term)?;
    println!("  machine, R-to-L   : {}", r2l.rendered);
    assert_eq!(r2l.exception, Some(Exception::UserError("Urk".into())));
    session.options.machine.order = OrderPolicy::LeftToRight;

    // Either way, the observed exception is a member of the set:
    for e in [l2r.exception.unwrap(), r2l.exception.unwrap()] {
        assert!(set.contains(&e));
    }

    println!();
    println!("== Exceptions hide inside lazy structures (§3.2) ====================");
    println!(
        "  zipWith (/) [1,2] [1,0] = {}",
        session.eval("zipWith (/) [1, 2] [1, 0]")?.rendered
    );
    println!(
        "  head of it              = {}",
        session.eval("head (zipWith (/) [1, 2] [1, 0])")?.rendered
    );

    println!();
    println!("== Catching with getException (in the IO monad, §3.5) ===============");
    session.load(
        r#"main = do
  v <- getException (sum (zipWith (/) [6, 8] [2, 0]))
  case v of
    OK n  -> putStr (strAppend "result: " (showInt n))
    Bad e -> putStr "recovered from a division failure""#,
    )?;
    let run = session.run_main("")?;
    println!("  program output    : {}", run.trace.output());
    println!("  trace             : {}", run.trace);

    println!();
    println!("quickstart: all assertions held.");
    Ok(())
}
