//! The §4.4 concurrency extension in action: "one advantage of this
//! presentation is that it scales to other extensions, such as adding
//! concurrency".
//!
//! ```text
//! cargo run --example concurrency
//! ```

use urk::Session;

fn main() -> Result<(), urk::Error> {
    let mut session = Session::new();
    session.load(
        r#"
-- Two producers and a supervisor: one producer fails, the supervisor
-- keeps running, and getException provides per-thread recovery.
count c n = if n == 0 then return 0 else putChar c >> count c (n - 1)

risky = do
  v <- getException (sum (zipWith (/) [9, 8, 7] [3, 0, 1]))
  case v of
    OK n  -> putStr (strAppend "[worker: " (strAppend (showInt n) "]"))
    Bad e -> putStr "[worker: recovered]"

main = do
  a <- forkIO (count 'x' 4)
  b <- forkIO risky
  count 'o' 4
  yield
  yield
  putStr " done"
  return (a, b)
"#,
    )?;
    let out = session.run_main_concurrent("")?;
    println!("output : {}", out.trace.output());
    println!("trace  : {}", out.trace);
    println!("main   : {:?}", out.main);
    for (tid, r) in &out.threads {
        println!("thread {tid}: {r:?}");
    }
    Ok(())
}
