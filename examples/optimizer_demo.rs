//! The compiler driver the paper's argument pays for: strictness
//! analysis, the full transformation pipeline, and §4.5-style
//! self-validation — end to end on a real program.
//!
//! ```text
//! cargo run --example optimizer_demo
//! ```

use urk::Session;
use urk_syntax::Symbol;

const PROGRAM: &str = r#"
-- A small statistics pipeline over synthetic data, written naturally
-- (lots of lets, higher-order code, and accumulating loops).
mkdata n = if n == 0 then [] else (n * 37 % 101) : mkdata (n - 1)

mean xs = let s = sum xs in let n = length xs in s / n

variance xs =
  let m = mean xs
  in let sq = map (\x -> (x - m) * (x - m)) xs
     in sum sq / length xs

summary n =
  let xs = mkdata n
  in (mean xs, variance xs)

crunch i acc =
  if i == 0 then acc
  else crunch (i - 1) (acc + fst (summary 40))
"#;

fn main() -> Result<(), urk::Error> {
    let mut session = Session::new();
    session.load(PROGRAM)?;

    println!("== 1. Strictness analysis (§3.4) ====================================");
    let sigs = session.strictness();
    for name in ["mkdata", "mean", "variance", "crunch", "summary"] {
        let sig = &sigs[&Symbol::intern(name)];
        let rendered: Vec<&str> = sig.iter().map(|s| if *s { "S" } else { "L" }).collect();
        println!("  {name:10} {}", rendered.join(" "));
    }

    println!();
    println!("== 2. Before ========================================================");
    let before = session.eval("crunch 25 0")?;
    println!("  result      : {}", before.rendered);
    println!(
        "  steps {:>9}   allocations {:>8}   thunk updates {:>7}",
        before.stats.steps, before.stats.allocations, before.stats.thunk_updates
    );

    println!();
    println!("== 3. Optimise with §4.5 self-validation ============================");
    // The validation queries deliberately include exceptional cases: the
    // optimiser must preserve (or refine) their exception sets too.
    let report = session.optimize_validated(&[
        "crunch 5 0",
        "mean []", // division by zero: Bad {DivideByZero}
        "variance [1, 1]",
    ])?;
    println!(
        "  rewrites    : {} (size {} -> {})",
        report.total_rewrites(),
        report.size_before,
        report.size_after
    );
    for (pass, n) in &report.rewrites {
        println!("    {n:4}  {pass}");
    }
    println!(
        "  validation  : {:?} -> all identity-or-refinement: {}",
        report.validation,
        report.validated()
    );
    assert!(report.validated());

    println!();
    println!("== 4. After =========================================================");
    let after = session.eval("crunch 25 0")?;
    println!("  result      : {}", after.rendered);
    println!(
        "  steps {:>9}   allocations {:>8}   thunk updates {:>7}",
        after.stats.steps, after.stats.allocations, after.stats.thunk_updates
    );
    assert_eq!(before.rendered, after.rendered);

    let saved =
        100.0 * (1.0 - after.stats.thunk_updates as f64 / before.stats.thunk_updates.max(1) as f64);
    println!();
    println!(
        "thunk updates down {saved:.0}% — the §3.4 'crucial transformation', \
         licensed only by imprecise exceptions."
    );

    println!();
    println!("== 5. And the exceptional behaviour is intact =======================");
    let exc = session.eval("mean []")?;
    println!("  mean []     : {}", exc.rendered);
    Ok(())
}
