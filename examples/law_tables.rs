//! Regenerates the paper's §4.5 transformation-law discussion as a table
//! (experiment E4 in `EXPERIMENTS.md`).
//!
//! ```text
//! cargo run --example law_tables
//! ```
//!
//! For every law in the corpus — each instantiated on the paper's own
//! worked terms — the validator evaluates lhs and rhs under the imprecise
//! semantics, the precise baseline (both orders), and the
//! non-deterministic baseline, and classifies the rewrite as an identity,
//! a refinement (`lhs ⊑ rhs`), an anti-refinement, or invalid.

use urk::{classify_all, render_table, Verdict};

fn main() {
    let reports = classify_all();

    println!("Transformation laws under the three candidate semantics (§3.4):");
    println!();
    print!("{}", render_table(&reports));
    println!();

    // The paper's headline claims, restated from the table.
    let get = |name: &str| {
        reports
            .iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("law '{name}' missing"))
    };

    println!("Paper claims checked against the table:");

    let commute = get("plus-commute-exceptional");
    println!(
        "  * §3.4  '+' commutes with exception sets        : {} (precise: {})",
        commute.imprecise, commute.precise_l2r
    );
    assert_eq!(commute.imprecise, Verdict::Equal);
    assert_eq!(commute.precise_l2r, Verdict::Incomparable);

    let inline = get("let-inline-get-exception");
    println!(
        "  * §3.5  inlining survives getException-in-IO    : {} (nondet design: {})",
        inline.imprecise, inline.nondet
    );
    assert_eq!(inline.imprecise, Verdict::Equal);
    assert!(!inline.nondet.is_valid_rewrite());

    let push = get("case-pushdown");
    println!(
        "  * §4.5  case-pushdown is a refinement           : {}",
        push.imprecise
    );
    assert_eq!(push.imprecise, Verdict::LeftRefinesToRight);

    let lost = get("error-this-that");
    println!(
        "  * §4.5  error \"This\" = error \"That\" is lost     : {}",
        lost.imprecise
    );
    assert_eq!(lost.imprecise, Verdict::Incomparable);

    let cbv = get("strictness-call-by-value");
    println!(
        "  * §3.4  strictness-driven call-by-value          : {} (precise: {})",
        cbv.imprecise, cbv.precise_l2r
    );
    assert_eq!(cbv.imprecise, Verdict::Equal);
    assert_eq!(cbv.precise_l2r, Verdict::Incomparable);

    let valid = reports
        .iter()
        .filter(|r| r.imprecise.is_valid_rewrite())
        .count();
    println!();
    println!(
        "{valid}/{} laws are valid rewrites under the imprecise semantics;",
        reports.len()
    );
    println!("the exceptions are exactly the paper's: eta-reduction (λx.⊥ ≠ ⊥),");
    println!("the lost error-coalescing law, and the -fno-pedantic-bottoms family");
    println!("on exceptional scrutinees (proof obligation, §5.3).");
}
