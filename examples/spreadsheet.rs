//! A spreadsheet engine on top of Urk — the "disaster recovery" use of
//! exceptions (§2).
//!
//! ```text
//! cargo run --example spreadsheet
//! ```
//!
//! Cell formulas are Urk expressions compiled into one lazy program; cells
//! reference each other freely (the graph machine shares and memoizes),
//! and any cell whose formula fails (division by zero, missing data as a
//! pattern-match failure, explicit `error`) shows an error *in that cell
//! only* — the per-cell `getException` boundary is exactly the modularity
//! §2 asks from disaster-recovery handlers: "one part of a system can
//! protect itself against failure in another part of the system".

use urk::{SemIoResult, Session};

/// One worksheet: named cells with Urk formulas.
struct Sheet {
    cells: Vec<(&'static str, &'static str)>,
}

impl Sheet {
    fn program(&self) -> String {
        let mut src = String::new();
        for (name, formula) in &self.cells {
            src.push_str(&format!("{name} = {formula}\n"));
        }
        src
    }
}

fn main() -> Result<(), urk::Error> {
    let sheet = Sheet {
        cells: vec![
            // Raw data.
            ("unitsQ1", "120"),
            ("unitsQ2", "80"),
            ("unitsQ3", "0"),
            ("revenueQ1", "8400"),
            ("revenueQ2", "6200"),
            ("revenueQ3", "150"),
            // Derived cells.
            ("totalUnits", "unitsQ1 + unitsQ2 + unitsQ3"),
            ("totalRevenue", "revenueQ1 + revenueQ2 + revenueQ3"),
            ("pricePerUnitQ1", "revenueQ1 / unitsQ1"),
            ("pricePerUnitQ2", "revenueQ2 / unitsQ2"),
            // Q3 sold zero units: this divides by zero.
            ("pricePerUnitQ3", "revenueQ3 / unitsQ3"),
            // Depends on a failing cell — still fails, lazily.
            (
                "bestPrice",
                "max pricePerUnitQ1 (max pricePerUnitQ2 pricePerUnitQ3)",
            ),
            // Depends only on healthy cells — unaffected.
            ("avgPrice", "totalRevenue / totalUnits"),
            // An explicit business rule.
            (
                "margin",
                r#"if totalRevenue > 10000 then totalRevenue - 10000
                   else error "margin: below plan""#,
            ),
        ],
    };

    let mut session = Session::new();
    session.load(&sheet.program())?;

    println!("cell             | value");
    println!("-----------------+---------------------------");
    for (name, _) in &sheet.cells {
        // Per-cell recovery boundary: getException around the cell.
        let src = format!(
            r##"main = do
  v <- getException {name}
  case v of
    OK n  -> putStr (showInt n)
    Bad e -> case e of
      DivideByZero -> putStr "#DIV/0!"
      UserError m  -> putStr (strAppend "#ERR: " m)
      _            -> putStr "#ERR!""##
        );
        let mut cell_session = Session::new();
        cell_session.load(&sheet.program())?;
        cell_session.load(&src)?;
        let out = cell_session.run_main("")?;
        println!("{name:16} | {}", out.trace.output());
    }

    // The same sheet through the *semantic* runner: the denotation of the
    // broken cell is a set; the oracle picks the representative.
    let mut sem = Session::new();
    sem.load(&sheet.program())?;
    sem.load(
        r#"main = do
  v <- getException bestPrice
  case v of
    OK n  -> putStr (showInt n)
    Bad e -> putStr "bestPrice is unavailable""#,
    )?;
    let out = sem.run_main_semantic("", 42)?;
    let SemIoResult::Done(_) = out.result else {
        panic!("semantic run should complete: {:?}", out.result);
    };
    println!();
    println!("semantic runner on bestPrice: {}", out.trace.output());
    println!("semantic trace              : {}", out.trace);

    Ok(())
}
