//! Tokens produced by the lexer and consumed (after layout processing) by
//! the parser.

use std::fmt;

use crate::Symbol;

/// A lexical token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Tok {
    /// An identifier starting with an upper-case letter (constructor or type
    /// constructor).
    Upper(Symbol),
    /// An identifier starting with a lower-case letter (variable or type
    /// variable).
    Lower(Symbol),
    /// An integer literal.
    Int(i64),
    /// A character literal.
    Char(char),
    /// A string literal.
    Str(String),
    /// A symbolic operator such as `+` or `>>=`.
    Op(Symbol),

    // Keywords.
    Data,
    Let,
    In,
    Case,
    Of,
    Where,
    Do,
    If,
    Then,
    Else,

    // Punctuation.
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Semi,
    Backslash,
    Arrow,
    BackArrow,
    Equals,
    Pipe,
    DoubleColon,
    Underscore,
    Backtick,

    // Virtual tokens inserted by the layout algorithm.
    VLBrace,
    VRBrace,
    VSemi,

    /// End of input.
    Eof,
}

impl Tok {
    /// True if this token opens an implicit layout block when it is a
    /// layout keyword's successor context (`where`, `let`, `of`, `do`).
    pub fn is_layout_keyword(&self) -> bool {
        matches!(self, Tok::Where | Tok::Let | Tok::Of | Tok::Do)
    }
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Upper(s) | Tok::Lower(s) => write!(f, "{s}"),
            Tok::Int(n) => write!(f, "{n}"),
            Tok::Char(c) => write!(f, "{c:?}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Op(s) => write!(f, "{s}"),
            Tok::Data => f.write_str("data"),
            Tok::Let => f.write_str("let"),
            Tok::In => f.write_str("in"),
            Tok::Case => f.write_str("case"),
            Tok::Of => f.write_str("of"),
            Tok::Where => f.write_str("where"),
            Tok::Do => f.write_str("do"),
            Tok::If => f.write_str("if"),
            Tok::Then => f.write_str("then"),
            Tok::Else => f.write_str("else"),
            Tok::LParen => f.write_str("("),
            Tok::RParen => f.write_str(")"),
            Tok::LBracket => f.write_str("["),
            Tok::RBracket => f.write_str("]"),
            Tok::LBrace => f.write_str("{"),
            Tok::RBrace => f.write_str("}"),
            Tok::Comma => f.write_str(","),
            Tok::Semi => f.write_str(";"),
            Tok::Backslash => f.write_str("\\"),
            Tok::Arrow => f.write_str("->"),
            Tok::BackArrow => f.write_str("<-"),
            Tok::Equals => f.write_str("="),
            Tok::Pipe => f.write_str("|"),
            Tok::DoubleColon => f.write_str("::"),
            Tok::Underscore => f.write_str("_"),
            Tok::Backtick => f.write_str("`"),
            Tok::VLBrace => f.write_str("{<layout>"),
            Tok::VRBrace => f.write_str("}<layout>"),
            Tok::VSemi => f.write_str(";<layout>"),
            Tok::Eof => f.write_str("<end of input>"),
        }
    }
}

/// A source position (1-based line and column).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default, PartialOrd, Ord, Hash)]
pub struct Pos {
    pub line: u32,
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A token together with its source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Spanned {
    pub tok: Tok,
    pub pos: Pos,
}

impl Spanned {
    pub fn new(tok: Tok, line: u32, col: u32) -> Spanned {
        Spanned {
            tok,
            pos: Pos { line, col },
        }
    }
}
