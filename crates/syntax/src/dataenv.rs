//! The data-type environment: every constructor and type constructor in
//! scope, including the built-in types the paper's design depends on
//! (`Bool`, lists, `Exception`, `ExVal`, and the `IO` constructors of
//! §4.4's "IO as an algebraic data type" presentation).

use std::collections::HashMap;
use std::fmt;

use crate::ast::{ConDecl, DataDecl, SType};
use crate::Symbol;

/// Information about one data constructor.
#[derive(Clone, Debug)]
pub struct ConInfo {
    pub name: Symbol,
    /// The type constructor this belongs to (e.g. `List` for `Cons`).
    pub ty_name: Symbol,
    /// Position among the type's constructors.
    pub tag: usize,
    /// Type parameters of the owning type, in order.
    pub ty_params: Vec<Symbol>,
    /// Argument types (may mention `ty_params`).
    pub arg_types: Vec<SType>,
    /// True for the `IO` constructors (`Return`, `Bind`, ...), which the
    /// type checker treats as primitives because `Bind`'s type is
    /// existential (§4.4 presents `IO` as a data type *semantically*).
    pub io_primitive: bool,
}

impl ConInfo {
    pub fn arity(&self) -> usize {
        self.arg_types.len()
    }
}

/// Information about one type constructor.
#[derive(Clone, Debug)]
pub struct TypeInfo {
    pub name: Symbol,
    pub params: Vec<Symbol>,
    /// Constructors in declaration order (empty for primitive types).
    pub constructors: Vec<Symbol>,
}

/// An error arising while extending the environment.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DataEnvError(pub String);

impl fmt::Display for DataEnvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "data declaration error: {}", self.0)
    }
}

impl std::error::Error for DataEnvError {}

/// All constructors and types in scope.
#[derive(Clone, Debug)]
pub struct DataEnv {
    types: HashMap<Symbol, TypeInfo>,
    cons: HashMap<Symbol, ConInfo>,
}

fn tvar(s: &str) -> SType {
    SType::Var(Symbol::intern(s))
}

fn tcon(s: &str, args: Vec<SType>) -> SType {
    SType::Con(Symbol::intern(s), args)
}

impl Default for DataEnv {
    fn default() -> Self {
        DataEnv::new()
    }
}

impl DataEnv {
    /// An environment containing the built-in types.
    pub fn new() -> DataEnv {
        let mut env = DataEnv {
            types: HashMap::new(),
            cons: HashMap::new(),
        };

        // Primitive types with no user-visible constructors. MVar is the
        // §4.4 concurrency extension's communication cell; its contents
        // are managed by the scheduler, not by pattern matching.
        for prim in ["Int", "Char", "Str"] {
            let name = Symbol::intern(prim);
            env.types.insert(
                name,
                TypeInfo {
                    name,
                    params: vec![],
                    constructors: vec![],
                },
            );
        }

        env.builtin("Unit", &[], &[("Unit", vec![])], false);
        env.builtin("Bool", &[], &[("False", vec![]), ("True", vec![])], false);
        env.builtin(
            "List",
            &["a"],
            &[
                ("Nil", vec![]),
                ("Cons", vec![tvar("a"), tcon("List", vec![tvar("a")])]),
            ],
            false,
        );
        env.builtin(
            "Maybe",
            &["a"],
            &[("Nothing", vec![]), ("Just", vec![tvar("a")])],
            false,
        );
        env.builtin(
            "Pair",
            &["a", "b"],
            &[("Pair", vec![tvar("a"), tvar("b")])],
            false,
        );
        env.builtin(
            "Triple",
            &["a", "b", "c"],
            &[("Triple", vec![tvar("a"), tvar("b"), tvar("c")])],
            false,
        );
        // data ExVal a = OK a | Bad Exception          (§3.1)
        env.builtin(
            "ExVal",
            &["a"],
            &[
                ("OK", vec![tvar("a")]),
                ("Bad", vec![tcon("Exception", vec![])]),
            ],
            false,
        );
        // data Exception = DivideByZero | ...          (§3.1, §4.1, §5.1)
        env.builtin(
            "Exception",
            &[],
            &[
                ("DivideByZero", vec![]),
                ("Overflow", vec![]),
                ("UserError", vec![tcon("Str", vec![])]),
                ("PatternMatchFail", vec![tcon("Str", vec![])]),
                ("NonTermination", vec![]),
                ("Interrupt", vec![]),
                ("Timeout", vec![]),
                ("StackOverflow", vec![]),
                ("HeapOverflow", vec![]),
                ("BlockedIndefinitely", vec![]),
            ],
            false,
        );
        // "From a semantic point of view we regard IO as an algebraic data
        // type with constructors return, >>=, putChar, getChar,
        // getException." (§4.4). The evaluators treat these as constructor
        // values; the type checker types them as primitives.
        env.builtin(
            "IO",
            &["a"],
            &[
                ("Return", vec![tvar("a")]),
                // The real argument types of Bind are existential; these
                // entries record arity only (io_primitive = true).
                ("Bind", vec![tvar("a"), tvar("a")]),
                ("GetChar", vec![]),
                ("PutChar", vec![tcon("Char", vec![])]),
                ("PutStr", vec![tcon("Str", vec![])]),
                ("GetException", vec![tvar("a")]),
                // §4.4 notes the LTS presentation "scales to other
                // extensions, such as adding concurrency": Fork spawns a
                // thread performing its argument, Yield cedes the
                // scheduler.
                ("Fork", vec![tvar("a")]),
                ("Yield", vec![]),
                ("NewMVar", vec![tvar("a")]),
                ("NewEmptyMVar", vec![]),
                ("TakeMVar", vec![tvar("a")]),
                ("PutMVar", vec![tvar("a"), tvar("a")]),
                (
                    "ThrowTo",
                    vec![tcon("Int", vec![]), tcon("Exception", vec![])],
                ),
            ],
            true,
        );
        // The MVar type constructor (opaque; one parameter).
        {
            let name = Symbol::intern("MVar");
            env.types.insert(
                name,
                TypeInfo {
                    name,
                    params: vec![Symbol::intern("a")],
                    constructors: vec![],
                },
            );
        }
        env
    }

    fn builtin(&mut self, ty: &str, params: &[&str], cons: &[(&str, Vec<SType>)], io: bool) {
        let decl = DataDecl {
            name: Symbol::intern(ty),
            params: params.iter().map(|p| Symbol::intern(p)).collect(),
            constructors: cons
                .iter()
                .map(|(n, args)| ConDecl {
                    name: Symbol::intern(n),
                    args: args.clone(),
                })
                .collect(),
            pos: Default::default(),
        };
        self.add_data_inner(&decl, io)
            .expect("builtins are well-formed");
    }

    /// Adds a user `data` declaration.
    ///
    /// # Errors
    ///
    /// Rejects duplicate type names, duplicate constructor names (anywhere
    /// in scope), and unbound type variables in constructor fields.
    pub fn add_data(&mut self, decl: &DataDecl) -> Result<(), DataEnvError> {
        self.add_data_inner(decl, false)
    }

    fn add_data_inner(&mut self, decl: &DataDecl, io: bool) -> Result<(), DataEnvError> {
        if self.types.contains_key(&decl.name) {
            return Err(DataEnvError(format!("duplicate type '{}'", decl.name)));
        }
        for c in &decl.constructors {
            if self.cons.contains_key(&c.name) {
                return Err(DataEnvError(format!("duplicate constructor '{}'", c.name)));
            }
            for ty in &c.args {
                check_tyvars(ty, &decl.params)?;
            }
        }
        self.types.insert(
            decl.name,
            TypeInfo {
                name: decl.name,
                params: decl.params.clone(),
                constructors: decl.constructors.iter().map(|c| c.name).collect(),
            },
        );
        for (tag, c) in decl.constructors.iter().enumerate() {
            self.cons.insert(
                c.name,
                ConInfo {
                    name: c.name,
                    ty_name: decl.name,
                    tag,
                    ty_params: decl.params.clone(),
                    arg_types: c.args.clone(),
                    io_primitive: io,
                },
            );
        }
        Ok(())
    }

    /// Looks up a data constructor.
    pub fn con(&self, name: Symbol) -> Option<&ConInfo> {
        self.cons.get(&name)
    }

    /// Looks up a type constructor.
    pub fn type_info(&self, name: Symbol) -> Option<&TypeInfo> {
        self.types.get(&name)
    }

    /// The sibling constructors of `con`'s type, in declaration order.
    pub fn siblings(&self, con: Symbol) -> Option<&[Symbol]> {
        let info = self.cons.get(&con)?;
        self.types
            .get(&info.ty_name)
            .map(|t| t.constructors.as_slice())
    }
}

fn check_tyvars(ty: &SType, params: &[Symbol]) -> Result<(), DataEnvError> {
    match ty {
        SType::Var(v) => {
            if params.contains(v) {
                Ok(())
            } else {
                Err(DataEnvError(format!("unbound type variable '{v}'")))
            }
        }
        SType::Con(_, args) | SType::Tuple(args) => {
            args.iter().try_for_each(|t| check_tyvars(t, params))
        }
        SType::Fun(a, b) => {
            check_tyvars(a, params)?;
            check_tyvars(b, params)
        }
        SType::List(t) => check_tyvars(t, params),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_are_present() {
        let env = DataEnv::new();
        assert_eq!(env.con(Symbol::intern("Cons")).expect("Cons").arity(), 2);
        assert_eq!(env.con(Symbol::intern("True")).expect("True").arity(), 0);
        assert_eq!(env.con(Symbol::intern("Bad")).expect("Bad").arity(), 1);
        assert_eq!(
            env.con(Symbol::intern("UserError"))
                .expect("UserError")
                .arity(),
            1
        );
        assert!(
            env.con(Symbol::intern("Return"))
                .expect("Return")
                .io_primitive
        );
        let bools = env.siblings(Symbol::intern("True")).expect("Bool");
        assert_eq!(bools.len(), 2);
        assert_eq!(bools[0].as_str(), "False");
    }

    #[test]
    fn user_declarations_extend_the_environment() {
        let mut env = DataEnv::new();
        let decl = DataDecl {
            name: Symbol::intern("Tree"),
            params: vec![Symbol::intern("a")],
            constructors: vec![
                ConDecl {
                    name: Symbol::intern("Leaf"),
                    args: vec![],
                },
                ConDecl {
                    name: Symbol::intern("Node"),
                    args: vec![
                        tcon("Tree", vec![tvar("a")]),
                        tvar("a"),
                        tcon("Tree", vec![tvar("a")]),
                    ],
                },
            ],
            pos: Default::default(),
        };
        env.add_data(&decl).expect("valid");
        assert_eq!(env.con(Symbol::intern("Node")).expect("Node").arity(), 3);
        assert_eq!(env.con(Symbol::intern("Node")).expect("Node").tag, 1);
    }

    #[test]
    fn duplicate_and_unbound_are_rejected() {
        let mut env = DataEnv::new();
        let dup = DataDecl {
            name: Symbol::intern("Bool2"),
            params: vec![],
            constructors: vec![ConDecl {
                name: Symbol::intern("True"), // clashes with builtin
                args: vec![],
            }],
            pos: Default::default(),
        };
        assert!(env.add_data(&dup).is_err());

        let unbound = DataDecl {
            name: Symbol::intern("Box"),
            params: vec![],
            constructors: vec![ConDecl {
                name: Symbol::intern("MkBox"),
                args: vec![tvar("a")],
            }],
            pos: Default::default(),
        };
        assert!(env.add_data(&unbound).is_err());
    }
}
