//! The offside (layout) rule: turns indentation into virtual braces and
//! semicolons, so the parser only ever sees explicitly delimited blocks.
//!
//! This is a simplified version of the Haskell report's algorithm `L`,
//! adequate for the corpus in this repository:
//!
//! * after a layout keyword (`where`, `let`, `of`, `do`) that is not
//!   followed by `{`, an implicit block opens at the column of the next
//!   token;
//! * the first token of a line at the block's column emits a virtual `;`,
//!   a lesser column closes the block;
//! * `in` closes the nearest implicit block (so `let x = 1 in x` works on
//!   one line);
//! * closing brackets `)`/`]` and `,` close implicit blocks opened inside
//!   the bracket (so `(case x of True -> 1; False -> 2)` works inline);
//! * a block that would open at or left of the enclosing block's column is
//!   empty.
//!
//! Unlike the full report algorithm there is no parse-error(t) rule, so a
//! construct like `if c then do a else b` (no newline, no parens) needs
//! explicit parentheses around the `do` block.

use crate::token::{Pos, Spanned, Tok};
use std::fmt;

/// An error produced during layout processing.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LayoutError {
    pub pos: Pos,
    pub message: String,
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "layout error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LayoutError {}

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum Ctx {
    /// An explicit `{ ... }` block.
    Explicit,
    /// An open `(` or `[`.
    Bracket,
    /// An implicit layout block at the given column; the flag records
    /// whether a `let` opened it (only those are closed by `in`).
    Implicit(u32, bool),
}

/// Applies the layout algorithm, inserting [`Tok::VLBrace`], [`Tok::VRBrace`]
/// and [`Tok::VSemi`], and appends a final [`Tok::Eof`].
///
/// # Errors
///
/// Returns [`LayoutError`] on mismatched explicit braces or brackets.
pub fn layout(tokens: Vec<Spanned>) -> Result<Vec<Spanned>, LayoutError> {
    let mut out: Vec<Spanned> = Vec::with_capacity(tokens.len() + 8);
    let mut stack: Vec<Ctx> = Vec::new();
    // When a layout keyword was just seen: Some(is_let).
    let mut expecting_block: Option<bool> = None;
    let mut last_line = 0u32;
    let end_pos = tokens.last().map(|t| t.pos).unwrap_or_default();

    // The whole module is an implicit block at the first token's column.
    if let Some(first) = tokens.first() {
        stack.push(Ctx::Implicit(first.pos.col, false));
        last_line = first.pos.line;
    }

    for t in tokens {
        if let Some(is_let) = expecting_block {
            expecting_block = None;
            if t.tok == Tok::LBrace {
                stack.push(Ctx::Explicit);
                out.push(t);
                continue;
            }
            // An implicit block must be strictly more indented than the
            // enclosing implicit block; otherwise it is empty.
            let enclosing = stack.iter().rev().find_map(|c| match c {
                Ctx::Implicit(n, _) => Some(*n),
                _ => None,
            });
            if enclosing.is_some_and(|n| t.pos.col <= n) {
                out.push(Spanned {
                    tok: Tok::VLBrace,
                    pos: t.pos,
                });
                out.push(Spanned {
                    tok: Tok::VRBrace,
                    pos: t.pos,
                });
                // Fall through: `t` is then subject to the normal line rule.
            } else {
                out.push(Spanned {
                    tok: Tok::VLBrace,
                    pos: t.pos,
                });
                stack.push(Ctx::Implicit(t.pos.col, is_let));
                last_line = t.pos.line;
                emit_structural(&mut out, &mut stack, &mut expecting_block, t)?;
                continue;
            }
        }

        if t.pos.line > last_line {
            last_line = t.pos.line;
            loop {
                match stack.last() {
                    Some(Ctx::Implicit(n, _)) if t.pos.col < *n => {
                        out.push(Spanned {
                            tok: Tok::VRBrace,
                            pos: t.pos,
                        });
                        stack.pop();
                    }
                    Some(Ctx::Implicit(n, _)) if t.pos.col == *n => {
                        out.push(Spanned {
                            tok: Tok::VSemi,
                            pos: t.pos,
                        });
                        break;
                    }
                    _ => break,
                }
            }
        }

        emit_structural(&mut out, &mut stack, &mut expecting_block, t)?;
    }

    if expecting_block.is_some() {
        // A layout keyword at end of input opens an empty block.
        out.push(Spanned {
            tok: Tok::VLBrace,
            pos: end_pos,
        });
        out.push(Spanned {
            tok: Tok::VRBrace,
            pos: end_pos,
        });
    }

    while let Some(ctx) = stack.pop() {
        match ctx {
            // The bottom context is the whole-module block, which was opened
            // silently (no VLBrace), so it closes silently too.
            Ctx::Implicit(_, _) if !stack.is_empty() => out.push(Spanned {
                tok: Tok::VRBrace,
                pos: end_pos,
            }),
            Ctx::Implicit(_, _) => {}
            Ctx::Explicit => {
                return Err(LayoutError {
                    pos: end_pos,
                    message: "unclosed '{'".into(),
                })
            }
            Ctx::Bracket => {
                return Err(LayoutError {
                    pos: end_pos,
                    message: "unclosed '(' or '['".into(),
                })
            }
        }
    }

    out.push(Spanned {
        tok: Tok::Eof,
        pos: end_pos,
    });
    Ok(out)
}

/// Emits `t`, maintaining the context stack for brackets, explicit braces,
/// `in`, and `,`/closing-bracket implicit closure.
fn emit_structural(
    out: &mut Vec<Spanned>,
    stack: &mut Vec<Ctx>,
    expecting_block: &mut Option<bool>,
    t: Spanned,
) -> Result<(), LayoutError> {
    match t.tok {
        Tok::Where | Tok::Let | Tok::Of | Tok::Do => {
            *expecting_block = Some(t.tok == Tok::Let);
            out.push(t);
        }
        Tok::In => {
            // `in` closes the implicit block of the matching `let` only.
            if let Some(Ctx::Implicit(_, true)) = stack.last() {
                out.push(Spanned {
                    tok: Tok::VRBrace,
                    pos: t.pos,
                });
                stack.pop();
            }
            out.push(t);
        }
        Tok::LParen | Tok::LBracket => {
            stack.push(Ctx::Bracket);
            out.push(t);
        }
        Tok::RParen | Tok::RBracket => {
            while let Some(Ctx::Implicit(_, _)) = stack.last() {
                out.push(Spanned {
                    tok: Tok::VRBrace,
                    pos: t.pos,
                });
                stack.pop();
            }
            match stack.last() {
                Some(Ctx::Bracket) => {
                    stack.pop();
                }
                _ => {
                    return Err(LayoutError {
                        pos: t.pos,
                        message: format!("unmatched '{}'", t.tok),
                    })
                }
            }
            out.push(t);
        }
        Tok::Comma => {
            // Close implicit blocks opened inside the nearest bracket, so
            // `(do ..., e)` and `[case x of ..., e]` parse.
            if stack.iter().any(|c| matches!(c, Ctx::Bracket)) {
                while let Some(Ctx::Implicit(_, _)) = stack.last() {
                    out.push(Spanned {
                        tok: Tok::VRBrace,
                        pos: t.pos,
                    });
                    stack.pop();
                }
            }
            out.push(t);
        }
        Tok::LBrace => {
            stack.push(Ctx::Explicit);
            out.push(t);
        }
        Tok::RBrace => {
            match stack.last() {
                Some(Ctx::Explicit) => {
                    stack.pop();
                }
                _ => {
                    return Err(LayoutError {
                        pos: t.pos,
                        message: "unmatched '}'".into(),
                    })
                }
            }
            out.push(t);
        }
        _ => out.push(t),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Tok> {
        layout(lex(src).expect("lexes"))
            .expect("layout")
            .into_iter()
            .map(|s| s.tok)
            .collect()
    }

    fn count(ts: &[Tok], t: &Tok) -> usize {
        ts.iter().filter(|x| *x == t).count()
    }

    #[test]
    fn top_level_declarations_get_semicolons() {
        let ts = run("x = 1\ny = 2\nz = 3");
        assert_eq!(count(&ts, &Tok::VSemi), 2);
    }

    #[test]
    fn continuation_lines_do_not_break_declarations() {
        let ts = run("x = 1 +\n      2\ny = 3");
        assert_eq!(count(&ts, &Tok::VSemi), 1);
    }

    #[test]
    fn let_in_on_one_line() {
        let ts = run("v = let x = 1 in x");
        // The `let` block opens and is closed by `in`.
        let open = ts.iter().position(|t| *t == Tok::VLBrace).expect("opens");
        let close = ts.iter().position(|t| *t == Tok::VRBrace).expect("closes");
        let in_pos = ts.iter().position(|t| *t == Tok::In).expect("in");
        assert!(open < close && close < in_pos);
    }

    #[test]
    fn case_block_closed_by_paren() {
        let ts = run("v = (case b of True -> 1) + 2");
        let close = ts.iter().position(|t| *t == Tok::VRBrace).expect("closes");
        let rparen = ts.iter().position(|t| *t == Tok::RParen).expect("rparen");
        assert!(close < rparen);
    }

    #[test]
    fn indented_case_alternatives_get_semicolons() {
        let ts = run("f x = case x of\n        True -> 1\n        False -> 2");
        assert_eq!(count(&ts, &Tok::VSemi), 1);
        assert_eq!(count(&ts, &Tok::VLBrace), 1);
    }

    #[test]
    fn where_block_attaches_to_declaration() {
        let ts = run("loop = f True\n  where f x = f (not x)");
        assert_eq!(count(&ts, &Tok::VLBrace), 1);
        // Dedenting back to column 1 closes both where-block and module line.
        let ts2 = run("loop = f True\n  where f x = f (not x)\nmain = loop");
        assert_eq!(count(&ts2, &Tok::VSemi), 1);
    }

    #[test]
    fn explicit_braces_disable_layout() {
        let ts = run("f x = case x of { True -> 1; False -> 2 }");
        assert_eq!(count(&ts, &Tok::VLBrace), 0);
        assert_eq!(count(&ts, &Tok::LBrace), 1);
    }

    #[test]
    fn do_block_with_bind_statements() {
        let ts = run("main = do\n  c <- getChar\n  putChar c");
        assert_eq!(count(&ts, &Tok::VSemi), 1);
        assert_eq!(count(&ts, &Tok::VLBrace), 1);
    }

    #[test]
    fn empty_where_block_when_not_indented() {
        // `where` followed by a dedented token opens an empty block.
        let ts = run("f = 1 where\ng = 2");
        assert_eq!(count(&ts, &Tok::VLBrace), 1);
        assert!(count(&ts, &Tok::VRBrace) >= 1);
    }

    #[test]
    fn mismatched_brackets_error() {
        assert!(layout(lex("f = (1").expect("lexes")).is_err());
        assert!(layout(lex("f = 1)").expect("lexes")).is_err());
        assert!(layout(lex("f = }").expect("lexes")).is_err());
    }

    #[test]
    fn comma_closes_inline_do_block_inside_tuple() {
        let ts = run("p = (do putChar c, 3)");
        let comma = ts.iter().position(|t| *t == Tok::Comma).expect("comma");
        let close = ts.iter().position(|t| *t == Tok::VRBrace).expect("closes");
        assert!(close < comma);
    }

    #[test]
    fn eof_closes_all_implicit_blocks() {
        let ts = run("f = case x of\n      True -> 1");
        assert_eq!(*ts.last().expect("nonempty"), Tok::Eof);
        // The case block closes; the silent module block does not emit.
        assert_eq!(count(&ts, &Tok::VRBrace), 1);
    }
}
