//! The surface abstract syntax: what the parser produces and the desugarer
//! consumes.
//!
//! Surface syntax is deliberately Haskell-flavoured so the paper's examples
//! can be transcribed nearly verbatim (multi-equation definitions, nested
//! patterns, guards, `where`, `do`-notation, list and tuple sugar). The
//! [`crate::desugar`] pass lowers all of it onto the tiny core language of
//! the paper's Figure 1 ([`crate::core`]).

use crate::token::Pos;
use crate::Symbol;

/// A parsed module: a sequence of declarations.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct SurfaceProgram {
    pub decls: Vec<Decl>,
}

/// A top-level (or `let`/`where`-local) declaration.
#[derive(Clone, PartialEq, Debug)]
pub enum Decl {
    /// `data T a b = C1 t ... | C2 ...`
    Data(DataDecl),
    /// `f :: type` — an optional signature, checked against inference.
    Sig(Symbol, SType),
    /// One equation of a function or value binding.
    Bind(Clause),
}

/// An algebraic data type declaration.
#[derive(Clone, PartialEq, Debug)]
pub struct DataDecl {
    pub name: Symbol,
    pub params: Vec<Symbol>,
    pub constructors: Vec<ConDecl>,
    pub pos: Pos,
}

/// One constructor of a data declaration.
#[derive(Clone, PartialEq, Debug)]
pub struct ConDecl {
    pub name: Symbol,
    pub args: Vec<SType>,
}

/// A surface type expression.
#[derive(Clone, PartialEq, Debug)]
pub enum SType {
    /// A type variable, e.g. `a`.
    Var(Symbol),
    /// A (possibly applied) type constructor, e.g. `Int`, `List a`, `IO a`.
    Con(Symbol, Vec<SType>),
    /// `a -> b`
    Fun(Box<SType>, Box<SType>),
    /// `[a]` — sugar for `List a`.
    List(Box<SType>),
    /// `(a, b)` / `(a, b, c)` — sugar for `Pair`/`Triple`.
    Tuple(Vec<SType>),
}

/// One equation: `name p1 ... pn | guards = rhs where decls`.
#[derive(Clone, PartialEq, Debug)]
pub struct Clause {
    pub name: Symbol,
    pub pats: Vec<Pat>,
    pub rhs: Rhs,
    pub wheres: Vec<Decl>,
    pub pos: Pos,
}

/// The right-hand side of an equation or `case` alternative.
#[derive(Clone, PartialEq, Debug)]
pub enum Rhs {
    /// `= e`
    Plain(SExpr),
    /// `| g1 = e1 | g2 = e2 ...` — guards tried in order; if all fail the
    /// match continues with the next equation.
    Guarded(Vec<(SExpr, SExpr)>),
}

/// A surface pattern.
#[derive(Clone, PartialEq, Debug)]
pub enum Pat {
    Var(Symbol),
    Wild,
    Int(i64),
    Char(char),
    Str(String),
    /// Constructor pattern, e.g. `(Cons x xs)`, `True`.
    Con(Symbol, Vec<Pat>),
    /// `(p, q)` / `(p, q, r)`
    Tuple(Vec<Pat>),
    /// `[p1, p2, ...]`
    List(Vec<Pat>),
    /// `p : ps`
    ConsInfix(Box<Pat>, Box<Pat>),
}

impl Pat {
    /// The variables bound by this pattern, left to right.
    pub fn binders(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        self.collect_binders(&mut out);
        out
    }

    fn collect_binders(&self, out: &mut Vec<Symbol>) {
        match self {
            Pat::Var(v) => out.push(*v),
            Pat::Wild | Pat::Int(_) | Pat::Char(_) | Pat::Str(_) => {}
            Pat::Con(_, ps) | Pat::Tuple(ps) | Pat::List(ps) => {
                for p in ps {
                    p.collect_binders(out);
                }
            }
            Pat::ConsInfix(h, t) => {
                h.collect_binders(out);
                t.collect_binders(out);
            }
        }
    }

    /// True if the pattern matches anything without inspecting the value.
    pub fn is_irrefutable_shallow(&self) -> bool {
        matches!(self, Pat::Var(_) | Pat::Wild)
    }
}

/// A surface expression.
#[derive(Clone, PartialEq, Debug)]
pub enum SExpr {
    /// A lower-case identifier (variable).
    Var(Symbol),
    /// An upper-case identifier (data constructor, possibly unsaturated).
    Con(Symbol),
    Int(i64),
    Char(char),
    Str(String),
    /// Function application.
    App(Box<SExpr>, Box<SExpr>),
    /// `\p1 ... pn -> e`
    Lam(Vec<Pat>, Box<SExpr>),
    /// `let decls in e`
    Let(Vec<Decl>, Box<SExpr>),
    /// `case e of alts`
    Case(Box<SExpr>, Vec<CaseAlt>),
    /// `if c then t else e`
    If(Box<SExpr>, Box<SExpr>, Box<SExpr>),
    /// `do { stmts }`
    Do(Vec<Stmt>),
    /// Binary operator application `a ⊕ b` (also used for backtick
    /// application ``a `f` b``).
    BinOp(Symbol, Box<SExpr>, Box<SExpr>),
    /// Unary negation `-e`.
    Neg(Box<SExpr>),
    /// `(a, b)` / `(a, b, c)`
    Tuple(Vec<SExpr>),
    /// `[e1, e2, ...]`
    List(Vec<SExpr>),
    /// An operator used as a value, `(+)`.
    OpSection(Symbol),
    /// A left section `(e op)` — `\x -> e op x`.
    SectionL(Box<SExpr>, Symbol),
    /// A right section `(op e)` — `\x -> x op e`.
    SectionR(Symbol, Box<SExpr>),
}

/// One alternative of a surface `case`.
#[derive(Clone, PartialEq, Debug)]
pub struct CaseAlt {
    pub pat: Pat,
    pub rhs: Rhs,
}

/// One statement of a `do` block.
#[derive(Clone, PartialEq, Debug)]
pub enum Stmt {
    /// `p <- e`
    Bind(Pat, SExpr),
    /// `let decls`
    Let(Vec<Decl>),
    /// A bare expression (the last statement, or sequenced with `>>`).
    Expr(SExpr),
}

impl SExpr {
    /// Convenience: build a curried application `f a1 ... an`.
    pub fn apps(f: SExpr, args: impl IntoIterator<Item = SExpr>) -> SExpr {
        args.into_iter()
            .fold(f, |acc, a| SExpr::App(Box::new(acc), Box::new(a)))
    }

    /// Convenience: a variable reference.
    pub fn var(name: &str) -> SExpr {
        SExpr::Var(Symbol::intern(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_binders_in_order() {
        let p = Pat::Con(
            Symbol::intern("Cons"),
            vec![
                Pat::Var(Symbol::intern("x")),
                Pat::ConsInfix(
                    Box::new(Pat::Var(Symbol::intern("y"))),
                    Box::new(Pat::Var(Symbol::intern("ys"))),
                ),
            ],
        );
        let names: Vec<String> = p.binders().into_iter().map(|s| s.as_str()).collect();
        assert_eq!(names, vec!["x", "y", "ys"]);
    }

    #[test]
    fn irrefutable_shallow() {
        assert!(Pat::Wild.is_irrefutable_shallow());
        assert!(Pat::Var(Symbol::intern("x")).is_irrefutable_shallow());
        assert!(!Pat::Int(0).is_irrefutable_shallow());
    }

    #[test]
    fn apps_builds_curried_spine() {
        let e = SExpr::apps(SExpr::var("f"), vec![SExpr::Int(1), SExpr::Int(2)]);
        match e {
            SExpr::App(f1, a2) => {
                assert_eq!(*a2, SExpr::Int(2));
                match *f1 {
                    SExpr::App(f0, a1) => {
                        assert_eq!(*f0, SExpr::var("f"));
                        assert_eq!(*a1, SExpr::Int(1));
                    }
                    other => panic!("expected inner app, got {other:?}"),
                }
            }
            other => panic!("expected app, got {other:?}"),
        }
    }
}
