//! The core language — the paper's Figure 1, plus `let`/`letrec`.
//!
//! ```text
//! e ::= x | k | e1 e2 | \x.e | C e1 ... en
//!     | case e of { p1 -> r1 ; ... }
//!     | raise e | e1 (+) e2 | fix e
//! ```
//!
//! Recursion is expressed with [`Expr::LetRec`] rather than a first-class
//! `fix` constant; `fix f = letrec x = f x in x`, and both evaluators give
//! `letrec` exactly the least-fixed-point semantics of §4.2's `fix` rule
//! (the denotational evaluator computes the limit of the ascending chain of
//! fuel-indexed approximants).
//!
//! Sub-expressions are reference counted ([`std::rc::Rc`]) so that the
//! evaluators can share program text into thunks without cloning trees.

use std::collections::BTreeSet;
use std::fmt;
use std::rc::Rc;

use crate::Symbol;

/// A core expression.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// A variable.
    Var(Symbol),
    /// An integer constant.
    Int(i64),
    /// A character constant.
    Char(char),
    /// A string constant (strings are primitive in Urk; the paper only uses
    /// them as `UserError` payloads and output).
    Str(Rc<str>),
    /// A *saturated* constructor application. Constructors are lazy and
    /// never propagate exceptions from their arguments (§4.2).
    Con(Symbol, Vec<Rc<Expr>>),
    /// Function application `e1 e2`.
    App(Rc<Expr>, Rc<Expr>),
    /// Lambda abstraction. A lambda is a *normal* value: `\x.⊥ ≠ ⊥` (§4.2).
    Lam(Symbol, Rc<Expr>),
    /// Non-recursive `let x = e1 in e2` (operationally: allocate a thunk).
    Let(Symbol, Rc<Expr>, Rc<Expr>),
    /// Mutually recursive bindings.
    LetRec(Vec<(Symbol, Rc<Expr>)>, Rc<Expr>),
    /// `case e of alts`. Alternatives are tried top to bottom; a missing
    /// default on no match yields `Bad {PatternMatchFail}`.
    Case(Rc<Expr>, Vec<Alt>),
    /// A *saturated* primitive operation.
    Prim(PrimOp, Vec<Rc<Expr>>),
    /// `raise e` — evaluate `e` to an `Exception` value and yield the
    /// exceptional value containing (the singleton set of) it.
    Raise(Rc<Expr>),
}

/// One `case` alternative.
#[derive(Clone, PartialEq, Debug)]
pub struct Alt {
    pub con: AltCon,
    /// Binders for the constructor fields (empty for literals / default).
    pub binders: Vec<Symbol>,
    pub rhs: Rc<Expr>,
}

/// What a `case` alternative matches.
#[derive(Clone, PartialEq, Debug)]
pub enum AltCon {
    /// A data constructor.
    Con(Symbol),
    /// An integer literal.
    Int(i64),
    /// A character literal.
    Char(char),
    /// A string literal.
    Str(Rc<str>),
    /// The wildcard alternative; must come last.
    Default,
}

/// Primitive operations of the core language.
///
/// Binary arithmetic is the paper's `(+)` family: it propagates the *union*
/// of the argument exception sets (§4.2), and its operational evaluation
/// order is a machine *policy*, not part of the semantics.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum PrimOp {
    Add,
    Sub,
    Mul,
    /// Division; divisor 0 raises `DivideByZero`.
    Div,
    /// Modulus; divisor 0 raises `DivideByZero`.
    Mod,
    /// Unary negation.
    Neg,
    /// Integer equality, yielding `True`/`False`.
    IntEq,
    IntLt,
    IntLe,
    IntGt,
    IntGe,
    /// Character equality.
    CharEq,
    /// `seq a b`: force `a` to weak head normal form, then return `b`.
    Seq,
    /// Decimal rendering of an integer as a string.
    ShowInt,
    /// String concatenation.
    StrAppend,
    /// String length.
    StrLen,
    /// String equality.
    StrEq,
    /// `ord :: Char -> Int`.
    Ord,
    /// `chr :: Int -> Char` (out of range raises `Overflow`).
    Chr,
    /// §5.4's pure `mapException f e`: applies `f` to every member of the
    /// exception set of `e` (operationally: to the sole representative).
    MapExn,
    /// §5.4's `unsafeIsException` — pure, with a proof obligation that the
    /// argument is not `⊥`. The machine implements the "whatever evaluation
    /// finds" behaviour; the denotational evaluator offers the optimistic
    /// semantics.
    UnsafeIsException,
    /// §6's `unsafeGetException` — a *pure* `a -> ExVal a`, with the
    /// programmer's proof obligation that the choice of representative
    /// does not matter (the exception set is a singleton, or the program
    /// never observes the difference). The machine returns whatever the
    /// stack trim finds; the denotational evaluator picks the least
    /// member deterministically.
    UnsafeGetException,
}

impl PrimOp {
    /// Number of arguments the operation takes.
    pub fn arity(self) -> usize {
        match self {
            PrimOp::Neg
            | PrimOp::ShowInt
            | PrimOp::StrLen
            | PrimOp::Ord
            | PrimOp::Chr
            | PrimOp::UnsafeIsException
            | PrimOp::UnsafeGetException => 1,
            _ => 2,
        }
    }

    /// True if the operation is commutative on normal values (used by the
    /// argument-commutation transformation of §3.4).
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            PrimOp::Add | PrimOp::Mul | PrimOp::IntEq | PrimOp::CharEq | PrimOp::StrEq
        )
    }

    /// True if the operation forces both arguments to WHNF and unions their
    /// exception sets (the `(+)` family of §4.2). `Seq` forces only its
    /// first; `MapExn`/`UnsafeIsException` are special-cased.
    pub fn is_strict_binop(self) -> bool {
        !matches!(
            self,
            PrimOp::Seq | PrimOp::MapExn | PrimOp::UnsafeIsException | PrimOp::UnsafeGetException
        ) && self.arity() == 2
    }

    /// The surface name of the operation.
    pub fn name(self) -> &'static str {
        match self {
            PrimOp::Add => "+",
            PrimOp::Sub => "-",
            PrimOp::Mul => "*",
            PrimOp::Div => "/",
            PrimOp::Mod => "%",
            PrimOp::Neg => "negate",
            PrimOp::IntEq => "==",
            PrimOp::IntLt => "<",
            PrimOp::IntLe => "<=",
            PrimOp::IntGt => ">",
            PrimOp::IntGe => ">=",
            PrimOp::CharEq => "eqChar",
            PrimOp::Seq => "seq",
            PrimOp::ShowInt => "showInt",
            PrimOp::StrAppend => "strAppend",
            PrimOp::StrLen => "strLen",
            PrimOp::StrEq => "strEq",
            PrimOp::Ord => "ord",
            PrimOp::Chr => "chr",
            PrimOp::MapExn => "mapException",
            PrimOp::UnsafeIsException => "unsafeIsException",
            PrimOp::UnsafeGetException => "unsafeGetException",
        }
    }
}

impl fmt::Display for PrimOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl Expr {
    /// A variable reference.
    pub fn var(name: impl Into<Symbol>) -> Expr {
        Expr::Var(name.into())
    }

    /// An integer literal.
    pub fn int(n: i64) -> Expr {
        Expr::Int(n)
    }

    /// A string literal.
    pub fn str(s: &str) -> Expr {
        Expr::Str(Rc::from(s))
    }

    /// Application `f x`.
    pub fn app(f: Expr, x: Expr) -> Expr {
        Expr::App(Rc::new(f), Rc::new(x))
    }

    /// Curried application `f a1 ... an`.
    pub fn apps(f: Expr, args: impl IntoIterator<Item = Expr>) -> Expr {
        args.into_iter().fold(f, Expr::app)
    }

    /// Lambda `\x -> e`.
    pub fn lam(x: impl Into<Symbol>, body: Expr) -> Expr {
        Expr::Lam(x.into(), Rc::new(body))
    }

    /// Nested lambdas `\x1 ... xn -> e`.
    pub fn lams(xs: impl IntoIterator<Item = Symbol>, body: Expr) -> Expr {
        let xs: Vec<Symbol> = xs.into_iter().collect();
        xs.into_iter()
            .rev()
            .fold(body, |acc, x| Expr::Lam(x, Rc::new(acc)))
    }

    /// `let x = rhs in body`.
    pub fn let_(x: impl Into<Symbol>, rhs: Expr, body: Expr) -> Expr {
        Expr::Let(x.into(), Rc::new(rhs), Rc::new(body))
    }

    /// Saturated primop application.
    pub fn prim(op: PrimOp, args: impl IntoIterator<Item = Expr>) -> Expr {
        Expr::Prim(op, args.into_iter().map(Rc::new).collect())
    }

    /// `a + b`.
    #[allow(clippy::should_implement_trait)] // AST constructor, not arithmetic
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::prim(PrimOp::Add, [a, b])
    }

    /// `a / b`.
    #[allow(clippy::should_implement_trait)] // AST constructor, not arithmetic
    pub fn div(a: Expr, b: Expr) -> Expr {
        Expr::prim(PrimOp::Div, [a, b])
    }

    /// Saturated constructor application.
    pub fn con(name: impl Into<Symbol>, args: impl IntoIterator<Item = Expr>) -> Expr {
        Expr::Con(name.into(), args.into_iter().map(Rc::new).collect())
    }

    /// `raise e`.
    pub fn raise(e: Expr) -> Expr {
        Expr::Raise(Rc::new(e))
    }

    /// `raise (UserError msg)` — the paper's `error`.
    pub fn error(msg: &str) -> Expr {
        Expr::raise(Expr::con("UserError", [Expr::str(msg)]))
    }

    /// `case e of alts`.
    pub fn case(scrutinee: Expr, alts: Vec<Alt>) -> Expr {
        Expr::Case(Rc::new(scrutinee), alts)
    }

    /// The Boolean constructors.
    pub fn bool(b: bool) -> Expr {
        Expr::con(if b { "True" } else { "False" }, [])
    }

    /// An expression whose evaluation diverges: `letrec loop = loop in loop`.
    pub fn diverge() -> Expr {
        let loop_ = Symbol::intern("$diverge");
        Expr::LetRec(
            vec![(loop_, Rc::new(Expr::Var(loop_)))],
            Rc::new(Expr::Var(loop_)),
        )
    }

    /// The number of AST nodes — used as the "code size" metric for the
    /// §2.2 explicit-encoding comparison.
    pub fn size(&self) -> usize {
        let mut n = 1;
        match self {
            Expr::Var(_) | Expr::Int(_) | Expr::Char(_) | Expr::Str(_) => {}
            Expr::Con(_, args) | Expr::Prim(_, args) => {
                n += args.iter().map(|a| a.size()).sum::<usize>();
            }
            Expr::App(f, x) => n += f.size() + x.size(),
            Expr::Lam(_, b) | Expr::Raise(b) => n += b.size(),
            Expr::Let(_, r, b) => n += r.size() + b.size(),
            Expr::LetRec(binds, b) => {
                n += binds.iter().map(|(_, e)| e.size()).sum::<usize>() + b.size();
            }
            Expr::Case(s, alts) => {
                n += s.size() + alts.iter().map(|a| a.rhs.size()).sum::<usize>();
            }
        }
        n
    }

    /// Counts free occurrences of `v` (used by inlining heuristics and
    /// the desugarer's single-use scrutinee substitution).
    pub fn count_var(&self, v: Symbol) -> usize {
        match self {
            Expr::Var(x) => usize::from(*x == v),
            Expr::Int(_) | Expr::Char(_) | Expr::Str(_) => 0,
            Expr::Con(_, args) | Expr::Prim(_, args) => args.iter().map(|a| a.count_var(v)).sum(),
            Expr::App(f, x) => f.count_var(v) + x.count_var(v),
            Expr::Lam(x, b) => {
                if *x == v {
                    0
                } else {
                    b.count_var(v)
                }
            }
            Expr::Let(x, r, b) => r.count_var(v) + if *x == v { 0 } else { b.count_var(v) },
            Expr::LetRec(binds, b) => {
                if binds.iter().any(|(x, _)| *x == v) {
                    0
                } else {
                    binds.iter().map(|(_, r)| r.count_var(v)).sum::<usize>() + b.count_var(v)
                }
            }
            Expr::Case(s, alts) => {
                s.count_var(v)
                    + alts
                        .iter()
                        .map(|a| {
                            if a.binders.contains(&v) {
                                0
                            } else {
                                a.rhs.count_var(v)
                            }
                        })
                        .sum::<usize>()
            }
            Expr::Raise(x) => x.count_var(v),
        }
    }

    /// The free variables of the expression.
    pub fn free_vars(&self) -> BTreeSet<Symbol> {
        let mut out = BTreeSet::new();
        self.free_vars_into(&mut Vec::new(), &mut out);
        out
    }

    fn free_vars_into(&self, bound: &mut Vec<Symbol>, out: &mut BTreeSet<Symbol>) {
        match self {
            Expr::Var(v) => {
                if !bound.contains(v) {
                    out.insert(*v);
                }
            }
            Expr::Int(_) | Expr::Char(_) | Expr::Str(_) => {}
            Expr::Con(_, args) | Expr::Prim(_, args) => {
                for a in args {
                    a.free_vars_into(bound, out);
                }
            }
            Expr::App(f, x) => {
                f.free_vars_into(bound, out);
                x.free_vars_into(bound, out);
            }
            Expr::Lam(x, b) => {
                bound.push(*x);
                b.free_vars_into(bound, out);
                bound.pop();
            }
            Expr::Let(x, r, b) => {
                r.free_vars_into(bound, out);
                bound.push(*x);
                b.free_vars_into(bound, out);
                bound.pop();
            }
            Expr::LetRec(binds, b) => {
                let n = bound.len();
                bound.extend(binds.iter().map(|(x, _)| *x));
                for (_, r) in binds {
                    r.free_vars_into(bound, out);
                }
                b.free_vars_into(bound, out);
                bound.truncate(n);
            }
            Expr::Case(s, alts) => {
                s.free_vars_into(bound, out);
                for a in alts {
                    let n = bound.len();
                    bound.extend(a.binders.iter().copied());
                    a.rhs.free_vars_into(bound, out);
                    bound.truncate(n);
                }
            }
            Expr::Raise(e) => e.free_vars_into(bound, out),
        }
    }

    /// Capture-avoiding substitution `self[replacement / var]`.
    ///
    /// Binders that would capture a free variable of `replacement` are
    /// alpha-renamed with [`Symbol::fresh`] names.
    pub fn subst(&self, var: Symbol, replacement: &Expr) -> Expr {
        let fv = replacement.free_vars();
        self.subst_inner(var, replacement, &fv)
    }

    fn subst_inner(&self, var: Symbol, rep: &Expr, rep_fv: &BTreeSet<Symbol>) -> Expr {
        match self {
            Expr::Var(v) => {
                if *v == var {
                    rep.clone()
                } else {
                    self.clone()
                }
            }
            Expr::Int(_) | Expr::Char(_) | Expr::Str(_) => self.clone(),
            Expr::Con(c, args) => Expr::Con(
                *c,
                args.iter()
                    .map(|a| Rc::new(a.subst_inner(var, rep, rep_fv)))
                    .collect(),
            ),
            Expr::Prim(op, args) => Expr::Prim(
                *op,
                args.iter()
                    .map(|a| Rc::new(a.subst_inner(var, rep, rep_fv)))
                    .collect(),
            ),
            Expr::App(f, x) => Expr::App(
                Rc::new(f.subst_inner(var, rep, rep_fv)),
                Rc::new(x.subst_inner(var, rep, rep_fv)),
            ),
            Expr::Lam(x, b) => {
                if *x == var {
                    self.clone()
                } else if rep_fv.contains(x) {
                    let fresh = Symbol::fresh(&x.as_str());
                    let renamed = b.subst(*x, &Expr::Var(fresh));
                    Expr::Lam(fresh, Rc::new(renamed.subst_inner(var, rep, rep_fv)))
                } else {
                    Expr::Lam(*x, Rc::new(b.subst_inner(var, rep, rep_fv)))
                }
            }
            Expr::Let(x, r, b) => {
                let r2 = Rc::new(r.subst_inner(var, rep, rep_fv));
                if *x == var {
                    Expr::Let(*x, r2, b.clone())
                } else if rep_fv.contains(x) {
                    let fresh = Symbol::fresh(&x.as_str());
                    let renamed = b.subst(*x, &Expr::Var(fresh));
                    Expr::Let(fresh, r2, Rc::new(renamed.subst_inner(var, rep, rep_fv)))
                } else {
                    Expr::Let(*x, r2, Rc::new(b.subst_inner(var, rep, rep_fv)))
                }
            }
            Expr::LetRec(binds, b) => {
                if binds.iter().any(|(x, _)| *x == var) {
                    return self.clone();
                }
                if binds.iter().any(|(x, _)| rep_fv.contains(x)) {
                    // Rename every clashing binder throughout the group.
                    let mut body: Expr = self.clone();
                    let clashing: Vec<Symbol> = binds
                        .iter()
                        .map(|(x, _)| *x)
                        .filter(|x| rep_fv.contains(x))
                        .collect();
                    for x in clashing {
                        body = body.rename_letrec_binder(x);
                    }
                    return body.subst_inner(var, rep, rep_fv);
                }
                Expr::LetRec(
                    binds
                        .iter()
                        .map(|(x, r)| (*x, Rc::new(r.subst_inner(var, rep, rep_fv))))
                        .collect(),
                    Rc::new(b.subst_inner(var, rep, rep_fv)),
                )
            }
            Expr::Case(s, alts) => {
                let s2 = Rc::new(s.subst_inner(var, rep, rep_fv));
                let alts2 = alts
                    .iter()
                    .map(|a| {
                        if a.binders.contains(&var) {
                            a.clone()
                        } else if a.binders.iter().any(|x| rep_fv.contains(x)) {
                            let mut alt = a.clone();
                            for i in 0..alt.binders.len() {
                                if rep_fv.contains(&alt.binders[i]) {
                                    let old = alt.binders[i];
                                    let fresh = Symbol::fresh(&old.as_str());
                                    alt.binders[i] = fresh;
                                    alt.rhs = Rc::new(alt.rhs.subst(old, &Expr::Var(fresh)));
                                }
                            }
                            alt.rhs = Rc::new(alt.rhs.subst_inner(var, rep, rep_fv));
                            alt
                        } else {
                            Alt {
                                con: a.con.clone(),
                                binders: a.binders.clone(),
                                rhs: Rc::new(a.rhs.subst_inner(var, rep, rep_fv)),
                            }
                        }
                    })
                    .collect();
                Expr::Case(s2, alts2)
            }
            Expr::Raise(e) => Expr::Raise(Rc::new(e.subst_inner(var, rep, rep_fv))),
        }
    }

    /// Alpha-renames one binder of a `letrec` group (helper for `subst`).
    fn rename_letrec_binder(&self, old: Symbol) -> Expr {
        let Expr::LetRec(binds, body) = self else {
            return self.clone();
        };
        let fresh = Symbol::fresh(&old.as_str());
        let rename = |e: &Expr| Rc::new(e.subst(old, &Expr::Var(fresh)));
        Expr::LetRec(
            binds
                .iter()
                .map(|(x, r)| (if *x == old { fresh } else { *x }, rename(r)))
                .collect(),
            rename(body),
        )
    }

    /// Structural equality up to alpha-renaming of binders.
    pub fn alpha_eq(&self, other: &Expr) -> bool {
        fn go(a: &Expr, b: &Expr, env: &mut Vec<(Symbol, Symbol)>) -> bool {
            match (a, b) {
                (Expr::Var(x), Expr::Var(y)) => {
                    for (l, r) in env.iter().rev() {
                        if l == x || r == y {
                            return l == x && r == y;
                        }
                    }
                    x == y
                }
                (Expr::Int(x), Expr::Int(y)) => x == y,
                (Expr::Char(x), Expr::Char(y)) => x == y,
                (Expr::Str(x), Expr::Str(y)) => x == y,
                (Expr::Con(c, xs), Expr::Con(d, ys)) => {
                    c == d && xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| go(x, y, env))
                }
                (Expr::Prim(o, xs), Expr::Prim(p, ys)) => {
                    o == p && xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| go(x, y, env))
                }
                (Expr::App(f, x), Expr::App(g, y)) => go(f, g, env) && go(x, y, env),
                (Expr::Lam(x, e), Expr::Lam(y, f)) => {
                    env.push((*x, *y));
                    let r = go(e, f, env);
                    env.pop();
                    r
                }
                (Expr::Let(x, r1, b1), Expr::Let(y, r2, b2)) => {
                    if !go(r1, r2, env) {
                        return false;
                    }
                    env.push((*x, *y));
                    let r = go(b1, b2, env);
                    env.pop();
                    r
                }
                (Expr::LetRec(bs1, b1), Expr::LetRec(bs2, b2)) => {
                    if bs1.len() != bs2.len() {
                        return false;
                    }
                    let n = env.len();
                    env.extend(bs1.iter().zip(bs2.iter()).map(|((x, _), (y, _))| (*x, *y)));
                    let r = bs1
                        .iter()
                        .zip(bs2.iter())
                        .all(|((_, r1), (_, r2))| go(r1, r2, env))
                        && go(b1, b2, env);
                    env.truncate(n);
                    r
                }
                (Expr::Case(s1, as1), Expr::Case(s2, as2)) => {
                    if !go(s1, s2, env) || as1.len() != as2.len() {
                        return false;
                    }
                    as1.iter().zip(as2).all(|(x, y)| {
                        if x.con != y.con || x.binders.len() != y.binders.len() {
                            return false;
                        }
                        let n = env.len();
                        env.extend(x.binders.iter().zip(&y.binders).map(|(a, b)| (*a, *b)));
                        let r = go(&x.rhs, &y.rhs, env);
                        env.truncate(n);
                        r
                    })
                }
                (Expr::Raise(x), Expr::Raise(y)) => go(x, y, env),
                _ => false,
            }
        }
        go(self, other, &mut Vec::new())
    }
}

impl Alt {
    /// A constructor alternative.
    pub fn con(name: impl Into<Symbol>, binders: Vec<Symbol>, rhs: Expr) -> Alt {
        Alt {
            con: AltCon::Con(name.into()),
            binders,
            rhs: Rc::new(rhs),
        }
    }

    /// The default (wildcard) alternative.
    pub fn default(rhs: Expr) -> Alt {
        Alt {
            con: AltCon::Default,
            binders: Vec::new(),
            rhs: Rc::new(rhs),
        }
    }

    /// A default alternative binding the forced scrutinee — GHC's
    /// `case e of x { _DEFAULT -> rhs }`, the shape produced by the
    /// strictness-driven let-to-case transformation.
    pub fn default_bind(x: impl Into<Symbol>, rhs: Expr) -> Alt {
        Alt {
            con: AltCon::Default,
            binders: vec![x.into()],
            rhs: Rc::new(rhs),
        }
    }

    /// An integer-literal alternative.
    pub fn int(n: i64, rhs: Expr) -> Alt {
        Alt {
            con: AltCon::Int(n),
            binders: Vec::new(),
            rhs: Rc::new(rhs),
        }
    }
}

/// A desugared program: one recursive group of top-level core bindings,
/// plus any user-supplied type signatures (checked by `urk-types`).
#[derive(Clone, Debug, Default)]
pub struct CoreProgram {
    pub binds: Vec<(Symbol, Rc<Expr>)>,
    pub sigs: Vec<(Symbol, crate::ast::SType)>,
}

impl CoreProgram {
    /// Looks up a top-level binding.
    pub fn lookup(&self, name: Symbol) -> Option<&Rc<Expr>> {
        self.binds.iter().find(|(n, _)| *n == name).map(|(_, e)| e)
    }

    /// Wraps `body` in the program's bindings: `letrec binds in body`.
    pub fn wrap(&self, body: Expr) -> Expr {
        if self.binds.is_empty() {
            body
        } else {
            Expr::LetRec(self.binds.clone(), Rc::new(body))
        }
    }

    /// Total AST size of all bindings (the §2.2 code-size metric).
    pub fn size(&self) -> usize {
        self.binds.iter().map(|(_, e)| e.size()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Symbol {
        Symbol::intern("x")
    }
    fn y() -> Symbol {
        Symbol::intern("y")
    }

    #[test]
    fn free_vars_respect_binders() {
        // \x -> x + y   has free {y}
        let e = Expr::lam(x(), Expr::add(Expr::Var(x()), Expr::Var(y())));
        let fv = e.free_vars();
        assert!(fv.contains(&y()));
        assert!(!fv.contains(&x()));
    }

    #[test]
    fn letrec_binders_are_not_free() {
        let f = Symbol::intern("f");
        let e = Expr::LetRec(
            vec![(f, Rc::new(Expr::app(Expr::Var(f), Expr::Var(y()))))],
            Rc::new(Expr::Var(f)),
        );
        let fv = e.free_vars();
        assert_eq!(fv.into_iter().collect::<Vec<_>>(), vec![y()]);
    }

    #[test]
    fn subst_replaces_free_occurrences_only() {
        // (\x -> x) [x := 42]  is unchanged
        let id = Expr::lam(x(), Expr::Var(x()));
        assert!(id.subst(x(), &Expr::int(42)).alpha_eq(&id));
        // (x + 1) [x := 42]
        let e = Expr::add(Expr::Var(x()), Expr::int(1));
        let got = e.subst(x(), &Expr::int(42));
        assert!(got.alpha_eq(&Expr::add(Expr::int(42), Expr::int(1))));
    }

    #[test]
    fn subst_avoids_capture() {
        // (\y -> x + y) [x := y]  must not capture: result is \y' -> y + y'
        let e = Expr::lam(y(), Expr::add(Expr::Var(x()), Expr::Var(y())));
        let got = e.subst(x(), &Expr::Var(y()));
        let expected = Expr::lam(
            Symbol::intern("z"),
            Expr::add(Expr::Var(y()), Expr::Var(Symbol::intern("z"))),
        );
        assert!(got.alpha_eq(&expected), "got {got:?}");
    }

    #[test]
    fn subst_avoids_capture_in_case_binders() {
        // case e of Just y -> x   [x := y]
        let e = Expr::case(
            Expr::var("e"),
            vec![Alt::con("Just", vec![y()], Expr::Var(x()))],
        );
        let got = e.subst(x(), &Expr::Var(y()));
        match &got {
            Expr::Case(_, alts) => {
                assert_ne!(alts[0].binders[0], y(), "binder must be renamed");
                assert_eq!(*alts[0].rhs, Expr::Var(y()));
            }
            other => panic!("expected case, got {other:?}"),
        }
    }

    #[test]
    fn alpha_eq_identifies_renamed_terms() {
        let a = Expr::lam(x(), Expr::Var(x()));
        let b = Expr::lam(y(), Expr::Var(y()));
        assert!(a.alpha_eq(&b));
        let c = Expr::lam(x(), Expr::Var(y()));
        assert!(!a.alpha_eq(&c));
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(Expr::int(1).size(), 1);
        assert_eq!(Expr::add(Expr::int(1), Expr::int(2)).size(), 3);
    }

    #[test]
    fn error_builds_the_paper_form() {
        let e = Expr::error("Urk");
        match e {
            Expr::Raise(inner) => match &*inner {
                Expr::Con(c, args) => {
                    assert_eq!(c.as_str(), "UserError");
                    assert_eq!(args.len(), 1);
                }
                other => panic!("expected constructor, got {other:?}"),
            },
            other => panic!("expected raise, got {other:?}"),
        }
    }

    #[test]
    fn primop_arities_and_commutativity() {
        assert_eq!(PrimOp::Add.arity(), 2);
        assert_eq!(PrimOp::Neg.arity(), 1);
        assert!(PrimOp::Add.is_commutative());
        assert!(!PrimOp::Sub.is_commutative());
        assert!(PrimOp::Add.is_strict_binop());
        assert!(!PrimOp::Seq.is_strict_binop());
    }
}
