//! Content addressing for core expressions.
//!
//! The serving layer caches evaluation results keyed by *what a query
//! means*, not by the source text that produced it. Two obstacles stand
//! between a desugared [`Expr`] and a usable cache key:
//!
//! * desugaring invents fresh binder names (`Symbol::fresh`) from a global
//!   counter, so compiling the same source twice — or on two different
//!   pool workers — yields alpha-equivalent but not structurally equal
//!   trees;
//! * [`Symbol`]s are interner handles whose numeric value depends on
//!   interning order, which differs between processes and runs.
//!
//! [`expr_canonical_bytes`] therefore serialises an expression into a
//! canonical byte string that is invariant under alpha-renaming (bound
//! variables become de Bruijn indices) and independent of the interner
//! state (free variables are written by spelling). Equal byte strings are
//! exact witnesses of alpha-equivalence for cache purposes — the cache
//! compares the full bytes, so hash collisions cannot alias two different
//! programs. [`expr_fingerprint`] is a 64-bit FNV-1a digest of the same
//! bytes, used for sharding and cheap display.

use crate::core::{AltCon, Expr, PrimOp};
use crate::Symbol;

/// Serialises an expression into its canonical, alpha-invariant,
/// interner-independent byte string.
///
/// # Examples
///
/// ```
/// use urk_syntax::{expr_canonical_bytes, Symbol};
/// use urk_syntax::core::Expr;
///
/// let a = Expr::lam(Symbol::intern("x"), Expr::var("x"));
/// let b = Expr::lam(Symbol::intern("y"), Expr::var("y"));
/// assert_eq!(expr_canonical_bytes(&a), expr_canonical_bytes(&b));
/// ```
pub fn expr_canonical_bytes(e: &Expr) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    write_expr(e, &mut Vec::new(), &mut out);
    out
}

/// A 64-bit FNV-1a digest of [`expr_canonical_bytes`]. Equal expressions
/// (up to alpha-renaming) always agree; the cache never relies on the
/// converse.
pub fn expr_fingerprint(e: &Expr) -> u64 {
    fnv1a(&expr_canonical_bytes(e))
}

/// FNV-1a over a byte string — the workspace's dependency-free hash for
/// content addressing (the cache's sharding function).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// One tag byte per construct. Every variable-length field (strings,
// argument lists) is length-prefixed, so the serialisation is
// prefix-free and two distinct trees cannot collide byte-for-byte.
const TAG_BOUND: u8 = 0x01;
const TAG_FREE: u8 = 0x02;
const TAG_INT: u8 = 0x03;
const TAG_CHAR: u8 = 0x04;
const TAG_STR: u8 = 0x05;
const TAG_CON: u8 = 0x06;
const TAG_APP: u8 = 0x07;
const TAG_LAM: u8 = 0x08;
const TAG_LET: u8 = 0x09;
const TAG_LETREC: u8 = 0x0a;
const TAG_CASE: u8 = 0x0b;
const TAG_PRIM: u8 = 0x0c;
const TAG_RAISE: u8 = 0x0d;
const TAG_ALT_CON: u8 = 0x10;
const TAG_ALT_INT: u8 = 0x11;
const TAG_ALT_CHAR: u8 = 0x12;
const TAG_ALT_STR: u8 = 0x13;
const TAG_ALT_DEFAULT: u8 = 0x14;

fn write_u64(n: u64, out: &mut Vec<u8>) {
    out.extend_from_slice(&n.to_le_bytes());
}

fn write_str(s: &str, out: &mut Vec<u8>) {
    write_u64(s.len() as u64, out);
    out.extend_from_slice(s.as_bytes());
}

fn write_sym(s: Symbol, out: &mut Vec<u8>) {
    write_str(&s.as_str(), out);
}

/// A bound variable is written as its de Bruijn *distance*: how many
/// binders up the `bound` stack its binding site sits (innermost = 0).
fn write_var(v: Symbol, bound: &[Symbol], out: &mut Vec<u8>) {
    match bound.iter().rev().position(|b| *b == v) {
        Some(distance) => {
            out.push(TAG_BOUND);
            write_u64(distance as u64, out);
        }
        None => {
            out.push(TAG_FREE);
            write_sym(v, out);
        }
    }
}

fn write_expr(e: &Expr, bound: &mut Vec<Symbol>, out: &mut Vec<u8>) {
    match e {
        Expr::Var(v) => write_var(*v, bound, out),
        Expr::Int(n) => {
            out.push(TAG_INT);
            write_u64(*n as u64, out);
        }
        Expr::Char(c) => {
            out.push(TAG_CHAR);
            write_u64(u64::from(u32::from(*c)), out);
        }
        Expr::Str(s) => {
            out.push(TAG_STR);
            write_str(s, out);
        }
        Expr::Con(name, args) => {
            out.push(TAG_CON);
            write_sym(*name, out);
            write_u64(args.len() as u64, out);
            for a in args {
                write_expr(a, bound, out);
            }
        }
        Expr::Prim(op, args) => {
            out.push(TAG_PRIM);
            write_str(op_key(*op), out);
            write_u64(args.len() as u64, out);
            for a in args {
                write_expr(a, bound, out);
            }
        }
        Expr::App(f, x) => {
            out.push(TAG_APP);
            write_expr(f, bound, out);
            write_expr(x, bound, out);
        }
        Expr::Lam(x, b) => {
            out.push(TAG_LAM);
            bound.push(*x);
            write_expr(b, bound, out);
            bound.pop();
        }
        Expr::Let(x, rhs, body) => {
            out.push(TAG_LET);
            write_expr(rhs, bound, out);
            bound.push(*x);
            write_expr(body, bound, out);
            bound.pop();
        }
        Expr::LetRec(binds, body) => {
            out.push(TAG_LETREC);
            write_u64(binds.len() as u64, out);
            let n = bound.len();
            bound.extend(binds.iter().map(|(x, _)| *x));
            for (_, rhs) in binds {
                write_expr(rhs, bound, out);
            }
            write_expr(body, bound, out);
            bound.truncate(n);
        }
        Expr::Case(scrutinee, alts) => {
            out.push(TAG_CASE);
            write_expr(scrutinee, bound, out);
            write_u64(alts.len() as u64, out);
            for alt in alts {
                match &alt.con {
                    AltCon::Con(c) => {
                        out.push(TAG_ALT_CON);
                        write_sym(*c, out);
                    }
                    AltCon::Int(n) => {
                        out.push(TAG_ALT_INT);
                        write_u64(*n as u64, out);
                    }
                    AltCon::Char(c) => {
                        out.push(TAG_ALT_CHAR);
                        write_u64(u64::from(u32::from(*c)), out);
                    }
                    AltCon::Str(s) => {
                        out.push(TAG_ALT_STR);
                        write_str(s, out);
                    }
                    AltCon::Default => out.push(TAG_ALT_DEFAULT),
                }
                write_u64(alt.binders.len() as u64, out);
                let n = bound.len();
                bound.extend(alt.binders.iter().copied());
                write_expr(&alt.rhs, bound, out);
                bound.truncate(n);
            }
        }
        Expr::Raise(inner) => {
            out.push(TAG_RAISE);
            write_expr(inner, bound, out);
        }
    }
}

/// A stable textual key per primop (its surface name — already unique).
fn op_key(op: PrimOp) -> &'static str {
    op.name()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{desugar_expr, parse_expr_src, DataEnv};

    fn compile(src: &str) -> Expr {
        let data = DataEnv::new();
        desugar_expr(&parse_expr_src(src).expect("parses"), &data).expect("desugars")
    }

    #[test]
    fn alpha_renamed_terms_have_equal_bytes() {
        let pairs = [
            (r"\x -> x", r"\y -> y"),
            ("let x = 1 in x + x", "let z = 1 in z + z"),
            (r"\f -> \x -> f (f x)", r"\g -> \y -> g (g y)"),
        ];
        for (a, b) in pairs {
            assert_eq!(
                expr_canonical_bytes(&compile(a)),
                expr_canonical_bytes(&compile(b)),
                "{a} vs {b}"
            );
        }
    }

    #[test]
    fn recompiling_the_same_source_is_stable_despite_fresh_symbols() {
        // The match compiler invents fresh binders; compiling twice must
        // still produce identical canonical bytes (alpha-invariance is
        // what makes a shared cache possible across pool workers).
        let src = r"case xs of { y:ys -> y + 1; other -> 0 }";
        assert_eq!(
            expr_canonical_bytes(&compile(src)),
            expr_canonical_bytes(&compile(src))
        );
        assert_eq!(
            expr_fingerprint(&compile(src)),
            expr_fingerprint(&compile(src))
        );
    }

    #[test]
    fn distinct_programs_have_distinct_bytes() {
        let exprs = [
            "1 + 2",
            "2 + 1",
            "1 - 2",
            r"\x -> x",
            r"\x -> \y -> x",
            r"\x -> \y -> y",
            "let x = 1 in x",
            r#"raise (UserError "a")"#,
            r#"raise (UserError "b")"#,
            "case b of { True -> 1; False -> 2 }",
            "case b of { False -> 1; True -> 2 }",
        ];
        let all: Vec<Vec<u8>> = exprs
            .iter()
            .map(|s| expr_canonical_bytes(&compile(s)))
            .collect();
        for i in 0..all.len() {
            for j in i + 1..all.len() {
                assert_ne!(all[i], all[j], "{} vs {}", exprs[i], exprs[j]);
            }
        }
    }

    #[test]
    fn shadowing_binds_to_the_innermost_binder() {
        // \x -> \x -> x  refers to the inner x; it must differ from
        // \x -> \y -> x  (outer reference) and equal \a -> \b -> b.
        let inner = compile(r"\x -> \x -> x");
        let outer = compile(r"\x -> \y -> x");
        let fresh = compile(r"\a -> \b -> b");
        assert_ne!(expr_canonical_bytes(&inner), expr_canonical_bytes(&outer));
        assert_eq!(expr_canonical_bytes(&inner), expr_canonical_bytes(&fresh));
    }

    #[test]
    fn free_variables_are_addressed_by_spelling() {
        // Free variables (Prelude references) keep their names, so `map`
        // and `sum` differ even though both are a single free Var node.
        assert_ne!(
            expr_canonical_bytes(&Expr::var("map")),
            expr_canonical_bytes(&Expr::var("sum"))
        );
        // The paper's bound/free distinction: `\map -> map` is `\x -> x`.
        assert_eq!(
            expr_canonical_bytes(&compile(r"\map -> map")),
            expr_canonical_bytes(&compile(r"\x -> x"))
        );
    }

    #[test]
    fn fingerprint_is_fnv_of_the_canonical_bytes() {
        let e = compile("sum [1, 2, 3]");
        assert_eq!(expr_fingerprint(&e), fnv1a(&expr_canonical_bytes(&e)));
        // And a known FNV-1a vector for the hash itself.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }
}
