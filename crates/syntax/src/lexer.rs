//! The lexer: source text → positioned tokens.
//!
//! Comments (`-- line` and `{- block -}`, nesting) are stripped here; the
//! layout algorithm in [`crate::layout`] runs afterwards on the token
//! stream.

use crate::token::{Pos, Spanned, Tok};
use crate::Symbol;
use std::fmt;

/// An error produced while lexing.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LexError {
    pub pos: Pos,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

const SYMBOL_CHARS: &[u8] = b"!#$%&*+./<=>?@^|-~:";

fn is_symbol_char(c: u8) -> bool {
    SYMBOL_CHARS.contains(&c)
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c == b'\''
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn here(&self) -> Pos {
        Pos {
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn error(&self, message: impl Into<String>) -> LexError {
        LexError {
            pos: self.here(),
            message: message.into(),
        }
    }

    /// Skips whitespace and comments. Returns an error on an unterminated
    /// block comment.
    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(c) if c == b' ' || c == b'\t' || c == b'\r' || c == b'\n' => {
                    self.bump();
                }
                Some(b'-') if self.peek2() == Some(b'-') => {
                    // A line comment, unless `--` begins a longer operator
                    // like `-->`; Haskell has the same rule.
                    let mut look = self.pos + 2;
                    while self.src.get(look).copied() == Some(b'-') {
                        look += 1;
                    }
                    if self.src.get(look).copied().is_some_and(is_symbol_char) {
                        return Ok(());
                    }
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'{') if self.peek2() == Some(b'-') => {
                    let start = self.here();
                    self.bump();
                    self.bump();
                    let mut depth = 1usize;
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'{'), Some(b'-')) => {
                                self.bump();
                                self.bump();
                                depth += 1;
                            }
                            (Some(b'-'), Some(b'}')) => {
                                self.bump();
                                self.bump();
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(LexError {
                                    pos: start,
                                    message: "unterminated block comment".into(),
                                })
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_int(&mut self) -> Result<Tok, LexError> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("digits are utf-8");
        text.parse::<i64>()
            .map(Tok::Int)
            .map_err(|_| self.error(format!("integer literal out of range: {text}")))
    }

    fn lex_escape(&mut self) -> Result<char, LexError> {
        match self.bump() {
            Some(b'n') => Ok('\n'),
            Some(b't') => Ok('\t'),
            Some(b'r') => Ok('\r'),
            Some(b'\\') => Ok('\\'),
            Some(b'\'') => Ok('\''),
            Some(b'"') => Ok('"'),
            Some(b'0') => Ok('\0'),
            Some(c) => Err(self.error(format!("unknown escape '\\{}'", c as char))),
            None => Err(self.error("unterminated escape")),
        }
    }

    fn lex_char(&mut self) -> Result<Tok, LexError> {
        self.bump(); // opening quote
        let c = match self.bump() {
            Some(b'\\') => self.lex_escape()?,
            Some(b'\'') => return Err(self.error("empty character literal")),
            Some(c) if c.is_ascii() => c as char,
            Some(_) => return Err(self.error("non-ascii character literal")),
            None => return Err(self.error("unterminated character literal")),
        };
        match self.bump() {
            Some(b'\'') => Ok(Tok::Char(c)),
            _ => Err(self.error("character literal must contain exactly one character")),
        }
    }

    fn lex_string(&mut self) -> Result<Tok, LexError> {
        let start = self.here();
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(Tok::Str(out)),
                Some(b'\\') => out.push(self.lex_escape()?),
                Some(b'\n') | None => {
                    return Err(LexError {
                        pos: start,
                        message: "unterminated string literal".into(),
                    })
                }
                Some(c) => out.push(c as char),
            }
        }
    }

    fn lex_word(&mut self) -> Tok {
        let start = self.pos;
        while self.peek().is_some_and(is_ident_continue) {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("idents are utf-8");
        match text {
            "data" => Tok::Data,
            "let" => Tok::Let,
            "in" => Tok::In,
            "case" => Tok::Case,
            "of" => Tok::Of,
            "where" => Tok::Where,
            "do" => Tok::Do,
            "if" => Tok::If,
            "then" => Tok::Then,
            "else" => Tok::Else,
            "_" => Tok::Underscore,
            _ if text.as_bytes()[0].is_ascii_uppercase() => Tok::Upper(Symbol::intern(text)),
            _ => Tok::Lower(Symbol::intern(text)),
        }
    }

    fn lex_operator(&mut self) -> Tok {
        let start = self.pos;
        while self.peek().is_some_and(is_symbol_char) {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ops are utf-8");
        match text {
            "->" => Tok::Arrow,
            "<-" => Tok::BackArrow,
            "=" => Tok::Equals,
            "|" => Tok::Pipe,
            "::" => Tok::DoubleColon,
            _ => Tok::Op(Symbol::intern(text)),
        }
    }

    fn next_token(&mut self) -> Result<Option<Spanned>, LexError> {
        self.skip_trivia()?;
        let pos = self.here();
        let Some(c) = self.peek() else {
            return Ok(None);
        };
        let tok = match c {
            b'(' => {
                self.bump();
                Tok::LParen
            }
            b')' => {
                self.bump();
                Tok::RParen
            }
            b'[' => {
                self.bump();
                Tok::LBracket
            }
            b']' => {
                self.bump();
                Tok::RBracket
            }
            b'{' => {
                self.bump();
                Tok::LBrace
            }
            b'}' => {
                self.bump();
                Tok::RBrace
            }
            b',' => {
                self.bump();
                Tok::Comma
            }
            b';' => {
                self.bump();
                Tok::Semi
            }
            b'`' => {
                self.bump();
                Tok::Backtick
            }
            b'\\' => {
                self.bump();
                Tok::Backslash
            }
            b'\'' => self.lex_char()?,
            b'"' => self.lex_string()?,
            c if c.is_ascii_digit() => self.lex_int()?,
            c if is_ident_start(c) => self.lex_word(),
            c if is_symbol_char(c) => self.lex_operator(),
            c => return Err(self.error(format!("unexpected character {:?}", c as char))),
        };
        Ok(Some(Spanned { tok, pos }))
    }
}

/// Lexes `src` into a token stream (without layout processing and without a
/// trailing [`Tok::Eof`]).
///
/// # Errors
///
/// Returns a [`LexError`] on malformed literals, unterminated comments, or
/// characters outside the language's alphabet.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let mut lexer = Lexer::new(src);
    let mut out = Vec::new();
    while let Some(tok) = lexer.next_token()? {
        out.push(tok);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src)
            .expect("lexes")
            .into_iter()
            .map(|s| s.tok)
            .collect()
    }

    #[test]
    fn lexes_the_paper_headline_expression() {
        // getException ((1/0) + error "Urk")
        let ts = toks(r#"getException ((1/0) + error "Urk")"#);
        assert_eq!(
            ts,
            vec![
                Tok::Lower(Symbol::intern("getException")),
                Tok::LParen,
                Tok::LParen,
                Tok::Int(1),
                Tok::Op(Symbol::intern("/")),
                Tok::Int(0),
                Tok::RParen,
                Tok::Op(Symbol::intern("+")),
                Tok::Lower(Symbol::intern("error")),
                Tok::Str("Urk".into()),
                Tok::RParen,
            ]
        );
    }

    #[test]
    fn distinguishes_keywords_and_identifiers() {
        assert_eq!(
            toks("case cases of ofx"),
            vec![
                Tok::Case,
                Tok::Lower(Symbol::intern("cases")),
                Tok::Of,
                Tok::Lower(Symbol::intern("ofx")),
            ]
        );
    }

    #[test]
    fn multi_char_operators_lex_greedily() {
        assert_eq!(
            toks("x >>= f >> g"),
            vec![
                Tok::Lower(Symbol::intern("x")),
                Tok::Op(Symbol::intern(">>=")),
                Tok::Lower(Symbol::intern("f")),
                Tok::Op(Symbol::intern(">>")),
                Tok::Lower(Symbol::intern("g")),
            ]
        );
        assert_eq!(
            toks("a -> b"),
            vec![
                Tok::Lower(Symbol::intern("a")),
                Tok::Arrow,
                Tok::Lower(Symbol::intern("b")),
            ]
        );
    }

    #[test]
    fn comments_are_stripped_including_nested_blocks() {
        let src = "x -- a line comment\n{- outer {- inner -} still outer -} y";
        assert_eq!(
            toks(src),
            vec![
                Tok::Lower(Symbol::intern("x")),
                Tok::Lower(Symbol::intern("y"))
            ]
        );
    }

    #[test]
    fn unterminated_block_comment_is_an_error() {
        assert!(lex("{- oops").is_err());
    }

    #[test]
    fn char_and_string_escapes() {
        assert_eq!(toks(r"'\n'"), vec![Tok::Char('\n')]);
        assert_eq!(toks(r#""a\tb""#), vec![Tok::Str("a\tb".into())]);
        assert!(lex(r"'ab'").is_err());
        assert!(lex("\"unterminated").is_err());
    }

    #[test]
    fn positions_track_lines_and_columns() {
        let ts = lex("x\n  y").expect("lexes");
        assert_eq!(ts[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(ts[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn integer_overflow_is_reported() {
        assert!(lex("99999999999999999999999").is_err());
    }

    #[test]
    fn primes_allowed_in_identifiers() {
        assert_eq!(
            toks("f' x'"),
            vec![
                Tok::Lower(Symbol::intern("f'")),
                Tok::Lower(Symbol::intern("x'")),
            ]
        );
    }
}
