//! Interned identifiers.
//!
//! Every name in the compiler — variables, constructors, type names — is a
//! [`Symbol`]: a small copyable handle into a global interner. Symbol
//! comparison is an integer comparison, which keeps the evaluators fast, and
//! the interner can always recover the original spelling for diagnostics and
//! pretty-printing.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned string. Cheap to copy, compare and hash.
///
/// # Examples
///
/// ```
/// use urk_syntax::Symbol;
///
/// let a = Symbol::intern("zipWith");
/// let b = Symbol::intern("zipWith");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "zipWith");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    names: Vec<String>,
    table: HashMap<String, u32>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            names: Vec::new(),
            table: HashMap::new(),
        })
    })
}

impl Symbol {
    /// Interns `name`, returning its canonical [`Symbol`].
    pub fn intern(name: &str) -> Symbol {
        let mut i = interner().lock().expect("symbol interner poisoned");
        if let Some(&id) = i.table.get(name) {
            return Symbol(id);
        }
        let id = u32::try_from(i.names.len()).expect("interner full");
        i.names.push(name.to_owned());
        i.table.insert(name.to_owned(), id);
        Symbol(id)
    }

    /// Returns the spelling of this symbol.
    ///
    /// The string is cloned out of the global interner; use this only on
    /// cold paths (errors, pretty-printing).
    pub fn as_str(self) -> String {
        let i = interner().lock().expect("symbol interner poisoned");
        i.names[self.0 as usize].clone()
    }

    /// A fresh symbol guaranteed not to clash with any source-level name.
    ///
    /// Fresh names contain a `$`, which the lexer rejects, so they can never
    /// be captured by user code.
    pub fn fresh(hint: &str) -> Symbol {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        Symbol::intern(&format!("${hint}{n}"))
    }

    /// True if this symbol was produced by [`Symbol::fresh`].
    pub fn is_generated(self) -> bool {
        self.as_str().starts_with('$')
    }

    /// The raw interner index, for embedders that pack symbols into tagged
    /// words. Only meaningful when round-tripped through
    /// [`Symbol::from_raw`] in the same process.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Reconstructs a symbol from [`Symbol::raw`]. The index must have come
    /// from `raw` in this process; anything else may panic on use.
    pub fn from_raw(raw: u32) -> Symbol {
        Symbol(raw)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("foo");
        let b = Symbol::intern("foo");
        let c = Symbol::intern("bar");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn round_trips_spelling() {
        let s = Symbol::intern("getException");
        assert_eq!(s.as_str(), "getException");
        assert_eq!(s.to_string(), "getException");
    }

    #[test]
    fn fresh_symbols_are_distinct_and_generated() {
        let a = Symbol::fresh("x");
        let b = Symbol::fresh("x");
        assert_ne!(a, b);
        assert!(a.is_generated());
        assert!(!Symbol::intern("x").is_generated());
    }

    #[test]
    fn symbols_order_consistently_with_identity() {
        let a = Symbol::intern("alpha-order-test-1");
        let b = Symbol::intern("alpha-order-test-2");
        assert_eq!(a.cmp(&b), a.cmp(&b));
        assert_eq!(a == b, a.cmp(&b).is_eq());
    }
}
