//! The `Exception` vocabulary shared by every layer of the system.
//!
//! The paper (§3.1) makes `Exception` an ordinary algebraic data type
//! supplied by the Prelude:
//!
//! ```text
//! data Exception = DivideByZero | Overflow | UserError String | ...
//! ```
//!
//! Inside Urk programs exceptions really are constructor values of that data
//! type (so they can be scrutinised by `case`, built by user code, passed to
//! `raise`, and returned by `getException`). This module is the *runtime
//! mirror* of that data type: the evaluators convert between the in-language
//! constructor values and [`Exception`] when crossing `raise`/`getException`.
//!
//! §5.1 extends the type with *asynchronous* exceptions (interrupts and
//! resource exhaustion); [`Exception::is_asynchronous`] distinguishes them,
//! and §4.1/§5.2 add [`Exception::NonTermination`], the extra member that
//! identifies `⊥` with the set of all exceptions.

use std::fmt;

use crate::Symbol;

/// A single exception, synchronous or asynchronous.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Exception {
    /// Integer division or modulus by zero.
    DivideByZero,
    /// Arithmetic overflow of the (bounded) integer type (§4.2's `⊕`).
    Overflow,
    /// Raised by `error s` — the paper's `UserError String` (§2.2).
    UserError(String),
    /// Inexhaustive pattern match; carries the function or `case` location.
    PatternMatchFail(String),
    /// The distinguished member that makes `⊥` the set of *all* exceptions
    /// (§4.1), also returned by detectable black holes (§5.2).
    NonTermination,
    /// Asynchronous: the user hit Ctrl-C (§5.1's `ControlC` event).
    Interrupt,
    /// Asynchronous: an external monitor decided evaluation took too long.
    Timeout,
    /// Asynchronous: evaluation-stack exhaustion.
    StackOverflow,
    /// Asynchronous: heap exhaustion.
    HeapOverflow,
    /// Asynchronous: the scheduler found this thread blocked on an `MVar`
    /// no other thread can ever fill or empty (GHC's
    /// `BlockedIndefinitelyOnMVar`, from the §4.4 concurrency extension).
    BlockedIndefinitely,
}

impl Exception {
    /// True for the §5.1 asynchronous exceptions, which arise from external
    /// events rather than from the value being evaluated, and therefore are
    /// *not* part of any expression's denotation.
    pub fn is_asynchronous(&self) -> bool {
        matches!(
            self,
            Exception::Interrupt
                | Exception::Timeout
                | Exception::StackOverflow
                | Exception::HeapOverflow
                | Exception::BlockedIndefinitely
        )
    }

    /// The in-language constructor name for this exception.
    pub fn constructor_name(&self) -> &'static str {
        match self {
            Exception::DivideByZero => "DivideByZero",
            Exception::Overflow => "Overflow",
            Exception::UserError(_) => "UserError",
            Exception::PatternMatchFail(_) => "PatternMatchFail",
            Exception::NonTermination => "NonTermination",
            Exception::Interrupt => "Interrupt",
            Exception::Timeout => "Timeout",
            Exception::StackOverflow => "StackOverflow",
            Exception::HeapOverflow => "HeapOverflow",
            Exception::BlockedIndefinitely => "BlockedIndefinitely",
        }
    }

    /// The in-language constructor name, interned.
    pub fn constructor_symbol(&self) -> Symbol {
        Symbol::intern(self.constructor_name())
    }

    /// The string payload, if this exception carries one.
    pub fn payload(&self) -> Option<&str> {
        match self {
            Exception::UserError(s) | Exception::PatternMatchFail(s) => Some(s),
            _ => None,
        }
    }

    /// Reconstructs an exception from its constructor name and optional
    /// string payload. Returns `None` for unknown constructors or a missing
    /// payload on a payload-carrying constructor.
    pub fn from_constructor(name: Symbol, payload: Option<&str>) -> Option<Exception> {
        let n = name.as_str();
        Some(match n.as_str() {
            "DivideByZero" => Exception::DivideByZero,
            "Overflow" => Exception::Overflow,
            "UserError" => Exception::UserError(payload?.to_owned()),
            "PatternMatchFail" => Exception::PatternMatchFail(payload?.to_owned()),
            "NonTermination" => Exception::NonTermination,
            "Interrupt" => Exception::Interrupt,
            "Timeout" => Exception::Timeout,
            "StackOverflow" => Exception::StackOverflow,
            "HeapOverflow" => Exception::HeapOverflow,
            "BlockedIndefinitely" => Exception::BlockedIndefinitely,
            _ => return None,
        })
    }

    /// Position of a payload-free exception within
    /// [`Exception::nullary_constructors`], or `None` for the
    /// payload-carrying constructors. The denotational layer's bitmask set
    /// representation keys its bits on this index; the array is in `Ord`
    /// order, with indices 0–1 sorting below the payload-carrying
    /// constructors and 2–7 above them.
    pub fn nullary_index(&self) -> Option<u8> {
        Some(match self {
            Exception::DivideByZero => 0,
            Exception::Overflow => 1,
            Exception::NonTermination => 2,
            Exception::Interrupt => 3,
            Exception::Timeout => 4,
            Exception::StackOverflow => 5,
            Exception::HeapOverflow => 6,
            Exception::BlockedIndefinitely => 7,
            Exception::UserError(_) | Exception::PatternMatchFail(_) => return None,
        })
    }

    /// All payload-free exception constructors, in declaration order. Used
    /// by generators in property tests.
    pub fn nullary_constructors() -> [Exception; 8] {
        [
            Exception::DivideByZero,
            Exception::Overflow,
            Exception::NonTermination,
            Exception::Interrupt,
            Exception::Timeout,
            Exception::StackOverflow,
            Exception::HeapOverflow,
            Exception::BlockedIndefinitely,
        ]
    }
}

impl fmt::Display for Exception {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Exception::UserError(s) => write!(f, "UserError {s:?}"),
            Exception::PatternMatchFail(s) => write!(f, "PatternMatchFail {s:?}"),
            other => f.write_str(other.constructor_name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn async_classification_matches_section_5_1() {
        assert!(Exception::Interrupt.is_asynchronous());
        assert!(Exception::Timeout.is_asynchronous());
        assert!(Exception::StackOverflow.is_asynchronous());
        assert!(Exception::HeapOverflow.is_asynchronous());
        assert!(!Exception::DivideByZero.is_asynchronous());
        assert!(!Exception::UserError("Urk".into()).is_asynchronous());
        assert!(!Exception::NonTermination.is_asynchronous());
    }

    #[test]
    fn constructor_round_trip() {
        let all = vec![
            Exception::DivideByZero,
            Exception::Overflow,
            Exception::UserError("Urk".into()),
            Exception::PatternMatchFail("zipWith".into()),
            Exception::NonTermination,
            Exception::Interrupt,
            Exception::Timeout,
            Exception::StackOverflow,
            Exception::HeapOverflow,
            Exception::BlockedIndefinitely,
        ];
        for e in all {
            let back =
                Exception::from_constructor(e.constructor_symbol(), e.payload()).expect("known");
            assert_eq!(back, e);
        }
    }

    #[test]
    fn unknown_constructor_is_rejected() {
        assert_eq!(
            Exception::from_constructor(Symbol::intern("Zorp"), None),
            None
        );
        // Payload-carrying constructor without a payload is also rejected.
        assert_eq!(
            Exception::from_constructor(Symbol::intern("UserError"), None),
            None
        );
    }

    #[test]
    fn nullary_index_agrees_with_the_constructor_array_and_ord() {
        for (i, e) in Exception::nullary_constructors().iter().enumerate() {
            assert_eq!(e.nullary_index(), Some(i as u8));
        }
        assert_eq!(Exception::UserError("x".into()).nullary_index(), None);
        assert_eq!(
            Exception::PatternMatchFail("f".into()).nullary_index(),
            None
        );
        // Indices 0–1 sort below the payload-carrying constructors, 2–7
        // above — the interleaving the bitmask set representation relies
        // on for in-order iteration.
        let user = Exception::UserError(String::new());
        let pmf = Exception::PatternMatchFail("\u{10FFFF}".into());
        let all = Exception::nullary_constructors();
        for e in &all[..2] {
            assert!(*e < user, "{e} should sort below payloads");
        }
        for e in &all[2..] {
            assert!(*e > pmf, "{e} should sort above payloads");
        }
        assert!(all.windows(2).all(|w| w[0] < w[1]), "array is Ord-sorted");
    }

    #[test]
    fn display_shows_payloads() {
        assert_eq!(
            Exception::UserError("Urk".into()).to_string(),
            "UserError \"Urk\""
        );
        assert_eq!(Exception::DivideByZero.to_string(), "DivideByZero");
    }
}
