//! The desugarer: surface AST → core language.
//!
//! Everything Haskell-flavoured is lowered here: multi-equation definitions
//! and nested patterns go through the match compiler, `do`-notation becomes
//! `Bind`/`Return` constructor values (§4.4 treats `IO` as an algebraic
//! data type), `if` becomes a Boolean `case`, operators become primops or
//! Prelude calls, and `raise`/`getException`/`mapException` & co. become
//! the corresponding core constructs.

use std::rc::Rc;

use crate::ast::*;
use crate::core::{Alt, CoreProgram, Expr, PrimOp};
use crate::dataenv::DataEnv;
use crate::matchc::{compile_match, DesugarError, Row, RowRhs};
use crate::Symbol;

/// What a built-in (non-Prelude, non-user) name desugars to.
enum Builtin {
    /// A primitive operation of the given arity.
    Prim(PrimOp),
    /// An `IO` constructor with the given name and arity.
    IoCon(&'static str, usize),
    /// The `raise` construct itself (arity 1).
    Raise,
}

fn builtin(name: &str) -> Option<Builtin> {
    Some(match name {
        "raise" => Builtin::Raise,
        "seq" => Builtin::Prim(PrimOp::Seq),
        "negate" => Builtin::Prim(PrimOp::Neg),
        "ord" => Builtin::Prim(PrimOp::Ord),
        "chr" => Builtin::Prim(PrimOp::Chr),
        "showInt" => Builtin::Prim(PrimOp::ShowInt),
        "strAppend" => Builtin::Prim(PrimOp::StrAppend),
        "strLen" => Builtin::Prim(PrimOp::StrLen),
        "strEq" => Builtin::Prim(PrimOp::StrEq),
        "eqChar" => Builtin::Prim(PrimOp::CharEq),
        "mapException" => Builtin::Prim(PrimOp::MapExn),
        "unsafeIsException" => Builtin::Prim(PrimOp::UnsafeIsException),
        "unsafeGetException" => Builtin::Prim(PrimOp::UnsafeGetException),
        "return" => Builtin::IoCon("Return", 1),
        "getChar" => Builtin::IoCon("GetChar", 0),
        "putChar" => Builtin::IoCon("PutChar", 1),
        "putStr" => Builtin::IoCon("PutStr", 1),
        "getException" => Builtin::IoCon("GetException", 1),
        "forkIO" => Builtin::IoCon("Fork", 1),
        "yield" => Builtin::IoCon("Yield", 0),
        "newMVar" => Builtin::IoCon("NewMVar", 1),
        "newEmptyMVar" => Builtin::IoCon("NewEmptyMVar", 0),
        "takeMVar" => Builtin::IoCon("TakeMVar", 1),
        "putMVar" => Builtin::IoCon("PutMVar", 2),
        "throwTo" => Builtin::IoCon("ThrowTo", 2),
        _ => return None,
    })
}

fn builtin_arity(b: &Builtin) -> usize {
    match b {
        Builtin::Prim(op) => op.arity(),
        Builtin::IoCon(_, n) => *n,
        Builtin::Raise => 1,
    }
}

/// Desugars a whole surface program.
///
/// `data` declarations are added to `env`; bindings become one mutually
/// recursive top-level group.
///
/// # Errors
///
/// Returns [`DesugarError`] for malformed declarations (inconsistent
/// equation arities, unknown constructors, unsaturatable constructor
/// applications, ...).
pub fn desugar_program(
    prog: &SurfaceProgram,
    env: &mut DataEnv,
) -> Result<CoreProgram, DesugarError> {
    // Pass 1: data declarations.
    for d in &prog.decls {
        if let Decl::Data(data) = d {
            env.add_data(data)
                .map_err(|e| DesugarError(e.to_string()))?;
        }
    }
    // Pass 2: bindings and signatures.
    let mut out = CoreProgram::default();
    let bindish: Vec<&Decl> = prog
        .decls
        .iter()
        .filter(|d| !matches!(d, Decl::Data(_)))
        .collect();
    desugar_bindings(&bindish, env, &mut out.binds, &mut out.sigs)?;
    Ok(out)
}

/// Desugars a single expression (REPL / test entry point).
///
/// # Errors
///
/// Returns [`DesugarError`] for unknown constructors or malformed sugar.
pub fn desugar_expr(e: &SExpr, env: &DataEnv) -> Result<Expr, DesugarError> {
    expr(e, env)
}

/// Groups adjacent equations of the same name and desugars every binding.
fn desugar_bindings(
    decls: &[&Decl],
    env: &DataEnv,
    binds: &mut Vec<(Symbol, Rc<Expr>)>,
    sigs: &mut Vec<(Symbol, SType)>,
) -> Result<(), DesugarError> {
    let mut i = 0;
    while i < decls.len() {
        match decls[i] {
            Decl::Sig(name, ty) => {
                sigs.push((*name, ty.clone()));
                i += 1;
            }
            Decl::Data(_) => {
                return Err(DesugarError(
                    "data declarations are only allowed at the top level".into(),
                ))
            }
            Decl::Bind(first) => {
                let name = first.name;
                let mut clauses = vec![first.clone()];
                i += 1;
                while i < decls.len() {
                    match decls[i] {
                        Decl::Bind(c) if c.name == name => {
                            clauses.push(c.clone());
                            i += 1;
                        }
                        _ => break,
                    }
                }
                if binds.iter().any(|(n, _)| *n == name) {
                    return Err(DesugarError(format!(
                        "multiple non-adjacent definitions of '{name}'"
                    )));
                }
                let rhs = desugar_clauses(name, &clauses, env)?;
                binds.push((name, Rc::new(rhs)));
            }
        }
    }
    Ok(())
}

/// Desugars one group of equations into a single core expression.
fn desugar_clauses(name: Symbol, clauses: &[Clause], env: &DataEnv) -> Result<Expr, DesugarError> {
    let arity = clauses[0].pats.len();
    if clauses.iter().any(|c| c.pats.len() != arity) {
        return Err(DesugarError(format!(
            "equations for '{name}' have differing numbers of arguments"
        )));
    }
    let fail = Expr::raise(Expr::con("PatternMatchFail", [Expr::str(&name.as_str())]));

    if arity == 0 {
        if clauses.len() > 1 {
            return Err(DesugarError(format!(
                "multiple equations for pattern-less binding '{name}'"
            )));
        }
        let c = &clauses[0];
        return rhs_expr(&c.rhs, &c.wheres, fail, env);
    }

    let args: Vec<Symbol> = (0..arity).map(|_| Symbol::fresh("a")).collect();
    let rows = clauses
        .iter()
        .map(|c| {
            Ok(Row {
                pats: c.pats.clone(),
                rhs: clause_rhs(&c.rhs, &c.wheres, env)?,
            })
        })
        .collect::<Result<Vec<_>, DesugarError>>()?;
    let body = compile_match(env, &args, rows, fail)?;
    Ok(Expr::lams(args, body))
}

/// Desugars a clause's rhs (with its `where` block) into a match-compiler
/// [`RowRhs`], so guard fall-through is handled by the compiler.
fn clause_rhs(rhs: &Rhs, wheres: &[Decl], env: &DataEnv) -> Result<RowRhs, DesugarError> {
    match rhs {
        Rhs::Plain(e) => Ok(RowRhs::Plain(wrap_where(expr(e, env)?, wheres, env)?)),
        Rhs::Guarded(gs) => {
            // `where` scopes over the guards as well as the bodies, so wrap
            // each compiled guard/body pair. (The match compiler sequences
            // the pairs.)
            let mut out = Vec::with_capacity(gs.len());
            for (g, e) in gs {
                out.push((
                    wrap_where(expr(g, env)?, wheres, env)?,
                    wrap_where(expr(e, env)?, wheres, env)?,
                ));
            }
            Ok(RowRhs::Guarded(out))
        }
    }
}

/// Desugars an rhs directly to an expression with an explicit guard
/// fallback (used for pattern-less bindings).
fn rhs_expr(
    rhs: &Rhs,
    wheres: &[Decl],
    fallback: Expr,
    env: &DataEnv,
) -> Result<Expr, DesugarError> {
    match rhs {
        Rhs::Plain(e) => wrap_where(expr(e, env)?, wheres, env),
        Rhs::Guarded(gs) => {
            let mut acc = fallback;
            for (g, e) in gs.iter().rev() {
                acc = Expr::case(
                    expr(g, env)?,
                    vec![
                        Alt::con("True", vec![], expr(e, env)?),
                        Alt::con("False", vec![], acc),
                    ],
                );
            }
            wrap_where(acc, wheres, env)
        }
    }
}

/// Wraps `body` in the bindings of a `where`/`let` declaration list.
fn wrap_where(body: Expr, decls: &[Decl], env: &DataEnv) -> Result<Expr, DesugarError> {
    if decls.is_empty() {
        return Ok(body);
    }
    let refs: Vec<&Decl> = decls.iter().collect();
    let mut binds = Vec::new();
    let mut sigs = Vec::new();
    desugar_bindings(&refs, env, &mut binds, &mut sigs)?;
    Ok(make_let(binds, body))
}

/// Builds `let`/`letrec` from a binding group: non-recursive groups become
/// a chain of plain `let`s (preserving the simplest form for the
/// transformation laws), recursive groups a single `letrec`.
fn make_let(binds: Vec<(Symbol, Rc<Expr>)>, body: Expr) -> Expr {
    if binds.is_empty() {
        return body;
    }
    let names: Vec<Symbol> = binds.iter().map(|(n, _)| *n).collect();
    let recursive = binds
        .iter()
        .any(|(_, rhs)| rhs.free_vars().iter().any(|v| names.contains(v)));
    if recursive {
        Expr::LetRec(binds, Rc::new(body))
    } else {
        binds
            .into_iter()
            .rev()
            .fold(body, |acc, (n, rhs)| Expr::Let(n, rhs, Rc::new(acc)))
    }
}

/// Desugars one expression.
fn expr(e: &SExpr, env: &DataEnv) -> Result<Expr, DesugarError> {
    match e {
        SExpr::Var(_) | SExpr::Con(_) | SExpr::App(_, _) => app_spine(e, env),
        SExpr::Int(n) => Ok(Expr::Int(*n)),
        SExpr::Char(c) => Ok(Expr::Char(*c)),
        SExpr::Str(s) => Ok(Expr::Str(Rc::from(s.as_str()))),
        SExpr::Lam(pats, body) => {
            let body = expr(body, env)?;
            lam_with_pats(pats, body, env)
        }
        SExpr::Let(decls, body) => {
            let body = expr(body, env)?;
            wrap_where(body, decls, env)
        }
        SExpr::Case(scrut, alts) => {
            let scrut = expr(scrut, env)?;
            let rows = alts
                .iter()
                .map(|a| {
                    Ok(Row {
                        pats: vec![a.pat.clone()],
                        rhs: clause_rhs(&a.rhs, &[], env)?,
                    })
                })
                .collect::<Result<Vec<_>, DesugarError>>()?;
            let fail = Expr::raise(Expr::con("PatternMatchFail", [Expr::str("case")]));
            // Scrutinise via a variable so the match compiler can re-test
            // it; when the compiled match uses the variable at most once,
            // substitute the scrutinee back in to keep the direct
            // `case e of ...` shape the transformation engine expects.
            if let Expr::Var(v) = scrut {
                compile_match(env, &[v], rows, fail)
            } else {
                let v = Symbol::fresh("s");
                let m = compile_match(env, &[v], rows, fail)?;
                if m.count_var(v) <= 1 {
                    Ok(m.subst(v, &scrut))
                } else {
                    Ok(Expr::let_(v, scrut, m))
                }
            }
        }
        SExpr::If(c, t, f) => Ok(Expr::case(
            expr(c, env)?,
            vec![
                Alt::con("True", vec![], expr(t, env)?),
                Alt::con("False", vec![], expr(f, env)?),
            ],
        )),
        SExpr::Do(stmts) => do_block(stmts, env),
        SExpr::BinOp(op, l, r) => binop(*op, l, r, env),
        SExpr::Neg(e) => Ok(Expr::prim(PrimOp::Neg, [expr(e, env)?])),
        SExpr::Tuple(items) => {
            let con = if items.len() == 2 { "Pair" } else { "Triple" };
            let args = items
                .iter()
                .map(|i| expr(i, env))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Expr::con(con, args))
        }
        SExpr::List(items) => {
            let mut acc = Expr::con("Nil", []);
            for i in items.iter().rev() {
                acc = Expr::con("Cons", [expr(i, env)?, acc]);
            }
            Ok(acc)
        }
        SExpr::SectionL(lhs, op) => {
            let r = Symbol::fresh("r");
            let body = binop(*op, lhs, &SExpr::Var(r), env)?;
            Ok(Expr::Lam(r, Rc::new(body)))
        }
        SExpr::SectionR(op, rhs) => {
            let l = Symbol::fresh("l");
            let body = binop(*op, &SExpr::Var(l), rhs, env)?;
            Ok(Expr::Lam(l, Rc::new(body)))
        }
        SExpr::OpSection(op) => {
            let a = Symbol::fresh("l");
            let b = Symbol::fresh("r");
            let body = binop(*op, &SExpr::Var(a), &SExpr::Var(b), env)?;
            Ok(Expr::lams([a, b], body))
        }
    }
}

/// Desugars a lambda whose parameters may be non-variable patterns.
fn lam_with_pats(pats: &[Pat], body: Expr, env: &DataEnv) -> Result<Expr, DesugarError> {
    if pats.iter().all(|p| matches!(p, Pat::Var(_))) {
        let vars = pats.iter().map(|p| match p {
            Pat::Var(v) => *v,
            _ => unreachable!(),
        });
        return Ok(Expr::lams(vars, body));
    }
    let args: Vec<Symbol> = (0..pats.len()).map(|_| Symbol::fresh("p")).collect();
    let fail = Expr::raise(Expr::con("PatternMatchFail", [Expr::str("lambda")]));
    let m = compile_match(
        env,
        &args,
        vec![Row {
            pats: pats.to_vec(),
            rhs: RowRhs::Plain(body),
        }],
        fail,
    )?;
    Ok(Expr::lams(args, m))
}

/// Desugars `do { stmts }`.
fn do_block(stmts: &[Stmt], env: &DataEnv) -> Result<Expr, DesugarError> {
    let (last, init) = stmts.split_last().expect("parser rejects empty do");
    let Stmt::Expr(last) = last else {
        return Err(DesugarError(
            "the last statement of a 'do' block must be an expression".into(),
        ));
    };
    let mut acc = expr(last, env)?;
    for s in init.iter().rev() {
        acc = match s {
            Stmt::Expr(e) => {
                // e >> acc  ==  Bind e (\_ -> acc)
                let k = Expr::lam(Symbol::fresh("u"), acc);
                Expr::con("Bind", [expr(e, env)?, k])
            }
            Stmt::Bind(p, e) => {
                let k = match p {
                    Pat::Var(v) => Expr::Lam(*v, Rc::new(acc)),
                    _ => lam_with_pats(std::slice::from_ref(p), acc, env)?,
                };
                Expr::con("Bind", [expr(e, env)?, k])
            }
            Stmt::Let(decls) => wrap_where(acc, decls, env)?,
        };
    }
    Ok(acc)
}

/// Desugars a binary operator application.
fn binop(op: Symbol, l: &SExpr, r: &SExpr, env: &DataEnv) -> Result<Expr, DesugarError> {
    let name = op.as_str();
    let prim = |p: PrimOp, l: Expr, r: Expr| Ok(Expr::prim(p, [l, r]));
    match name.as_str() {
        "+" => prim(PrimOp::Add, expr(l, env)?, expr(r, env)?),
        "-" => prim(PrimOp::Sub, expr(l, env)?, expr(r, env)?),
        "*" => prim(PrimOp::Mul, expr(l, env)?, expr(r, env)?),
        "/" => prim(PrimOp::Div, expr(l, env)?, expr(r, env)?),
        "%" => prim(PrimOp::Mod, expr(l, env)?, expr(r, env)?),
        "==" => prim(PrimOp::IntEq, expr(l, env)?, expr(r, env)?),
        "<" => prim(PrimOp::IntLt, expr(l, env)?, expr(r, env)?),
        "<=" => prim(PrimOp::IntLe, expr(l, env)?, expr(r, env)?),
        ">" => prim(PrimOp::IntGt, expr(l, env)?, expr(r, env)?),
        ">=" => prim(PrimOp::IntGe, expr(l, env)?, expr(r, env)?),
        "/=" => {
            // not (l == r)
            let eq = Expr::prim(PrimOp::IntEq, [expr(l, env)?, expr(r, env)?]);
            Ok(Expr::case(
                eq,
                vec![
                    Alt::con("True", vec![], Expr::bool(false)),
                    Alt::con("False", vec![], Expr::bool(true)),
                ],
            ))
        }
        ":" => Ok(Expr::con("Cons", [expr(l, env)?, expr(r, env)?])),
        "++" => Ok(Expr::apps(
            Expr::var("append"),
            [expr(l, env)?, expr(r, env)?],
        )),
        "&&" => Ok(Expr::case(
            expr(l, env)?,
            vec![
                Alt::con("True", vec![], expr(r, env)?),
                Alt::con("False", vec![], Expr::bool(false)),
            ],
        )),
        "||" => Ok(Expr::case(
            expr(l, env)?,
            vec![
                Alt::con("True", vec![], Expr::bool(true)),
                Alt::con("False", vec![], expr(r, env)?),
            ],
        )),
        "." => {
            // f . g  ==>  \x -> f (g x)
            let x = Symbol::fresh("x");
            let f = expr(l, env)?;
            let g = expr(r, env)?;
            Ok(Expr::lam(x, Expr::app(f, Expr::app(g, Expr::Var(x)))))
        }
        "$" => Ok(Expr::app(expr(l, env)?, expr(r, env)?)),
        ">>=" => Ok(Expr::con("Bind", [expr(l, env)?, expr(r, env)?])),
        ">>" => {
            let k = Expr::lam(Symbol::fresh("u"), expr(r, env)?);
            Ok(Expr::con("Bind", [expr(l, env)?, k]))
        }
        _ => {
            // Backtick application or an unknown operator: treat as a
            // function call `op l r`.
            app_spine(
                &SExpr::apps(SExpr::Var(op), vec![l.clone(), r.clone()]),
                env,
            )
        }
    }
}

/// Desugars an application spine `head a1 ... an`, saturating constructors,
/// primops and the IO builtins (eta-expanding when under-applied).
fn app_spine(e: &SExpr, env: &DataEnv) -> Result<Expr, DesugarError> {
    // Flatten the spine.
    let mut args = Vec::new();
    let mut head = e;
    while let SExpr::App(f, a) = head {
        args.push(&**a);
        head = f;
    }
    args.reverse();

    let mut core_args = args
        .iter()
        .map(|a| expr(a, env))
        .collect::<Result<Vec<_>, _>>()?;

    match head {
        SExpr::Con(c) => {
            let info = env
                .con(*c)
                .ok_or_else(|| DesugarError(format!("unknown constructor '{c}'")))?;
            let arity = info.arity();
            if core_args.len() > arity {
                return Err(DesugarError(format!(
                    "constructor '{c}' applied to {} arguments, expects {arity}",
                    core_args.len()
                )));
            }
            Ok(saturate_con(*c, arity, core_args))
        }
        SExpr::Var(v) => {
            if let Some(b) = builtin(&v.as_str()) {
                let arity = builtin_arity(&b);
                if core_args.len() >= arity {
                    let rest = core_args.split_off(arity);
                    let applied = apply_builtin(&b, core_args);
                    Ok(Expr::apps(applied, rest))
                } else {
                    // Eta-expand the missing arguments.
                    let missing: Vec<Symbol> = (core_args.len()..arity)
                        .map(|_| Symbol::fresh("e"))
                        .collect();
                    core_args.extend(missing.iter().map(|s| Expr::Var(*s)));
                    Ok(Expr::lams(missing, apply_builtin(&b, core_args)))
                }
            } else {
                Ok(Expr::apps(Expr::Var(*v), core_args))
            }
        }
        other => {
            let f = expr(other, env)?;
            Ok(Expr::apps(f, core_args))
        }
    }
}

/// Builds a (possibly eta-expanded) saturated constructor application.
fn saturate_con(c: Symbol, arity: usize, mut args: Vec<Expr>) -> Expr {
    if args.len() == arity {
        return Expr::con(c, args);
    }
    let missing: Vec<Symbol> = (args.len()..arity).map(|_| Symbol::fresh("c")).collect();
    args.extend(missing.iter().map(|s| Expr::Var(*s)));
    Expr::lams(missing, Expr::con(c, args))
}

fn apply_builtin(b: &Builtin, args: Vec<Expr>) -> Expr {
    match b {
        Builtin::Prim(op) => Expr::Prim(*op, args.into_iter().map(Rc::new).collect()),
        Builtin::IoCon(name, _) => Expr::con(*name, args),
        Builtin::Raise => {
            let mut args = args;
            Expr::Raise(Rc::new(args.remove(0)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr_src, parse_program};

    fn de(src: &str) -> Expr {
        let env = DataEnv::new();
        desugar_expr(&parse_expr_src(src).expect("parses"), &env).expect("desugars")
    }

    fn dp(src: &str) -> CoreProgram {
        let mut env = DataEnv::new();
        desugar_program(&parse_program(src).expect("parses"), &mut env).expect("desugars")
    }

    #[test]
    fn headline_expression_desugars_to_core() {
        let e = de(r#"(1/0) + error "Urk""#);
        match &e {
            Expr::Prim(PrimOp::Add, args) => {
                assert!(matches!(&*args[0], Expr::Prim(PrimOp::Div, _)));
                assert!(matches!(&*args[1], Expr::App(_, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn raise_is_special_cased() {
        let e = de("raise DivideByZero");
        assert!(matches!(e, Expr::Raise(_)));
        // Unapplied `raise` eta-expands.
        let e = de("raise");
        assert!(matches!(e, Expr::Lam(_, _)));
    }

    #[test]
    fn io_builtins_become_constructors() {
        assert!(
            matches!(de("getChar"), Expr::Con(c, ref a) if c.as_str() == "GetChar" && a.is_empty())
        );
        assert!(
            matches!(de("putChar 'x'"), Expr::Con(c, ref a) if c.as_str() == "PutChar" && a.len() == 1)
        );
        assert!(
            matches!(de("getException loop"), Expr::Con(c, ref a) if c.as_str() == "GetException" && a.len() == 1)
        );
        assert!(matches!(de("return 3"), Expr::Con(c, _) if c.as_str() == "Return"));
    }

    #[test]
    fn do_notation_becomes_bind_chain() {
        let e = de("do { c <- getChar; putChar c }");
        match &e {
            Expr::Con(bind, args) => {
                assert_eq!(bind.as_str(), "Bind");
                assert!(matches!(&*args[0], Expr::Con(g, _) if g.as_str() == "GetChar"));
                assert!(matches!(&*args[1], Expr::Lam(_, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn if_becomes_exhaustive_bool_case() {
        let e = de("if b then 1 else 2");
        let Expr::Case(_, alts) = &e else {
            panic!("{e:?}")
        };
        assert_eq!(alts.len(), 2);
    }

    #[test]
    fn list_literal_becomes_cons_chain() {
        let e = de("[1, 2]");
        let Expr::Con(c, args) = &e else {
            panic!("{e:?}")
        };
        assert_eq!(c.as_str(), "Cons");
        assert!(matches!(&*args[1], Expr::Con(c2, _) if c2.as_str() == "Cons"));
    }

    #[test]
    fn under_applied_constructor_eta_expands() {
        let e = de("Just");
        assert!(matches!(e, Expr::Lam(_, _)));
        let e = de("Cons 1");
        assert!(matches!(e, Expr::Lam(_, _)));
    }

    #[test]
    fn over_applied_constructor_is_rejected() {
        let env = DataEnv::new();
        let parsed = parse_expr_src("True 1").expect("parses");
        assert!(desugar_expr(&parsed, &env).is_err());
    }

    #[test]
    fn and_or_are_lazy_cases() {
        let e = de("a && b");
        let Expr::Case(_, alts) = &e else {
            panic!("{e:?}")
        };
        assert!(matches!(&*alts[1].rhs, Expr::Con(c, _) if c.as_str() == "False"));
        let e = de("a || b");
        let Expr::Case(_, alts) = &e else {
            panic!("{e:?}")
        };
        assert!(matches!(&*alts[0].rhs, Expr::Con(c, _) if c.as_str() == "True"));
    }

    #[test]
    fn multi_equation_function_compiles_to_lambda_case() {
        let p = dp("isNil [] = True\nisNil (x:xs) = False");
        assert_eq!(p.binds.len(), 1);
        let (name, body) = &p.binds[0];
        assert_eq!(name.as_str(), "isNil");
        let Expr::Lam(_, inner) = &**body else {
            panic!("{body:?}")
        };
        assert!(matches!(&**inner, Expr::Case(_, _)));
    }

    #[test]
    fn where_bindings_wrap_the_rhs() {
        let p = dp("loop = f True\n  where f x = f (not x)");
        let (_, body) = &p.binds[0];
        assert!(matches!(&**body, Expr::LetRec(_, _)));
    }

    #[test]
    fn non_recursive_let_becomes_plain_let() {
        let e = de("let x = 1 in x + x");
        assert!(matches!(e, Expr::Let(_, _, _)));
        let e = de("let f = \\x -> f x in f");
        assert!(matches!(e, Expr::LetRec(_, _)));
    }

    #[test]
    fn guards_on_nullary_binding() {
        let p = dp("classify | 1 < 2 = 1\n         | otherwise = 2");
        let (_, body) = &p.binds[0];
        assert!(matches!(&**body, Expr::Case(_, _)));
    }

    #[test]
    fn signatures_are_collected() {
        let p = dp("f :: Int -> Int\nf x = x");
        assert_eq!(p.sigs.len(), 1);
        assert_eq!(p.sigs[0].0.as_str(), "f");
    }

    #[test]
    fn dollar_is_application_and_compose_is_lambda() {
        let e = de("f $ 3");
        assert!(matches!(e, Expr::App(_, _)));
        let e = de("f . g");
        assert!(matches!(e, Expr::Lam(_, _)));
    }

    #[test]
    fn left_and_right_sections_desugar_to_lambdas() {
        let e = de("(+ 1)");
        let Expr::Lam(x, body) = &e else {
            panic!("{e:?}")
        };
        let Expr::Prim(PrimOp::Add, args) = &**body else {
            panic!()
        };
        assert!(matches!(&*args[0], Expr::Var(v) if v == x));
        assert!(matches!(&*args[1], Expr::Int(1)));

        let e2 = de("(2 *)");
        let Expr::Lam(y, body2) = &e2 else {
            panic!("{e2:?}")
        };
        let Expr::Prim(PrimOp::Mul, args2) = &**body2 else {
            panic!()
        };
        assert!(matches!(&*args2[0], Expr::Int(2)));
        assert!(matches!(&*args2[1], Expr::Var(v) if v == y));
    }

    #[test]
    fn operator_section_desugars_to_lambda() {
        let e = de("(+)");
        let Expr::Lam(_, b1) = &e else {
            panic!("{e:?}")
        };
        let Expr::Lam(_, b2) = &**b1 else { panic!() };
        assert!(matches!(&**b2, Expr::Prim(PrimOp::Add, _)));
    }

    #[test]
    fn duplicate_nonadjacent_definitions_rejected() {
        let mut env = DataEnv::new();
        let p = parse_program("f = 1\ng = 2\nf = 3").expect("parses");
        assert!(desugar_program(&p, &mut env).is_err());
    }

    #[test]
    fn case_with_guards_falls_through_rows() {
        let e = de("case n of { x | x > 0 -> 1; _ -> 0 }");
        // Shape: let s = n in ... or direct case on var n.
        match &e {
            Expr::Case(_, _) | Expr::Let(_, _, _) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn tuple_desugars_to_pair_con() {
        let e = de("(1, 'a')");
        assert!(matches!(e, Expr::Con(c, _) if c.as_str() == "Pair"));
    }
}
