//! Pretty-printing for core expressions.
//!
//! The printer produces valid surface syntax for the core sub-language
//! (explicit braces, no layout), which the round-trip property tests in
//! `tests/` rely on: `parse ∘ desugar ∘ print` is the identity up to alpha
//! renaming for core terms.

use std::fmt::Write as _;

use crate::core::{Alt, AltCon, Expr, PrimOp};
use crate::exception::Exception;

/// Renders a core expression as a string.
pub fn pretty(e: &Expr) -> String {
    let mut out = String::new();
    go(e, 0, &mut out);
    out
}

/// Renders an exception set as `{DivideByZero, UserError "Urk"}`;
/// `None` — no finite bound, the semantics' ⊥ — renders as `{ALL}`.
/// The one rendering every layer shares: the denotational `ExnSet`
/// display and the static analysis' predicted sets both delegate here.
pub fn pretty_exception_set(members: Option<&[Exception]>) -> String {
    let Some(members) = members else {
        return "{ALL}".into();
    };
    let mut out = String::from("{");
    for (i, e) in members.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{e}");
    }
    out.push('}');
    out
}

/// Precedence levels: 0 = lowest (let/lambda/case bodies), 6 = additive,
/// 7 = multiplicative, 10 = application, 11 = atoms.
fn go(e: &Expr, prec: u8, out: &mut String) {
    match e {
        Expr::Var(v) => {
            let _ = write!(out, "{v}");
        }
        Expr::Int(n) => {
            if *n < 0 && prec >= 10 {
                let _ = write!(out, "({n})");
            } else {
                let _ = write!(out, "{n}");
            }
        }
        Expr::Char(c) => {
            let _ = write!(out, "{c:?}");
        }
        Expr::Str(s) => {
            let _ = write!(out, "{s:?}");
        }
        Expr::Con(c, args) if args.is_empty() => {
            let _ = write!(out, "{c}");
        }
        Expr::Con(c, args) => paren(prec > 9, out, |out| {
            let _ = write!(out, "{c}");
            for a in args {
                out.push(' ');
                go(a, 10, out);
            }
        }),
        Expr::App(f, x) => paren(prec > 9, out, |out| {
            go(f, 9, out);
            out.push(' ');
            go(x, 10, out);
        }),
        Expr::Lam(x, b) => paren(prec > 0, out, |out| {
            let _ = write!(out, "\\{x} -> ");
            go(b, 0, out);
        }),
        Expr::Let(x, r, b) => paren(prec > 0, out, |out| {
            // Surface `let` is recursive; a non-recursive Let whose binder
            // shadows a variable free in its own right-hand side must be
            // renamed, or the text would reparse as a letrec.
            if r.free_vars().contains(x) {
                let mut avoid = r.free_vars();
                avoid.extend(b.free_vars());
                let fresh = printable_fresh(*x, &avoid);
                let b2 = b.subst(*x, &Expr::Var(fresh));
                let _ = write!(out, "let {{ {fresh} = ");
                go(r, 0, out);
                out.push_str(" } in ");
                go(&b2, 0, out);
            } else {
                let _ = write!(out, "let {{ {x} = ");
                go(r, 0, out);
                out.push_str(" } in ");
                go(b, 0, out);
            }
        }),
        Expr::LetRec(binds, b) => paren(prec > 0, out, |out| {
            out.push_str("let { ");
            for (i, (x, r)) in binds.iter().enumerate() {
                if i > 0 {
                    out.push_str("; ");
                }
                let _ = write!(out, "{x} = ");
                go(r, 0, out);
            }
            out.push_str(" } in ");
            go(b, 0, out);
        }),
        Expr::Case(s, alts) => paren(prec > 0, out, |out| {
            out.push_str("case ");
            go(s, 1, out);
            out.push_str(" of { ");
            for (i, a) in alts.iter().enumerate() {
                if i > 0 {
                    out.push_str("; ");
                }
                alt(a, out);
            }
            out.push_str(" }");
        }),
        Expr::Prim(op, args) => prim(*op, args, prec, out),
        Expr::Raise(x) => paren(prec > 9, out, |out| {
            out.push_str("raise ");
            go(x, 10, out);
        }),
    }
}

fn alt(a: &Alt, out: &mut String) {
    match &a.con {
        AltCon::Con(c) => {
            let _ = write!(out, "{c}");
            for b in &a.binders {
                let _ = write!(out, " {b}");
            }
        }
        AltCon::Int(n) => {
            let _ = write!(out, "{n}");
        }
        AltCon::Char(c) => {
            let _ = write!(out, "{c:?}");
        }
        AltCon::Str(s) => {
            let _ = write!(out, "{s:?}");
        }
        // A default alternative with a binder prints as a variable pattern
        // (which the match compiler lowers back to the same shape).
        AltCon::Default => match a.binders.first() {
            Some(b) => {
                let _ = write!(out, "{b}");
            }
            None => out.push('_'),
        },
    }
    out.push_str(" -> ");
    go(&a.rhs, 0, out);
}

fn prim(op: PrimOp, args: &[std::rc::Rc<Expr>], prec: u8, out: &mut String) {
    let infix = |op_prec: u8, name: &str, out: &mut String| {
        paren(prec > op_prec, out, |out| {
            go(&args[0], op_prec + 1, out);
            let _ = write!(out, " {name} ");
            go(&args[1], op_prec + 1, out);
        });
    };
    match op {
        PrimOp::Add => infix(6, "+", out),
        PrimOp::Sub => infix(6, "-", out),
        PrimOp::Mul => infix(7, "*", out),
        PrimOp::Div => infix(7, "/", out),
        PrimOp::Mod => infix(7, "%", out),
        PrimOp::IntEq => infix(4, "==", out),
        PrimOp::IntLt => infix(4, "<", out),
        PrimOp::IntLe => infix(4, "<=", out),
        PrimOp::IntGt => infix(4, ">", out),
        PrimOp::IntGe => infix(4, ">=", out),
        _ => paren(prec > 9, out, |out| {
            let _ = write!(out, "{}", op.name());
            for a in args {
                out.push(' ');
                go(a, 10, out);
            }
        }),
    }
}

/// A parseable variant of `base` not contained in `avoid` (primes
/// appended until distinct).
fn printable_fresh(
    base: crate::Symbol,
    avoid: &std::collections::BTreeSet<crate::Symbol>,
) -> crate::Symbol {
    let mut name = base.as_str();
    loop {
        name.push('\'');
        let s = crate::Symbol::intern(&name);
        if !avoid.contains(&s) {
            return s;
        }
    }
}

fn paren(needed: bool, out: &mut String, body: impl FnOnce(&mut String)) {
    if needed {
        out.push('(');
        body(out);
        out.push(')');
    } else {
        body(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::Alt;

    #[test]
    fn renders_the_paper_headline_expression() {
        let e = Expr::add(Expr::div(Expr::int(1), Expr::int(0)), Expr::error("Urk"));
        assert_eq!(pretty(&e), r#"1 / 0 + raise (UserError "Urk")"#);
    }

    #[test]
    fn precedence_inserts_parens_only_where_needed() {
        // (1 + 2) * 3 needs parens; 1 + 2 * 3 does not.
        let sum = Expr::add(Expr::int(1), Expr::int(2));
        let e = Expr::prim(PrimOp::Mul, [sum.clone(), Expr::int(3)]);
        assert_eq!(pretty(&e), "(1 + 2) * 3");
        let e2 = Expr::add(
            Expr::int(1),
            Expr::prim(PrimOp::Mul, [Expr::int(2), Expr::int(3)]),
        );
        assert_eq!(pretty(&e2), "1 + 2 * 3");
    }

    #[test]
    fn application_and_lambda() {
        let e = Expr::app(
            Expr::lam("x", Expr::var("x")),
            Expr::app(Expr::var("f"), Expr::int(3)),
        );
        assert_eq!(pretty(&e), r"(\x -> x) (f 3)");
    }

    #[test]
    fn case_renders_with_explicit_braces() {
        let e = Expr::case(
            Expr::var("b"),
            vec![
                Alt::con("True", vec![], Expr::int(1)),
                Alt::default(Expr::int(0)),
            ],
        );
        assert_eq!(pretty(&e), "case b of { True -> 1; _ -> 0 }");
    }

    #[test]
    fn let_renders_with_explicit_braces() {
        let e = Expr::let_("x", Expr::int(1), Expr::var("x"));
        assert_eq!(pretty(&e), "let { x = 1 } in x");
    }

    #[test]
    fn shadowing_let_binder_is_renamed_on_print() {
        // Non-recursive Let(x, x, x+1): the rhs x is the *outer* x; the
        // printed form must not look like a recursive let.
        let x = crate::Symbol::intern("x");
        let e = Expr::Let(
            x,
            std::rc::Rc::new(Expr::Var(x)),
            std::rc::Rc::new(Expr::add(Expr::Var(x), Expr::int(1))),
        );
        assert_eq!(pretty(&e), "let { x' = x } in x' + 1");
    }
}
