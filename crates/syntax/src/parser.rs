//! The parser: layout-processed tokens → surface AST.
//!
//! A hand-written recursive-descent parser with precedence climbing for
//! operators. The grammar is a pragmatic subset of Haskell 98, large enough
//! to transcribe every program in the paper: `data` declarations, optional
//! type signatures, multi-equation function definitions with nested
//! patterns and guards, `where`, `let`/`in`, `case`/`of`, `if`/`then`/
//! `else`, lambdas, `do`-notation, lists, tuples, strings, and arithmetic
//! sequences `[a .. b]`.

use crate::ast::*;
use crate::layout::layout;
use crate::lexer::lex;
use crate::token::{Pos, Spanned, Tok};
use crate::Symbol;
use std::fmt;

/// A parse error with its source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    pub pos: Pos,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Any front-end error: lexing, layout, or parsing.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SyntaxError {
    Lex(crate::lexer::LexError),
    Layout(crate::layout::LayoutError),
    Parse(ParseError),
}

impl fmt::Display for SyntaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyntaxError::Lex(e) => e.fmt(f),
            SyntaxError::Layout(e) => e.fmt(f),
            SyntaxError::Parse(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for SyntaxError {}

impl From<crate::lexer::LexError> for SyntaxError {
    fn from(e: crate::lexer::LexError) -> Self {
        SyntaxError::Lex(e)
    }
}
impl From<crate::layout::LayoutError> for SyntaxError {
    fn from(e: crate::layout::LayoutError) -> Self {
        SyntaxError::Layout(e)
    }
}
impl From<ParseError> for SyntaxError {
    fn from(e: ParseError) -> Self {
        SyntaxError::Parse(e)
    }
}

/// Parses a whole module.
///
/// # Errors
///
/// Returns the first front-end error encountered.
///
/// # Examples
///
/// ```
/// let src = "double x = x + x";
/// let prog = urk_syntax::parse_program(src)?;
/// assert_eq!(prog.decls.len(), 1);
/// # Ok::<(), urk_syntax::SyntaxError>(())
/// ```
pub fn parse_program(src: &str) -> Result<SurfaceProgram, SyntaxError> {
    let toks = layout(lex(src)?)?;
    let mut p = Parser::new(toks);
    let prog = p.program()?;
    Ok(prog)
}

/// Parses a single expression (for REPLs and tests).
///
/// # Errors
///
/// Returns the first front-end error encountered, including trailing junk
/// after the expression.
pub fn parse_expr_src(src: &str) -> Result<SExpr, SyntaxError> {
    let toks = layout(lex(src)?)?;
    let mut p = Parser::new(toks);
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

/// Operator fixity: (precedence, right-associative?).
fn fixity(op: &str) -> Option<(u8, bool)> {
    Some(match op {
        "." => (9, true),
        "*" | "/" | "%" => (7, false),
        "+" | "-" => (6, false),
        ":" | "++" => (5, true),
        "==" | "/=" | "<" | "<=" | ">" | ">=" => (4, false),
        "&&" => (3, true),
        "||" => (2, true),
        ">>" | ">>=" => (1, false),
        "$" => (0, true),
        _ => return None,
    })
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn new(toks: Vec<Spanned>) -> Parser {
        Parser { toks, pos: 0 }
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos.min(self.toks.len() - 1)].tok
    }

    fn peek_at(&self, n: usize) -> &Tok {
        &self.toks[(self.pos + n).min(self.toks.len() - 1)].tok
    }

    fn here(&self) -> Pos {
        self.toks[self.pos.min(self.toks.len() - 1)].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos.min(self.toks.len() - 1)].tok.clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            pos: self.here(),
            message: message.into(),
        })
    }

    fn expect(&mut self, t: Tok) -> Result<(), ParseError> {
        if *self.peek() == t {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected '{}', found '{}'", t, self.peek()))
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        // A trailing virtual semicolon (from a final newline) is harmless.
        while matches!(self.peek(), Tok::VSemi | Tok::Semi) {
            self.bump();
        }
        if *self.peek() == Tok::Eof {
            Ok(())
        } else {
            self.err(format!("expected end of input, found '{}'", self.peek()))
        }
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn is_op(&self, name: &str) -> bool {
        matches!(self.peek(), Tok::Op(s) if s.as_str() == name)
    }

    // ------------------------------------------------------------------
    // Declarations
    // ------------------------------------------------------------------

    fn program(&mut self) -> Result<SurfaceProgram, ParseError> {
        let mut decls = Vec::new();
        loop {
            while matches!(self.peek(), Tok::VSemi | Tok::Semi) {
                self.bump();
            }
            if *self.peek() == Tok::Eof {
                break;
            }
            decls.push(self.decl()?);
            match self.peek() {
                Tok::VSemi | Tok::Semi | Tok::Eof => {}
                other => return self.err(format!("expected end of declaration, found '{other}'")),
            }
        }
        Ok(SurfaceProgram { decls })
    }

    fn decl(&mut self) -> Result<Decl, ParseError> {
        match self.peek() {
            Tok::Data => self.data_decl().map(Decl::Data),
            Tok::Lower(_) => {
                if *self.peek_at(1) == Tok::DoubleColon {
                    let Tok::Lower(name) = self.bump() else {
                        unreachable!()
                    };
                    self.bump(); // ::
                    let ty = self.ty()?;
                    Ok(Decl::Sig(name, ty))
                } else {
                    self.fun_clause().map(Decl::Bind)
                }
            }
            other => self.err(format!("expected a declaration, found '{other}'")),
        }
    }

    fn data_decl(&mut self) -> Result<DataDecl, ParseError> {
        let pos = self.here();
        self.expect(Tok::Data)?;
        let name = self.upper_name("type constructor")?;
        let mut params = Vec::new();
        while let Tok::Lower(v) = self.peek() {
            params.push(*v);
            self.bump();
        }
        self.expect(Tok::Equals)?;
        let mut constructors = vec![self.con_decl()?];
        while *self.peek() == Tok::Pipe {
            self.bump();
            constructors.push(self.con_decl()?);
        }
        Ok(DataDecl {
            name,
            params,
            constructors,
            pos,
        })
    }

    fn con_decl(&mut self) -> Result<ConDecl, ParseError> {
        let name = self.upper_name("data constructor")?;
        let mut args = Vec::new();
        while self.starts_atype() {
            args.push(self.atype()?);
        }
        Ok(ConDecl { name, args })
    }

    fn upper_name(&mut self, what: &str) -> Result<Symbol, ParseError> {
        match self.peek() {
            Tok::Upper(s) => {
                let s = *s;
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected {what}, found '{other}'")),
        }
    }

    fn fun_clause(&mut self) -> Result<Clause, ParseError> {
        let pos = self.here();
        let Tok::Lower(name) = self.bump() else {
            return self.err("expected a function name");
        };
        let mut pats = Vec::new();
        while self.starts_apat() {
            pats.push(self.apat()?);
        }
        let rhs = self.rhs(Tok::Equals)?;
        let wheres = self.where_block()?;
        Ok(Clause {
            name,
            pats,
            rhs,
            wheres,
            pos,
        })
    }

    fn rhs(&mut self, intro: Tok) -> Result<Rhs, ParseError> {
        if *self.peek() == Tok::Pipe {
            let mut guards = Vec::new();
            while *self.peek() == Tok::Pipe {
                self.bump();
                let g = self.expr()?;
                self.expect(intro.clone())?;
                let e = self.expr()?;
                guards.push((g, e));
            }
            Ok(Rhs::Guarded(guards))
        } else {
            self.expect(intro)?;
            Ok(Rhs::Plain(self.expr()?))
        }
    }

    fn where_block(&mut self) -> Result<Vec<Decl>, ParseError> {
        if *self.peek() != Tok::Where {
            return Ok(Vec::new());
        }
        self.bump();
        self.block(|p| p.decl())
    }

    /// Parses `{ item ; item ; ... }` with either explicit or virtual
    /// delimiters.
    fn block<T>(
        &mut self,
        mut item: impl FnMut(&mut Parser) -> Result<T, ParseError>,
    ) -> Result<Vec<T>, ParseError> {
        let explicit = match self.bump() {
            Tok::LBrace => true,
            Tok::VLBrace => false,
            other => return self.err(format!("expected a block, found '{other}'")),
        };
        let close = if explicit { Tok::RBrace } else { Tok::VRBrace };
        let mut items = Vec::new();
        loop {
            while matches!(self.peek(), Tok::VSemi | Tok::Semi) {
                self.bump();
            }
            if *self.peek() == close {
                self.bump();
                return Ok(items);
            }
            items.push(item(self)?);
            match self.peek() {
                Tok::VSemi | Tok::Semi => {}
                t if *t == close => {}
                other => return self.err(format!("expected ';' or end of block, found '{other}'")),
            }
        }
    }

    // ------------------------------------------------------------------
    // Types
    // ------------------------------------------------------------------

    fn ty(&mut self) -> Result<SType, ParseError> {
        let lhs = self.btype()?;
        if *self.peek() == Tok::Arrow {
            self.bump();
            let rhs = self.ty()?;
            Ok(SType::Fun(Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn btype(&mut self) -> Result<SType, ParseError> {
        if let Tok::Upper(name) = self.peek() {
            let name = *name;
            self.bump();
            let mut args = Vec::new();
            while self.starts_atype() {
                args.push(self.atype()?);
            }
            Ok(SType::Con(name, args))
        } else {
            self.atype()
        }
    }

    fn starts_atype(&self) -> bool {
        matches!(
            self.peek(),
            Tok::Upper(_) | Tok::Lower(_) | Tok::LParen | Tok::LBracket
        )
    }

    fn atype(&mut self) -> Result<SType, ParseError> {
        match self.peek().clone() {
            Tok::Upper(name) => {
                self.bump();
                Ok(SType::Con(name, vec![]))
            }
            Tok::Lower(name) => {
                self.bump();
                Ok(SType::Var(name))
            }
            Tok::LBracket => {
                self.bump();
                let inner = self.ty()?;
                self.expect(Tok::RBracket)?;
                Ok(SType::List(Box::new(inner)))
            }
            Tok::LParen => {
                self.bump();
                if self.eat(&Tok::RParen) {
                    return Ok(SType::Con(Symbol::intern("Unit"), vec![]));
                }
                let first = self.ty()?;
                if self.eat(&Tok::Comma) {
                    let mut items = vec![first, self.ty()?];
                    while self.eat(&Tok::Comma) {
                        items.push(self.ty()?);
                    }
                    self.expect(Tok::RParen)?;
                    if items.len() > 3 {
                        return self.err("tuples are limited to 3 components");
                    }
                    Ok(SType::Tuple(items))
                } else {
                    self.expect(Tok::RParen)?;
                    Ok(first)
                }
            }
            other => self.err(format!("expected a type, found '{other}'")),
        }
    }

    // ------------------------------------------------------------------
    // Patterns
    // ------------------------------------------------------------------

    fn starts_apat(&self) -> bool {
        matches!(
            self.peek(),
            Tok::Lower(_)
                | Tok::Upper(_)
                | Tok::Underscore
                | Tok::Int(_)
                | Tok::Char(_)
                | Tok::Str(_)
                | Tok::LParen
                | Tok::LBracket
        )
    }

    /// A full pattern: constructor applications and infix cons.
    fn pat(&mut self) -> Result<Pat, ParseError> {
        let head = self.pat10()?;
        if self.is_op(":") {
            self.bump();
            let tail = self.pat()?;
            Ok(Pat::ConsInfix(Box::new(head), Box::new(tail)))
        } else {
            Ok(head)
        }
    }

    fn pat10(&mut self) -> Result<Pat, ParseError> {
        if let Tok::Upper(name) = self.peek() {
            let name = *name;
            self.bump();
            let mut args = Vec::new();
            while self.starts_apat() {
                args.push(self.apat()?);
            }
            Ok(Pat::Con(name, args))
        } else {
            self.apat()
        }
    }

    fn apat(&mut self) -> Result<Pat, ParseError> {
        match self.peek().clone() {
            Tok::Lower(v) => {
                self.bump();
                Ok(Pat::Var(v))
            }
            Tok::Underscore => {
                self.bump();
                Ok(Pat::Wild)
            }
            Tok::Int(n) => {
                self.bump();
                Ok(Pat::Int(n))
            }
            Tok::Char(c) => {
                self.bump();
                Ok(Pat::Char(c))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Pat::Str(s))
            }
            Tok::Op(o) if o.as_str() == "-" && matches!(self.peek_at(1), Tok::Int(_)) => {
                self.bump();
                let Tok::Int(n) = self.bump() else {
                    unreachable!()
                };
                Ok(Pat::Int(-n))
            }
            Tok::Upper(name) => {
                self.bump();
                Ok(Pat::Con(name, vec![]))
            }
            Tok::LParen => {
                self.bump();
                if self.eat(&Tok::RParen) {
                    return Ok(Pat::Con(Symbol::intern("Unit"), vec![]));
                }
                let first = self.pat()?;
                if self.eat(&Tok::Comma) {
                    let mut items = vec![first, self.pat()?];
                    while self.eat(&Tok::Comma) {
                        items.push(self.pat()?);
                    }
                    self.expect(Tok::RParen)?;
                    if items.len() > 3 {
                        return self.err("tuples are limited to 3 components");
                    }
                    Ok(Pat::Tuple(items))
                } else {
                    self.expect(Tok::RParen)?;
                    Ok(first)
                }
            }
            Tok::LBracket => {
                self.bump();
                let mut items = Vec::new();
                if !self.eat(&Tok::RBracket) {
                    items.push(self.pat()?);
                    while self.eat(&Tok::Comma) {
                        items.push(self.pat()?);
                    }
                    self.expect(Tok::RBracket)?;
                }
                Ok(Pat::List(items))
            }
            other => self.err(format!("expected a pattern, found '{other}'")),
        }
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    fn expr(&mut self) -> Result<SExpr, ParseError> {
        self.op_expr(0)
    }

    /// Precedence climbing over the fixity table.
    fn op_expr(&mut self, min_prec: u8) -> Result<SExpr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let (op, prec, right) = match self.peek() {
                Tok::Op(s) => {
                    match fixity(&s.as_str()) {
                        Some((p, r)) => (*s, p, r),
                        // Unknown operators (such as `..` inside a range, or
                        // a genuine typo) end the expression; the caller
                        // reports trailing junk if it was a typo.
                        None => break,
                    }
                }
                Tok::Backtick => {
                    // `f` infix application, tighter than everything except
                    // ordinary application.
                    let Tok::Lower(f) = self.peek_at(1).clone() else {
                        return self.err("expected a function name after '`'");
                    };
                    (f, 9, false)
                }
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            if let Tok::Backtick = self.peek() {
                self.bump(); // `
                self.bump(); // name
                self.expect(Tok::Backtick)?;
            } else {
                self.bump();
            }
            let next_min = if right { prec } else { prec + 1 };
            let rhs = self.op_expr(next_min)?;
            lhs = SExpr::BinOp(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<SExpr, ParseError> {
        if self.is_op("-") {
            self.bump();
            let e = self.unary()?;
            return Ok(SExpr::Neg(Box::new(e)));
        }
        self.app_expr()
    }

    fn app_expr(&mut self) -> Result<SExpr, ParseError> {
        let mut e = self.atom()?;
        while self.starts_atom() {
            let arg = self.atom()?;
            e = SExpr::App(Box::new(e), Box::new(arg));
        }
        Ok(e)
    }

    fn starts_atom(&self) -> bool {
        matches!(
            self.peek(),
            Tok::Lower(_)
                | Tok::Upper(_)
                | Tok::Int(_)
                | Tok::Char(_)
                | Tok::Str(_)
                | Tok::LParen
                | Tok::LBracket
                | Tok::Backslash
                | Tok::Let
                | Tok::Case
                | Tok::If
                | Tok::Do
        )
    }

    fn atom(&mut self) -> Result<SExpr, ParseError> {
        match self.peek().clone() {
            Tok::Lower(v) => {
                self.bump();
                Ok(SExpr::Var(v))
            }
            Tok::Upper(c) => {
                self.bump();
                Ok(SExpr::Con(c))
            }
            Tok::Int(n) => {
                self.bump();
                Ok(SExpr::Int(n))
            }
            Tok::Char(c) => {
                self.bump();
                Ok(SExpr::Char(c))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(SExpr::Str(s))
            }
            Tok::Backslash => {
                self.bump();
                let mut pats = vec![self.apat()?];
                while self.starts_apat() {
                    pats.push(self.apat()?);
                }
                self.expect(Tok::Arrow)?;
                let body = self.expr()?;
                Ok(SExpr::Lam(pats, Box::new(body)))
            }
            Tok::Let => {
                self.bump();
                let decls = self.block(|p| p.decl())?;
                self.expect(Tok::In)?;
                let body = self.expr()?;
                Ok(SExpr::Let(decls, Box::new(body)))
            }
            Tok::Case => {
                self.bump();
                let scrut = self.expr()?;
                self.expect(Tok::Of)?;
                let alts = self.block(|p| p.case_alt())?;
                Ok(SExpr::Case(Box::new(scrut), alts))
            }
            Tok::If => {
                self.bump();
                let c = self.expr()?;
                self.expect(Tok::Then)?;
                let t = self.expr()?;
                self.expect(Tok::Else)?;
                let e = self.expr()?;
                Ok(SExpr::If(Box::new(c), Box::new(t), Box::new(e)))
            }
            Tok::Do => {
                self.bump();
                let stmts = self.block(|p| p.stmt())?;
                if stmts.is_empty() {
                    return self.err("empty 'do' block");
                }
                Ok(SExpr::Do(stmts))
            }
            Tok::LParen => {
                self.bump();
                if self.eat(&Tok::RParen) {
                    return Ok(SExpr::Con(Symbol::intern("Unit")));
                }
                // `(+)` — an operator as a value; `(op e)` — a right
                // section (except unary minus, which stays negation).
                if let Tok::Op(o) = self.peek().clone() {
                    if fixity(&o.as_str()).is_some() {
                        if *self.peek_at(1) == Tok::RParen {
                            self.bump();
                            self.bump();
                            return Ok(SExpr::OpSection(o));
                        }
                        if o.as_str() != "-" {
                            self.bump();
                            let e = self.expr()?;
                            self.expect(Tok::RParen)?;
                            return Ok(SExpr::SectionR(o, Box::new(e)));
                        }
                    }
                }
                // `(e op)` — a left section; the lhs is an application
                // spine (operator-free). Backtrack if the shape is not a
                // section.
                {
                    let save = self.pos;
                    if self.starts_atom() {
                        if let Ok(lhs) = self.app_expr() {
                            if let Tok::Op(o) = self.peek().clone() {
                                if fixity(&o.as_str()).is_some() && *self.peek_at(1) == Tok::RParen
                                {
                                    self.bump();
                                    self.bump();
                                    return Ok(SExpr::SectionL(Box::new(lhs), o));
                                }
                            }
                        }
                    }
                    self.pos = save;
                }
                let first = self.expr()?;
                if self.eat(&Tok::Comma) {
                    let mut items = vec![first, self.expr()?];
                    while self.eat(&Tok::Comma) {
                        items.push(self.expr()?);
                    }
                    self.expect(Tok::RParen)?;
                    if items.len() > 3 {
                        return self.err("tuples are limited to 3 components");
                    }
                    Ok(SExpr::Tuple(items))
                } else {
                    self.expect(Tok::RParen)?;
                    Ok(first)
                }
            }
            Tok::LBracket => {
                self.bump();
                if self.eat(&Tok::RBracket) {
                    return Ok(SExpr::List(vec![]));
                }
                let first = self.expr()?;
                if self.is_op("..") {
                    self.bump();
                    let hi = self.expr()?;
                    self.expect(Tok::RBracket)?;
                    return Ok(SExpr::apps(SExpr::var("enumFromTo"), vec![first, hi]));
                }
                let mut items = vec![first];
                while self.eat(&Tok::Comma) {
                    items.push(self.expr()?);
                }
                self.expect(Tok::RBracket)?;
                Ok(SExpr::List(items))
            }
            other => self.err(format!("expected an expression, found '{other}'")),
        }
    }

    fn case_alt(&mut self) -> Result<CaseAlt, ParseError> {
        let pat = self.pat()?;
        let rhs = self.rhs(Tok::Arrow)?;
        Ok(CaseAlt { pat, rhs })
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        if *self.peek() == Tok::Let {
            self.bump();
            let decls = self.block(|p| p.decl())?;
            if self.eat(&Tok::In) {
                let body = self.expr()?;
                return Ok(Stmt::Expr(SExpr::Let(decls, Box::new(body))));
            }
            return Ok(Stmt::Let(decls));
        }
        // Try `pat <- expr`, falling back to a bare expression.
        let save = self.pos;
        if self.starts_apat() {
            if let Ok(p) = self.pat() {
                if *self.peek() == Tok::BackArrow {
                    self.bump();
                    let e = self.expr()?;
                    return Ok(Stmt::Bind(p, e));
                }
            }
        }
        self.pos = save;
        Ok(Stmt::Expr(self.expr()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expr(src: &str) -> SExpr {
        parse_expr_src(src).expect("parses")
    }

    fn program(src: &str) -> SurfaceProgram {
        parse_program(src).expect("parses")
    }

    #[test]
    fn parses_the_paper_headline_expression() {
        let e = expr(r#"getException ((1/0) + error "Urk")"#);
        // getException applied to a BinOp "+".
        match e {
            SExpr::App(f, arg) => {
                assert_eq!(*f, SExpr::var("getException"));
                match *arg {
                    SExpr::BinOp(op, _, _) => assert_eq!(op.as_str(), "+"),
                    other => panic!("expected +, got {other:?}"),
                }
            }
            other => panic!("expected application, got {other:?}"),
        }
    }

    #[test]
    fn precedence_and_associativity() {
        // 1 + 2 * 3  ==>  1 + (2 * 3)
        match expr("1 + 2 * 3") {
            SExpr::BinOp(plus, l, r) => {
                assert_eq!(plus.as_str(), "+");
                assert_eq!(*l, SExpr::Int(1));
                assert!(matches!(*r, SExpr::BinOp(_, _, _)));
            }
            other => panic!("{other:?}"),
        }
        // a - b - c  ==>  (a - b) - c (left assoc)
        match expr("a - b - c") {
            SExpr::BinOp(_, l, r) => {
                assert!(matches!(*l, SExpr::BinOp(_, _, _)));
                assert_eq!(*r, SExpr::var("c"));
            }
            other => panic!("{other:?}"),
        }
        // x : y : zs  ==>  x : (y : zs) (right assoc)
        match expr("x : y : zs") {
            SExpr::BinOp(_, l, r) => {
                assert_eq!(*l, SExpr::var("x"));
                assert!(matches!(*r, SExpr::BinOp(_, _, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn application_binds_tighter_than_operators() {
        // f x + g y  ==>  (f x) + (g y)
        match expr("f x + g y") {
            SExpr::BinOp(plus, l, r) => {
                assert_eq!(plus.as_str(), "+");
                assert!(matches!(*l, SExpr::App(_, _)));
                assert!(matches!(*r, SExpr::App(_, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn lambda_and_unary_minus() {
        let e = expr(r"\x -> -x");
        match e {
            SExpr::Lam(ps, body) => {
                assert_eq!(ps, vec![Pat::Var(Symbol::intern("x"))]);
                assert!(matches!(*body, SExpr::Neg(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn case_with_nested_patterns_and_guards() {
        let e = expr("case xs of { Cons x rest | x > 0 -> x | otherwise -> 0; Nil -> -1 }");
        match e {
            SExpr::Case(_, alts) => {
                assert_eq!(alts.len(), 2);
                assert!(matches!(alts[0].rhs, Rhs::Guarded(ref gs) if gs.len() == 2));
                assert_eq!(alts[1].pat, Pat::Con(Symbol::intern("Nil"), vec![]));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn zip_with_from_the_paper_parses() {
        let src = "zipWith f [] [] = []\n\
                   zipWith f (x:xs) (y:ys) = f x y : zipWith f xs ys\n\
                   zipWith f xs ys = error \"Unequal lists\"";
        let p = program(src);
        assert_eq!(p.decls.len(), 3);
        let Decl::Bind(c) = &p.decls[1] else {
            panic!("expected a binding");
        };
        assert_eq!(c.pats.len(), 3);
        assert!(matches!(c.pats[1], Pat::ConsInfix(_, _)));
    }

    #[test]
    fn loop_with_where_from_the_paper_parses() {
        let src = "loop = f True\n  where f x = f (not x)";
        let p = program(src);
        let Decl::Bind(c) = &p.decls[0] else {
            panic!("expected a binding")
        };
        assert_eq!(c.wheres.len(), 1);
    }

    #[test]
    fn data_declarations() {
        let src = "data Tree a = Leaf | Node (Tree a) a (Tree a)";
        let p = program(src);
        let Decl::Data(d) = &p.decls[0] else {
            panic!("expected data")
        };
        assert_eq!(d.constructors.len(), 2);
        assert_eq!(d.constructors[1].args.len(), 3);
    }

    #[test]
    fn type_signatures() {
        let src = "f :: Int -> [Int] -> (Int, Bool)\nf x ys = (x, True)";
        let p = program(src);
        let Decl::Sig(name, ty) = &p.decls[0] else {
            panic!("expected sig")
        };
        assert_eq!(name.as_str(), "f");
        assert!(matches!(ty, SType::Fun(_, _)));
    }

    #[test]
    fn do_notation_with_binds() {
        let src = "main = do\n  c <- getChar\n  putChar c\n  return ()";
        let p = program(src);
        let Decl::Bind(c) = &p.decls[0] else {
            panic!("expected bind")
        };
        let Rhs::Plain(SExpr::Do(stmts)) = &c.rhs else {
            panic!("expected do")
        };
        assert_eq!(stmts.len(), 3);
        assert!(matches!(stmts[0], Stmt::Bind(_, _)));
        assert!(matches!(stmts[1], Stmt::Expr(_)));
    }

    #[test]
    fn let_in_and_if() {
        let e = expr("let x = 1\n    y = 2 in if x < y then x else y");
        match e {
            SExpr::Let(decls, body) => {
                assert_eq!(decls.len(), 2);
                assert!(matches!(*body, SExpr::If(_, _, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn lists_tuples_sections_and_ranges() {
        assert_eq!(
            expr("[1, 2, 3]"),
            SExpr::List(vec![SExpr::Int(1), SExpr::Int(2), SExpr::Int(3)])
        );
        assert!(matches!(expr("(1, 'a')"), SExpr::Tuple(ref v) if v.len() == 2));
        assert!(matches!(expr("(+)"), SExpr::OpSection(_)));
        // [1 .. 10] becomes enumFromTo 1 10
        match expr("[1 .. 10]") {
            SExpr::App(f, _) => match *f {
                SExpr::App(g, _) => assert_eq!(*g, SExpr::var("enumFromTo")),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn operator_sections() {
        assert!(matches!(expr("(+ 1)"), SExpr::SectionR(_, _)));
        assert!(matches!(expr("(2 *)"), SExpr::SectionL(_, _)));
        assert!(matches!(expr("(< 3)"), SExpr::SectionR(_, _)));
        // (f x +) — application spine as lhs.
        assert!(matches!(expr("(f x +)"), SExpr::SectionL(_, _)));
        // Negation is not a section.
        assert!(matches!(expr("(- 3)"), SExpr::Neg(_)));
        // Plain parenthesised expressions still work.
        assert!(matches!(expr("(1 + 2)"), SExpr::BinOp(_, _, _)));
    }

    #[test]
    fn backtick_infix_application() {
        match expr("x `max` y") {
            SExpr::BinOp(f, _, _) => assert_eq!(f.as_str(), "max"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn monadic_bind_operators() {
        // getChar >>= \c -> putChar c
        match expr(r"getChar >>= \c -> putChar c") {
            SExpr::BinOp(op, _, _) => assert_eq!(op.as_str(), ">>="),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_errors_carry_positions() {
        let err = parse_expr_src("case of").expect_err("should fail");
        let SyntaxError::Parse(p) = err else {
            panic!("expected parse error")
        };
        assert_eq!(p.pos.line, 1);
    }

    #[test]
    fn unknown_operator_is_rejected() {
        assert!(parse_expr_src("a <+> b").is_err());
    }

    #[test]
    fn negative_literal_patterns() {
        let src = "sign (-1) = -1\nsign 0 = 0\nsign n = 1";
        let p = program(src);
        let Decl::Bind(c) = &p.decls[0] else { panic!() };
        assert_eq!(c.pats[0], Pat::Int(-1));
    }
}
