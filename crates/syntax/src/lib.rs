//! # urk-syntax
//!
//! The front end of **Urk**, the lazy functional language built to
//! reproduce *"A Semantics for Imprecise Exceptions"* (Peyton Jones, Reid,
//! Hoare, Marlow, Henderson — PLDI 1999).
//!
//! The crate provides:
//!
//! * a lexer, offside-rule layout processor, and recursive-descent parser
//!   for a Haskell-flavoured surface syntax rich enough to transcribe every
//!   example in the paper ([`parse_program`], [`parse_expr_src`]);
//! * the surface AST ([`ast`]) and the core language of the paper's
//!   Figure 1 ([`core`]);
//! * a desugarer and pattern-match compiler lowering surface programs onto
//!   the core ([`desugar_program`], [`desugar_expr`]);
//! * the shared [`Exception`] vocabulary (§3.1's `data Exception`), and
//! * the constructor environment ([`DataEnv`]) with the built-in types the
//!   design depends on (`Bool`, lists, `ExVal`, `Exception`, and the `IO`
//!   constructors of §4.4).
//!
//! # Examples
//!
//! Parse and desugar the paper's headline expression:
//!
//! ```
//! use urk_syntax::{parse_expr_src, desugar_expr, DataEnv, core::Expr};
//!
//! let env = DataEnv::new();
//! let surface = parse_expr_src(r#"(1/0) + error "Urk""#)?;
//! // `error` is a Prelude function; in a bare environment we can write the
//! // raise form directly:
//! let surface2 = parse_expr_src(r#"(1/0) + raise (UserError "Urk")"#)?;
//! let core = desugar_expr(&surface2, &env)?;
//! assert_eq!(urk_syntax::pretty(&core), r#"1 / 0 + raise (UserError "Urk")"#);
//! # drop(surface);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod ast;
pub mod core;
pub mod dataenv;
pub mod desugar;
pub mod exception;
pub mod fingerprint;
pub mod layout;
pub mod lexer;
pub mod matchc;
pub mod parser;
pub mod pretty;
pub mod symbol;
pub mod token;

pub use crate::dataenv::{ConInfo, DataEnv, DataEnvError, TypeInfo};
pub use crate::desugar::{desugar_expr, desugar_program};
pub use crate::exception::Exception;
pub use crate::fingerprint::{expr_canonical_bytes, expr_fingerprint, fnv1a};
pub use crate::matchc::{potential_match_failures, DesugarError};
pub use crate::parser::{parse_expr_src, parse_program, ParseError, SyntaxError};
pub use crate::pretty::{pretty, pretty_exception_set};
pub use crate::symbol::Symbol;
