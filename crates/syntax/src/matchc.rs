//! The pattern-match compiler: multi-equation definitions with nested
//! patterns and guards → core `case` trees.
//!
//! This is the classic algorithm from Wadler's chapter of *The
//! Implementation of Functional Programming Languages* (variable rule,
//! constructor rule, literal rule, mixture rule), with guard fall-through
//! compiled as nested Boolean `case`s.
//!
//! Inexhaustive matches compile to `raise (PatternMatchFail loc)` — this is
//! how the paper's `zipWith`/`head` examples acquire their exceptional
//! behaviour (§2, §3.2). When a `case` covers *all* constructors of the
//! scrutinised type, no failure alternative is generated; this matters
//! semantically, because the exception-finding mode of §4.3 unions the
//! exception sets of every alternative, and a spurious failure branch would
//! pollute the denotation.

use std::fmt;
use std::rc::Rc;

use crate::ast::Pat;
use crate::core::{Alt, AltCon, Expr};
use crate::dataenv::DataEnv;
use crate::Symbol;

/// An error produced during match compilation or desugaring.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DesugarError(pub String);

impl fmt::Display for DesugarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "desugar error: {}", self.0)
    }
}

impl std::error::Error for DesugarError {}

/// The right-hand side of one row of the match matrix. Guard conditions and
/// bodies are already-desugared core expressions whose free variables
/// include the pattern binders.
#[derive(Clone, Debug)]
pub enum RowRhs {
    Plain(Expr),
    /// `(guard, body)` pairs tried in order; if all guards fail, matching
    /// falls through to the next row.
    Guarded(Vec<(Expr, Expr)>),
}

/// One row: a list of patterns (one per scrutinee) and its right-hand side.
#[derive(Clone, Debug)]
pub struct Row {
    pub pats: Vec<Pat>,
    pub rhs: RowRhs,
}

/// A normalized pattern: surface sugar (tuples, list literals, infix cons)
/// resolved to plain constructor and literal patterns.
#[derive(Clone, Debug)]
enum NPat {
    Var(Symbol),
    Wild,
    Int(i64),
    Char(char),
    Str(String),
    Con(Symbol, Vec<NPat>),
}

fn normalize(p: &Pat) -> NPat {
    match p {
        Pat::Var(v) => NPat::Var(*v),
        Pat::Wild => NPat::Wild,
        Pat::Int(n) => NPat::Int(*n),
        Pat::Char(c) => NPat::Char(*c),
        Pat::Str(s) => NPat::Str(s.clone()),
        Pat::Con(c, ps) => NPat::Con(*c, ps.iter().map(normalize).collect()),
        Pat::Tuple(ps) => {
            let con = if ps.len() == 2 { "Pair" } else { "Triple" };
            NPat::Con(Symbol::intern(con), ps.iter().map(normalize).collect())
        }
        Pat::List(ps) => {
            let mut acc = NPat::Con(Symbol::intern("Nil"), vec![]);
            for p in ps.iter().rev() {
                acc = NPat::Con(Symbol::intern("Cons"), vec![normalize(p), acc]);
            }
            acc
        }
        Pat::ConsInfix(h, t) => NPat::Con(Symbol::intern("Cons"), vec![normalize(h), normalize(t)]),
    }
}

impl NPat {
    fn is_irrefutable(&self) -> bool {
        matches!(self, NPat::Var(_) | NPat::Wild)
    }
}

struct NRow {
    pats: Vec<NPat>,
    rhs: RowRhs,
}

/// Compiles a match matrix.
///
/// `scruts` are variables assumed bound to the values being matched (one
/// per column); `fallback` is evaluated if no row matches.
///
/// # Errors
///
/// Returns [`DesugarError`] for unknown constructors or arity mismatches.
pub fn compile_match(
    env: &DataEnv,
    scruts: &[Symbol],
    rows: Vec<Row>,
    fallback: Expr,
) -> Result<Expr, DesugarError> {
    let nrows: Vec<NRow> = rows
        .into_iter()
        .map(|r| {
            if r.pats.len() != scruts.len() {
                return Err(DesugarError(format!(
                    "equation has {} pattern(s) but expected {}",
                    r.pats.len(),
                    scruts.len()
                )));
            }
            Ok(NRow {
                pats: r.pats.iter().map(normalize).collect(),
                rhs: r.rhs,
            })
        })
        .collect::<Result<_, _>>()?;
    compile(env, scruts, nrows, fallback)
}

fn compile(
    env: &DataEnv,
    scruts: &[Symbol],
    rows: Vec<NRow>,
    fallback: Expr,
) -> Result<Expr, DesugarError> {
    if rows.is_empty() {
        return Ok(fallback);
    }
    if scruts.is_empty() {
        // All patterns matched; apply the first row's rhs, with guards
        // falling through to the remaining rows.
        let mut iter = rows.into_iter();
        let first = iter.next().expect("rows is non-empty");
        return Ok(match first.rhs {
            RowRhs::Plain(e) => e,
            RowRhs::Guarded(gs) => {
                let rest = compile(env, scruts, iter.collect(), fallback)?;
                guards_to_expr(gs, rest)
            }
        });
    }

    // Mixture rule: split off the maximal leading block of rows whose first
    // pattern has the same refutability.
    let head_irrefutable = rows[0].pats[0].is_irrefutable();
    let split = rows
        .iter()
        .position(|r| r.pats[0].is_irrefutable() != head_irrefutable)
        .unwrap_or(rows.len());
    let (block, rest): (Vec<NRow>, Vec<NRow>) = {
        let mut rows = rows;
        let rest = rows.split_off(split);
        (rows, rest)
    };
    let rest_expr = if rest.is_empty() {
        fallback
    } else {
        compile(env, scruts, rest, fallback)?
    };

    if head_irrefutable {
        // Variable rule: bind (by substitution) and drop the column.
        let scrut = scruts[0];
        let remaining = &scruts[1..];
        let rows2: Vec<NRow> = block
            .into_iter()
            .map(|mut r| {
                let first = r.pats.remove(0);
                let rhs = match first {
                    NPat::Var(x) => subst_rhs(r.rhs, x, scrut),
                    NPat::Wild => r.rhs,
                    _ => unreachable!("irrefutable block"),
                };
                NRow { pats: r.pats, rhs }
            })
            .collect();
        return compile(env, remaining, rows2, rest_expr);
    }

    // Constructor / literal rule.
    let scrut = scruts[0];
    let remaining = &scruts[1..];

    // Group rows by their leading constructor or literal, preserving first
    // occurrence order.
    let mut groups: Vec<(AltKey, Vec<NRow>)> = Vec::new();
    for r in block {
        let key = alt_key(&r.pats[0]);
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, g)) => g.push(r),
            None => groups.push((key, vec![r])),
        }
    }

    let mut alts = Vec::new();
    let mut covered_cons: Vec<Symbol> = Vec::new();
    let all_con_keys = groups.iter().all(|(k, _)| matches!(k, AltKey::Con(_)));

    for (key, group) in groups {
        match key {
            AltKey::Con(cname) => {
                let info = env
                    .con(cname)
                    .ok_or_else(|| DesugarError(format!("unknown constructor '{cname}'")))?;
                let arity = info.arity();
                covered_cons.push(cname);
                let binders: Vec<Symbol> = (0..arity).map(|_| Symbol::fresh("m")).collect();
                let mut sub_rows = Vec::new();
                for mut r in group {
                    let NPat::Con(_, args) = r.pats.remove(0) else {
                        unreachable!("constructor group")
                    };
                    if args.len() != arity {
                        return Err(DesugarError(format!(
                            "constructor '{cname}' applied to {} pattern(s), expected {arity}",
                            args.len()
                        )));
                    }
                    let mut pats = args;
                    pats.extend(r.pats);
                    sub_rows.push(NRow { pats, rhs: r.rhs });
                }
                let mut sub_scruts = binders.clone();
                sub_scruts.extend_from_slice(remaining);
                let body = compile(env, &sub_scruts, sub_rows, rest_expr.clone())?;
                alts.push(Alt {
                    con: AltCon::Con(cname),
                    binders,
                    rhs: Rc::new(body),
                });
            }
            lit_key => {
                let con = match &lit_key {
                    AltKey::Int(n) => AltCon::Int(*n),
                    AltKey::Char(c) => AltCon::Char(*c),
                    AltKey::Str(s) => AltCon::Str(Rc::from(s.as_str())),
                    AltKey::Con(_) => unreachable!(),
                };
                let mut sub_rows = Vec::new();
                for mut r in group {
                    r.pats.remove(0);
                    sub_rows.push(r);
                }
                let body = compile(env, remaining, sub_rows, rest_expr.clone())?;
                alts.push(Alt {
                    con,
                    binders: vec![],
                    rhs: Rc::new(body),
                });
            }
        }
    }

    // Omit the default alternative when the match is exhaustive over the
    // type's constructors (see module docs for why this matters).
    let exhaustive = all_con_keys
        && !covered_cons.is_empty()
        && env
            .siblings(covered_cons[0])
            .is_some_and(|sibs| sibs.iter().all(|s| covered_cons.contains(s)));
    if !exhaustive {
        alts.push(Alt::default(rest_expr));
    }

    Ok(Expr::Case(Rc::new(Expr::Var(scrut)), alts))
}

#[derive(Clone, PartialEq, Debug)]
enum AltKey {
    Con(Symbol),
    Int(i64),
    Char(char),
    Str(String),
}

fn alt_key(p: &NPat) -> AltKey {
    match p {
        NPat::Con(c, _) => AltKey::Con(*c),
        NPat::Int(n) => AltKey::Int(*n),
        NPat::Char(c) => AltKey::Char(*c),
        NPat::Str(s) => AltKey::Str(s.clone()),
        NPat::Var(_) | NPat::Wild => unreachable!("refutable block"),
    }
}

fn subst_rhs(rhs: RowRhs, var: Symbol, scrut: Symbol) -> RowRhs {
    let v = Expr::Var(scrut);
    match rhs {
        RowRhs::Plain(e) => RowRhs::Plain(e.subst(var, &v)),
        RowRhs::Guarded(gs) => RowRhs::Guarded(
            gs.into_iter()
                .map(|(g, e)| (g.subst(var, &v), e.subst(var, &v)))
                .collect(),
        ),
    }
}

/// Compiles a guard chain: `case g1 of True -> e1; False -> (case g2 ...)`.
fn guards_to_expr(gs: Vec<(Expr, Expr)>, fallback: Expr) -> Expr {
    gs.into_iter().rev().fold(fallback, |acc, (g, e)| {
        Expr::case(
            g,
            vec![Alt::con("True", vec![], e), Alt::con("False", vec![], acc)],
        )
    })
}

/// Reports the locations of potential pattern-match failures remaining in
/// a compiled expression: every residual `raise (PatternMatchFail loc)`
/// the match compiler planted. A location appearing here means the match
/// *may* fall through at runtime (guard chains that are total via
/// `otherwise` still report, as the compiler cannot see through guard
/// semantics — the same conservatism GHC's checker historically had).
pub fn potential_match_failures(e: &Expr) -> Vec<String> {
    let mut out = Vec::new();
    collect_failures(e, &mut out);
    out.sort();
    out.dedup();
    out
}

fn collect_failures(e: &Expr, out: &mut Vec<String>) {
    if let Expr::Raise(inner) = e {
        if let Expr::Con(c, args) = &**inner {
            if c.as_str() == "PatternMatchFail" {
                if let Some(Expr::Str(loc)) = args.first().map(|a| &**a) {
                    out.push(loc.to_string());
                }
            }
        }
    }
    match e {
        Expr::Var(_) | Expr::Int(_) | Expr::Char(_) | Expr::Str(_) => {}
        Expr::Con(_, args) | Expr::Prim(_, args) => {
            args.iter().for_each(|a| collect_failures(a, out))
        }
        Expr::App(f, x) => {
            collect_failures(f, out);
            collect_failures(x, out);
        }
        Expr::Lam(_, b) | Expr::Raise(b) => collect_failures(b, out),
        Expr::Let(_, r, b) => {
            collect_failures(r, out);
            collect_failures(b, out);
        }
        Expr::LetRec(binds, b) => {
            binds.iter().for_each(|(_, r)| collect_failures(r, out));
            collect_failures(b, out);
        }
        Expr::Case(s, alts) => {
            collect_failures(s, out);
            alts.iter().for_each(|a| collect_failures(&a.rhs, out));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn fallback() -> Expr {
        Expr::raise(Expr::con("PatternMatchFail", [Expr::str("test")]))
    }

    #[test]
    fn exhaustive_bool_match_has_no_default() {
        let env = DataEnv::new();
        let rows = vec![
            Row {
                pats: vec![Pat::Con(sym("True"), vec![])],
                rhs: RowRhs::Plain(Expr::int(1)),
            },
            Row {
                pats: vec![Pat::Con(sym("False"), vec![])],
                rhs: RowRhs::Plain(Expr::int(0)),
            },
        ];
        let e = compile_match(&env, &[sym("b")], rows, fallback()).expect("compiles");
        let Expr::Case(_, alts) = &e else {
            panic!("expected case, got {e:?}")
        };
        assert_eq!(alts.len(), 2);
        assert!(!alts.iter().any(|a| a.con == AltCon::Default));
    }

    #[test]
    fn inexhaustive_match_falls_back() {
        let env = DataEnv::new();
        // head (Cons x _) = x
        let rows = vec![Row {
            pats: vec![Pat::Con(sym("Cons"), vec![Pat::Var(sym("x")), Pat::Wild])],
            rhs: RowRhs::Plain(Expr::Var(sym("x"))),
        }];
        let e = compile_match(&env, &[sym("xs")], rows, fallback()).expect("compiles");
        let Expr::Case(_, alts) = &e else { panic!() };
        assert_eq!(alts.len(), 2);
        assert_eq!(alts[1].con, AltCon::Default);
        assert!(matches!(&*alts[1].rhs, Expr::Raise(_)));
    }

    #[test]
    fn variable_rule_substitutes_scrutinee() {
        let env = DataEnv::new();
        // f x = x + 1
        let rows = vec![Row {
            pats: vec![Pat::Var(sym("x"))],
            rhs: RowRhs::Plain(Expr::add(Expr::Var(sym("x")), Expr::int(1))),
        }];
        let e = compile_match(&env, &[sym("arg")], rows, fallback()).expect("compiles");
        assert!(e.alpha_eq(&Expr::add(Expr::Var(sym("arg")), Expr::int(1))));
    }

    #[test]
    fn nested_patterns_expand_to_nested_cases() {
        let env = DataEnv::new();
        // f (Just (Just x)) = x ; f _ = 0
        let rows = vec![
            Row {
                pats: vec![Pat::Con(
                    sym("Just"),
                    vec![Pat::Con(sym("Just"), vec![Pat::Var(sym("x"))])],
                )],
                rhs: RowRhs::Plain(Expr::Var(sym("x"))),
            },
            Row {
                pats: vec![Pat::Wild],
                rhs: RowRhs::Plain(Expr::int(0)),
            },
        ];
        let e = compile_match(&env, &[sym("m")], rows, fallback()).expect("compiles");
        let Expr::Case(_, alts) = &e else { panic!() };
        // Just-alternative contains an inner case.
        let just = alts
            .iter()
            .find(|a| a.con == AltCon::Con(sym("Just")))
            .expect("just");
        assert!(matches!(&*just.rhs, Expr::Case(_, _)));
    }

    #[test]
    fn literal_matches_always_get_a_default() {
        let env = DataEnv::new();
        let rows = vec![
            Row {
                pats: vec![Pat::Int(0)],
                rhs: RowRhs::Plain(Expr::int(100)),
            },
            Row {
                pats: vec![Pat::Var(sym("n"))],
                rhs: RowRhs::Plain(Expr::Var(sym("n"))),
            },
        ];
        let e = compile_match(&env, &[sym("k")], rows, fallback()).expect("compiles");
        let Expr::Case(_, alts) = &e else { panic!() };
        assert_eq!(alts[0].con, AltCon::Int(0));
        assert_eq!(alts.last().expect("alts").con, AltCon::Default);
    }

    #[test]
    fn guard_failure_falls_through_to_next_row() {
        let env = DataEnv::new();
        // f x | cond x = 1
        // f _          = 2
        let rows = vec![
            Row {
                pats: vec![Pat::Var(sym("x"))],
                rhs: RowRhs::Guarded(vec![(
                    Expr::app(Expr::var("cond"), Expr::Var(sym("x"))),
                    Expr::int(1),
                )]),
            },
            Row {
                pats: vec![Pat::Wild],
                rhs: RowRhs::Plain(Expr::int(2)),
            },
        ];
        let e = compile_match(&env, &[sym("v")], rows, fallback()).expect("compiles");
        // Shape: case cond v of True -> 1; False -> 2
        let Expr::Case(scrut, alts) = &e else {
            panic!("{e:?}")
        };
        assert!(matches!(&**scrut, Expr::App(_, _)));
        assert_eq!(alts.len(), 2);
        assert!(matches!(&*alts[1].rhs, Expr::Int(2)));
    }

    #[test]
    fn list_sugar_normalizes_to_cons_nil() {
        let env = DataEnv::new();
        // f [x] = x ; f _ = 0
        let rows = vec![
            Row {
                pats: vec![Pat::List(vec![Pat::Var(sym("x"))])],
                rhs: RowRhs::Plain(Expr::Var(sym("x"))),
            },
            Row {
                pats: vec![Pat::Wild],
                rhs: RowRhs::Plain(Expr::int(0)),
            },
        ];
        let e = compile_match(&env, &[sym("xs")], rows, fallback()).expect("compiles");
        let Expr::Case(_, alts) = &e else { panic!() };
        assert!(alts.iter().any(|a| a.con == AltCon::Con(sym("Cons"))));
    }

    #[test]
    fn unknown_constructor_is_an_error() {
        let env = DataEnv::new();
        let rows = vec![Row {
            pats: vec![Pat::Con(sym("Zorp"), vec![])],
            rhs: RowRhs::Plain(Expr::int(0)),
        }];
        assert!(compile_match(&env, &[sym("x")], rows, fallback()).is_err());
    }

    #[test]
    fn constructor_arity_mismatch_is_an_error() {
        let env = DataEnv::new();
        let rows = vec![Row {
            pats: vec![Pat::Con(sym("Just"), vec![])],
            rhs: RowRhs::Plain(Expr::int(0)),
        }];
        assert!(compile_match(&env, &[sym("x")], rows, fallback()).is_err());
    }

    #[test]
    fn potential_failures_are_reported_per_location() {
        let env = DataEnv::new();
        // head: inexhaustive.
        let rows = vec![Row {
            pats: vec![Pat::Con(sym("Cons"), vec![Pat::Var(sym("x")), Pat::Wild])],
            rhs: RowRhs::Plain(Expr::Var(sym("x"))),
        }];
        let fail = Expr::raise(Expr::con("PatternMatchFail", [Expr::str("head")]));
        let e = compile_match(&env, &[sym("xs")], rows, fail).expect("compiles");
        assert_eq!(potential_match_failures(&e), vec!["head".to_string()]);

        // An exhaustive Bool match reports nothing.
        let rows2 = vec![
            Row {
                pats: vec![Pat::Con(sym("True"), vec![])],
                rhs: RowRhs::Plain(Expr::int(1)),
            },
            Row {
                pats: vec![Pat::Con(sym("False"), vec![])],
                rhs: RowRhs::Plain(Expr::int(0)),
            },
        ];
        let fail2 = Expr::raise(Expr::con("PatternMatchFail", [Expr::str("total")]));
        let e2 = compile_match(&env, &[sym("b")], rows2, fail2).expect("compiles");
        assert!(potential_match_failures(&e2).is_empty());
    }

    #[test]
    fn zipwith_shape_three_equations() {
        let env = DataEnv::new();
        // zipWith-like: matrix over two list arguments.
        let nil = |_: ()| Pat::Con(sym("Nil"), vec![]);
        let cons =
            |h: &str, t: &str| Pat::Con(sym("Cons"), vec![Pat::Var(sym(h)), Pat::Var(sym(t))]);
        let rows = vec![
            Row {
                pats: vec![nil(()), nil(())],
                rhs: RowRhs::Plain(Expr::con("Nil", [])),
            },
            Row {
                pats: vec![cons("x", "xs"), cons("y", "ys")],
                rhs: RowRhs::Plain(Expr::int(1)),
            },
            Row {
                pats: vec![Pat::Wild, Pat::Wild],
                rhs: RowRhs::Plain(Expr::error("Unequal lists")),
            },
        ];
        let e = compile_match(&env, &[sym("as"), sym("bs")], rows, fallback()).expect("compiles");
        // Outer case on `as` with Nil, Cons alternatives (exhaustive over
        // List, so no default).
        let Expr::Case(scrut, alts) = &e else {
            panic!()
        };
        assert!(matches!(&**scrut, Expr::Var(v) if *v == sym("as")));
        assert_eq!(alts.len(), 2);
    }
}
