//! The lazy graph-reduction machine with §3.3's stack-trimming exception
//! implementation.
//!
//! One evaluation episode runs a standard eval/apply abstract machine:
//!
//! * `raise` **trims the evaluation stack** to the topmost catch mark,
//!   overwriting each in-flight thunk with `raise ex` (poisoning) on the
//!   way — re-entering such a thunk re-raises the same exception;
//! * `getException` (driven by `urk-io`) marks the stack with a
//!   catch-mark frame and evaluates its argument to WHNF;
//! * the **evaluation order of primitives is a policy**
//!   ([`OrderPolicy`]), not part of the semantics: the machine reports
//!   whichever member of the denotational exception set it happens to hit
//!   first, which is precisely the paper's "single representative" trick
//!   (§3.5);
//! * asynchronous events (§5.1) are injected from a deterministic schedule;
//!   delivery trims the stack *restoring* in-flight thunks (resumable, not
//!   poisoned);
//! * entering a black hole is a *detectable bottom* (§5.2) and raises
//!   `NonTermination` when [`BlackholeMode::Detect`] is selected.

use std::rc::Rc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use urk_syntax::core::{Alt, AltCon, Expr, PrimOp};
use urk_syntax::{Exception, Symbol};

use crate::chaos::{ChaosState, FaultPlan};
use crate::code::LinkedCode;
use crate::env::MEnv;
use crate::heap::{HValue, Heap, HeapAudit, Node, NodeId, Whnf};
use crate::interrupt::InterruptHandle;

/// In which order the machine evaluates the operands of a binary primitive.
///
/// The paper's observation (§3.5): recompiling with different optimisation
/// settings may change the evaluation order and hence the exception that
/// surfaces — while the denotation is unchanged. This policy knob plays the
/// role of "the optimiser".
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum OrderPolicy {
    #[default]
    LeftToRight,
    RightToLeft,
    /// Pseudo-random per-operation order from the given seed.
    Seeded(u64),
}

/// Which execution mode produced a result: the `Rc<Expr>` tree-walker or
/// the flat arena-indexed compiled code (see [`crate::code`]).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum Backend {
    #[default]
    Tree,
    Compiled,
}

impl Backend {
    /// The CLI/stats spelling.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Tree => "tree",
            Backend::Compiled => "compiled",
        }
    }
}

/// Which compilation tier produced the linked [`crate::Code`] image.
/// Tier 1 is the direct lowering of Core; tier 2 runs the
/// analysis-licensed superinstruction pass ([`crate::tier2_optimize`])
/// over it. Part of cache keys (a tier byte, like the backend byte) —
/// the two tiers denote the same sets but take different step/alloc
/// paths to them.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum Tier {
    #[default]
    One,
    Two,
}

impl Tier {
    /// The CLI/stats spelling.
    pub fn name(self) -> &'static str {
        match self {
            Tier::One => "1",
            Tier::Two => "2",
        }
    }
}

/// What entering a black hole does (§5.2: implementations are "permitted,
/// but not required" to detect them).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum BlackholeMode {
    /// Raise `NonTermination` — the detectable-bottom behaviour.
    #[default]
    Detect,
    /// Spin (burning steps) as a naive implementation would; the step
    /// limit eventually aborts the run.
    Loop,
}

/// Machine configuration.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    pub order: OrderPolicy,
    pub blackholes: BlackholeMode,
    /// Abort (or deliver `Timeout`) after this many steps.
    pub max_steps: u64,
    /// Deliver `StackOverflow` past this stack depth.
    pub max_stack: usize,
    /// Deliver `HeapOverflow` past this many heap nodes.
    pub max_heap: usize,
    /// When the step limit is hit, deliver an asynchronous `Timeout`
    /// exception instead of returning [`MachineError::StepLimit`].
    pub timeout_on_step_limit: bool,
    /// Asynchronous events to inject: `(at_step, exception)`, sorted by
    /// step. Events are global across episodes (steps accumulate).
    pub event_schedule: Vec<(u64, Exception)>,
    /// Run the major (mark-sweep) collector when the live node count
    /// reaches this threshold (checked periodically during evaluation).
    pub gc_threshold: usize,
    /// Nursery capacity in cells: a minor (copying) collection evacuates
    /// the nursery into the tenured space when it reaches this size. This
    /// bounds the work per minor collection; the nursery buffer itself is
    /// reused in place.
    pub nursery_size: usize,
    /// Enable the garbage collector.
    pub gc: bool,
    /// An externally shared asynchronous-exception cell. When set, the
    /// machine polls this handle every step (one relaxed atomic load) and
    /// delivers whatever a watchdog thread armed — real wall-clock
    /// cancellation, §5.1 beyond the deterministic step schedule. When
    /// unset the machine creates a private handle (reachable via
    /// [`Machine::interrupt_handle`]).
    pub interrupt: Option<InterruptHandle>,
    /// A seeded chaos fault plan (async injections, forced collections, a
    /// shrinking heap budget). `None` runs undisturbed.
    pub chaos: Option<FaultPlan>,
    /// Run the [`crate::Code::verify`] static checker on every compiled
    /// arena this machine links or extends. Always on in debug builds;
    /// this opts release builds in (the CLI's `--verify-code`). Run-only
    /// plumbing: deliberately excluded from pool cache keys, like
    /// `interrupt` and `chaos`.
    pub verify_code: bool,
    /// Record compiled-op pair coverage ([`crate::OpCoverage`]) while the
    /// compiled backend runs. Off by default: the disabled cost is one
    /// `Option` test per compiled dispatch. Run-only plumbing like
    /// `interrupt`/`chaos`/`verify_code` — never part of a cache key, and
    /// it cannot change any observable outcome or `Stats` counter.
    pub coverage: bool,
}

impl Default for MachineConfig {
    fn default() -> MachineConfig {
        MachineConfig {
            order: OrderPolicy::LeftToRight,
            blackholes: BlackholeMode::Detect,
            max_steps: 50_000_000,
            max_stack: 1_000_000,
            max_heap: 64_000_000,
            timeout_on_step_limit: false,
            event_schedule: Vec::new(),
            gc_threshold: 1_000_000,
            nursery_size: 8_192,
            gc: true,
            interrupt: None,
            chaos: None,
            verify_code: false,
            coverage: false,
        }
    }
}

/// Counters exposed for the benchmark harness and tests.
///
/// `allocations` counts heap cells allocated *during evaluation* (nursery
/// and tenured together). Small integers and nullary constructors are
/// *unboxed*: they are packed into tagged immediate `NodeId` words and
/// never touch the heap at all — those requests count in `unboxed_hits`,
/// not here. (The tagged words supersede the old interned literal pool and
/// its `interned_hits` counter.)
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    pub steps: u64,
    pub allocations: u64,
    /// Tenured allocations served by reusing a cell the major collector
    /// reclaimed (a subset of `allocations` plus evacuation copies).
    pub freelist_reuses: u64,
    /// Value requests answered with a tagged immediate word (a small
    /// integer or a nullary constructor) instead of a heap cell.
    pub unboxed_hits: u64,
    pub thunk_updates: u64,
    pub max_stack_depth: usize,
    /// Frames discarded while trimming for a raise.
    pub frames_trimmed: u64,
    /// Thunks overwritten with `raise ex` during synchronous trims (§3.3).
    pub thunks_poisoned: u64,
    /// Thunks restored (resumable) during asynchronous trims (§5.1).
    pub thunks_restored: u64,
    /// Black holes detected (§5.2).
    pub blackholes_detected: u64,
    /// Garbage collections performed (minor and major together).
    pub gc_runs: u64,
    /// Minor (copying nursery) collections (a subset of `gc_runs`).
    pub minor_gcs: u64,
    /// Major (full mark-sweep) collections (a subset of `gc_runs`).
    pub major_gcs: u64,
    /// Nodes reclaimed by the collector (both generations).
    pub gc_freed: u64,
    /// Nursery cells copied into the tenured space — by minor-collection
    /// evacuation or by tenuring an evaluation result that escapes to the
    /// embedder.
    pub nodes_promoted: u64,
    /// Asynchronous exceptions delivered from outside the step schedule
    /// (interrupt handle or chaos plan).
    pub async_injected: u64,
    /// Collections forced by a chaos plan (a subset of `gc_runs`).
    pub forced_gcs: u64,
    /// Requests answered from the serving layer's shared result cache
    /// (`urk::EvalPool`). The machine itself never sets this — a cache hit
    /// means *no* machine ran; the pool stamps the counter onto the stats
    /// it returns so hit rates are visible per result.
    pub cache_hits: u64,
    /// Requests that consulted the shared result cache and missed (also
    /// stamped by the serving layer, never by the machine).
    pub cache_misses: u64,
    /// Flat code ops emitted by the compiler for this machine's work
    /// (query-expression lowering; the serving layer additionally stamps
    /// the program's one-time compile cost on the evaluation that paid
    /// it, so pool consumers can see the amortisation).
    pub compile_ops: u64,
    /// Wall-clock microseconds spent compiling (same attribution as
    /// `compile_ops`).
    pub compile_micros: u64,
    /// Which execution mode this machine ran (`Tree` until compiled code
    /// is linked).
    pub backend: Backend,
    /// Which compilation tier the linked code image was built at (`One`
    /// until a tier-2 image is linked). Like `backend`, a mode tag: it
    /// survives [`Machine::reset_stats`].
    pub tier: Tier,
    /// Fused superinstruction executions: straight-line regions (tier-2
    /// `Fused` ops and licensed speculations) evaluated atomically inside
    /// one step, without thunk/Update/blackhole round-trips.
    pub fused_steps: u64,
    /// Tier-2 inline-cache hits: global call sites whose cached callee was
    /// still the resolved function value.
    pub ic_hits: u64,
    /// Tier-2 inline-cache misses (cold sites and callees not yet forced
    /// to a function value).
    pub ic_misses: u64,
}

/// How an evaluation episode ended.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// WHNF reached.
    Value(NodeId),
    /// An exception reached the episode's catch mark (only when the
    /// episode was started with one).
    Caught(Exception),
    /// An exception reached the bottom of the stack with no catch mark —
    /// the "uncaught exception, which the implementation should report" of
    /// §4.4.
    Uncaught(Exception),
}

/// A hard machine error (not an in-language exception).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MachineError {
    /// The step limit was reached with `timeout_on_step_limit` off.
    StepLimit,
    /// The machine panicked internally and was caught by a supervisor
    /// (`urk::Supervisor`); the payload is the panic message. The machine
    /// that produced this must be discarded — its heap may hold a
    /// half-applied transition — but the embedding session is unaffected.
    Internal(String),
}

impl std::fmt::Display for MachineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MachineError::StepLimit => f.write_str("machine step limit exceeded"),
            MachineError::Internal(msg) => write!(f, "internal machine panic: {msg}"),
        }
    }
}

impl std::error::Error for MachineError {}

enum Control {
    Eval(Rc<Expr>, MEnv),
    Enter(NodeId),
    Return(NodeId),
    Raising(Exception),
}

/// What an armed chaos plan wants done on this step (shared by both
/// backends' run loops; see [`Machine::chaos_decide`]).
pub(crate) struct ChaosDecision {
    pub(crate) force_gc: bool,
    pub(crate) force_minor: bool,
    pub(crate) inject: Option<Exception>,
    pub(crate) cap: Option<usize>,
}

/// A strict primitive's outcome, independent of the executor's control
/// representation.
pub(crate) enum PrimResult {
    Value(NodeId),
    Raise(Exception),
}

enum Frame {
    /// Update this thunk with the result.
    Update(NodeId),
    /// Apply the result to this argument.
    Apply(NodeId),
    /// Scrutinise the result with the alternatives of this `Case`
    /// expression (kept whole so no per-`case` copy of the alternatives is
    /// made).
    Select { case: Rc<Expr>, env: MEnv },
    /// A binary/unary strict primitive collecting its operands. Primops
    /// have at most two operands, so the frame is fixed-size — no
    /// per-evaluation vectors.
    PrimArgs {
        op: PrimOp,
        env: MEnv,
        /// Operand position the result on top of the stack fills.
        current: u8,
        /// The not-yet-evaluated operand (position, expression), if any.
        pending: Option<(u8, Rc<Expr>)>,
        /// Evaluated operands by position.
        results: [Option<NodeId>; 2],
    },
    /// `seq`: discard the result, then evaluate this.
    SeqSecond { expr: Rc<Expr>, env: MEnv },
    /// Convert the returned `Exception` constructor value and raise it.
    RaiseEval,
    /// The payload of this exception constructor is being forced.
    RaisePayload { con: Symbol },
    /// `unsafeIsException`: a value means `False`, a synchronous raise
    /// means `True`.
    IsExnCatch,
    /// §6's `unsafeGetException`: a value means `OK v`, a synchronous
    /// raise means `Bad e` — purely, with the proof obligation.
    UnsafeGetExnCatch,
    /// `mapException f`: a synchronous raise is rewritten through `f`.
    MapExnCatch { f: Rc<Expr>, env: MEnv },
    /// A `getException` catch mark (the episode boundary for handlers).
    Catch,
}

/// The graph-reduction machine. The heap persists across episodes, so the
/// IO layer can keep the program graph (and partial evaluations) alive
/// between actions.
pub struct Machine {
    pub config: MachineConfig,
    pub(crate) heap: Heap,
    pub(crate) stats: Stats,
    pub(crate) rng: SmallRng,
    pub(crate) next_event: usize,
    /// The watchdog deadline: when `timeout_on_step_limit` is set, a
    /// `Timeout` is delivered at this step count and the watchdog re-arms
    /// (deadline += max_steps), like a real external monitor.
    pub(crate) next_timeout_at: u64,
    /// Registered roots: nodes the embedder still needs across GC (the
    /// top-level program environment, the IO runner's continuations, ...).
    pub(crate) roots: Vec<NodeId>,
    /// The major collector re-arms at this live count (grows if a
    /// collection fails to get below the configured threshold).
    pub(crate) next_gc_at: usize,
    /// The tagged immediate words for `True`/`False`, cached because
    /// `Symbol::intern` takes a global lock.
    pub(crate) true_node: NodeId,
    pub(crate) false_node: NodeId,
    /// The wall-clock asynchronous delivery cell, polled every step.
    pub(crate) interrupt: InterruptHandle,
    /// Progress through the chaos fault plan, if one is armed.
    pub(crate) chaos: Option<ChaosState>,
    /// The linked compiled program + query extension, once
    /// [`Machine::link_code`] has run (the compiled backend's state).
    pub(crate) code: Option<LinkedCode>,
    /// The op-pair coverage map, when [`MachineConfig::coverage`] is on.
    /// Boxed so the disabled case costs one word in the machine.
    pub(crate) coverage: Option<Box<crate::coverage::OpCoverage>>,
    /// Tier-2 monomorphic inline caches, one slot per `AppG` call site in
    /// the linked image (sized by [`Machine::link_code`], so a relink —
    /// which panics — trivially invalidates them). Each entry caches the
    /// *resolved* callee node once it is a function value; minor
    /// collections rewrite the entries (cached nodes may live in the
    /// nursery) and major collections mark them.
    pub(crate) ics: Vec<Option<NodeId>>,
}

impl Machine {
    /// Creates a machine.
    pub fn new(config: MachineConfig) -> Machine {
        let seed = match config.order {
            OrderPolicy::Seeded(s) => s,
            _ => 0,
        };
        let next_timeout_at = config.max_steps;
        let next_gc_at = config.gc_threshold;
        let heap = Heap::new();
        let true_node =
            NodeId::imm_con(Symbol::intern("True")).expect("interner index fits a tagged word");
        let false_node =
            NodeId::imm_con(Symbol::intern("False")).expect("interner index fits a tagged word");
        let interrupt = config.interrupt.clone().unwrap_or_default();
        let chaos = config.chaos.clone().map(ChaosState::new);
        let coverage = config
            .coverage
            .then(|| Box::new(crate::coverage::OpCoverage::new()));
        Machine {
            config,
            heap,
            stats: Stats::default(),
            rng: SmallRng::seed_from_u64(seed),
            next_event: 0,
            next_timeout_at,
            roots: Vec::new(),
            next_gc_at,
            true_node,
            false_node,
            interrupt,
            chaos,
            code: None,
            coverage,
            ics: Vec::new(),
        }
    }

    /// The machine's asynchronous delivery cell. Clone it into a watchdog
    /// thread (the handle is `Send + Sync`) and call
    /// [`InterruptHandle::deliver`] to cancel the current evaluation at a
    /// wall-clock deadline; the machine observes it within one step.
    pub fn interrupt_handle(&self) -> InterruptHandle {
        self.interrupt.clone()
    }

    /// Disarms the chaos plan (if any): no further injections, forced
    /// collections, or budget caps. The differential driver calls this
    /// before the post-fault re-evaluation, which must agree with the
    /// undisturbed oracle.
    pub fn disarm_chaos(&mut self) {
        self.chaos = None;
    }

    /// Audits the heap for post-episode consistency — see
    /// [`HeapAudit`]. Between episodes no black hole may survive: every
    /// thunk that was in flight when an exception trimmed the stack must
    /// have been restored (asynchronous, §5.1) or poisoned (synchronous,
    /// §3.3). A stranded black hole would make the machine unsafe to reuse
    /// (re-entering it misreports `NonTermination`).
    pub fn audit_heap(&self) -> HeapAudit {
        self.heap.audit()
    }

    /// The op-pair coverage map, when [`MachineConfig::coverage`] armed
    /// one. Call [`crate::OpCoverage::end_episode`] (or
    /// [`Machine::end_coverage_episode`]) between episodes so edges never
    /// pair ops across an episode boundary.
    pub fn coverage(&self) -> Option<&crate::coverage::OpCoverage> {
        self.coverage.as_deref()
    }

    /// Mutable access to the coverage map (to `clear` it between fuzz
    /// candidates without rebuilding the machine).
    pub fn coverage_mut(&mut self) -> Option<&mut crate::coverage::OpCoverage> {
        self.coverage.as_deref_mut()
    }

    /// Resets the coverage edge cursor at an episode boundary.
    pub fn end_coverage_episode(&mut self) {
        if let Some(cov) = self.coverage.as_deref_mut() {
            cov.end_episode();
        }
    }

    /// The node for an integer value: a tagged immediate word for the
    /// 30-bit range (no allocation at all), a boxed nursery cell otherwise.
    pub(crate) fn int_node(&mut self, n: i64) -> NodeId {
        match NodeId::imm_int(n) {
            Some(id) => {
                self.stats.unboxed_hits += 1;
                id
            }
            None => self.alloc_value(HValue::Int(n)),
        }
    }

    /// The tagged immediate for `True`/`False`.
    pub(crate) fn bool_node(&mut self, b: bool) -> NodeId {
        self.stats.unboxed_hits += 1;
        if b {
            self.true_node
        } else {
            self.false_node
        }
    }

    /// The node for a zero-field constructor value: a tagged immediate
    /// word (the symbol's interner index is the payload), boxed only in
    /// the astronomically unlikely case the index overflows the payload.
    pub(crate) fn nullary_con_node(&mut self, c: Symbol) -> NodeId {
        match NodeId::imm_con(c) {
            Some(id) => {
                self.stats.unboxed_hits += 1;
                id
            }
            None => self.alloc_value(HValue::Con(c, vec![])),
        }
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Resets counters (the heap is kept, and so are the backend and tier
    /// tags — they describe the machine's mode, not one episode's work).
    pub fn reset_stats(&mut self) {
        self.stats = Stats {
            backend: self.stats.backend,
            tier: self.stats.tier,
            ..Stats::default()
        };
    }

    /// Read-only access to the heap.
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Registers a node as a GC root (stack discipline with
    /// [`Machine::pop_root`]) and returns its index in the root stack.
    /// The top-level program environment and any node the embedder holds
    /// across evaluations must be rooted. Minor collections *rewrite*
    /// registered roots in place (the nursery is a copying space), so an
    /// embedder that holds a rooted node across evaluations must re-read
    /// it through [`Machine::root`] with the returned index.
    pub fn push_root(&mut self, id: NodeId) -> usize {
        self.roots.push(id);
        self.roots.len() - 1
    }

    /// The current id of the registered root at `idx` (see
    /// [`Machine::push_root`] for why ids must be re-read).
    pub fn root(&self, idx: usize) -> NodeId {
        self.roots[idx]
    }

    /// Replaces the registered root at `idx` (the IO runner steers its
    /// continuation roots through this instead of popping and re-pushing).
    pub fn set_root(&mut self, idx: usize, id: NodeId) {
        self.roots[idx] = id;
    }

    /// Unregisters the most recently pushed root.
    pub fn pop_root(&mut self) -> Option<NodeId> {
        self.roots.pop()
    }

    /// Runs a full collection now (minor evacuation, then a major
    /// mark-sweep) with the registered roots plus `extra`. Returns the
    /// number of cells reclaimed across both generations.
    ///
    /// Registered roots are rewritten in place; the caller's copies of
    /// `extra` are kept *alive* but nursery ids among them are not
    /// rewritten — hold evaluation results (always tenured or immediate)
    /// across this call, not raw nursery ids.
    pub fn collect_with(&mut self, extra: &[NodeId]) -> u64 {
        let reuses_before = self.heap.reuses();
        let mut extras: Vec<NodeId> = extra.to_vec();
        let Machine {
            heap, roots, ics, ..
        } = self;
        let outcome = heap.collect_minor(&mut |f| {
            for r in roots.iter_mut() {
                *r = f(*r);
            }
            for r in extras.iter_mut() {
                *r = f(*r);
            }
            for slot in ics.iter_mut().flatten() {
                *slot = f(*slot);
            }
        });
        self.stats.minor_gcs += 1;
        self.stats.gc_runs += 1;
        self.stats.nodes_promoted += outcome.promoted;
        self.stats.freelist_reuses += self.heap.reuses() - reuses_before;
        let mut c = crate::gc::Collector::new(self.heap.tenured_len());
        for r in self.roots.iter().chain(&extras) {
            c.mark_root(*r);
        }
        for slot in self.ics.iter().flatten() {
            c.mark_root(*slot);
        }
        c.trace(&self.heap);
        let prev_free = self.heap.free_list();
        let (freed, head) = c.sweep(&mut self.heap, prev_free);
        self.heap.set_free_list(head, freed);
        self.stats.gc_runs += 1;
        self.stats.major_gcs += 1;
        self.stats.gc_freed += freed + outcome.freed;
        freed + outcome.freed
    }

    /// A minor collection mid-run: evacuates the live nursery into the
    /// tenured space, rewriting every root the run loop holds — the
    /// registered roots, the current control, and every stack frame.
    fn minor_collect(&mut self, control: &mut Control, stack: &mut [Frame]) {
        let reuses_before = self.heap.reuses();
        let Machine {
            heap, roots, ics, ..
        } = self;
        let outcome = heap.collect_minor(&mut |f| {
            for r in roots.iter_mut() {
                *r = f(*r);
            }
            for slot in ics.iter_mut().flatten() {
                *slot = f(*slot);
            }
            rewrite_control(control, f);
            for frame in stack.iter_mut() {
                rewrite_frame(frame, f);
            }
        });
        self.stats.minor_gcs += 1;
        self.stats.gc_runs += 1;
        self.stats.nodes_promoted += outcome.promoted;
        self.stats.gc_freed += outcome.freed;
        self.stats.freelist_reuses += self.heap.reuses() - reuses_before;
    }

    /// A major collection mid-run: evacuates the nursery first (so every
    /// live reference is immediate or tenured), then marks the transient
    /// roots of the current control and stack plus the registered roots
    /// and sweeps the tenured arena.
    fn collect_during_run(&mut self, control: &mut Control, stack: &mut [Frame]) {
        self.minor_collect(control, stack);
        let mut c = crate::gc::Collector::new(self.heap.tenured_len());
        match &*control {
            Control::Eval(_, env) => c.mark_env(env),
            Control::Enter(n) | Control::Return(n) => c.mark_root(*n),
            Control::Raising(_) => {}
        }
        for f in stack.iter() {
            match f {
                Frame::Update(n) | Frame::Apply(n) => c.mark_root(*n),
                Frame::Select { env, .. }
                | Frame::SeqSecond { env, .. }
                | Frame::MapExnCatch { env, .. } => c.mark_env(env),
                Frame::PrimArgs { env, results, .. } => {
                    c.mark_env(env);
                    for r in results.iter().flatten() {
                        c.mark_root(*r);
                    }
                }
                Frame::RaiseEval
                | Frame::RaisePayload { .. }
                | Frame::IsExnCatch
                | Frame::UnsafeGetExnCatch
                | Frame::Catch => {}
            }
        }
        for r in &self.roots {
            c.mark_root(*r);
        }
        for slot in self.ics.iter().flatten() {
            c.mark_root(*slot);
        }
        c.trace(&self.heap);
        let prev_free = self.heap.free_list();
        let (freed, head) = c.sweep(&mut self.heap, prev_free);
        self.heap.set_free_list(head, freed);
        self.stats.gc_runs += 1;
        self.stats.major_gcs += 1;
        self.stats.gc_freed += freed;
        // Re-arm: if the collection did not reclaim much, back off so we
        // do not thrash.
        let live = self.heap.live();
        self.next_gc_at = (live + live / 2).max(self.config.gc_threshold);
    }

    /// Allocates a thunk for `expr` — except that variables reuse their
    /// bound node (preserving sharing) and literals go straight to a WHNF
    /// value (a tagged immediate where possible), skipping the
    /// thunk/update round trip entirely.
    ///
    /// Public entry point for embedders: anything allocated is *tenured*,
    /// so the returned id stays valid across collections (nursery cells
    /// move). The run loop's internal allocations use the nursery variant.
    pub fn alloc_expr(&mut self, expr: &Rc<Expr>, env: &MEnv) -> NodeId {
        let id = self.alloc_expr_nursery(expr, env);
        self.tenure_result(id)
    }

    /// The run loop's allocator for `alloc_expr`: fresh cells go to the
    /// bump-allocated nursery (ids are rewritten by minor collections, so
    /// only the run loop — whose roots the collector rewrites — may hold
    /// them).
    pub(crate) fn alloc_expr_nursery(&mut self, expr: &Rc<Expr>, env: &MEnv) -> NodeId {
        match &**expr {
            Expr::Var(v) => {
                if let Some(n) = env.lookup(*v) {
                    return n;
                }
                panic!("unbound variable '{v}' while allocating a thunk");
            }
            Expr::Int(n) => self.int_node(*n),
            Expr::Char(c) => self.alloc_value(HValue::Char(*c)),
            Expr::Str(s) => self.alloc_value(HValue::Str(s.clone())),
            Expr::Con(c, args) if args.is_empty() => self.nullary_con_node(*c),
            _ => self.alloc(Node::Thunk {
                expr: expr.clone(),
                env: env.clone(),
            }),
        }
    }

    /// Allocates a WHNF value node (used by the IO layer to feed results
    /// back into the graph). Tenured: the caller holds the id across
    /// evaluations.
    pub fn alloc_hvalue(&mut self, v: HValue) -> NodeId {
        self.alloc_tenured(Node::Value(v))
    }

    /// Allocates an explicit thunk node. Tenured, like
    /// [`Machine::alloc_hvalue`].
    pub fn alloc_thunk(&mut self, expr: Rc<Expr>, env: MEnv) -> NodeId {
        self.alloc_tenured(Node::Thunk { expr, env })
    }

    /// Overwrites a node (resolving indirections first) with a new WHNF
    /// value — the mutation primitive behind `MVar`s.
    pub fn overwrite_hvalue(&mut self, id: NodeId, v: HValue) {
        let id = self.heap.resolve(id);
        self.heap.set(id, Node::Value(v));
    }

    /// Resolves indirections to the representative node.
    pub fn resolve_node(&self, id: NodeId) -> NodeId {
        self.heap.resolve(id)
    }

    /// A nursery (bump) allocation — run-loop internal only.
    pub(crate) fn alloc(&mut self, node: Node) -> NodeId {
        self.stats.allocations += 1;
        self.heap.alloc(node)
    }

    /// A tenured allocation — for cells the embedder holds across
    /// evaluations (ids are stable; nursery ids move).
    pub(crate) fn alloc_tenured(&mut self, node: Node) -> NodeId {
        self.stats.allocations += 1;
        let before = self.heap.reuses();
        let id = self.heap.alloc_tenured(node);
        self.stats.freelist_reuses += self.heap.reuses() - before;
        id
    }

    pub(crate) fn alloc_value(&mut self, v: HValue) -> NodeId {
        self.alloc(Node::Value(v))
    }

    /// Resolves `id` to a stable handle: immediates and tenured ids pass
    /// through; a nursery representative is copied into the tenured space
    /// (leaving an indirection behind, so sharing is preserved). Every
    /// evaluation result returned to an embedder goes through this.
    pub(crate) fn tenure_result(&mut self, id: NodeId) -> NodeId {
        let r = self.heap.resolve(id);
        if !r.is_nursery() {
            return r;
        }
        self.stats.nodes_promoted += 1;
        let before = self.heap.reuses();
        let t = self.heap.promote(r);
        self.stats.freelist_reuses += self.heap.reuses() - before;
        t
    }

    pub(crate) fn tenure_outcome(&mut self, outcome: Outcome) -> Outcome {
        match outcome {
            Outcome::Value(id) => Outcome::Value(self.tenure_result(id)),
            other => other,
        }
    }

    /// Ties the knot for a recursive binding group at the *top level*,
    /// registering the bound nodes as GC roots, and returns the extended
    /// environment. The thunks are tenured: the returned environment is
    /// held by the embedder, and its entries must survive minor
    /// collections unmoved.
    pub fn bind_recursive(&mut self, binds: &[(Symbol, Rc<Expr>)], env: &MEnv) -> MEnv {
        let env2 = self.bind_recursive_with(binds, env, true);
        env2.for_each_node(|n| {
            self.roots.push(n);
        });
        env2
    }

    /// Ties the knot for a `letrec` group without rooting (the bindings
    /// are reachable from the enclosing environment); the run loop's
    /// nursery-allocating path.
    fn bind_recursive_inner(&mut self, binds: &[(Symbol, Rc<Expr>)], env: &MEnv) -> MEnv {
        self.bind_recursive_with(binds, env, false)
    }

    fn bind_recursive_with(
        &mut self,
        binds: &[(Symbol, Rc<Expr>)],
        env: &MEnv,
        tenured: bool,
    ) -> MEnv {
        let nodes: Vec<NodeId> = binds
            .iter()
            .map(|(_, rhs)| {
                let node = Node::Thunk {
                    expr: rhs.clone(),
                    env: MEnv::empty(),
                };
                if tenured {
                    self.alloc_tenured(node)
                } else {
                    self.alloc(node)
                }
            })
            .collect();
        let mut env2 = env.clone();
        for ((name, _), n) in binds.iter().zip(&nodes) {
            env2 = env2.bind(*name, *n);
        }
        for ((_, rhs), n) in binds.iter().zip(&nodes) {
            self.heap.set(
                *n,
                Node::Thunk {
                    expr: rhs.clone(),
                    env: env2.clone(),
                },
            );
        }
        env2
    }

    /// Evaluates `expr` to WHNF in one episode. With `catch`, a catch mark
    /// is planted at the base of the stack (this is `getException`'s mode).
    pub fn eval(
        &mut self,
        expr: Rc<Expr>,
        env: &MEnv,
        catch: bool,
    ) -> Result<Outcome, MachineError> {
        self.run(Control::Eval(expr, env.clone()), catch)
    }

    /// Forces an existing node to WHNF. Compiled suspensions are routed to
    /// the compiled run loop, so rendering a constructor whose fields were
    /// built by either backend just works.
    pub fn eval_node(&mut self, node: NodeId, catch: bool) -> Result<Outcome, MachineError> {
        let r = self.heap.resolve(node);
        if r.is_imm() {
            // Tagged immediates are already WHNF — nothing to run.
            return Ok(Outcome::Value(r));
        }
        if matches!(
            self.heap.get(r),
            Node::CThunk { .. } | Node::CBlackhole { .. }
        ) {
            return self.enter_compiled(node, catch);
        }
        self.run(Control::Enter(node), catch)
    }

    fn run(&mut self, mut control: Control, catch: bool) -> Result<Outcome, MachineError> {
        let mut stack: Vec<Frame> = Vec::with_capacity(64);
        if catch {
            stack.push(Frame::Catch);
        }
        loop {
            // --- step accounting, limits, and asynchronous events -------
            self.stats.steps += 1;
            if stack.len() > self.stats.max_stack_depth {
                self.stats.max_stack_depth = stack.len();
            }
            if let Some((at, exn)) = self.config.event_schedule.get(self.next_event) {
                if self.stats.steps >= *at && !matches!(control, Control::Raising(_)) {
                    self.next_event += 1;
                    // §5.1: "v might not be an exceptional value ... but
                    // getException is nevertheless free to discard v and
                    // return the asynchronous exception instead."
                    control = Control::Raising(exn.clone());
                }
            }
            // Wall-clock asynchronous delivery: one relaxed load per step;
            // an armed handle stays pending across a trim in progress and
            // is taken on the first non-raising step.
            if self.interrupt.is_pending() && !matches!(control, Control::Raising(_)) {
                if let Some(exn) = self.interrupt.take() {
                    self.stats.async_injected += 1;
                    control = Control::Raising(exn);
                }
            }
            if self.chaos.is_some() {
                if let Some(next) = self.chaos_tick(&mut control, &mut stack) {
                    control = next;
                }
            }
            if self.stats.steps >= self.next_timeout_at {
                if self.config.timeout_on_step_limit {
                    // Deliver Timeout and re-arm the watchdog.
                    self.next_timeout_at = self.stats.steps + self.config.max_steps;
                    if !matches!(control, Control::Raising(ref e) if e.is_asynchronous()) {
                        control = Control::Raising(Exception::Timeout);
                    }
                } else {
                    return Err(MachineError::StepLimit);
                }
            }
            if stack.len() >= self.config.max_stack && !matches!(control, Control::Raising(_)) {
                control = Control::Raising(Exception::StackOverflow);
            }
            if self.config.gc {
                if self.heap.nursery_len() >= self.config.nursery_size {
                    self.minor_collect(&mut control, &mut stack);
                }
                if self.heap.live() >= self.next_gc_at && self.heap.live() < self.config.max_heap {
                    self.collect_during_run(&mut control, &mut stack);
                }
            }
            if self.heap.live() >= self.config.max_heap && !matches!(control, Control::Raising(_)) {
                control = Control::Raising(Exception::HeapOverflow);
            }

            // --- the transition function --------------------------------
            control = match control {
                Control::Eval(expr, env) => self.step_eval(expr, env, &mut stack),
                Control::Enter(node) => self.step_enter(node, &mut stack),
                Control::Return(node) => match self.step_return(node, &mut stack) {
                    StepResult::Continue(c) => c,
                    StepResult::Done(outcome) => return Ok(self.tenure_outcome(outcome)),
                },
                Control::Raising(exn) => match self.step_raise(exn, &mut stack) {
                    StepResult::Continue(c) => c,
                    StepResult::Done(outcome) => return Ok(self.tenure_outcome(outcome)),
                },
            };
        }
    }

    /// One step of the armed chaos plan: deliver at most one scheduled
    /// injection, force at most one scheduled collection, advance the
    /// shrinking heap budget, and enforce the active cap. Past the plan's
    /// horizon the plan is dropped entirely, returning the machine to
    /// undisturbed behaviour. Returns the replacement control when a fault
    /// fires, `None` when this step is undisturbed (the common case — kept
    /// out of the return value so the hot loop never moves `Control`).
    fn chaos_tick(&mut self, control: &mut Control, stack: &mut [Frame]) -> Option<Control> {
        let raising = matches!(&*control, Control::Raising(_));
        let d = self.chaos_decide(raising)?;
        let sabotage = self
            .chaos
            .as_ref()
            .is_some_and(|st| st.plan.sabotage_forwarding);
        if d.force_minor {
            self.stats.forced_gcs += 1;
            self.minor_collect(control, stack);
            if sabotage {
                // Test-only sabotage: strand a stale forwarding pointer
                // to prove the generational audit catches evacuation
                // corruption (the planted cell is unreachable, so
                // execution and re-evaluation stay sound).
                self.heap.plant_stale_forwarding();
            }
        }
        if d.force_gc {
            // Rooted at the pre-fault control: conservative (keeps at most
            // one extra node alive for one cycle) and correct either way.
            self.stats.forced_gcs += 1;
            self.collect_during_run(control, stack);
            if sabotage {
                self.heap.plant_stale_forwarding();
            }
        }
        if let Some(exn) = d.inject {
            self.stats.async_injected += 1;
            return Some(Control::Raising(exn));
        }
        if let Some(cap) = d.cap {
            if self.heap.live() >= cap && !raising {
                // The shrinking budget: allocation past the cap fails with
                // an asynchronous HeapOverflow, as a real memory monitor
                // would deliver it.
                return Some(Control::Raising(Exception::HeapOverflow));
            }
        }
        None
    }

    /// The backend-independent half of a chaos step: advance the plan's
    /// cursors and report what should happen (the per-backend run loops
    /// perform the collection/raise themselves, since rooting a collection
    /// needs the backend's own control/stack types). `None` means the step
    /// is undisturbed or the plan's horizon has passed (the plan is then
    /// dropped entirely).
    pub(crate) fn chaos_decide(&mut self, raising: bool) -> Option<ChaosDecision> {
        let step = self.stats.steps;
        let st = self.chaos.as_mut()?;
        if step >= st.plan.horizon {
            self.chaos = None;
            return None;
        }
        let mut inject: Option<Exception> = None;
        let mut force_gc = false;
        let mut force_minor = false;
        if let Some((at, e)) = st.plan.injections.get(st.next_injection) {
            if step >= *at && !raising {
                st.next_injection += 1;
                inject = Some(e.clone());
            }
        }
        if let Some(at) = st.plan.force_gc_at.get(st.next_gc) {
            if step >= *at {
                st.next_gc += 1;
                force_gc = true;
            }
        }
        if let Some(at) = st.plan.force_minor_at.get(st.next_minor) {
            if step >= *at {
                st.next_minor += 1;
                force_minor = true;
            }
        }
        while let Some((at, c)) = st.plan.heap_budget.get(st.next_budget) {
            if step >= *at {
                st.active_cap = Some(*c);
                st.next_budget += 1;
            } else {
                break;
            }
        }
        Some(ChaosDecision {
            force_gc,
            force_minor,
            inject,
            cap: st.active_cap,
        })
    }

    fn step_eval(&mut self, expr: Rc<Expr>, env: MEnv, stack: &mut Vec<Frame>) -> Control {
        match &*expr {
            Expr::Var(v) => {
                let node = env
                    .lookup(*v)
                    .unwrap_or_else(|| panic!("unbound variable '{v}'"));
                Control::Enter(node)
            }
            Expr::Int(n) => Control::Return(self.int_node(*n)),
            Expr::Char(c) => Control::Return(self.alloc_value(HValue::Char(*c))),
            Expr::Str(s) => Control::Return(self.alloc_value(HValue::Str(s.clone()))),
            Expr::Con(c, args) => {
                if args.is_empty() {
                    return Control::Return(self.nullary_con_node(*c));
                }
                let fields = args
                    .iter()
                    .map(|a| self.alloc_expr_nursery(a, &env))
                    .collect();
                Control::Return(self.alloc_value(HValue::Con(*c, fields)))
            }
            Expr::Lam(x, b) => Control::Return(self.alloc_value(HValue::Fun {
                param: *x,
                body: b.clone(),
                env,
            })),
            Expr::App(f, x) => {
                let arg = self.alloc_expr_nursery(x, &env);
                stack.push(Frame::Apply(arg));
                Control::Eval(f.clone(), env)
            }
            Expr::Let(x, rhs, body) => {
                let t = self.alloc_expr_nursery(rhs, &env);
                Control::Eval(body.clone(), env.bind(*x, t))
            }
            Expr::LetRec(binds, body) => {
                let env2 = self.bind_recursive_inner(binds, &env);
                Control::Eval(body.clone(), env2)
            }
            Expr::Case(scrut, _) => {
                let scrut = scrut.clone();
                stack.push(Frame::Select {
                    case: expr,
                    env: env.clone(),
                });
                Control::Eval(scrut, env)
            }
            Expr::Prim(op, args) => self.step_prim(*op, args, env, stack),
            Expr::Raise(e) => {
                stack.push(Frame::RaiseEval);
                Control::Eval(e.clone(), env)
            }
        }
    }

    fn step_prim(
        &mut self,
        op: PrimOp,
        args: &[Rc<Expr>],
        env: MEnv,
        stack: &mut Vec<Frame>,
    ) -> Control {
        match op {
            PrimOp::Seq => {
                stack.push(Frame::SeqSecond {
                    expr: args[1].clone(),
                    env: env.clone(),
                });
                Control::Eval(args[0].clone(), env)
            }
            PrimOp::MapExn => {
                stack.push(Frame::MapExnCatch {
                    f: args[0].clone(),
                    env: env.clone(),
                });
                Control::Eval(args[1].clone(), env)
            }
            PrimOp::UnsafeIsException => {
                stack.push(Frame::IsExnCatch);
                Control::Eval(args[0].clone(), env)
            }
            PrimOp::UnsafeGetException => {
                stack.push(Frame::UnsafeGetExnCatch);
                Control::Eval(args[0].clone(), env)
            }
            _ => {
                // Decide the operand order — the machine's "optimisation
                // level" (§3.5).
                let (first, pending) = if args.len() == 1 {
                    (0u8, None)
                } else {
                    let left_first = match self.config.order {
                        OrderPolicy::LeftToRight => true,
                        OrderPolicy::RightToLeft => false,
                        OrderPolicy::Seeded(_) => self.rng.gen_bool(0.5),
                    };
                    if left_first {
                        (0, Some((1u8, args[1].clone())))
                    } else {
                        (1, Some((0u8, args[0].clone())))
                    }
                };
                stack.push(Frame::PrimArgs {
                    op,
                    env: env.clone(),
                    current: first,
                    pending,
                    results: [None, None],
                });
                Control::Eval(args[first as usize].clone(), env)
            }
        }
    }

    fn step_enter(&mut self, node: NodeId, stack: &mut Vec<Frame>) -> Control {
        let node = self.heap.resolve(node);
        if node.is_imm() {
            // Tagged immediates are WHNF already.
            return Control::Return(node);
        }
        match self.heap.get(node) {
            Node::Value(_) => Control::Return(node),
            Node::Ind(_) => unreachable!("resolved"),
            Node::Forwarded(_) => {
                panic!("entered a stale forwarding pointer — evacuation corruption")
            }
            Node::Free { .. } => {
                panic!("entered a freed node — a live node escaped the GC roots")
            }
            Node::Poisoned(exn) => {
                // §3.3: a poisoned thunk re-raises the same exception.
                Control::Raising(exn.clone())
            }
            Node::Blackhole { .. } => match self.config.blackholes {
                BlackholeMode::Detect => {
                    self.stats.blackholes_detected += 1;
                    Control::Raising(Exception::NonTermination)
                }
                // Spin in place; the step limit will eventually fire.
                BlackholeMode::Loop => Control::Enter(node),
            },
            Node::Thunk { expr, env } => {
                let (expr, env) = (expr.clone(), env.clone());
                self.heap.set(
                    node,
                    Node::Blackhole {
                        expr: expr.clone(),
                        env: env.clone(),
                    },
                );
                stack.push(Frame::Update(node));
                Control::Eval(expr, env)
            }
            Node::CThunk { .. } | Node::CBlackhole { .. } => {
                // Episodes never mix executors: `eval_node` routes whole
                // compiled suspensions to the compiled loop up front.
                panic!("compiled thunk entered by the tree executor")
            }
        }
    }

    fn step_return(&mut self, node: NodeId, stack: &mut Vec<Frame>) -> StepResult {
        let Some(frame) = stack.pop() else {
            return StepResult::Done(Outcome::Value(node));
        };
        if matches!(frame, Frame::Catch) {
            // The answer reached the episode's catch mark: finish now.
            // Re-entering the loop with the mark already popped would open
            // a one-step window in which a freshly delivered asynchronous
            // exception finds an empty stack and escapes as `Uncaught`
            // from a fully protected episode.
            return StepResult::Done(Outcome::Value(node));
        }
        StepResult::Continue(match frame {
            Frame::Update(target) => {
                self.stats.thunk_updates += 1;
                self.heap.set(target, Node::Ind(node));
                Control::Return(node)
            }
            Frame::Apply(arg) => {
                let (param, body, env) = match self.heap.whnf(node) {
                    Some(Whnf::Fun { param, body, env }) => (param, body.clone(), env.clone()),
                    _ => panic!("application of a non-function (ill-typed program)"),
                };
                Control::Eval(body, env.bind(param, arg))
            }
            Frame::Select { case, env } => {
                let Expr::Case(_, alts) = &*case else {
                    unreachable!("Select frame holds a Case expression");
                };
                self.select(node, alts, &env)
            }
            Frame::PrimArgs {
                op,
                env,
                current,
                mut pending,
                mut results,
            } => {
                results[current as usize] = Some(node);
                if let Some((idx, e)) = pending.take() {
                    stack.push(Frame::PrimArgs {
                        op,
                        env: env.clone(),
                        current: idx,
                        pending: None,
                        results,
                    });
                    Control::Eval(e, env)
                } else {
                    let mut nodes = [NodeId(0); 2];
                    let mut n = 0;
                    for r in results.into_iter().flatten() {
                        nodes[n] = r;
                        n += 1;
                    }
                    match self.apply_prim(op, &nodes[..n]) {
                        PrimResult::Value(v) => Control::Return(v),
                        PrimResult::Raise(exn) => Control::Raising(exn),
                    }
                }
            }
            Frame::SeqSecond { expr, env } => Control::Eval(expr, env),
            Frame::RaiseEval => self.convert_and_raise(node, stack),
            Frame::RaisePayload { con } => {
                let exn = match self.heap.whnf(node) {
                    Some(Whnf::Str(s)) => Exception::from_constructor(con, Some(s))
                        .unwrap_or_else(|| panic!("unknown exception constructor '{con}'")),
                    _ => panic!("exception payload is not a string (ill-typed program)"),
                };
                Control::Raising(exn)
            }
            Frame::IsExnCatch => {
                // The argument evaluated to a value: not an exception.
                Control::Return(self.bool_node(false))
            }
            Frame::UnsafeGetExnCatch => {
                let ok = HValue::Con(Symbol::intern("OK"), vec![node]);
                Control::Return(self.alloc_value(ok))
            }
            Frame::MapExnCatch { .. } => Control::Return(node),
            Frame::Catch => unreachable!("Catch is finished before the match"),
        })
    }

    /// Matches a WHNF value against case alternatives.
    fn select(&mut self, node: NodeId, alts: &[Alt], env: &MEnv) -> Control {
        let v = self.heap.whnf(node).expect("select on a non-value");
        for alt in alts {
            let matched = match (&alt.con, &v) {
                // A default alternative may bind the forced scrutinee.
                (AltCon::Default, _) => {
                    let mut env2 = env.clone();
                    if let Some(b) = alt.binders.first() {
                        env2 = env2.bind(*b, node);
                    }
                    Some(env2)
                }
                (AltCon::Int(n), Whnf::Int(m)) if n == m => Some(env.clone()),
                (AltCon::Char(a), Whnf::Char(b)) if a == b => Some(env.clone()),
                (AltCon::Str(a), Whnf::Str(b)) if **a == ***b => Some(env.clone()),
                (AltCon::Con(c), Whnf::Con(d, fields)) if c == d => {
                    let mut env2 = env.clone();
                    for (b, f) in alt.binders.iter().zip(fields.iter()) {
                        env2 = env2.bind(*b, *f);
                    }
                    Some(env2)
                }
                _ => None,
            };
            if let Some(env2) = matched {
                return Control::Eval(alt.rhs.clone(), env2);
            }
        }
        Control::Raising(Exception::PatternMatchFail("case".into()))
    }

    /// Converts a WHNF `Exception` constructor value into a raise,
    /// forcing the string payload first if there is one.
    fn convert_and_raise(&mut self, node: NodeId, stack: &mut Vec<Frame>) -> Control {
        let (name, payload) = match self.heap.whnf(node) {
            Some(Whnf::Con(name, fields)) => (name, fields.first().copied()),
            _ => panic!("raise applied to a non-Exception value (ill-typed program)"),
        };
        match payload {
            None => {
                let exn = Exception::from_constructor(name, None)
                    .unwrap_or_else(|| panic!("unknown exception constructor '{name}'"));
                Control::Raising(exn)
            }
            Some(payload) => {
                stack.push(Frame::RaisePayload { con: name });
                Control::Enter(payload)
            }
        }
    }

    /// §3.3's core move: trim the stack to the topmost catch mark.
    fn step_raise(&mut self, exn: Exception, stack: &mut Vec<Frame>) -> StepResult {
        let asynchronous = exn.is_asynchronous();
        loop {
            let Some(frame) = stack.pop() else {
                return StepResult::Done(Outcome::Uncaught(exn));
            };
            match frame {
                Frame::Catch => return StepResult::Done(Outcome::Caught(exn)),
                Frame::Update(target) => {
                    let target = self.heap.resolve(target);
                    if asynchronous {
                        // Test-only sabotage: strand the black hole to
                        // prove the heap audit catches a broken restore.
                        let sabotaged = self
                            .chaos
                            .as_ref()
                            .is_some_and(|st| st.plan.sabotage_async_restore);
                        // §5.1: restore a *resumable* suspension.
                        if !sabotaged {
                            if let Node::Blackhole { expr, env } = self.heap.get(target) {
                                let (expr, env) = (expr.clone(), env.clone());
                                self.heap.set(target, Node::Thunk { expr, env });
                                self.stats.thunks_restored += 1;
                            }
                        }
                    } else {
                        // §3.3: overwrite with `raise ex`.
                        self.heap.set(target, Node::Poisoned(exn.clone()));
                        self.stats.thunks_poisoned += 1;
                    }
                    self.stats.frames_trimmed += 1;
                }
                Frame::IsExnCatch if !asynchronous => {
                    // unsafeIsException caught a synchronous exception.
                    let t = self.bool_node(true);
                    return StepResult::Continue(Control::Return(t));
                }
                Frame::UnsafeGetExnCatch if !asynchronous => {
                    let ev = self.alloc_exception_value(&exn);
                    let bad = HValue::Con(Symbol::intern("Bad"), vec![ev]);
                    let t = self.alloc_value(bad);
                    return StepResult::Continue(Control::Return(t));
                }
                Frame::MapExnCatch { f, env } if !asynchronous => {
                    // Rewrite the representative exception through f and
                    // re-raise whatever comes back.
                    let exn_node = self.alloc_exception_value(&exn);
                    let v = Symbol::fresh("exn");
                    let app = Rc::new(Expr::App(f, Rc::new(Expr::Var(v))));
                    stack.push(Frame::RaiseEval);
                    return StepResult::Continue(Control::Eval(app, env.bind(v, exn_node)));
                }
                _ => {
                    self.stats.frames_trimmed += 1;
                }
            }
        }
    }

    /// Value-profile hook for the fuzzer: classifies each operand of a
    /// primitive into a coarse shape class and records it in the coverage
    /// map. Classes: 0 tagged-immediate int, 1 boxed int, 2 zero,
    /// 3 negative int, 4 char, 5 string, 6 constructor, 7 other.
    fn profile_prim_operands(&mut self, op: PrimOp, nodes: &[NodeId]) {
        let mut classes = [None::<usize>; 2];
        for (i, slot) in classes.iter_mut().enumerate() {
            let Some(&n) = nodes.get(i) else { break };
            *slot = Some(match self.heap.whnf(n) {
                Some(Whnf::Int(0)) => 2,
                Some(Whnf::Int(v)) if v < 0 => 3,
                Some(Whnf::Int(_)) => {
                    if n.is_imm() {
                        0
                    } else {
                        1
                    }
                }
                Some(Whnf::Char(_)) => 4,
                Some(Whnf::Str(_)) => 5,
                Some(Whnf::Con(..)) => 6,
                _ => 7,
            });
        }
        if let Some(cov) = self.coverage.as_deref_mut() {
            for (i, class) in classes.into_iter().enumerate() {
                if let Some(class) = class {
                    cov.hit_prim(op as usize, i, class);
                }
            }
        }
    }

    pub(crate) fn apply_prim(&mut self, op: PrimOp, nodes: &[NodeId]) -> PrimResult {
        use PrimOp::*;
        if self.coverage.is_some() {
            self.profile_prim_operands(op, nodes);
        }
        let int = |m: &Machine, i: usize| -> i64 {
            match m.heap.whnf(nodes[i]) {
                Some(Whnf::Int(n)) => n,
                other => panic!("primop {op:?} expected Int, got {other:?}"),
            }
        };
        let chr = |m: &Machine, i: usize| -> char {
            match m.heap.whnf(nodes[i]) {
                Some(Whnf::Char(c)) => c,
                other => panic!("primop {op:?} expected Char, got {other:?}"),
            }
        };
        let string = |m: &Machine, i: usize| -> Rc<str> {
            match m.heap.whnf(nodes[i]) {
                Some(Whnf::Str(s)) => s.clone(),
                other => panic!("primop {op:?} expected Str, got {other:?}"),
            }
        };
        let result = match op {
            Add => return self.arith(int(self, 0).checked_add(int(self, 1))),
            Sub => return self.arith(int(self, 0).checked_sub(int(self, 1))),
            Mul => return self.arith(int(self, 0).checked_mul(int(self, 1))),
            Div => {
                if int(self, 1) == 0 {
                    return PrimResult::Raise(Exception::DivideByZero);
                }
                return self.arith(int(self, 0).checked_div(int(self, 1)));
            }
            Mod => {
                if int(self, 1) == 0 {
                    return PrimResult::Raise(Exception::DivideByZero);
                }
                return self.arith(int(self, 0).checked_rem(int(self, 1)));
            }
            Neg => return self.arith(int(self, 0).checked_neg()),
            IntEq => return self.boolean(int(self, 0) == int(self, 1)),
            IntLt => return self.boolean(int(self, 0) < int(self, 1)),
            IntLe => return self.boolean(int(self, 0) <= int(self, 1)),
            IntGt => return self.boolean(int(self, 0) > int(self, 1)),
            IntGe => return self.boolean(int(self, 0) >= int(self, 1)),
            CharEq => return self.boolean(chr(self, 0) == chr(self, 1)),
            StrEq => return self.boolean(string(self, 0) == string(self, 1)),
            StrAppend => HValue::Str(Rc::from(
                format!("{}{}", string(self, 0), string(self, 1)).as_str(),
            )),
            StrLen => return self.arith(Some(string(self, 0).chars().count() as i64)),
            ShowInt => HValue::Str(Rc::from(int(self, 0).to_string().as_str())),
            Ord => return self.arith(Some(chr(self, 0) as i64)),
            Chr => match u32::try_from(int(self, 0)).ok().and_then(char::from_u32) {
                Some(c) => HValue::Char(c),
                None => return PrimResult::Raise(Exception::Overflow),
            },
            Seq | MapExn | UnsafeIsException | UnsafeGetException => {
                unreachable!("special-cased")
            }
        };
        let n = self.alloc_value(result);
        PrimResult::Value(n)
    }

    fn arith(&mut self, n: Option<i64>) -> PrimResult {
        match n {
            Some(n) => PrimResult::Value(self.int_node(n)),
            None => PrimResult::Raise(Exception::Overflow),
        }
    }

    fn boolean(&mut self, b: bool) -> PrimResult {
        PrimResult::Value(self.bool_node(b))
    }

    /// Allocates the in-language value for a runtime exception (interned
    /// for the payload-free constructors).
    pub fn alloc_exception_value(&mut self, e: &Exception) -> NodeId {
        let name = e.constructor_symbol();
        match e.payload() {
            None => self.nullary_con_node(name),
            Some(s) => {
                let str_node = self.alloc_value(HValue::Str(Rc::from(s)));
                self.alloc_value(HValue::Con(name, vec![str_node]))
            }
        }
    }

    /// Renders a node to `depth`, forcing as needed; exceptional fields
    /// render as `(raise E)`.
    pub fn render(&mut self, node: NodeId, depth: u32) -> String {
        // Root the node so a collection triggered while forcing one field
        // cannot reclaim its siblings.
        self.push_root(node);
        let out = match self.eval_node(node, false) {
            Err(e) => format!("<machine error: {e}>"),
            Ok(Outcome::Caught(exn)) | Ok(Outcome::Uncaught(exn)) => format!("(raise {exn})"),
            Ok(Outcome::Value(n)) => self.render_value(n, depth),
        };
        self.pop_root();
        out
    }

    fn render_value(&mut self, node: NodeId, depth: u32) -> String {
        // `node` is an episode result: immediate or tenured (results are
        // promoted on return), so it is stable across the collections that
        // rendering a field may trigger.
        let (con, n_fields) = match self.heap.whnf(node).expect("rendered node in WHNF") {
            Whnf::Int(n) => return n.to_string(),
            Whnf::Char(c) => return format!("{c:?}"),
            Whnf::Str(s) => return format!("{s:?}"),
            Whnf::Fun { .. } | Whnf::CFun { .. } => return "<function>".into(),
            Whnf::Con(c, []) => return c.to_string(),
            Whnf::Con(c, fields) => (c, fields.len()),
        };
        if depth == 0 {
            return format!("{con} ...");
        }
        let mut out = con.to_string();
        for i in 0..n_fields {
            // Re-read the field from the stable parent each time:
            // rendering the previous field may have run a minor collection
            // that rewrote the remaining fields' nursery ids.
            let f = match self.heap.whnf(node) {
                Some(Whnf::Con(_, fields)) => fields[i],
                _ => unreachable!("constructor scrutinised above"),
            };
            let inner = self.render(f, depth - 1);
            if inner.contains(' ') && !inner.starts_with('(') && !inner.starts_with('"') {
                out.push_str(&format!(" ({inner})"));
            } else {
                out.push_str(&format!(" {inner}"));
            }
        }
        out
    }
}

/// Rewrites every node reference the run loop's control holds through `f`
/// (the minor collector's evacuation function).
fn rewrite_control(control: &mut Control, f: &mut dyn FnMut(NodeId) -> NodeId) {
    match control {
        Control::Eval(_, env) => env.update_nodes(f),
        Control::Enter(n) | Control::Return(n) => *n = f(*n),
        Control::Raising(_) => {}
    }
}

/// Rewrites every node reference a stack frame holds through `f`.
fn rewrite_frame(frame: &mut Frame, f: &mut dyn FnMut(NodeId) -> NodeId) {
    match frame {
        Frame::Update(n) | Frame::Apply(n) => *n = f(*n),
        Frame::Select { env, .. }
        | Frame::SeqSecond { env, .. }
        | Frame::MapExnCatch { env, .. } => env.update_nodes(f),
        Frame::PrimArgs { env, results, .. } => {
            env.update_nodes(f);
            for r in results.iter_mut().flatten() {
                *r = f(*r);
            }
        }
        Frame::RaiseEval
        | Frame::RaisePayload { .. }
        | Frame::IsExnCatch
        | Frame::UnsafeGetExnCatch
        | Frame::Catch => {}
    }
}

enum StepResult {
    Continue(Control),
    Done(Outcome),
}
