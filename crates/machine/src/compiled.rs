//! The compiled-code execution mode: the same abstract machine as
//! [`crate::machine`], running flat [`crate::code`] ops instead of
//! `Rc<Expr>` trees.
//!
//! Everything semantics-bearing is byte-for-byte the tree loop's logic —
//! the step prologue (event schedule, interrupt poll, chaos tick, timeout
//! watchdog, stack/heap limits, GC), §3.3's stack-trimming raise with
//! thunk poisoning, §5.1's resumable-thunk restore under asynchronous
//! trims, §5.2's detectable black holes, and the operand-order policy
//! (§3.5) — only the *representation* differs:
//!
//! * control evaluates a `CodeId` under a slot-addressed [`CEnv`] instead
//!   of an `Rc<Expr>` under a `Symbol`-keyed `MEnv`;
//! * suspensions are [`Node::CThunk`]/[`Node::CBlackhole`] (a `Copy`
//!   `CodeId` plus environment — no refcount traffic to suspend);
//! * case dispatch walks pre-lowered [`crate::code::CArm`]s, matching
//!   constructor tags by interned-`u32` compare;
//! * top-level names are direct indices into the machine's global node
//!   table ([`Machine::link_code`] ties the knot through it, so global
//!   thunks carry *empty* environments).
//!
//! Both executors share one heap, one `Stats`, and one GC, so a value
//! built by either backend renders identically ([`Machine::eval_node`]
//! routes each forced node to the loop that understands its suspension).

use rand::Rng;
use std::sync::Arc;

use urk_syntax::core::{Expr, PrimOp};
use urk_syntax::{Exception, Symbol};

use crate::code::{compile_query, COp, CPat, Code, CodeId, LinkedCode};
use crate::env::CEnv;
use crate::heap::{HValue, Node, NodeId, Whnf};
use crate::machine::{Backend, BlackholeMode, Machine, MachineError, Outcome, PrimResult, Tier};
use crate::OrderPolicy;

/// The compiled loop's control register (the tree loop's `Control` with
/// `CodeId`/`CEnv` in place of `Rc<Expr>`/`MEnv`).
enum CControl {
    Eval(CodeId, CEnv),
    Enter(NodeId),
    Return(NodeId),
    Raising(Exception),
}

/// Compiled stack frames — the same frame discipline as the tree loop's
/// `Frame`, with code ids for the deferred work.
enum CFrame {
    Update(NodeId),
    Apply(NodeId),
    /// Scrutinise with the pre-lowered arms at `arms_at..arms_at + n`.
    Select {
        arms_at: u32,
        n: u16,
        env: CEnv,
    },
    PrimArgs {
        op: PrimOp,
        env: CEnv,
        current: u8,
        pending: Option<(u8, CodeId)>,
        results: [Option<NodeId>; 2],
    },
    SeqSecond {
        code: CodeId,
        env: CEnv,
    },
    RaiseEval,
    RaisePayload {
        con: Symbol,
    },
    IsExnCatch,
    UnsafeGetExnCatch,
    MapExnCatch {
        f: CodeId,
        env: CEnv,
    },
    Catch,
}

enum CStep {
    Continue(CControl),
    Done(Outcome),
}

impl Machine {
    /// Links a compiled program into this machine: allocates one knot-tied
    /// thunk per top-level binding (rooted for the machine's life) and
    /// switches the machine's backend tag. The `Arc<Code>` is shared —
    /// an evaluation pool links the same program into every worker.
    ///
    /// # Panics
    ///
    /// Panics if compiled code is already linked (one program per
    /// machine; build a fresh machine to swap programs).
    pub fn link_code(&mut self, base: Arc<Code>) {
        assert!(
            self.code.is_none(),
            "compiled code already linked into this machine"
        );
        if cfg!(debug_assertions) || self.config.verify_code {
            if let Err(e) = base.verify() {
                panic!("refusing to link corrupt compiled code: {e}");
            }
        }
        let entries: Vec<CodeId> = base.globals.iter().map(|(_, e)| *e).collect();
        let tier2 = base.is_tier2();
        let ic_slots = base.ic_slot_count() as usize;
        let mut linked = LinkedCode::new(base);
        for entry in entries {
            // Global rhs code resolves cross-references through the
            // global node table itself, so the environment stays empty —
            // this *is* the recursive knot, tied by indices. Tenured: the
            // global node table is a plain `Vec<NodeId>` the minor
            // collector never rewrites, so the ids must be stable.
            let node = self.alloc_tenured(Node::CThunk {
                code: entry,
                env: CEnv::empty(),
            });
            self.roots.push(node);
            linked.global_nodes.push(node);
        }
        self.code = Some(linked);
        // Inline-cache slots are per-machine and per-link: relinking is
        // impossible (the assert above), so a populated slot can never
        // point at a stale program's callee.
        self.ics = vec![None; ic_slots];
        self.stats.backend = Backend::Compiled;
        if tier2 {
            self.stats.tier = Tier::Two;
        }
    }

    /// Compiles a query expression against the linked program (into the
    /// machine-local extension buffer) and evaluates it to WHNF — the
    /// compiled counterpart of [`Machine::eval`].
    pub fn eval_code_expr(&mut self, expr: &Expr, catch: bool) -> Result<Outcome, MachineError> {
        let t0 = std::time::Instant::now();
        let code = self
            .code
            .as_mut()
            .expect("no compiled code linked (call link_code first)");
        let (entry, ops) = compile_query(&code.base, &mut code.ext, expr);
        if cfg!(debug_assertions) || self.config.verify_code {
            if let Err(e) = crate::code::verify_query(&code.base, &code.ext, entry) {
                panic!("compiled query failed verification: {e}");
            }
        }
        self.stats.compile_ops += ops;
        self.stats.compile_micros += t0.elapsed().as_micros() as u64;
        self.run_compiled(CControl::Eval(entry, CEnv::empty()), catch)
    }

    /// Compiles a query expression and suspends it as a heap thunk — the
    /// compiled counterpart of [`Machine::alloc_expr`] for a whole closed
    /// expression. Forcing the node (with [`Machine::eval_node`]) runs the
    /// compiled loop, and an asynchronous trim restores it resumably.
    pub fn alloc_code_thunk(&mut self, expr: &Expr) -> NodeId {
        let t0 = std::time::Instant::now();
        let code = self
            .code
            .as_mut()
            .expect("no compiled code linked (call link_code first)");
        let (entry, ops) = compile_query(&code.base, &mut code.ext, expr);
        if cfg!(debug_assertions) || self.config.verify_code {
            if let Err(e) = crate::code::verify_query(&code.base, &code.ext, entry) {
                panic!("compiled query failed verification: {e}");
            }
        }
        self.stats.compile_ops += ops;
        self.stats.compile_micros += t0.elapsed().as_micros() as u64;
        // Tenured: the caller holds the id across evaluations, and nursery
        // ids move at every minor collection.
        self.alloc_tenured(Node::CThunk {
            code: entry,
            env: CEnv::empty(),
        })
    }

    /// Forces a compiled suspension to WHNF (dispatched to from
    /// [`Machine::eval_node`]).
    pub(crate) fn enter_compiled(
        &mut self,
        node: NodeId,
        catch: bool,
    ) -> Result<Outcome, MachineError> {
        self.run_compiled(CControl::Enter(node), catch)
    }

    fn linked(&self) -> &LinkedCode {
        self.code
            .as_ref()
            .expect("compiled node reached a machine with no linked code")
    }

    fn run_compiled(
        &mut self,
        mut control: CControl,
        catch: bool,
    ) -> Result<Outcome, MachineError> {
        let mut stack: Vec<CFrame> = Vec::with_capacity(64);
        if catch {
            stack.push(CFrame::Catch);
        }
        // A fresh episode: the first op must not pair with the last op of
        // the previous episode in the coverage map.
        if let Some(cov) = self.coverage.as_deref_mut() {
            cov.end_episode();
        }
        loop {
            // --- step accounting, limits, and asynchronous events -------
            // (kept in lockstep with the tree loop: same order, same
            // conditions, so every §5.1 delivery point exists here too)
            self.stats.steps += 1;
            if stack.len() > self.stats.max_stack_depth {
                self.stats.max_stack_depth = stack.len();
            }
            if let Some((at, exn)) = self.config.event_schedule.get(self.next_event) {
                if self.stats.steps >= *at && !matches!(control, CControl::Raising(_)) {
                    self.next_event += 1;
                    control = CControl::Raising(exn.clone());
                }
            }
            if self.interrupt.is_pending() && !matches!(control, CControl::Raising(_)) {
                if let Some(exn) = self.interrupt.take() {
                    self.stats.async_injected += 1;
                    control = CControl::Raising(exn);
                }
            }
            if self.chaos.is_some() {
                if let Some(next) = self.chaos_ctick(&mut control, &mut stack) {
                    control = next;
                }
            }
            if self.stats.steps >= self.next_timeout_at {
                if self.config.timeout_on_step_limit {
                    self.next_timeout_at = self.stats.steps + self.config.max_steps;
                    if !matches!(control, CControl::Raising(ref e) if e.is_asynchronous()) {
                        control = CControl::Raising(Exception::Timeout);
                    }
                } else {
                    return Err(MachineError::StepLimit);
                }
            }
            if stack.len() >= self.config.max_stack && !matches!(control, CControl::Raising(_)) {
                control = CControl::Raising(Exception::StackOverflow);
            }
            if self.config.gc {
                if self.heap.nursery_len() >= self.config.nursery_size {
                    self.minor_ccollect(&mut control, &mut stack);
                }
                if self.heap.live() >= self.next_gc_at && self.heap.live() < self.config.max_heap {
                    self.collect_during_crun(&mut control, &mut stack);
                }
            }
            if self.heap.live() >= self.config.max_heap && !matches!(control, CControl::Raising(_))
            {
                control = CControl::Raising(Exception::HeapOverflow);
            }

            // --- the transition function --------------------------------
            control = match control {
                CControl::Eval(code, env) => self.step_ceval(code, env, &mut stack),
                CControl::Enter(node) => self.step_center(node, &mut stack),
                CControl::Return(node) => CControl::Return(node),
                CControl::Raising(exn) => match self.step_craise(exn, &mut stack) {
                    CStep::Continue(c) => c,
                    CStep::Done(outcome) => return Ok(self.tenure_outcome(outcome)),
                },
            };
            // Return-processing is fused into the producing step: frames
            // are popped until control leaves `Return`, without paying the
            // prologue per pop. Flat code makes this safe — a `Return`
            // never allocates unboundedly or loops (every pop consumes a
            // frame), so limits and asynchronous delivery points are
            // preserved at every step that can actually run code. This is
            // where the compiled backend's step count drops below the
            // tree-walker's.
            while let CControl::Return(node) = control {
                match self.step_creturn(node, &mut stack) {
                    CStep::Continue(c) => control = c,
                    CStep::Done(outcome) => return Ok(self.tenure_outcome(outcome)),
                }
            }
        }
    }

    /// The compiled chaos step: identical decisions to the tree loop's
    /// `chaos_tick` (shared via [`Machine::chaos_decide`]), applied with
    /// this loop's control/stack types for GC rooting.
    fn chaos_ctick(&mut self, control: &mut CControl, stack: &mut [CFrame]) -> Option<CControl> {
        let raising = matches!(&*control, CControl::Raising(_));
        let d = self.chaos_decide(raising)?;
        let sabotage = self
            .chaos
            .as_ref()
            .is_some_and(|st| st.plan.sabotage_forwarding);
        if d.force_minor {
            self.stats.forced_gcs += 1;
            self.minor_ccollect(control, stack);
            if sabotage {
                // Test-only sabotage: strand a stale forwarding pointer
                // to prove the generational audit catches evacuation
                // corruption (the planted cell is unreachable, so
                // execution and re-evaluation stay sound).
                self.heap.plant_stale_forwarding();
            }
        }
        if d.force_gc {
            self.stats.forced_gcs += 1;
            self.collect_during_crun(control, stack);
            if sabotage {
                self.heap.plant_stale_forwarding();
            }
        }
        if let Some(exn) = d.inject {
            self.stats.async_injected += 1;
            return Some(CControl::Raising(exn));
        }
        if let Some(cap) = d.cap {
            if self.heap.live() >= cap && !raising {
                return Some(CControl::Raising(Exception::HeapOverflow));
            }
        }
        None
    }

    /// A minor collection mid-run: evacuates the live nursery into the
    /// tenured space, rewriting the registered roots, the current control,
    /// and every compiled stack frame (the compiled twin of the tree
    /// loop's `minor_collect`).
    fn minor_ccollect(&mut self, control: &mut CControl, stack: &mut [CFrame]) {
        let reuses_before = self.heap.reuses();
        let Machine {
            heap, roots, ics, ..
        } = self;
        let outcome = heap.collect_minor(&mut |f| {
            for r in roots.iter_mut() {
                *r = f(*r);
            }
            for slot in ics.iter_mut().flatten() {
                *slot = f(*slot);
            }
            rewrite_ccontrol(control, f);
            for frame in stack.iter_mut() {
                rewrite_cframe(frame, f);
            }
        });
        self.stats.minor_gcs += 1;
        self.stats.gc_runs += 1;
        self.stats.nodes_promoted += outcome.promoted;
        self.stats.gc_freed += outcome.freed;
        self.stats.freelist_reuses += self.heap.reuses() - reuses_before;
    }

    /// Mid-run major collection rooted at the compiled loop's transient
    /// state. Evacuates the nursery first, so the mark table only has to
    /// cover the tenured arena.
    fn collect_during_crun(&mut self, control: &mut CControl, stack: &mut [CFrame]) {
        self.minor_ccollect(control, stack);
        let mut c = crate::gc::Collector::new(self.heap.tenured_len());
        match &*control {
            CControl::Eval(_, env) => c.mark_cenv(env),
            CControl::Enter(n) | CControl::Return(n) => c.mark_root(*n),
            CControl::Raising(_) => {}
        }
        for f in stack.iter() {
            match f {
                CFrame::Update(n) | CFrame::Apply(n) => c.mark_root(*n),
                CFrame::Select { env, .. }
                | CFrame::SeqSecond { env, .. }
                | CFrame::MapExnCatch { env, .. } => c.mark_cenv(env),
                CFrame::PrimArgs { env, results, .. } => {
                    c.mark_cenv(env);
                    for r in results.iter().flatten() {
                        c.mark_root(*r);
                    }
                }
                CFrame::RaiseEval
                | CFrame::RaisePayload { .. }
                | CFrame::IsExnCatch
                | CFrame::UnsafeGetExnCatch
                | CFrame::Catch => {}
            }
        }
        // Registered roots include the global node table (pushed by
        // `link_code`), so every top-level binding survives.
        for r in &self.roots {
            c.mark_root(*r);
        }
        // Inline-cache entries are kept live defensively: a cached callee
        // is always reachable through its global thunk anyway, but marking
        // it here means a slot can never hold a freed node even if that
        // invariant is ever weakened.
        for slot in self.ics.iter().flatten() {
            c.mark_root(*slot);
        }
        c.trace(&self.heap);
        let prev_free = self.heap.free_list();
        let (freed, head) = c.sweep(&mut self.heap, prev_free);
        self.heap.set_free_list(head, freed);
        self.stats.gc_runs += 1;
        self.stats.major_gcs += 1;
        self.stats.gc_freed += freed;
        let live = self.heap.live();
        self.next_gc_at = (live + live / 2).max(self.config.gc_threshold);
    }

    /// Allocates a node for an operand op — the compiled counterpart of
    /// `alloc_expr`, with the same fast paths: slot loads reuse the bound
    /// node (sharing preserved), literals go straight to WHNF (a tagged
    /// immediate where possible), everything else suspends as a `CThunk`
    /// in the nursery.
    fn alloc_code(&mut self, code: CodeId, env: &CEnv) -> NodeId {
        match self.linked().op(code) {
            COp::Local(back) => env.get_back(back),
            COp::Global(g) => self.linked().global_nodes[g as usize],
            COp::Int(n) => self.int_node(n),
            COp::Char(c) => self.alloc_value(HValue::Char(c)),
            COp::Str(i) => {
                let s = self.linked().str_at(i);
                self.alloc_value(HValue::Str(s))
            }
            COp::Con { tag, n: 0, .. } => self.nullary_con_node(tag),
            COp::Spec { body } => self.alloc_spec(body, env),
            _ => self.alloc(Node::CThunk {
                code,
                env: env.clone(),
            }),
        }
    }

    /// Allocates a tier-2 speculation site: builds the value eagerly when
    /// the body is a value form or a ready fused region, falling back to a
    /// plain thunk otherwise. The paper's license (§4–§5) is exactly what
    /// makes the region case sound: a synchronous raise during speculative
    /// evaluation of a *lazy* position is stored as poison — the same
    /// `raise ex` overwrite §3.3 trimming would eventually perform — so
    /// demand that never arrives never observes the exception, and demand
    /// that does arrive raises the same member of the denoted set.
    fn alloc_spec(&mut self, body: CodeId, env: &CEnv) -> NodeId {
        match self.linked().op(body) {
            COp::Lam { body: lam_body } => {
                self.stats.fused_steps += 1;
                self.alloc_value(HValue::CFun {
                    body: lam_body,
                    env: env.clone(),
                })
            }
            COp::Con { tag, args, n } => {
                self.stats.fused_steps += 1;
                let mut fields = Vec::with_capacity(usize::from(n));
                for i in 0..u32::from(n) {
                    let k = self.linked().kid(args + i);
                    fields.push(self.alloc_code(k, env));
                }
                self.alloc_value(HValue::Con(tag, fields))
            }
            COp::Str(i) => {
                self.stats.fused_steps += 1;
                let s = self.linked().str_at(i);
                self.alloc_value(HValue::Str(s))
            }
            _ => {
                // A prim region. Under a Seeded order policy the region
                // stays a thunk: the tree backend draws from the §3.5
                // stream when the binding is *demanded*, and evaluating
                // here would move (or drop) those draws and desync the
                // per-seed lockstep the differential battery checks.
                if !matches!(self.config.order, OrderPolicy::Seeded(_)) {
                    if let Some(result) = self.exec_region(body, env) {
                        return match result {
                            Ok(v) => v,
                            Err(exn) => self.alloc(Node::Poisoned(exn)),
                        };
                    }
                }
                self.alloc(Node::CThunk {
                    code: body,
                    env: env.clone(),
                })
            }
        }
    }

    /// Evaluates a fused region atomically if every leaf is already a
    /// value (`None` = not ready, caller falls back to stepped
    /// evaluation). Ready regions run as one bounded recursive walk —
    /// verified ≤ [`crate::code::MAX_REGION_OPS`] ops, call-free, so
    /// termination is syntactic and no asynchronous delivery point is
    /// lost: the whole region occupies a single step, exactly like a
    /// tier-1 primitive over immediates.
    fn exec_region(&mut self, root: CodeId, env: &CEnv) -> Option<Result<NodeId, Exception>> {
        if !self.region_ready(root, env) {
            return None;
        }
        self.stats.fused_steps += 1;
        Some(self.region_eval(root, env))
    }

    /// True if every leaf of the region is already in WHNF — a draw-free
    /// pre-scan, so a bail-out to stepped evaluation never perturbs the
    /// §3.5 Seeded stream.
    fn region_ready(&self, code: CodeId, env: &CEnv) -> bool {
        match self.linked().op(code) {
            COp::Local(back) => {
                let n = self.heap.resolve(env.get_back(back));
                n.is_imm() || matches!(self.heap.get(n), Node::Value(_))
            }
            COp::Global(g) => {
                let n = self.heap.resolve(self.linked().global_nodes[g as usize]);
                n.is_imm() || matches!(self.heap.get(n), Node::Value(_))
            }
            COp::Int(_) | COp::Char(_) | COp::Str(_) => true,
            COp::Con { n: 0, .. } => true,
            COp::Prim1 { a, .. } => self.region_ready(a, env),
            COp::Prim2 { a, b, .. } | COp::Seq { a, b } => {
                self.region_ready(a, env) && self.region_ready(b, env)
            }
            // Defensive: `Code::verify` already rejects anything else
            // inside a region.
            _ => false,
        }
    }

    /// Evaluates a ready region. Raises propagate as `Err` — the caller
    /// decides whether that poisons (speculation) or raises (strict
    /// position), which is the entire §3.3 discipline in one line. The
    /// §3.5 Seeded draw advances exactly once per binary primitive, and
    /// the chosen-first operand's subtree evaluates first, so the draw
    /// *sequence* matches the stepped loops op for op.
    fn region_eval(&mut self, code: CodeId, env: &CEnv) -> Result<NodeId, Exception> {
        match self.linked().op(code) {
            COp::Local(back) => Ok(self.heap.resolve(env.get_back(back))),
            COp::Global(g) => Ok(self.heap.resolve(self.linked().global_nodes[g as usize])),
            COp::Int(n) => Ok(self.int_node(n)),
            COp::Char(c) => Ok(self.alloc_value(HValue::Char(c))),
            COp::Str(i) => {
                let s = self.linked().str_at(i);
                Ok(self.alloc_value(HValue::Str(s)))
            }
            COp::Con { tag, .. } => Ok(self.nullary_con_node(tag)),
            COp::Prim1 { op, a } => {
                let na = self.region_eval(a, env)?;
                match self.apply_prim(op, &[na]) {
                    PrimResult::Value(v) => Ok(v),
                    PrimResult::Raise(exn) => Err(exn),
                }
            }
            COp::Prim2 { op, a, b } => {
                let left_first = match self.config.order {
                    OrderPolicy::LeftToRight => true,
                    OrderPolicy::RightToLeft => false,
                    OrderPolicy::Seeded(_) => self.rng.gen_bool(0.5),
                };
                let (na, nb) = if left_first {
                    let na = self.region_eval(a, env)?;
                    (na, self.region_eval(b, env)?)
                } else {
                    let nb = self.region_eval(b, env)?;
                    (self.region_eval(a, env)?, nb)
                };
                match self.apply_prim(op, &[na, nb]) {
                    PrimResult::Value(v) => Ok(v),
                    PrimResult::Raise(exn) => Err(exn),
                }
            }
            COp::Seq { a, b } => {
                self.region_eval(a, env)?;
                self.region_eval(b, env)
            }
            other => unreachable!("op kind {} in a verified fused region", other.kind_index()),
        }
    }

    /// Applies a global through its monomorphic inline cache: a hit jumps
    /// straight into the cached callee's body, a miss resolves through the
    /// global node table and caches the result if it is already a
    /// function value. The cache is per-machine (GC rewrites and marks
    /// the slots) and per-link (relinking panics), so a populated slot is
    /// always the current program's callee.
    fn eval_appg(
        &mut self,
        f: CodeId,
        ic: u32,
        a: CodeId,
        env: &CEnv,
        stack: &mut Vec<CFrame>,
    ) -> CControl {
        let arg = self.alloc_code(a, env);
        if let Some(cached) = self.ics[ic as usize] {
            if let Some(Whnf::CFun { body, env: fenv }) = self.heap.whnf(cached) {
                self.stats.ic_hits += 1;
                let fenv = fenv.clone();
                return CControl::Eval(body, fenv.push(arg));
            }
            self.ics[ic as usize] = None;
        }
        self.stats.ic_misses += 1;
        let g = match self.linked().op(f) {
            COp::Global(g) => g,
            _ => unreachable!("verified: AppG callee is a Global"),
        };
        let node = self.linked().global_nodes[g as usize];
        let resolved = self.heap.resolve(node);
        if let Some(Whnf::CFun { body, env: fenv }) = self.heap.whnf(resolved) {
            let fenv = fenv.clone();
            self.ics[ic as usize] = Some(resolved);
            return CControl::Eval(body, fenv.push(arg));
        }
        stack.push(CFrame::Apply(arg));
        self.enter_fused(node, stack)
    }

    /// Entering a node without paying a separate `Enter` step: values
    /// return directly (the fused-return loop then pops frames in the
    /// same step) and thunks blackhole + push their update frame here,
    /// leaving control at the thunk body — exactly `step_center`'s two
    /// transitions, minus the prologue passes between them. Black holes,
    /// poisoned nodes and foreign suspensions take the full
    /// [`Machine::step_center`] path (they are rare and some — §5.2
    /// detection — must observe the prologue's state).
    fn enter_fused(&mut self, node: NodeId, stack: &mut Vec<CFrame>) -> CControl {
        let node = self.heap.resolve(node);
        // Tagged immediates are their own weak-head normal form — there is
        // no cell to enter.
        if node.is_imm() {
            return CControl::Return(node);
        }
        match self.heap.get(node) {
            Node::Value(_) => CControl::Return(node),
            Node::CThunk { code, env } => {
                let (code, env) = (*code, env.clone());
                // A thunk whose body is already a weak-head normal form
                // (constructor, lambda, literal) or a primitive over
                // immediate operands forces right here: build or apply,
                // update, return — no black-hole write, no Update frame,
                // no extra prologue pass. A synchronous raise poisons the
                // node exactly as trimming past its update frame would
                // (§3.3).
                if let Some(result) = self.fused_force_body(code, &env) {
                    return match result {
                        Ok(v) => {
                            self.stats.thunk_updates += 1;
                            self.heap.set(node, Node::Ind(v));
                            CControl::Return(v)
                        }
                        Err(exn) => {
                            self.heap.set(node, Node::Poisoned(exn.clone()));
                            CControl::Raising(exn)
                        }
                    };
                }
                self.heap.set(
                    node,
                    Node::CBlackhole {
                        code,
                        env: env.clone(),
                    },
                );
                stack.push(CFrame::Update(node));
                CControl::Eval(code, env)
            }
            _ => CControl::Enter(node),
        }
    }

    /// Evaluates an operand position with variable references fused: a
    /// slot or global is entered in this step (forced value or thunk
    /// body), anything structured becomes a fresh `Eval` step.
    fn eval_code_fused(
        &mut self,
        mut code: CodeId,
        env: &CEnv,
        stack: &mut Vec<CFrame>,
    ) -> CControl {
        loop {
            match self.linked().op(code) {
                COp::Local(back) => return self.enter_fused(env.get_back(back), stack),
                COp::Global(g) => {
                    let node = self.linked().global_nodes[g as usize];
                    return self.enter_fused(node, stack);
                }
                COp::App { f, a } => {
                    // The application transition, spine-iterated: each
                    // level suspends its argument and either jumps
                    // straight into a forced callee (direct-call fusion)
                    // or pushes its Apply frame and walks down — the
                    // whole curried spine costs one prologue pass. The
                    // stack-limit check lands on the next prologue, after
                    // the frames are pushed, exactly as a single deep
                    // push would.
                    let arg = self.alloc_code(a, env);
                    let callee = match self.linked().op(f) {
                        COp::Local(back) => Some(env.get_back(back)),
                        COp::Global(g) => Some(self.linked().global_nodes[g as usize]),
                        _ => None,
                    };
                    if let Some(node) = callee {
                        if let Some(Whnf::CFun { body, env: fenv }) = self.heap.whnf(node) {
                            let fenv = fenv.clone();
                            return CControl::Eval(body, fenv.push(arg));
                        }
                    }
                    stack.push(CFrame::Apply(arg));
                    code = f;
                }
                COp::AppG { f, ic, a } => return self.eval_appg(f, ic, a, env, stack),
                _ => {
                    // Anything already in WHNF — a literal, constructor,
                    // lambda, or primitive over immediates — returns (or
                    // raises) in the parent's step; the frame the parent
                    // pushed pops in the fused-return loop (or trims in
                    // the raise path) exactly as it would after a stepped
                    // evaluation.
                    return match self.fused_force_body(code, env) {
                        Some(Ok(v)) => CControl::Return(v),
                        Some(Err(exn)) => CControl::Raising(exn),
                        None => CControl::Eval(code, env.clone()),
                    };
                }
            }
        }
    }

    /// Evaluates a code body that is guaranteed to finish within the
    /// current step — a weak-head normal form to build (constructor,
    /// lambda, literal, forced slot) or a primitive over immediate
    /// operands — without any frame traffic. `None` means the body needs
    /// real stepped evaluation.
    fn fused_force_body(&mut self, code: CodeId, env: &CEnv) -> Option<Result<NodeId, Exception>> {
        match self.linked().op(code) {
            COp::Con { tag, args, n } => {
                if n == 0 {
                    return Some(Ok(self.nullary_con_node(tag)));
                }
                let mut fields = Vec::with_capacity(usize::from(n));
                for i in 0..u32::from(n) {
                    let k = self.linked().kid(args + i);
                    fields.push(self.alloc_code(k, env));
                }
                Some(Ok(self.alloc_value(HValue::Con(tag, fields))))
            }
            COp::Lam { body } => Some(Ok(self.alloc_value(HValue::CFun {
                body,
                env: env.clone(),
            }))),
            COp::Prim1 { .. } | COp::Prim2 { .. } => self.immediate_prim(code, env),
            COp::Fused { body } => self.exec_region(body, env),
            _ => self.immediate_node(code, env).map(Ok),
        }
    }

    /// Evaluates a primitive whose operands are all immediate, in place.
    /// The §3.5 Seeded draw still advances exactly once per binary
    /// primitive evaluation — after the immediacy check, so a bail-out
    /// (which re-evaluates through the stepped path, drawing there)
    /// never double-draws.
    fn immediate_prim(&mut self, code: CodeId, env: &CEnv) -> Option<Result<NodeId, Exception>> {
        match self.linked().op(code) {
            COp::Prim1 { op, a } => {
                let na = self.immediate_node(a, env)?;
                Some(match self.apply_prim(op, &[na]) {
                    PrimResult::Value(v) => Ok(v),
                    PrimResult::Raise(exn) => Err(exn),
                })
            }
            COp::Prim2 { op, a, b } => {
                let na = self.immediate_node(a, env)?;
                let nb = self.immediate_node(b, env)?;
                if let OrderPolicy::Seeded(_) = self.config.order {
                    self.rng.gen_bool(0.5);
                }
                Some(match self.apply_prim(op, &[na, nb]) {
                    PrimResult::Value(v) => Ok(v),
                    PrimResult::Raise(exn) => Err(exn),
                })
            }
            _ => None,
        }
    }

    /// Classifies an operand as already-in-WHNF — a literal or a slot
    /// holding a forced value — and materialises its node. Immediate
    /// operands cannot raise and cannot be interrupted mid-evaluation,
    /// so a parent primitive/case may consume them in its own step
    /// without losing any §3.3/§5.1 behaviour.
    fn immediate_node(&mut self, code: CodeId, env: &CEnv) -> Option<NodeId> {
        match self.linked().op(code) {
            COp::Local(back) => {
                let n = self.heap.resolve(env.get_back(back));
                (n.is_imm() || matches!(self.heap.get(n), Node::Value(_))).then_some(n)
            }
            COp::Global(g) => {
                let n = self.heap.resolve(self.linked().global_nodes[g as usize]);
                (n.is_imm() || matches!(self.heap.get(n), Node::Value(_))).then_some(n)
            }
            COp::Int(n) => Some(self.int_node(n)),
            COp::Char(c) => Some(self.alloc_value(HValue::Char(c))),
            COp::Con { tag, n: 0, .. } => Some(self.nullary_con_node(tag)),
            _ => None,
        }
    }

    fn step_ceval(&mut self, code: CodeId, env: CEnv, stack: &mut Vec<CFrame>) -> CControl {
        let op = self.linked().op(code);
        if let Some(cov) = self.coverage.as_deref_mut() {
            cov.hit(op.kind_index());
        }
        match op {
            COp::Local(back) => self.enter_fused(env.get_back(back), stack),
            COp::Global(g) => {
                let node = self.linked().global_nodes[g as usize];
                self.enter_fused(node, stack)
            }
            COp::Int(n) => CControl::Return(self.int_node(n)),
            COp::Char(c) => CControl::Return(self.alloc_value(HValue::Char(c))),
            COp::Str(i) => {
                let s = self.linked().str_at(i);
                CControl::Return(self.alloc_value(HValue::Str(s)))
            }
            COp::Con { tag, args, n } => {
                if n == 0 {
                    return CControl::Return(self.nullary_con_node(tag));
                }
                let mut fields = Vec::with_capacity(usize::from(n));
                for i in 0..u32::from(n) {
                    let k = self.linked().kid(args + i);
                    fields.push(self.alloc_code(k, &env));
                }
                CControl::Return(self.alloc_value(HValue::Con(tag, fields)))
            }
            COp::Lam { body } => CControl::Return(self.alloc_value(HValue::CFun { body, env })),
            COp::App { .. } => self.eval_code_fused(code, &env, stack),
            COp::Let { rhs, body } => {
                let t = self.alloc_code(rhs, &env);
                // Test-only sabotage: propagate a speculation's stored
                // poison at the binding site — the "unlicensed fusion"
                // that treats a lazy binding as strict. The differential
                // battery proves the oracle catches it.
                if !t.is_imm()
                    && self
                        .chaos
                        .as_ref()
                        .is_some_and(|st| st.plan.sabotage_spec_propagate)
                {
                    if let Node::Poisoned(exn) = self.heap.get(t) {
                        return CControl::Raising(exn.clone());
                    }
                }
                CControl::Eval(body, env.push(t))
            }
            COp::LetRec { rhss, n, body } => {
                // Tie the knot exactly as `bind_recursive_inner`: allocate
                // empty-environment thunks, extend, then rewrite each with
                // the extended environment.
                let mut nodes = Vec::with_capacity(usize::from(n));
                for i in 0..u32::from(n) {
                    let k = self.linked().kid(rhss + i);
                    nodes.push((
                        k,
                        self.alloc(Node::CThunk {
                            code: k,
                            env: CEnv::empty(),
                        }),
                    ));
                }
                let mut env2 = env;
                for (_, nd) in &nodes {
                    env2 = env2.push(*nd);
                }
                for (k, nd) in nodes {
                    self.heap.set(
                        nd,
                        Node::CThunk {
                            code: k,
                            env: env2.clone(),
                        },
                    );
                }
                CControl::Eval(body, env2)
            }
            COp::Case { scrut, arms_at, n } => {
                // A forced scrutinee dispatches in this step — no Select
                // frame, no Eval round trip.
                if let Some(node) = self.immediate_node(scrut, &env) {
                    return self.select_arms(node, arms_at, n, &env);
                }
                stack.push(CFrame::Select {
                    arms_at,
                    n,
                    env: env.clone(),
                });
                self.eval_code_fused(scrut, &env, stack)
            }
            COp::Prim1 { op, a } => {
                if let Some(na) = self.immediate_node(a, &env) {
                    return match self.apply_prim(op, &[na]) {
                        PrimResult::Value(v) => CControl::Return(v),
                        PrimResult::Raise(exn) => CControl::Raising(exn),
                    };
                }
                stack.push(CFrame::PrimArgs {
                    op,
                    env: env.clone(),
                    current: 0,
                    pending: None,
                    results: [None, None],
                });
                self.eval_code_fused(a, &env, stack)
            }
            COp::Prim2 { op, a, b } => {
                // The operand-order policy (§3.5). The Seeded draw must
                // stay one `gen_bool` per binary primitive so a seeded
                // machine agrees with the tree backend's sequence —
                // including on the fused path below, where the order is
                // unobservable (both operands are values already) but the
                // stream position must still advance.
                let left_first = match self.config.order {
                    OrderPolicy::LeftToRight => true,
                    OrderPolicy::RightToLeft => false,
                    OrderPolicy::Seeded(_) => self.rng.gen_bool(0.5),
                };
                if let Some(na) = self.immediate_node(a, &env) {
                    if let Some(nb) = self.immediate_node(b, &env) {
                        return match self.apply_prim(op, &[na, nb]) {
                            PrimResult::Value(v) => CControl::Return(v),
                            PrimResult::Raise(exn) => CControl::Raising(exn),
                        };
                    }
                }
                let (current, first, pending) = if left_first {
                    (0u8, a, Some((1u8, b)))
                } else {
                    (1u8, b, Some((0u8, a)))
                };
                stack.push(CFrame::PrimArgs {
                    op,
                    env: env.clone(),
                    current,
                    pending,
                    results: [None, None],
                });
                self.eval_code_fused(first, &env, stack)
            }
            COp::Seq { a, b } => {
                // `seq` on a value that already exists is the identity on
                // control: go straight to `b`.
                if self.immediate_node(a, &env).is_some() {
                    return CControl::Eval(b, env);
                }
                stack.push(CFrame::SeqSecond {
                    code: b,
                    env: env.clone(),
                });
                self.eval_code_fused(a, &env, stack)
            }
            COp::MapExn { f, a } => {
                stack.push(CFrame::MapExnCatch {
                    f,
                    env: env.clone(),
                });
                CControl::Eval(a, env)
            }
            COp::IsExn { a } => {
                stack.push(CFrame::IsExnCatch);
                CControl::Eval(a, env)
            }
            COp::GetExn { a } => {
                stack.push(CFrame::UnsafeGetExnCatch);
                CControl::Eval(a, env)
            }
            COp::Raise { a } => {
                stack.push(CFrame::RaiseEval);
                CControl::Eval(a, env)
            }
            COp::Fused { body } => match self.exec_region(body, &env) {
                Some(Ok(v)) => CControl::Return(v),
                Some(Err(exn)) => CControl::Raising(exn),
                // Not every leaf is forced yet: fall back to stepped
                // evaluation of the region body, which is ordinary code.
                None => CControl::Eval(body, env),
            },
            COp::Spec { body } => {
                // Defensive: the pass only emits `Spec` in operand
                // positions (handled by `alloc_code`), but evaluating one
                // directly is still well-defined — build and enter.
                let node = self.alloc_spec(body, &env);
                self.enter_fused(node, stack)
            }
            COp::AppG { f, ic, a } => self.eval_appg(f, ic, a, &env, stack),
        }
    }

    fn step_center(&mut self, node: NodeId, stack: &mut Vec<CFrame>) -> CControl {
        let node = self.heap.resolve(node);
        if node.is_imm() {
            return CControl::Return(node);
        }
        match self.heap.get(node) {
            Node::Value(_) => CControl::Return(node),
            Node::Ind(_) => unreachable!("resolved"),
            Node::Free { .. } => {
                panic!("entered a freed node — a live node escaped the GC roots")
            }
            Node::Forwarded(_) => {
                panic!("entered a stale forwarding pointer — evacuation corruption")
            }
            Node::Poisoned(exn) => CControl::Raising(exn.clone()),
            // §5.2: a black hole of either representation is the same
            // detectable bottom.
            Node::Blackhole { .. } | Node::CBlackhole { .. } => match self.config.blackholes {
                BlackholeMode::Detect => {
                    self.stats.blackholes_detected += 1;
                    CControl::Raising(Exception::NonTermination)
                }
                BlackholeMode::Loop => CControl::Enter(node),
            },
            Node::CThunk { code, env } => {
                let (code, env) = (*code, env.clone());
                self.heap.set(
                    node,
                    Node::CBlackhole {
                        code,
                        env: env.clone(),
                    },
                );
                stack.push(CFrame::Update(node));
                CControl::Eval(code, env)
            }
            Node::Thunk { .. } => {
                // Episodes never mix executors: `eval_node` routes tree
                // suspensions to the tree loop up front, and compiled code
                // can only reference nodes it (or `link_code`) built.
                panic!("tree thunk entered by the compiled executor")
            }
        }
    }

    fn step_creturn(&mut self, node: NodeId, stack: &mut Vec<CFrame>) -> CStep {
        let Some(frame) = stack.pop() else {
            return CStep::Done(Outcome::Value(node));
        };
        if matches!(frame, CFrame::Catch) {
            // The answer reached the episode's catch mark: finish now, as
            // the tree machine does — one more loop iteration with the
            // mark already popped would let a freshly delivered
            // asynchronous exception escape as `Uncaught`.
            return CStep::Done(Outcome::Value(node));
        }
        CStep::Continue(match frame {
            CFrame::Update(target) => {
                self.stats.thunk_updates += 1;
                self.heap.set(target, Node::Ind(node));
                CControl::Return(node)
            }
            CFrame::Apply(arg) => {
                let (body, env) = match self.heap.whnf(node) {
                    Some(Whnf::CFun { body, env }) => (body, env.clone()),
                    _ => panic!("application of a non-function (ill-typed program)"),
                };
                // The compiler reserved the top slot for the argument.
                CControl::Eval(body, env.push(arg))
            }
            CFrame::Select { arms_at, n, env } => self.select_arms(node, arms_at, n, &env),
            CFrame::PrimArgs {
                op,
                env,
                current,
                mut pending,
                mut results,
            } => {
                results[current as usize] = Some(node);
                if let Some((idx, code)) = pending.take() {
                    stack.push(CFrame::PrimArgs {
                        op,
                        env: env.clone(),
                        current: idx,
                        pending: None,
                        results,
                    });
                    self.eval_code_fused(code, &env, stack)
                } else {
                    let mut nodes = [NodeId(0); 2];
                    let mut n = 0;
                    for r in results.into_iter().flatten() {
                        nodes[n] = r;
                        n += 1;
                    }
                    match self.apply_prim(op, &nodes[..n]) {
                        PrimResult::Value(v) => CControl::Return(v),
                        PrimResult::Raise(exn) => CControl::Raising(exn),
                    }
                }
            }
            CFrame::SeqSecond { code, env } => self.eval_code_fused(code, &env, stack),
            CFrame::RaiseEval => self.convert_and_craise(node, stack),
            CFrame::RaisePayload { con } => {
                let exn = match self.heap.whnf(node) {
                    Some(Whnf::Str(s)) => Exception::from_constructor(con, Some(s))
                        .unwrap_or_else(|| panic!("unknown exception constructor '{con}'")),
                    _ => panic!("exception payload is not a string (ill-typed program)"),
                };
                CControl::Raising(exn)
            }
            CFrame::IsExnCatch => CControl::Return(self.bool_node(false)),
            CFrame::UnsafeGetExnCatch => {
                let ok = HValue::Con(Symbol::intern("OK"), vec![node]);
                CControl::Return(self.alloc_value(ok))
            }
            CFrame::MapExnCatch { .. } => CControl::Return(node),
            CFrame::Catch => unreachable!("Catch is finished before the match"),
        })
    }

    /// Matches a WHNF value against the pre-lowered arms — the tree
    /// machine's `select` over the dispatch table, with constructor match
    /// an interned-tag compare and binders pushed positionally.
    fn select_arms(&mut self, node: NodeId, arms_at: u32, n: u16, env: &CEnv) -> CControl {
        let v = self.heap.whnf(node).expect("select on a non-value");
        for i in 0..u32::from(n) {
            let arm = self.linked().arm(arms_at + i);
            let matched = match (arm.pat, &v) {
                (CPat::Default, _) => Some(if arm.bind_scrut {
                    env.push(node)
                } else {
                    env.clone()
                }),
                (CPat::Int(a), Whnf::Int(b)) if a == *b => Some(env.clone()),
                (CPat::Char(a), Whnf::Char(b)) if a == *b => Some(env.clone()),
                (CPat::Str(si), Whnf::Str(s)) if self.linked().str_ref(si) == &***s => {
                    Some(env.clone())
                }
                (CPat::Con(c), Whnf::Con(d, fields)) if c == *d => {
                    let mut env2 = env.clone();
                    for f in fields.iter().take(arm.binders as usize) {
                        env2 = env2.push(*f);
                    }
                    Some(env2)
                }
                _ => None,
            };
            if let Some(env2) = matched {
                return CControl::Eval(arm.rhs, env2);
            }
        }
        CControl::Raising(Exception::PatternMatchFail("case".into()))
    }

    /// Converts a WHNF `Exception` constructor value into a raise (the
    /// compiled counterpart of `convert_and_raise`).
    fn convert_and_craise(&mut self, node: NodeId, stack: &mut Vec<CFrame>) -> CControl {
        let (name, payload) = match self.heap.whnf(node) {
            Some(Whnf::Con(name, fields)) => (name, fields.first().copied()),
            _ => panic!("raise applied to a non-Exception value (ill-typed program)"),
        };
        match payload {
            None => {
                let exn = Exception::from_constructor(name, None)
                    .unwrap_or_else(|| panic!("unknown exception constructor '{name}'"));
                CControl::Raising(exn)
            }
            Some(payload) => {
                stack.push(CFrame::RaisePayload { con: name });
                CControl::Enter(payload)
            }
        }
    }

    /// §3.3's stack trim for the compiled loop: identical frame-by-frame
    /// policy to `step_raise` — synchronous raises poison in-flight thunks,
    /// asynchronous ones restore them (§5.1), handler marks intercept
    /// synchronous exceptions only.
    fn step_craise(&mut self, exn: Exception, stack: &mut Vec<CFrame>) -> CStep {
        let asynchronous = exn.is_asynchronous();
        loop {
            let Some(frame) = stack.pop() else {
                return CStep::Done(Outcome::Uncaught(exn));
            };
            match frame {
                CFrame::Catch => return CStep::Done(Outcome::Caught(exn)),
                CFrame::Update(target) => {
                    let target = self.heap.resolve(target);
                    if asynchronous {
                        let sabotaged = self
                            .chaos
                            .as_ref()
                            .is_some_and(|st| st.plan.sabotage_async_restore);
                        // §5.1: restore a *resumable* suspension.
                        if !sabotaged {
                            if let Node::CBlackhole { code, env } = self.heap.get(target) {
                                let (code, env) = (*code, env.clone());
                                self.heap.set(target, Node::CThunk { code, env });
                                self.stats.thunks_restored += 1;
                            }
                        }
                    } else {
                        // §3.3: overwrite with `raise ex`.
                        self.heap.set(target, Node::Poisoned(exn.clone()));
                        self.stats.thunks_poisoned += 1;
                    }
                    self.stats.frames_trimmed += 1;
                }
                CFrame::IsExnCatch if !asynchronous => {
                    let t = self.bool_node(true);
                    return CStep::Continue(CControl::Return(t));
                }
                CFrame::UnsafeGetExnCatch if !asynchronous => {
                    let ev = self.alloc_exception_value(&exn);
                    let bad = HValue::Con(Symbol::intern("Bad"), vec![ev]);
                    let t = self.alloc_value(bad);
                    return CStep::Continue(CControl::Return(t));
                }
                CFrame::MapExnCatch { f, env } if !asynchronous => {
                    // Rewrite the representative exception through f: no
                    // synthetic application node needed — push the Apply
                    // frame directly and evaluate f.
                    let exn_node = self.alloc_exception_value(&exn);
                    stack.push(CFrame::RaiseEval);
                    stack.push(CFrame::Apply(exn_node));
                    return CStep::Continue(CControl::Eval(f, env));
                }
                _ => {
                    self.stats.frames_trimmed += 1;
                }
            }
        }
    }
}

/// Rewrites every node reference the compiled control register holds —
/// the minor collector's evacuation hook (`f` is idempotent).
fn rewrite_ccontrol(control: &mut CControl, f: &mut dyn FnMut(NodeId) -> NodeId) {
    match control {
        CControl::Eval(_, env) => env.update_nodes(f),
        CControl::Enter(n) | CControl::Return(n) => *n = f(*n),
        CControl::Raising(_) => {}
    }
}

/// Rewrites every node reference a compiled stack frame holds.
fn rewrite_cframe(frame: &mut CFrame, f: &mut dyn FnMut(NodeId) -> NodeId) {
    match frame {
        CFrame::Update(n) | CFrame::Apply(n) => *n = f(*n),
        CFrame::Select { env, .. }
        | CFrame::SeqSecond { env, .. }
        | CFrame::MapExnCatch { env, .. } => env.update_nodes(f),
        CFrame::PrimArgs { env, results, .. } => {
            env.update_nodes(f);
            for r in results.iter_mut().flatten() {
                *r = f(*r);
            }
        }
        CFrame::RaiseEval
        | CFrame::RaisePayload { .. }
        | CFrame::IsExnCatch
        | CFrame::UnsafeGetExnCatch
        | CFrame::Catch => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::compile_program;
    use crate::machine::{MachineConfig, Stats};
    use crate::MEnv;
    use std::rc::Rc;
    use urk_syntax::{desugar_expr, desugar_program, parse_expr_src, parse_program, DataEnv};

    fn compiled_render(prog_src: &str, query: &str) -> String {
        let mut data = DataEnv::new();
        let prog = desugar_program(&parse_program(prog_src).expect("parses"), &mut data)
            .expect("desugars");
        let code = Arc::new(compile_program(&prog.binds));
        let mut m = Machine::new(MachineConfig::default());
        m.link_code(code);
        let e = desugar_expr(&parse_expr_src(query).expect("parses"), &data).expect("desugars");
        match m.eval_code_expr(&e, false).expect("no machine error") {
            Outcome::Value(n) => m.render(n, 16),
            Outcome::Caught(e) | Outcome::Uncaught(e) => format!("(raise {e})"),
        }
    }

    fn tree_render(prog_src: &str, query: &str) -> String {
        let mut data = DataEnv::new();
        let prog = desugar_program(&parse_program(prog_src).expect("parses"), &mut data)
            .expect("desugars");
        let mut m = Machine::new(MachineConfig::default());
        let env = m.bind_recursive(&prog.binds, &MEnv::empty());
        let e = desugar_expr(&parse_expr_src(query).expect("parses"), &data).expect("desugars");
        match m.eval(Rc::new(e), &env, false).expect("no machine error") {
            Outcome::Value(n) => m.render(n, 16),
            Outcome::Caught(e) | Outcome::Uncaught(e) => format!("(raise {e})"),
        }
    }

    fn agree(prog: &str, query: &str) {
        assert_eq!(
            tree_render(prog, query),
            compiled_render(prog, query),
            "{query}"
        );
    }

    #[test]
    fn async_delivery_at_every_step_of_a_protected_episode_is_caught() {
        // Regression (found by `urk fuzz`), compiled twin of the tree
        // machine's test: the catch mark must protect the episode up to
        // and including the step on which the answer is returned.
        let data = DataEnv::new();
        let e = desugar_expr(
            &parse_expr_src("seq ((\\x -> x) (19 / 28)) (case Just 3 of { Just v -> 21 })")
                .expect("parses"),
            &data,
        )
        .expect("desugars");
        for at in 1..=64u64 {
            let mut m = Machine::new(MachineConfig {
                event_schedule: vec![(at, Exception::Interrupt)],
                ..MachineConfig::default()
            });
            m.link_code(Arc::new(compile_program(&[])));
            match m.eval_code_expr(&e, true).expect("no machine error") {
                // A value means the episode finished before the delivery
                // point (the event is still pending, so rendering would
                // absorb it — don't).
                Outcome::Value(_) => assert!(
                    m.stats().steps < at,
                    "episode returned a value past the delivery at step {at}"
                ),
                Outcome::Caught(Exception::Interrupt) => {}
                other => panic!("delivery at step {at} produced {other:?}"),
            }
        }
    }

    #[test]
    fn successive_queries_on_one_machine_address_the_extension_correctly() {
        // Regression: the second query compiles into an extension that
        // already holds the first one's ops/kids/arms/strs, and every
        // absolute index must account for that exactly once. Each query
        // exercises all four side tables (constructors, case arms, and
        // string literals).
        let mut data = DataEnv::new();
        let prog = desugar_program(
            &parse_program("classify n = case n of { 0 -> \"zero\"; m -> \"other\" }")
                .expect("parses"),
            &mut data,
        )
        .expect("desugars");
        let code = Arc::new(compile_program(&prog.binds));
        let mut m = Machine::new(MachineConfig::default());
        m.link_code(code);
        for (query, want) in [
            (
                "case classify 0 of { \"zero\" -> Just 1; s -> Nothing }",
                "Just 1",
            ),
            (
                "case classify 5 of { \"zero\" -> Just 1; s -> Nothing }",
                "Nothing",
            ),
            (
                "case classify 0 of { \"zero\" -> Just 2; s -> Nothing }",
                "Just 2",
            ),
        ] {
            let e = desugar_expr(&parse_expr_src(query).expect("parses"), &data).expect("desugars");
            let got = match m.eval_code_expr(&e, false).expect("no machine error") {
                Outcome::Value(n) => m.render(n, 16),
                Outcome::Caught(e) | Outcome::Uncaught(e) => format!("(raise {e})"),
            };
            assert_eq!(got, want, "{query}");
        }
    }

    #[test]
    fn compiled_arithmetic_and_structures() {
        agree("id x = x", "1 + 2 * 3");
        agree("id x = x", "[1, 2]");
        agree("id x = x", r#"strAppend "ab" "cd""#);
        agree("id x = x", "if 1 < 2 then 10 else 20");
        agree("id x = x", "(id 1, id 'a')");
    }

    #[test]
    fn compiled_globals_and_recursion() {
        agree(
            "fib n = if n < 2 then n else fib (n - 1) + fib (n - 2)",
            "fib 15",
        );
        agree("double x = x + x\nten = double 5", "ten + double 100");
    }

    #[test]
    fn compiled_letrec_and_case_dispatch() {
        agree(
            "id x = x",
            "let { mk = \\n -> if n == 0 then [] else n : mk (n - 1)
                 ; len = \\xs -> case xs of { [] -> 0; y:ys -> 1 + len ys } }
             in len (mk 100)",
        );
        agree("id x = x", "case 'x' of { 'a' -> 1; 'x' -> 2; c -> 3 }");
        agree("id x = x", r#"case "hi" of { "lo" -> 1; "hi" -> 2 }"#);
        agree("id x = x", "case Nothing of { Just n -> n }");
    }

    #[test]
    fn compiled_exceptions_trim_and_poison() {
        agree("id x = x", "1/0");
        agree("id x = x", r#"raise (UserError "Urk")"#);
        agree("id x = x", "raise (UserError (showInt (1/0)))");
        agree("id x = x", r#"mapException (\x -> UserError "Urk") (1/0)"#);
        agree("id x = x", "unsafeIsException (1/0)");
        agree("id x = x", "unsafeIsException 3");
        agree(
            "zipWith f [] [] = []\n\
             zipWith f (x:xs) (y:ys) = f x y : zipWith f xs ys\n\
             zipWith f xs ys = raise (UserError \"Unequal lists\")",
            "zipWith (/) [1, 2] [1, 0]",
        );
    }

    #[test]
    fn compiled_laziness_and_sharing() {
        agree("id x = x", r"(\x -> 3) (1/0)");
        agree("id x = x", "let x = 1/0 in 42");
        let mut m = Machine::new(MachineConfig::default());
        m.link_code(Arc::new(compile_program(&[])));
        let data = DataEnv::new();
        let e = desugar_expr(
            &parse_expr_src("let x = 10 * 10 in x + x").expect("parses"),
            &data,
        )
        .expect("desugars");
        let out = m.eval_code_expr(&e, false).expect("no machine error");
        assert!(matches!(out, Outcome::Value(_)));
        assert_eq!(m.stats().thunk_updates, 1, "shared thunk forced once");
    }

    #[test]
    fn compiled_async_interrupt_restores_thunks_and_resumes() {
        let mut m = Machine::new(MachineConfig {
            event_schedule: vec![(1_000, Exception::Interrupt)],
            ..MachineConfig::default()
        });
        m.link_code(Arc::new(compile_program(&[])));
        let data = DataEnv::new();
        let e = desugar_expr(
            &parse_expr_src("let f = \\n -> if n == 0 then 42 else f (n - 1) in f 100000")
                .expect("parses"),
            &data,
        )
        .expect("desugars");
        // A shared suspension (as the tree test does with `alloc_expr`),
        // so the §5.1 restore is observable and resumable.
        let work = m.alloc_code_thunk(&e);
        let first = m.eval_node(work, true).expect("no machine error");
        assert!(matches!(first, Outcome::Caught(Exception::Interrupt)));
        assert!(m.stats().thunks_restored >= 1, "{:?}", m.stats());
        assert_eq!(m.stats().thunks_poisoned, 0);
        assert!(m.audit_heap().is_consistent(), "{:?}", m.audit_heap());
        // The schedule is exhausted; evaluation resumes and completes.
        let second = m.eval_node(work, true).expect("no machine error");
        let Outcome::Value(n) = second else {
            panic!("resumed evaluation should complete, got {second:?}")
        };
        assert_eq!(m.render(n, 4), "42");
    }

    #[test]
    fn compiled_blackhole_detection() {
        assert_eq!(
            compiled_render("id x = x", "let black = black + 1 in black"),
            "(raise NonTermination)"
        );
    }

    #[test]
    fn compiled_gc_under_low_threshold_preserves_results() {
        let mut data = DataEnv::new();
        let prog = desugar_program(
            &parse_program(
                "mk n = if n == 0 then [] else n : mk (n - 1)\n\
                 len xs = case xs of { [] -> 0; y:ys -> 1 + len ys }\n\
                 go i acc = if i == 0 then acc else go (i - 1) (acc + len (mk 50))",
            )
            .expect("parses"),
            &mut data,
        )
        .expect("desugars");
        let mut m = Machine::new(MachineConfig {
            gc_threshold: 2_000,
            ..MachineConfig::default()
        });
        m.link_code(Arc::new(compile_program(&prog.binds)));
        let e =
            desugar_expr(&parse_expr_src("go 100 0").expect("parses"), &data).expect("desugars");
        let out = m.eval_code_expr(&e, false).expect("no machine error");
        let Outcome::Value(n) = out else {
            panic!("{out:?}")
        };
        assert_eq!(m.render(n, 4), "5000");
        assert!(m.stats().gc_runs >= 1, "{:?}", m.stats());
        assert!(m.stats().gc_freed > 0);
    }

    #[test]
    fn compiled_seeded_order_matches_tree_backend() {
        // Same seed, same program: the Seeded policy must surface the same
        // representative exception on both backends (one rng draw per
        // binary strict primitive).
        for seed in 0..16 {
            let cfg = MachineConfig {
                order: OrderPolicy::Seeded(seed),
                ..MachineConfig::default()
            };
            let data = DataEnv::new();
            let e = desugar_expr(
                &parse_expr_src(
                    r#"((1/0) + raise (UserError "a")) * ((2/0) - raise (UserError "b"))"#,
                )
                .expect("parses"),
                &data,
            )
            .expect("desugars");
            let mut mt = Machine::new(cfg.clone());
            let t = mt
                .eval(Rc::new(e.clone()), &MEnv::empty(), true)
                .expect("no machine error");
            let mut mc = Machine::new(cfg);
            mc.link_code(Arc::new(compile_program(&[])));
            let c = mc.eval_code_expr(&e, true).expect("no machine error");
            let (Outcome::Caught(a), Outcome::Caught(b)) = (t, c) else {
                panic!("both catch");
            };
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn compiled_stats_tag_backend_and_compile_cost() {
        let mut m = Machine::new(MachineConfig::default());
        assert_eq!(m.stats().backend, Backend::Tree);
        m.link_code(Arc::new(compile_program(&[])));
        assert_eq!(m.stats().backend, Backend::Compiled);
        let data = DataEnv::new();
        let e = desugar_expr(&parse_expr_src("1 + 2").expect("parses"), &data).expect("desugars");
        let _ = m.eval_code_expr(&e, false).expect("no machine error");
        assert!(m.stats().compile_ops >= 3, "{:?}", m.stats());
        m.reset_stats();
        assert_eq!(m.stats().backend, Backend::Compiled, "tag survives reset");
        assert_eq!(m.stats().compile_ops, 0);
        let _ = Stats::default();
    }

    #[test]
    fn shared_arc_code_serves_multiple_machines() {
        let mut data = DataEnv::new();
        let prog = desugar_program(
            &parse_program("fib n = if n < 2 then n else fib (n - 1) + fib (n - 2)")
                .expect("parses"),
            &mut data,
        )
        .expect("desugars");
        let code = Arc::new(compile_program(&prog.binds));
        let e = desugar_expr(&parse_expr_src("fib 12").expect("parses"), &data).expect("desugars");
        let mut outs = Vec::new();
        for _ in 0..3 {
            let mut m = Machine::new(MachineConfig::default());
            m.link_code(Arc::clone(&code));
            let out = m.eval_code_expr(&e, false).expect("no machine error");
            let Outcome::Value(n) = out else {
                panic!("{out:?}")
            };
            outs.push(m.render(n, 4));
        }
        assert_eq!(outs, vec!["144", "144", "144"]);
        assert_eq!(Arc::strong_count(&code), 1, "machines dropped their links");
    }
}
