//! The generational graph-reduction heap.
//!
//! Two regions plus an unboxed immediate class, all addressed by a tagged
//! 32-bit [`NodeId`]:
//!
//! * **Immediates** — small integers and nullary constructors live directly
//!   in the id word (tag bit [`TAG_IMM`]); the hot path allocates nothing
//!   for them. This supersedes the old intern table.
//! * **Nursery** — a bump-allocated vector ([`TAG_AUX`] tag). Evaluation
//!   allocates here; a *minor* collection evacuates the live nursery graph
//!   into the tenured space and resets the bump pointer.
//! * **Tenured** — the old space: a growable arena with a free list swept
//!   by the full-heap *major* collector. Embedder-held nodes (program
//!   environments, resumable episode thunks, MVar slots) are allocated
//!   tenured directly so their ids stay stable across collections.
//!
//! Node kinds implement the paper's §3.3 machinery directly:
//!
//! * a [`Node::Thunk`] under evaluation is overwritten with a
//!   [`Node::Blackhole`] (avoiding the "celebrated space leak");
//! * when a *synchronous* exception trims the stack past the thunk's update
//!   frame, the black hole is overwritten with [`Node::Poisoned`] — "if the
//!   thunk is evaluated again, the same exception will be raised again";
//! * when an *asynchronous* exception trims the stack (§5.1), the black
//!   hole is restored to a resumable thunk instead — the value can still be
//!   computed later.
//!
//! Evacuation preserves those invariants by construction: each nursery cell
//! is copied exactly once and replaced with a [`Node::Forwarded`] marker, so
//! every reference to an in-flight thunk (its `Update` frame, environments,
//! the machine's roots) is redirected to the *same* tenured copy — §5.1
//! resumable-thunk identity and §5.2 detectable black holes survive the
//! move. The remembered set records every tenured cell that may point into
//! the nursery, so minor collections never scan the whole old space.

use std::collections::HashSet;
use std::mem;
use std::rc::Rc;

use urk_syntax::core::Expr;
use urk_syntax::{Exception, Symbol};

use crate::code::CodeId;
use crate::env::{CEnv, MEnv};

/// Tag bit marking an immediate (unboxed) value packed into the id word.
pub const TAG_IMM: u32 = 1 << 31;
/// Secondary tag bit: with [`TAG_IMM`] it selects nullary-constructor
/// immediates (over small-int immediates); alone it marks a nursery
/// reference (over a tenured one).
pub const TAG_AUX: u32 = 1 << 30;
/// Mask for the 30-bit payload: an arena index, a small int, or a symbol.
pub const PAYLOAD: u32 = (1 << 30) - 1;

/// Smallest integer representable as an immediate.
pub const IMM_INT_MIN: i64 = -(1 << 29);
/// Largest integer representable as an immediate.
pub const IMM_INT_MAX: i64 = (1 << 29) - 1;

/// A tagged heap reference: an immediate value, a nursery index, or a
/// tenured index (see the module docs for the encoding).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// True for unboxed immediates (small ints and nullary constructors).
    #[inline]
    pub fn is_imm(self) -> bool {
        self.0 & TAG_IMM != 0
    }

    /// True for nursery references.
    #[inline]
    pub fn is_nursery(self) -> bool {
        self.0 & (TAG_IMM | TAG_AUX) == TAG_AUX
    }

    /// True for tenured references.
    #[inline]
    pub fn is_tenured(self) -> bool {
        self.0 & (TAG_IMM | TAG_AUX) == 0
    }

    /// Packs a small integer into an immediate id; `None` if out of range.
    #[inline]
    pub fn imm_int(n: i64) -> Option<NodeId> {
        if (IMM_INT_MIN..=IMM_INT_MAX).contains(&n) {
            Some(NodeId(TAG_IMM | (n as u32 & PAYLOAD)))
        } else {
            None
        }
    }

    /// Packs a nullary constructor into an immediate id; `None` if the
    /// symbol's interner index overflows the payload (practically never).
    #[inline]
    pub fn imm_con(sym: Symbol) -> Option<NodeId> {
        let raw = sym.raw();
        if raw <= PAYLOAD {
            Some(NodeId(TAG_IMM | TAG_AUX | raw))
        } else {
            None
        }
    }

    /// Decodes an immediate int (30-bit sign extension).
    #[inline]
    pub fn as_imm_int(self) -> Option<i64> {
        if self.0 & (TAG_IMM | TAG_AUX) == TAG_IMM {
            Some(((((self.0 & PAYLOAD) << 2) as i32) >> 2) as i64)
        } else {
            None
        }
    }

    /// Decodes an immediate nullary constructor.
    #[inline]
    pub fn as_imm_con(self) -> Option<Symbol> {
        if self.0 & (TAG_IMM | TAG_AUX) == TAG_IMM | TAG_AUX {
            Some(Symbol::from_raw(self.0 & PAYLOAD))
        } else {
            None
        }
    }

    /// The arena index for nursery/tenured references.
    #[inline]
    pub(crate) fn index(self) -> usize {
        (self.0 & PAYLOAD) as usize
    }
}

/// A heap node.
#[derive(Clone, Debug)]
pub enum Node {
    /// An unevaluated suspension.
    Thunk { expr: Rc<Expr>, env: MEnv },
    /// A thunk currently under evaluation. Keeps its payload so an
    /// asynchronous interruption can restore it (§5.1).
    Blackhole { expr: Rc<Expr>, env: MEnv },
    /// An unevaluated suspension of *compiled* code: the same semantics
    /// as [`Node::Thunk`] with a `CodeId` instead of an `Rc<Expr>`.
    CThunk { code: CodeId, env: CEnv },
    /// A compiled thunk under evaluation; restorable exactly like
    /// [`Node::Blackhole`] (§5.1 is representation-independent).
    CBlackhole { code: CodeId, env: CEnv },
    /// An indirection to the updated value.
    Ind(NodeId),
    /// A weak-head-normal-form value.
    Value(HValue),
    /// A thunk whose evaluation raised a synchronous exception; entering it
    /// re-raises (§3.3).
    Poisoned(Exception),
    /// A reclaimed tenured cell on the allocator's free list.
    Free { next: Option<NodeId> },
    /// A nursery cell evacuated by a minor collection, pointing at its
    /// tenured copy. Only ever observed *during* a collection; one found by
    /// [`Heap::audit`] afterwards is a stale forwarding pointer.
    Forwarded(NodeId),
}

/// A weak-head-normal-form value.
#[derive(Clone, Debug)]
pub enum HValue {
    /// A boxed integer (immediates cover `IMM_INT_MIN..=IMM_INT_MAX`).
    Int(i64),
    Char(char),
    Str(Rc<str>),
    /// A saturated constructor with lazy fields. Nullary constructors are
    /// normally immediate; a boxed nullary `Con` is still legal.
    Con(Symbol, Vec<NodeId>),
    /// A function closure.
    Fun {
        param: Symbol,
        body: Rc<Expr>,
        env: MEnv,
    },
    /// A compiled function closure; the body's code was compiled
    /// expecting its argument as the top environment slot.
    CFun {
        body: CodeId,
        env: CEnv,
    },
}

/// A weak-head-normal-form view of a node, unifying unboxed immediates
/// with boxed [`HValue`]s. Produced by [`Heap::whnf`].
#[derive(Debug)]
pub enum Whnf<'a> {
    Int(i64),
    Char(char),
    Str(&'a Rc<str>),
    Con(Symbol, &'a [NodeId]),
    Fun {
        param: Symbol,
        body: &'a Rc<Expr>,
        env: &'a MEnv,
    },
    CFun {
        body: CodeId,
        env: &'a CEnv,
    },
}

/// What a minor collection did: how many nursery cells were promoted into
/// the tenured space and how many died in the nursery.
#[derive(Copy, Clone, Debug, Default)]
pub struct MinorOutcome {
    /// Live nursery cells evacuated into the tenured space.
    pub promoted: u64,
    /// Nursery cells reclaimed (dead at collection time).
    pub freed: u64,
}

/// The root-rewriting callback [`Heap::collect_minor`] hands back to its
/// caller: it must apply the supplied evacuation function to every root
/// the caller holds.
pub type RootRewriter<'a> = dyn FnMut(&mut dyn FnMut(NodeId) -> NodeId) + 'a;

/// The generational heap: a bump-allocated nursery, a tenured arena with a
/// free list, and the remembered set of tenured cells that may hold
/// nursery references.
#[derive(Default, Debug)]
pub struct Heap {
    tenured: Vec<Node>,
    free: Option<NodeId>,
    tenured_live: usize,
    nursery: Vec<Node>,
    /// Tenured cells that may reference the nursery (duplicates allowed;
    /// consumed by the next minor collection).
    remembered: Vec<NodeId>,
    /// Cumulative tenured allocations served from the free list (the
    /// machine samples deltas into `Stats::freelist_reuses`).
    reuses: u64,
}

impl Heap {
    /// An empty heap.
    pub fn new() -> Heap {
        Heap::default()
    }

    /// Bump-allocates a node in the nursery.
    #[inline]
    pub fn alloc(&mut self, node: Node) -> NodeId {
        let idx = self.nursery.len();
        assert!(idx < PAYLOAD as usize, "nursery exhausted");
        self.nursery.push(node);
        NodeId(TAG_AUX | idx as u32)
    }

    fn alloc_tenured_raw(&mut self, node: Node) -> NodeId {
        self.tenured_live += 1;
        if let Some(id) = self.free {
            let Node::Free { next } = self.tenured[id.index()] else {
                unreachable!("free list corrupted");
            };
            self.free = next;
            self.reuses += 1;
            self.tenured[id.index()] = node;
            return id;
        }
        let idx = self.tenured.len();
        assert!(idx < PAYLOAD as usize, "tenured space exhausted");
        self.tenured.push(node);
        NodeId(idx as u32)
    }

    /// Allocates directly in the tenured space, for nodes the embedder
    /// holds across evaluations: the returned id is stable (the tenured
    /// collector never moves cells). The cell is added to the remembered
    /// set in case `node` carries nursery references.
    pub fn alloc_tenured(&mut self, node: Node) -> NodeId {
        let id = self.alloc_tenured_raw(node);
        self.remembered.push(id);
        id
    }

    /// Moves the representative of `id` out of the nursery, returning a
    /// stable tenured (or immediate) id. Used to tenure evaluation results
    /// that escape to the embedder.
    pub fn promote(&mut self, id: NodeId) -> NodeId {
        let r = self.resolve(id);
        if !r.is_nursery() {
            return r;
        }
        let i = r.index();
        let node = mem::replace(&mut self.nursery[i], Node::Free { next: None });
        let t = self.alloc_tenured(node);
        self.nursery[i] = Node::Ind(t);
        t
    }

    /// Total heap size in cells across both regions (including free
    /// tenured cells).
    pub fn len(&self) -> usize {
        self.tenured.len() + self.nursery.len()
    }

    /// Tenured arena size in cells (for the major collector's mark table).
    pub fn tenured_len(&self) -> usize {
        self.tenured.len()
    }

    /// Cells currently in the nursery (the minor-collection trigger).
    pub fn nursery_len(&self) -> usize {
        self.nursery.len()
    }

    /// Cumulative tenured allocations served from the free list.
    pub(crate) fn reuses(&self) -> u64 {
        self.reuses
    }

    /// Number of live (non-free) cells across both regions.
    pub fn live(&self) -> usize {
        self.tenured_live + self.nursery.len()
    }

    /// Installs the tenured free list after a major sweep.
    pub(crate) fn set_free_list(&mut self, head: Option<NodeId>, freed: u64) {
        self.free = head;
        self.tenured_live = self.tenured_live.saturating_sub(freed as usize);
    }

    /// The current free-list head (for the major collector).
    pub(crate) fn free_list(&self) -> Option<NodeId> {
        self.free
    }

    /// Major-sweep write: turns a tenured cell into a free-list link
    /// without touching the remembered set (a freed cell has no edges).
    pub(crate) fn set_swept(&mut self, id: NodeId, next: Option<NodeId>) {
        debug_assert!(id.is_tenured());
        self.tenured[id.index()] = Node::Free { next };
    }

    /// True if nothing has been allocated.
    pub fn is_empty(&self) -> bool {
        self.tenured.is_empty() && self.nursery.is_empty()
    }

    /// Reads a node (following no indirections).
    ///
    /// # Panics
    ///
    /// Panics on an immediate id: immediates have no cell. Callers decode
    /// them first (or go through [`Heap::whnf`]).
    #[inline]
    pub fn get(&self, id: NodeId) -> &Node {
        if id.is_nursery() {
            &self.nursery[id.index()]
        } else {
            assert!(id.is_tenured(), "get() on immediate id {:#010x}", id.0);
            &self.tenured[id.index()]
        }
    }

    /// Overwrites a node. Writing a tenured cell records it in the
    /// remembered set (the new node may carry nursery references).
    #[inline]
    pub fn set(&mut self, id: NodeId, node: Node) {
        if id.is_nursery() {
            self.nursery[id.index()] = node;
        } else {
            assert!(id.is_tenured(), "set() on immediate id {:#010x}", id.0);
            self.tenured[id.index()] = node;
            self.remembered.push(id);
        }
    }

    /// Follows indirections to the representative node (immediates are
    /// their own representative).
    #[inline]
    pub fn resolve(&self, mut id: NodeId) -> NodeId {
        while !id.is_imm() {
            match self.get(id) {
                Node::Ind(next) => id = *next,
                _ => break,
            }
        }
        id
    }

    /// The weak-head-normal-form view of `id`, following indirections and
    /// decoding immediates; `None` if the node is not in WHNF.
    pub fn whnf(&self, id: NodeId) -> Option<Whnf<'_>> {
        if let Some(n) = id.as_imm_int() {
            return Some(Whnf::Int(n));
        }
        if let Some(sym) = id.as_imm_con() {
            return Some(Whnf::Con(sym, &[]));
        }
        match self.get(self.resolve(id)) {
            Node::Value(v) => Some(match v {
                HValue::Int(n) => Whnf::Int(*n),
                HValue::Char(c) => Whnf::Char(*c),
                HValue::Str(s) => Whnf::Str(s),
                HValue::Con(sym, fields) => Whnf::Con(*sym, fields),
                HValue::Fun { param, body, env } => Whnf::Fun {
                    param: *param,
                    body,
                    env,
                },
                HValue::CFun { body, env } => Whnf::CFun { body: *body, env },
            }),
            _ => None,
        }
    }

    /// Evacuates one reference for the minor collector: immediates and
    /// tenured ids pass through (making the function idempotent); a nursery
    /// id is chased through `Ind`/`Forwarded` chains, its representative is
    /// copied into the tenured space exactly once, and every chain cell is
    /// backpatched to forward to the copy — preserving sharing and §5.1
    /// thunk identity.
    fn evacuate(&mut self, id: NodeId, queue: &mut Vec<NodeId>) -> NodeId {
        if !id.is_nursery() {
            return id;
        }
        let mut chain: Vec<u32> = Vec::new();
        let mut cur = id;
        let dest = loop {
            if !cur.is_nursery() {
                break cur;
            }
            let i = cur.index();
            match &self.nursery[i] {
                Node::Forwarded(d) => break *d,
                Node::Ind(next) => {
                    assert!(
                        chain.len() <= self.nursery.len(),
                        "nursery indirection cycle"
                    );
                    chain.push(i as u32);
                    cur = *next;
                }
                _ => {
                    let node = mem::replace(&mut self.nursery[i], Node::Forwarded(NodeId(0)));
                    let t = self.alloc_tenured_raw(node);
                    self.nursery[i] = Node::Forwarded(t);
                    queue.push(t);
                    break t;
                }
            }
        };
        for i in chain {
            self.nursery[i as usize] = Node::Forwarded(dest);
        }
        dest
    }

    /// Runs a minor collection: evacuates the nursery graph reachable from
    /// the machine roots and the remembered set into the tenured space,
    /// then resets the nursery bump pointer.
    ///
    /// `rewrite_roots` must apply the supplied evacuation function to every
    /// root the caller holds (machine roots, the current control, every
    /// stack frame) — any nursery id not rewritten is dangling afterwards.
    pub fn collect_minor(&mut self, rewrite_roots: &mut RootRewriter<'_>) -> MinorOutcome {
        let nursery_before = self.nursery.len() as u64;
        let tenured_live_before = self.tenured_live;
        // The remembered set seeds the scan queue: those tenured cells may
        // hold nursery references and must be scavenged even though no
        // root reaches the nursery through them directly.
        let mut queue = mem::take(&mut self.remembered);
        rewrite_roots(&mut |id| self.evacuate(id, &mut queue));
        // Cheney-style scan: every queued tenured cell gets its children
        // evacuated; evacuation queues the new copies in turn.
        while let Some(t) = queue.pop() {
            debug_assert!(t.is_tenured());
            let idx = t.index();
            // Take the node out so its children can be rewritten while the
            // evacuator mutates the heap. The placeholder is *not* on the
            // free list, so a freelist allocation cannot hand it out.
            let mut node = mem::replace(&mut self.tenured[idx], Node::Free { next: None });
            rewrite_node_children(&mut node, &mut |id| self.evacuate(id, &mut queue));
            self.tenured[idx] = node;
        }
        self.nursery.clear();
        let promoted = (self.tenured_live - tenured_live_before) as u64;
        MinorOutcome {
            promoted,
            freed: nursery_before - promoted,
        }
    }

    /// Chaos hook: plants a stale [`Node::Forwarded`] cell in the tenured
    /// space, modelling an evacuation that leaked its forwarding pointer
    /// into the old space. Benign to execution (the cell is unreachable)
    /// but a guaranteed [`Heap::audit`] finding — the self-test that the
    /// generational audit actually detects forwarding corruption.
    pub fn plant_stale_forwarding(&mut self) {
        let _ = self.alloc_tenured_raw(Node::Forwarded(NodeId(0)));
    }

    /// Audits the heap's structural invariants (see [`HeapAudit`]).
    ///
    /// Only meaningful *between* evaluation episodes: mid-episode black
    /// holes are the normal marker for thunks under evaluation, and a run
    /// abandoned by `Err(StepLimit)` legitimately strands them. After a
    /// completed episode — including one trimmed by an asynchronous
    /// exception — every black hole must have been updated, poisoned, or
    /// restored (§5.1), so `blackholes` must be zero. Generational rules:
    /// no `Forwarded` cell may survive a collection, the nursery holds no
    /// free cells, every tenured→nursery edge is remembered, and each
    /// region's free/live accounting agrees with its arena.
    pub fn audit(&self) -> HeapAudit {
        fn push(
            findings: &mut Vec<AuditFinding>,
            suppressed: &mut usize,
            node: Option<NodeId>,
            kind: &'static str,
            reason: String,
        ) {
            if findings.len() < MAX_AUDIT_FINDINGS {
                findings.push(AuditFinding { node, kind, reason });
            } else {
                *suppressed += 1;
            }
        }
        let mut blackholes = 0usize;
        let mut free_nodes = 0usize;
        let mut findings: Vec<AuditFinding> = Vec::new();
        let mut suppressed = 0usize;
        let remembered: HashSet<u32> = self.remembered.iter().map(|id| id.0).collect();
        // Tenured region.
        for (i, node) in self.tenured.iter().enumerate() {
            let id = NodeId(i as u32);
            match node {
                Node::Free { .. } => {
                    free_nodes += 1;
                    continue;
                }
                Node::Blackhole { .. } | Node::CBlackhole { .. } => {
                    blackholes += 1;
                    push(
                        &mut findings,
                        &mut suppressed,
                        Some(id),
                        node_kind_name(node),
                        "stranded black hole: the in-flight thunk was neither updated, \
                         poisoned (§3.3), nor restored (§5.1)"
                            .to_string(),
                    );
                }
                Node::Forwarded(_) => {
                    push(
                        &mut findings,
                        &mut suppressed,
                        Some(id),
                        "Forwarded",
                        "stale forwarding pointer in the tenured space: evacuation \
                         must never leak Forwarded cells past a collection"
                            .to_string(),
                    );
                }
                _ => {}
            }
            let nursery_child = self.audit_children(&mut findings, &mut suppressed, id, node);
            if nursery_child && !remembered.contains(&id.0) {
                push(
                    &mut findings,
                    &mut suppressed,
                    Some(id),
                    node_kind_name(node),
                    "remembered-set gap: tenured cell holds a nursery reference but \
                     is not in the remembered set"
                        .to_string(),
                );
            }
        }
        // Nursery region.
        for (i, node) in self.nursery.iter().enumerate() {
            let id = NodeId(TAG_AUX | i as u32);
            match node {
                Node::Blackhole { .. } | Node::CBlackhole { .. } => {
                    blackholes += 1;
                    push(
                        &mut findings,
                        &mut suppressed,
                        Some(id),
                        node_kind_name(node),
                        "stranded black hole in the nursery: the in-flight thunk was \
                         neither updated, poisoned (§3.3), nor restored (§5.1)"
                            .to_string(),
                    );
                }
                Node::Free { .. } => {
                    push(
                        &mut findings,
                        &mut suppressed,
                        Some(id),
                        "Free",
                        "free cell in the bump nursery: nursery cells are reclaimed \
                         wholesale by minor collections, never individually"
                            .to_string(),
                    );
                }
                Node::Forwarded(_) => {
                    push(
                        &mut findings,
                        &mut suppressed,
                        Some(id),
                        "Forwarded",
                        "stale forwarding pointer in the nursery: a minor collection \
                         must clear the nursery it evacuated"
                            .to_string(),
                    );
                }
                _ => {}
            }
            self.audit_children(&mut findings, &mut suppressed, id, node);
        }
        if suppressed > 0 {
            findings.push(AuditFinding {
                node: None,
                kind: "summary",
                reason: format!(
                    "… and {suppressed} more findings (report capped at {MAX_AUDIT_FINDINGS})"
                ),
            });
        }
        // Walk the free list with a cycle guard: a corrupted list must
        // surface as an inconsistency, not an infinite loop.
        let mut free_list_len = 0usize;
        let mut cursor = self.free;
        while let Some(id) = cursor {
            free_list_len += 1;
            if free_list_len > self.tenured.len() {
                findings.push(AuditFinding {
                    node: Some(id),
                    kind: "Free",
                    reason: "free-list cycle: the walk revisited cells past the arena size"
                        .to_string(),
                });
                break;
            }
            cursor = match &self.tenured[id.index()] {
                Node::Free { next } => *next,
                other => {
                    findings.push(AuditFinding {
                        node: Some(id),
                        kind: node_kind_name(other),
                        reason: "free-list corruption: the list reached a non-free cell"
                            .to_string(),
                    });
                    break;
                }
            };
        }
        if free_nodes != free_list_len {
            findings.push(AuditFinding {
                node: None,
                kind: "Free",
                reason: format!(
                    "free-cell mismatch: {free_nodes} free cells in the tenured arena \
                     but {free_list_len} reachable from the free list"
                ),
            });
        }
        let tenured_actual = self.tenured.len() - free_nodes;
        if self.tenured_live != tenured_actual {
            findings.push(AuditFinding {
                node: None,
                kind: "counter",
                reason: format!(
                    "live-counter drift: allocator believes {} live tenured cells, \
                     arena holds {tenured_actual}",
                    self.tenured_live
                ),
            });
        }
        HeapAudit {
            blackholes,
            free_nodes,
            free_list_len,
            live_count: self.tenured_live + self.nursery.len(),
            live_actual: tenured_actual + self.nursery.len(),
            nursery_nodes: self.nursery.len(),
            remembered_len: self.remembered.len(),
            findings,
        }
    }

    /// Audit helper: checks every child reference of `node` for dangling
    /// or freed targets. Returns true if any child is a nursery reference
    /// (the caller checks the remembered set for tenured parents).
    fn audit_children(
        &self,
        findings: &mut Vec<AuditFinding>,
        suppressed: &mut usize,
        id: NodeId,
        node: &Node,
    ) -> bool {
        let mut nursery_child = false;
        for_each_child(node, |c| {
            if c.is_imm() {
                return;
            }
            let (kind, reason) = if c.is_nursery() {
                nursery_child = true;
                if c.index() >= self.nursery.len() {
                    (
                        node_kind_name(node),
                        format!(
                            "dangling nursery reference {:#010x} past the nursery ({} cells)",
                            c.0,
                            self.nursery.len()
                        ),
                    )
                } else {
                    return;
                }
            } else if c.index() >= self.tenured.len() {
                (
                    node_kind_name(node),
                    format!(
                        "dangling tenured reference {} past the arena ({} cells)",
                        c.0,
                        self.tenured.len()
                    ),
                )
            } else if matches!(self.tenured[c.index()], Node::Free { .. }) {
                (
                    node_kind_name(node),
                    format!("live cell references freed tenured cell {}", c.0),
                )
            } else {
                return;
            };
            if findings.len() < MAX_AUDIT_FINDINGS {
                findings.push(AuditFinding {
                    node: Some(id),
                    kind,
                    reason,
                });
            } else {
                *suppressed += 1;
            }
        });
        nursery_child
    }
}

/// Rewrites every child reference of `node` in place through `f`. Shared
/// environment chunks are reachable from several nodes, so `f` must be
/// idempotent (the minor collector's evacuation function is).
pub(crate) fn rewrite_node_children(node: &mut Node, f: &mut dyn FnMut(NodeId) -> NodeId) {
    match node {
        Node::Thunk { env, .. } | Node::Blackhole { env, .. } => env.update_nodes(f),
        Node::CThunk { env, .. } | Node::CBlackhole { env, .. } => env.update_nodes(f),
        Node::Ind(n) => *n = f(*n),
        Node::Value(v) => match v {
            HValue::Con(_, fields) => {
                for x in fields.iter_mut() {
                    *x = f(*x);
                }
            }
            HValue::Fun { env, .. } => env.update_nodes(f),
            HValue::CFun { env, .. } => env.update_nodes(f),
            HValue::Int(_) | HValue::Char(_) | HValue::Str(_) => {}
        },
        Node::Poisoned(_) | Node::Free { .. } | Node::Forwarded(_) => {}
    }
}

/// Visits every child reference of `node` (read-only, for the audit).
fn for_each_child(node: &Node, mut f: impl FnMut(NodeId)) {
    match node {
        Node::Thunk { env, .. } | Node::Blackhole { env, .. } => env.for_each_node(f),
        Node::CThunk { env, .. } | Node::CBlackhole { env, .. } => env.for_each_node(f),
        Node::Ind(n) | Node::Forwarded(n) => f(*n),
        Node::Value(v) => match v {
            HValue::Con(_, fields) => {
                for x in fields {
                    f(*x);
                }
            }
            HValue::Fun { env, .. } => env.for_each_node(f),
            HValue::CFun { env, .. } => env.for_each_node(f),
            HValue::Int(_) | HValue::Char(_) | HValue::Str(_) => {}
        },
        Node::Poisoned(_) | Node::Free { .. } => {}
    }
}

/// Cap on per-node entries in [`HeapAudit::findings`]; past it a single
/// summary entry carries the remainder count.
pub const MAX_AUDIT_FINDINGS: usize = 16;

fn node_kind_name(n: &Node) -> &'static str {
    match n {
        Node::Thunk { .. } => "Thunk",
        Node::Blackhole { .. } => "Blackhole",
        Node::CThunk { .. } => "CThunk",
        Node::CBlackhole { .. } => "CBlackhole",
        Node::Ind(_) => "Ind",
        Node::Value(_) => "Value",
        Node::Poisoned(_) => "Poisoned",
        Node::Free { .. } => "Free",
        Node::Forwarded(_) => "Forwarded",
    }
}

/// One concrete inconsistency found by [`Heap::audit`]: which node (when
/// attributable to one), what kind of cell it was, and why it violates the
/// invariant — enough to diagnose a fuzz or soak counterexample without a
/// debugger.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditFinding {
    /// The offending cell, or `None` for whole-heap findings (counter
    /// drift, aggregate mismatches).
    pub node: Option<NodeId>,
    /// The node-kind name (`"Blackhole"`, `"Free"`, ...), `"counter"`, or
    /// `"summary"`.
    pub kind: &'static str,
    /// Human-readable explanation of the violated invariant.
    pub reason: String,
}

impl std::fmt::Display for AuditFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.node {
            Some(id) => write!(f, "node {:#010x} [{}]: {}", id.0, self.kind, self.reason),
            None => write!(f, "[{}]: {}", self.kind, self.reason),
        }
    }
}

/// A consistency report over the whole heap, produced by [`Heap::audit`].
///
/// The chaos driver checks this after every fault-injected episode: a
/// stranded black hole means an asynchronous trim failed to restore an
/// in-flight thunk (the §5.1 invariant), a stale `Forwarded` cell means an
/// evacuation leaked, a remembered-set gap means the next minor collection
/// would miss an edge, and a free-list/live-counter mismatch means the
/// allocator would misbehave on the next request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HeapAudit {
    /// Black-hole cells present (both regions). Must be zero between
    /// episodes.
    pub blackholes: usize,
    /// `Node::Free` cells present in the tenured arena.
    pub free_nodes: usize,
    /// Cells reachable by walking the free list (cycle-guarded).
    pub free_list_len: usize,
    /// The allocator's live counter (tenured live + nursery cells).
    pub live_count: usize,
    /// Actual non-free cells across both regions.
    pub live_actual: usize,
    /// Cells currently in the nursery.
    pub nursery_nodes: usize,
    /// Entries in the remembered set (duplicates included).
    pub remembered_len: usize,
    /// The concrete inconsistencies, one [`AuditFinding`] each (per-node
    /// entries capped at [`MAX_AUDIT_FINDINGS`]). Empty iff
    /// [`HeapAudit::is_consistent`] holds.
    pub findings: Vec<AuditFinding>,
}

impl HeapAudit {
    /// True if the heap is safe to reuse for another episode: no stranded
    /// black holes, no stale forwarding pointers, every tenured→nursery
    /// edge remembered, and each region's accounting in agreement with its
    /// arena.
    pub fn is_consistent(&self) -> bool {
        self.findings.is_empty() && self.blackholes == 0
    }

    /// The audit as a `Result`, for callers that want the old
    /// error-message shape: `Ok` when consistent, otherwise the rendered
    /// report (`Display`) as the error.
    ///
    /// # Errors
    ///
    /// The full multi-line report when any invariant is violated.
    pub fn into_result(self) -> Result<(), String> {
        if self.is_consistent() {
            Ok(())
        } else {
            Err(self.to_string())
        }
    }
}

/// Renders the structured report: one summary line with the counts, then
/// one line per finding. A consistent audit renders as a single line.
impl std::fmt::Display for HeapAudit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "heap audit: {} ({} blackholes, {} free / {} on free list, live {} counted / {} \
             actual, {} in nursery, {} remembered)",
            if self.is_consistent() {
                "consistent"
            } else {
                "INCONSISTENT"
            },
            self.blackholes,
            self.free_nodes,
            self.free_list_len,
            self.live_count,
            self.live_actual,
            self.nursery_nodes,
            self.remembered_len,
        )?;
        for finding in &self.findings {
            write!(f, "\n  - {finding}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_ints_round_trip_across_the_range() {
        for n in [IMM_INT_MIN, -1, 0, 1, 42, IMM_INT_MAX] {
            let id = NodeId::imm_int(n).expect("in range");
            assert!(id.is_imm());
            assert!(!id.is_nursery());
            assert!(!id.is_tenured());
            assert_eq!(id.as_imm_int(), Some(n), "{n}");
            assert_eq!(id.as_imm_con(), None);
        }
        assert_eq!(NodeId::imm_int(IMM_INT_MAX + 1), None);
        assert_eq!(NodeId::imm_int(IMM_INT_MIN - 1), None);
        assert_eq!(NodeId::imm_int(i64::MAX), None);
        assert_eq!(NodeId::imm_int(i64::MIN), None);
    }

    #[test]
    fn immediate_constructors_round_trip() {
        let t = Symbol::intern("True");
        let id = NodeId::imm_con(t).expect("interner index fits");
        assert!(id.is_imm());
        assert_eq!(id.as_imm_con(), Some(t));
        assert_eq!(id.as_imm_int(), None);
        // Distinct constructors get distinct immediates.
        let f = Symbol::intern("False");
        assert_ne!(NodeId::imm_con(f), Some(id));
    }

    #[test]
    fn region_tags_are_disjoint() {
        let mut heap = Heap::new();
        let n = heap.alloc(Node::Value(HValue::Int(1_000_000_000)));
        let t = heap.alloc_tenured(Node::Value(HValue::Int(2_000_000_000)));
        let i = NodeId::imm_int(7).unwrap();
        assert!(n.is_nursery() && !n.is_tenured() && !n.is_imm());
        assert!(t.is_tenured() && !t.is_nursery() && !t.is_imm());
        assert!(i.is_imm() && !i.is_nursery() && !i.is_tenured());
        assert!(matches!(heap.whnf(n), Some(Whnf::Int(1_000_000_000))));
        assert!(matches!(heap.whnf(t), Some(Whnf::Int(2_000_000_000))));
        assert!(matches!(heap.whnf(i), Some(Whnf::Int(7))));
    }

    #[test]
    fn alloc_get_set_resolve() {
        let mut heap = Heap::new();
        let a = heap.alloc(Node::Value(HValue::Int(1)));
        let b = heap.alloc(Node::Ind(a));
        let c = heap.alloc(Node::Ind(b));
        assert_eq!(heap.resolve(c), a);
        assert!(matches!(heap.whnf(c), Some(Whnf::Int(1))));
        heap.set(a, Node::Value(HValue::Int(2)));
        assert!(matches!(heap.whnf(c), Some(Whnf::Int(2))));
        assert_eq!(heap.len(), 3);
        assert!(!heap.is_empty());
    }

    #[test]
    fn minor_collection_promotes_roots_and_remembered_edges() {
        let mut heap = Heap::new();
        let kept = heap.alloc(Node::Value(HValue::Int(10)));
        let _dead = heap.alloc(Node::Value(HValue::Int(11)));
        let field = heap.alloc(Node::Value(HValue::Int(12)));
        // A tenured cell pointing into the nursery: `set` must remember it.
        let holder = heap.alloc_tenured(Node::Value(HValue::Int(0)));
        heap.set(
            holder,
            Node::Value(HValue::Con(Symbol::intern("Box"), vec![field])),
        );
        let mut root = kept;
        let outcome = heap.collect_minor(&mut |f| root = f(root));
        assert_eq!(outcome.promoted, 2, "kept + field survive");
        assert_eq!(outcome.freed, 1, "dead cell reclaimed");
        assert_eq!(heap.nursery_len(), 0);
        assert!(root.is_tenured());
        assert!(matches!(heap.whnf(root), Some(Whnf::Int(10))));
        let Some(Whnf::Con(_, fields)) = heap.whnf(holder) else {
            panic!("holder survives in place");
        };
        assert!(fields[0].is_tenured(), "remembered edge was evacuated");
        assert!(matches!(heap.whnf(fields[0]), Some(Whnf::Int(12))));
        assert!(heap.audit().is_consistent(), "{}", heap.audit());
    }

    #[test]
    fn evacuation_preserves_sharing_and_collapses_indirection_chains() {
        let mut heap = Heap::new();
        let v = heap.alloc(Node::Value(HValue::Int(5)));
        let i1 = heap.alloc(Node::Ind(v));
        let i2 = heap.alloc(Node::Ind(i1));
        let mut roots = [v, i1, i2];
        heap.collect_minor(&mut |f| {
            for r in roots.iter_mut() {
                *r = f(*r);
            }
        });
        // All three roots collapse to the single tenured copy.
        assert_eq!(roots[0], roots[1]);
        assert_eq!(roots[1], roots[2]);
        assert!(roots[0].is_tenured());
        assert!(matches!(heap.whnf(roots[0]), Some(Whnf::Int(5))));
        assert!(heap.audit().is_consistent());
    }

    #[test]
    fn promote_gives_a_stable_tenured_id() {
        let mut heap = Heap::new();
        let n = heap.alloc(Node::Value(HValue::Int(9)));
        let t = heap.promote(n);
        assert!(t.is_tenured());
        assert_eq!(heap.resolve(n), t, "nursery cell forwards via Ind");
        // Promoting again is a no-op.
        assert_eq!(heap.promote(t), t);
        // Immediates promote to themselves.
        let i = NodeId::imm_int(3).unwrap();
        assert_eq!(heap.promote(i), i);
        // A collection with no roots keeps the promoted cell alive (it is
        // remembered) and the id keeps working.
        heap.collect_minor(&mut |_f| {});
        assert!(matches!(heap.whnf(t), Some(Whnf::Int(9))));
    }

    #[test]
    fn a_planted_stale_forwarding_pointer_fails_the_audit() {
        let mut heap = Heap::new();
        let keep = heap.alloc(Node::Value(HValue::Int(1)));
        let mut root = keep;
        heap.collect_minor(&mut |f| root = f(root));
        assert!(heap.audit().is_consistent());
        heap.plant_stale_forwarding();
        let audit = heap.audit();
        assert!(!audit.is_consistent());
        assert!(
            audit.findings.iter().any(|f| f.kind == "Forwarded"),
            "{audit}"
        );
        assert!(audit.into_result().is_err());
    }

    #[test]
    fn remembered_set_gap_is_an_audit_finding() {
        let mut heap = Heap::new();
        let field = heap.alloc(Node::Value(HValue::Int(1)));
        let holder =
            heap.alloc_tenured(Node::Value(HValue::Con(Symbol::intern("Box"), vec![field])));
        assert!(heap.audit().is_consistent(), "alloc_tenured remembers");
        // Wipe the remembered set behind the heap's back: the audit must
        // notice the unrecorded tenured→nursery edge.
        heap.remembered.clear();
        let audit = heap.audit();
        assert!(!audit.is_consistent());
        assert!(
            audit
                .findings
                .iter()
                .any(|f| f.reason.contains("remembered-set gap")),
            "{audit}"
        );
        let _ = holder;
    }
}
