//! The graph-reduction heap.
//!
//! Nodes are mutable cells indexed by [`NodeId`]. The node kinds implement
//! the paper's §3.3 machinery directly:
//!
//! * a [`Node::Thunk`] under evaluation is overwritten with a
//!   [`Node::Blackhole`] (avoiding the "celebrated space leak");
//! * when a *synchronous* exception trims the stack past the thunk's update
//!   frame, the black hole is overwritten with [`Node::Poisoned`] — "if the
//!   thunk is evaluated again, the same exception will be raised again";
//! * when an *asynchronous* exception trims the stack (§5.1), the black
//!   hole is restored to a resumable thunk instead — the value can still be
//!   computed later. (The black hole retains the original expression and
//!   environment to make this cheap; see `DESIGN.md` for the relation to
//!   the resumable-continuation implementation the paper cites.)

use std::rc::Rc;

use urk_syntax::core::Expr;
use urk_syntax::{Exception, Symbol};

use crate::code::CodeId;
use crate::env::{CEnv, MEnv};

/// An index into the heap.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// A heap node.
#[derive(Clone, Debug)]
pub enum Node {
    /// An unevaluated suspension.
    Thunk { expr: Rc<Expr>, env: MEnv },
    /// A thunk currently under evaluation. Keeps its payload so an
    /// asynchronous interruption can restore it (§5.1).
    Blackhole { expr: Rc<Expr>, env: MEnv },
    /// An unevaluated suspension of *compiled* code: the same semantics
    /// as [`Node::Thunk`] with a `CodeId` instead of an `Rc<Expr>`.
    CThunk { code: CodeId, env: CEnv },
    /// A compiled thunk under evaluation; restorable exactly like
    /// [`Node::Blackhole`] (§5.1 is representation-independent).
    CBlackhole { code: CodeId, env: CEnv },
    /// An indirection to the updated value.
    Ind(NodeId),
    /// A weak-head-normal-form value.
    Value(HValue),
    /// A thunk whose evaluation raised a synchronous exception; entering it
    /// re-raises (§3.3).
    Poisoned(Exception),
    /// A reclaimed cell on the allocator's free list.
    Free { next: Option<NodeId> },
}

/// A weak-head-normal-form value.
#[derive(Clone, Debug)]
pub enum HValue {
    Int(i64),
    Char(char),
    Str(Rc<str>),
    /// A saturated constructor with lazy fields.
    Con(Symbol, Vec<NodeId>),
    /// A function closure.
    Fun {
        param: Symbol,
        body: Rc<Expr>,
        env: MEnv,
    },
    /// A compiled function closure; the body's code was compiled
    /// expecting its argument as the top environment slot.
    CFun {
        body: CodeId,
        env: CEnv,
    },
}

/// The heap: a growable arena of nodes with a free list maintained by the
/// mark-sweep collector.
#[derive(Default, Debug)]
pub struct Heap {
    nodes: Vec<Node>,
    free: Option<NodeId>,
    live: usize,
}

impl Heap {
    /// An empty heap.
    pub fn new() -> Heap {
        Heap {
            nodes: Vec::new(),
            free: None,
            live: 0,
        }
    }

    /// Allocates a node, reusing a reclaimed cell when one is available.
    pub fn alloc(&mut self, node: Node) -> NodeId {
        self.live += 1;
        if let Some(id) = self.free {
            let Node::Free { next } = self.get(id) else {
                unreachable!("free list corrupted");
            };
            self.free = *next;
            self.set(id, node);
            return id;
        }
        let id = NodeId(u32::try_from(self.nodes.len()).expect("heap exhausted"));
        self.nodes.push(node);
        id
    }

    /// Current heap size in nodes (arena capacity, including free cells).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Number of live (non-free) nodes.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Installs the free list after a sweep.
    pub(crate) fn set_free_list(&mut self, head: Option<NodeId>, freed: u64) {
        self.free = head;
        self.live = self.live.saturating_sub(freed as usize);
    }

    /// The current free-list head (for the collector).
    pub(crate) fn free_list(&self) -> Option<NodeId> {
        self.free
    }

    /// True if nothing has been allocated.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Reads a node (following no indirections).
    pub fn get(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Overwrites a node.
    pub fn set(&mut self, id: NodeId, node: Node) {
        self.nodes[id.0 as usize] = node;
    }

    /// Follows indirections to the representative node.
    pub fn resolve(&self, mut id: NodeId) -> NodeId {
        while let Node::Ind(next) = self.get(id) {
            id = *next;
        }
        id
    }

    /// Reads the value at `id`, following indirections; `None` if the node
    /// is not in WHNF.
    pub fn value(&self, id: NodeId) -> Option<&HValue> {
        match self.get(self.resolve(id)) {
            Node::Value(v) => Some(v),
            _ => None,
        }
    }

    /// Audits the heap's structural invariants (see [`HeapAudit`]).
    ///
    /// Only meaningful *between* evaluation episodes: mid-episode black
    /// holes are the normal marker for thunks under evaluation, and a run
    /// abandoned by `Err(StepLimit)` legitimately strands them. After a
    /// completed episode — including one trimmed by an asynchronous
    /// exception — every black hole must have been updated, poisoned, or
    /// restored (§5.1), so `blackholes` must be zero.
    pub fn audit(&self) -> HeapAudit {
        let mut blackholes = 0usize;
        let mut free_nodes = 0usize;
        let mut findings: Vec<AuditFinding> = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            let (kind, reason) = match node {
                Node::Blackhole { .. } => (
                    "Blackhole",
                    "stranded tree black hole: the in-flight thunk was neither \
                     updated, poisoned (§3.3), nor restored (§5.1)",
                ),
                Node::CBlackhole { .. } => (
                    "CBlackhole",
                    "stranded compiled black hole: the in-flight thunk was neither \
                     updated, poisoned (§3.3), nor restored (§5.1)",
                ),
                Node::Free { .. } => {
                    free_nodes += 1;
                    continue;
                }
                _ => continue,
            };
            blackholes += 1;
            if findings.len() < MAX_AUDIT_FINDINGS {
                findings.push(AuditFinding {
                    node: Some(NodeId(i as u32)),
                    kind,
                    reason: reason.to_string(),
                });
            }
        }
        if blackholes > MAX_AUDIT_FINDINGS {
            findings.push(AuditFinding {
                node: None,
                kind: "Blackhole",
                reason: format!(
                    "… and {} more stranded black holes (report capped at {})",
                    blackholes - MAX_AUDIT_FINDINGS,
                    MAX_AUDIT_FINDINGS
                ),
            });
        }
        // Walk the free list with a cycle guard: a corrupted list must
        // surface as an inconsistency, not an infinite loop.
        let mut free_list_len = 0usize;
        let mut cursor = self.free;
        while let Some(id) = cursor {
            free_list_len += 1;
            if free_list_len > self.nodes.len() {
                findings.push(AuditFinding {
                    node: Some(id),
                    kind: "Free",
                    reason: "free-list cycle: the walk revisited cells past the arena size"
                        .to_string(),
                });
                break;
            }
            cursor = match self.get(id) {
                Node::Free { next } => *next,
                other => {
                    findings.push(AuditFinding {
                        node: Some(id),
                        kind: node_kind_name(other),
                        reason: "free-list corruption: the list reached a non-free cell"
                            .to_string(),
                    });
                    break;
                }
            };
        }
        let live_actual = self.nodes.len() - free_nodes;
        if free_nodes != free_list_len {
            findings.push(AuditFinding {
                node: None,
                kind: "Free",
                reason: format!(
                    "free-cell mismatch: {free_nodes} free cells in the arena but \
                     {free_list_len} reachable from the free list"
                ),
            });
        }
        if self.live != live_actual {
            findings.push(AuditFinding {
                node: None,
                kind: "counter",
                reason: format!(
                    "live-counter drift: allocator believes {} live nodes, arena holds \
                     {live_actual}",
                    self.live
                ),
            });
        }
        HeapAudit {
            blackholes,
            free_nodes,
            free_list_len,
            live_count: self.live,
            live_actual,
            findings,
        }
    }
}

/// Cap on per-node entries in [`HeapAudit::findings`]; past it a single
/// summary entry carries the remainder count.
pub const MAX_AUDIT_FINDINGS: usize = 16;

fn node_kind_name(n: &Node) -> &'static str {
    match n {
        Node::Thunk { .. } => "Thunk",
        Node::Blackhole { .. } => "Blackhole",
        Node::CThunk { .. } => "CThunk",
        Node::CBlackhole { .. } => "CBlackhole",
        Node::Ind(_) => "Ind",
        Node::Value(_) => "Value",
        Node::Poisoned(_) => "Poisoned",
        Node::Free { .. } => "Free",
    }
}

/// One concrete inconsistency found by [`Heap::audit`]: which node (when
/// attributable to one), what kind of cell it was, and why it violates the
/// invariant — enough to diagnose a fuzz or soak counterexample without a
/// debugger.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditFinding {
    /// The offending cell, or `None` for whole-heap findings (counter
    /// drift, aggregate mismatches).
    pub node: Option<NodeId>,
    /// The node-kind name (`"Blackhole"`, `"Free"`, ...) or `"counter"`.
    pub kind: &'static str,
    /// Human-readable explanation of the violated invariant.
    pub reason: String,
}

impl std::fmt::Display for AuditFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.node {
            Some(id) => write!(f, "node {} [{}]: {}", id.0, self.kind, self.reason),
            None => write!(f, "[{}]: {}", self.kind, self.reason),
        }
    }
}

/// A consistency report over the whole heap, produced by [`Heap::audit`].
///
/// The chaos driver checks this after every fault-injected episode: a
/// stranded black hole means an asynchronous trim failed to restore an
/// in-flight thunk (the §5.1 invariant), and a free-list/live-counter
/// mismatch means the allocator would misbehave on the next request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HeapAudit {
    /// `Node::Blackhole` cells present. Must be zero between episodes.
    pub blackholes: usize,
    /// `Node::Free` cells present in the arena.
    pub free_nodes: usize,
    /// Cells reachable by walking the free list (cycle-guarded).
    pub free_list_len: usize,
    /// The allocator's live counter.
    pub live_count: usize,
    /// Actual non-free cells in the arena.
    pub live_actual: usize,
    /// The concrete inconsistencies, one [`AuditFinding`] each (per-node
    /// entries capped at [`MAX_AUDIT_FINDINGS`]). Empty iff
    /// [`HeapAudit::is_consistent`] holds.
    pub findings: Vec<AuditFinding>,
}

impl HeapAudit {
    /// True if the heap is safe to reuse for another episode: no stranded
    /// black holes, every free cell on the free list, and the live counter
    /// in agreement with the arena.
    pub fn is_consistent(&self) -> bool {
        self.blackholes == 0
            && self.free_nodes == self.free_list_len
            && self.live_count == self.live_actual
    }

    /// The audit as a `Result`, for callers that want the old
    /// error-message shape: `Ok` when consistent, otherwise the rendered
    /// report (`Display`) as the error.
    ///
    /// # Errors
    ///
    /// The full multi-line report when any invariant is violated.
    pub fn into_result(self) -> Result<(), String> {
        if self.is_consistent() {
            Ok(())
        } else {
            Err(self.to_string())
        }
    }
}

/// Renders the structured report: one summary line with the counts, then
/// one line per finding. A consistent audit renders as a single line.
impl std::fmt::Display for HeapAudit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "heap audit: {} ({} blackholes, {} free / {} on free list, live {} counted / {} actual)",
            if self.is_consistent() { "consistent" } else { "INCONSISTENT" },
            self.blackholes,
            self.free_nodes,
            self.free_list_len,
            self.live_count,
            self.live_actual,
        )?;
        for finding in &self.findings {
            write!(f, "\n  - {finding}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_get_set_resolve() {
        let mut heap = Heap::new();
        let a = heap.alloc(Node::Value(HValue::Int(1)));
        let b = heap.alloc(Node::Ind(a));
        let c = heap.alloc(Node::Ind(b));
        assert_eq!(heap.resolve(c), a);
        assert!(matches!(heap.value(c), Some(HValue::Int(1))));
        heap.set(a, Node::Value(HValue::Int(2)));
        assert!(matches!(heap.value(c), Some(HValue::Int(2))));
        assert_eq!(heap.len(), 3);
        assert!(!heap.is_empty());
    }
}
