//! Chaos fault injection for the machine (§5.1 made adversarial).
//!
//! The paper's key robustness property: injecting an asynchronous exception
//! at *any* point can only add members to the set of behaviours the
//! semantics already allows — it never manufactures a wrong value, and every
//! in-flight thunk is restored resumably by the §5.1 trim. A [`FaultPlan`]
//! turns that claim into a machine-checkable invariant by seeding a run
//! with adversarial faults:
//!
//! * **asynchronous exceptions** (`Interrupt`/`Timeout`) at pseudo-random
//!   step points;
//! * **forced collections** at arbitrary moments, so GC races every phase
//!   of evaluation (mid-trim, mid-update, mid-application);
//! * **a shrinking heap budget**: past a step threshold the live-node cap
//!   drops, so allocation fails (`HeapOverflow`) at moments the program
//!   never chose.
//!
//! After such a run the differential driver (`urk-io::chaos`) checks the
//! two invariants: the observed exception is a member of the denotational
//! exception set ∪ the plan's injectable asynchrony (*soundness under
//! faults*), and [`crate::Machine::audit_heap`] finds no stranded black
//! holes (*heap consistency* — the machine is reusable for the next
//! request).
//!
//! Every fault the plan can produce is derived deterministically from the
//! seed, so a failing seed is a reproducible bug report.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use urk_syntax::Exception;

/// A seeded, deterministic schedule of faults for one machine lifetime.
///
/// Steps are machine step counts (cumulative across episodes, like
/// [`crate::MachineConfig::event_schedule`]). All fault activity stops at
/// `horizon`, so a machine that outlives its plan returns to normal
/// behaviour — which is what lets the driver re-evaluate on the same
/// machine and still compare against the oracle.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// The seed everything below was derived from (kept for reporting).
    pub seed: u64,
    /// No fault fires at or after this step.
    pub horizon: u64,
    /// Asynchronous exceptions delivered at these steps (sorted).
    pub injections: Vec<(u64, Exception)>,
    /// Full (major) collections forced at these steps (sorted).
    pub force_gc_at: Vec<u64>,
    /// Minor (nursery-evacuating) collections forced at these steps
    /// (sorted) — races the copying collector against every phase of
    /// evaluation without paying for a full mark-sweep.
    pub force_minor_at: Vec<u64>,
    /// Shrinking live-heap caps: entry `(step, cap)` applies from `step`
    /// until the next entry (or the horizon). Sorted by step, caps
    /// non-increasing. Exceeding the active cap delivers `HeapOverflow`.
    pub heap_budget: Vec<(u64, usize)>,
    /// Test-only sabotage: skip the §5.1 restore when an asynchronous trim
    /// passes an update frame, deliberately stranding black holes. Exists
    /// so the heap audit can be shown to *fail* when the restore invariant
    /// is actually violated; never set outside tests.
    #[doc(hidden)]
    pub sabotage_async_restore: bool,
    /// Test-only sabotage: after each *forced* collection, plant a stale
    /// forwarding pointer in the tenured arena. The planted cell is
    /// unreachable (execution stays sound), but a correct generational
    /// audit must flag it. Exists so the nursery audit can be shown to
    /// fail when evacuation bookkeeping is actually corrupted; never set
    /// outside tests.
    #[doc(hidden)]
    pub sabotage_forwarding: bool,
    /// Test-only sabotage: let a poisoned speculation *propagate* at its
    /// binding site instead of staying stored in the node — the
    /// "unlicensed fusion" that treats a lazy binding as strict. Exists so
    /// the tier-2 differential battery can prove the §3.3 poisoning
    /// discipline is load-bearing (with this set, `let x = 1/0 in 42`
    /// wrongly raises); never set outside tests.
    #[doc(hidden)]
    pub sabotage_spec_propagate: bool,
}

impl FaultPlan {
    /// Derives a fault plan from a seed. `horizon` should be on the order
    /// of the undisturbed run's step count so the faults actually land
    /// mid-evaluation (the differential driver measures a baseline run
    /// first and passes its step count here).
    pub fn generate(seed: u64, horizon: u64) -> FaultPlan {
        let horizon = horizon.max(64);
        let mut rng = SmallRng::seed_from_u64(seed);
        let step = |rng: &mut SmallRng| rng.gen_range(1..horizon);

        let n_inject = rng.gen_range(0..4u32);
        let mut injections: Vec<(u64, Exception)> = (0..n_inject)
            .map(|_| {
                let e = if rng.gen_bool(0.5) {
                    Exception::Interrupt
                } else {
                    Exception::Timeout
                };
                (step(&mut rng), e)
            })
            .collect();
        injections.sort_by_key(|(at, _)| *at);

        let n_gc = rng.gen_range(0..3u32);
        let mut force_gc_at: Vec<u64> = (0..n_gc).map(|_| step(&mut rng)).collect();
        force_gc_at.sort_unstable();

        let n_minor = rng.gen_range(0..4u32);
        let mut force_minor_at: Vec<u64> = (0..n_minor).map(|_| step(&mut rng)).collect();
        force_minor_at.sort_unstable();

        // A shrinking budget in roughly half the plans: one to three caps,
        // each tighter than the last. The floor keeps the interned pool and
        // a small top-level program representable, so the fault is "your
        // allocation failed", not "the machine cannot exist".
        let mut heap_budget = Vec::new();
        if rng.gen_bool(0.5) {
            let mut cap = rng.gen_range(2_048..16_384usize);
            let mut steps: Vec<u64> = (0..rng.gen_range(1..4u32))
                .map(|_| step(&mut rng))
                .collect();
            steps.sort_unstable();
            for at in steps {
                heap_budget.push((at, cap));
                cap = (cap / 2).max(768);
            }
        }

        FaultPlan {
            seed,
            horizon,
            injections,
            force_gc_at,
            force_minor_at,
            heap_budget,
            sabotage_async_restore: false,
            sabotage_forwarding: false,
            sabotage_spec_propagate: false,
        }
    }

    /// True if this plan could have delivered `e`: the soundness invariant
    /// under faults is `observed ∈ denotational set ∪ {e : plan.allows(e)}`.
    pub fn allows(&self, e: &Exception) -> bool {
        self.injections.iter().any(|(_, i)| i == e)
            || (!self.heap_budget.is_empty() && *e == Exception::HeapOverflow)
    }

    /// Every asynchronous exception this plan can deliver (for reports).
    pub fn injectable(&self) -> Vec<Exception> {
        let mut out: Vec<Exception> = self.injections.iter().map(|(_, e)| e.clone()).collect();
        if !self.heap_budget.is_empty() {
            out.push(Exception::HeapOverflow);
        }
        out.sort();
        out.dedup();
        out
    }

    /// True if the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.injections.is_empty()
            && self.force_gc_at.is_empty()
            && self.force_minor_at.is_empty()
            && self.heap_budget.is_empty()
    }
}

/// The machine's progress through a plan (cursors into the sorted lists,
/// plus the currently active heap cap).
#[derive(Clone, Debug)]
pub(crate) struct ChaosState {
    pub(crate) plan: FaultPlan,
    pub(crate) next_injection: usize,
    pub(crate) next_gc: usize,
    pub(crate) next_minor: usize,
    pub(crate) next_budget: usize,
    pub(crate) active_cap: Option<usize>,
}

impl ChaosState {
    pub(crate) fn new(plan: FaultPlan) -> ChaosState {
        ChaosState {
            plan,
            next_injection: 0,
            next_gc: 0,
            next_minor: 0,
            next_budget: 0,
            active_cap: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        for seed in 0..32 {
            let a = FaultPlan::generate(seed, 10_000);
            let b = FaultPlan::generate(seed, 10_000);
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }

    #[test]
    fn plans_vary_across_seeds_and_stay_in_the_horizon() {
        let mut shapes = std::collections::BTreeSet::new();
        for seed in 0..64 {
            let p = FaultPlan::generate(seed, 5_000);
            shapes.insert(format!("{p:?}"));
            for (at, e) in &p.injections {
                assert!(*at < p.horizon);
                assert!(e.is_asynchronous());
            }
            for at in p.force_gc_at.iter().chain(&p.force_minor_at) {
                assert!(*at < p.horizon);
            }
            assert!(
                p.heap_budget.windows(2).all(|w| w[0].0 <= w[1].0),
                "budget steps sorted"
            );
            assert!(
                p.heap_budget.windows(2).all(|w| w[0].1 >= w[1].1),
                "budget caps shrink"
            );
        }
        assert!(shapes.len() > 32, "seeds should produce distinct plans");
    }

    #[test]
    fn allows_covers_injections_and_budget_overflow() {
        let p = FaultPlan {
            seed: 0,
            horizon: 100,
            injections: vec![(10, Exception::Interrupt)],
            heap_budget: vec![(50, 1_000)],
            ..FaultPlan::default()
        };
        assert!(p.allows(&Exception::Interrupt));
        assert!(p.allows(&Exception::HeapOverflow));
        assert!(!p.allows(&Exception::Timeout));
        assert!(!p.allows(&Exception::DivideByZero));
        assert_eq!(
            p.injectable(),
            vec![Exception::Interrupt, Exception::HeapOverflow]
        );
    }

    #[test]
    fn tiny_horizons_are_clamped() {
        let p = FaultPlan::generate(1, 0);
        assert!(p.horizon >= 64);
    }
}
