//! The stop-the-world mark-sweep collector for the *tenured* region.
//!
//! Minor collections (the copying nursery evacuation) live in
//! [`crate::heap::Heap::collect_minor`]; this module is the major-collection
//! fallback that reclaims tenured garbage. Tenured identifiers are stable
//! across collections (environments hold `NodeId`s inside shared persistent
//! lists, so a compacting old space would have to rewrite aliased
//! structures). Swept cells become [`Node::Free`] links in a free list and
//! are reused by subsequent tenured allocations.
//!
//! A major collection always runs *after* a minor one, so the nursery is
//! empty and every reachable reference is an immediate or a tenured id —
//! the mark table is indexed by tenured index alone.
//!
//! Roots come from three places:
//!
//! * the machine's *registered* roots ([`crate::Machine::push_root`]) —
//!   nodes the embedder (e.g. the IO runner's pending continuations)
//!   still needs;
//! * the run loop's transient roots (current control and every stack
//!   frame), passed in by the stepper when a collection triggers
//!   mid-evaluation;
//! * nothing else: unreachable thunks, values, and poisoned cells are
//!   reclaimed.

use crate::env::{CEnv, MEnv};
use crate::heap::{HValue, Heap, Node, NodeId};

/// Mark-phase worklist traversal over a root set.
pub(crate) struct Collector {
    marks: Vec<bool>,
    worklist: Vec<NodeId>,
}

impl Collector {
    /// `tenured_len` is [`Heap::tenured_len`]: the mark table covers the
    /// tenured arena only.
    pub(crate) fn new(tenured_len: usize) -> Collector {
        Collector {
            marks: vec![false; tenured_len],
            worklist: Vec::with_capacity(256),
        }
    }

    pub(crate) fn mark_root(&mut self, id: NodeId) {
        // Immediates have no cell; nursery ids cannot occur (a major
        // collection runs against an evacuated, empty nursery).
        if !id.is_tenured() {
            return;
        }
        let i = id.index();
        if i < self.marks.len() && !self.marks[i] {
            self.marks[i] = true;
            self.worklist.push(id);
        }
    }

    pub(crate) fn mark_env(&mut self, env: &MEnv) {
        // Persistent environments share tails; marking stops at already
        // visited nodes only per-binding (tail sharing just re-marks
        // cheaply — bindings are few and the check is O(1)).
        env.for_each_node(|n| self.mark_root(n));
    }

    pub(crate) fn mark_cenv(&mut self, env: &CEnv) {
        env.for_each_node(|n| self.mark_root(n));
    }

    /// Traces the object graph from the marked roots.
    pub(crate) fn trace(&mut self, heap: &Heap) {
        while let Some(id) = self.worklist.pop() {
            // Borrow-split: clone the small node descriptors we need.
            match heap.get(id) {
                Node::Thunk { env, .. } | Node::Blackhole { env, .. } => {
                    let env = env.clone();
                    self.mark_env(&env);
                }
                Node::CThunk { env, .. } | Node::CBlackhole { env, .. } => {
                    let env = env.clone();
                    self.mark_cenv(&env);
                }
                // A reachable Forwarded cell is corruption (the audit
                // reports it), but the collector still traces through it
                // rather than freeing the target out from under the graph.
                Node::Ind(t) | Node::Forwarded(t) => {
                    let t = *t;
                    self.mark_root(t);
                }
                Node::Value(v) => match v {
                    HValue::Con(_, fields) => {
                        for f in fields.clone() {
                            self.mark_root(f);
                        }
                    }
                    HValue::Fun { env, .. } => {
                        let env = env.clone();
                        self.mark_env(&env);
                    }
                    HValue::CFun { env, .. } => {
                        let env = env.clone();
                        self.mark_cenv(&env);
                    }
                    HValue::Int(_) | HValue::Char(_) | HValue::Str(_) => {}
                },
                Node::Poisoned(_) | Node::Free { .. } => {}
            }
        }
    }

    /// Sweeps unmarked tenured cells into the free list; returns the
    /// number freed and the new free-list head.
    pub(crate) fn sweep(
        self,
        heap: &mut Heap,
        mut free_head: Option<NodeId>,
    ) -> (u64, Option<NodeId>) {
        let mut freed = 0;
        for (i, marked) in self.marks.iter().enumerate() {
            let id = NodeId(i as u32);
            if *marked || matches!(heap.get(id), Node::Free { .. }) {
                continue;
            }
            heap.set_swept(id, free_head);
            free_head = Some(id);
            freed += 1;
        }
        (freed, free_head)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;
    use urk_syntax::core::Expr;
    use urk_syntax::Symbol;

    #[test]
    fn unreachable_nodes_are_swept_and_reused() {
        let mut heap = Heap::new();
        let keep = heap.alloc_tenured(Node::Value(HValue::Int(1)));
        let drop1 = heap.alloc_tenured(Node::Value(HValue::Int(2)));
        let drop2 = heap.alloc_tenured(Node::Value(HValue::Str(Rc::from("bye"))));
        let kept_con =
            heap.alloc_tenured(Node::Value(HValue::Con(Symbol::intern("Just"), vec![keep])));

        let mut c = Collector::new(heap.tenured_len());
        c.mark_root(kept_con);
        c.trace(&heap);
        let (freed, free_head) = c.sweep(&mut heap, None);
        assert_eq!(freed, 2);
        assert!(matches!(heap.get(drop1), Node::Free { .. }));
        assert!(matches!(heap.get(drop2), Node::Free { .. }));
        assert!(matches!(heap.get(keep), Node::Value(HValue::Int(1))));
        assert!(free_head.is_some());
    }

    #[test]
    fn environments_keep_their_bindings_alive() {
        let mut heap = Heap::new();
        let bound = heap.alloc_tenured(Node::Value(HValue::Int(9)));
        let env = MEnv::empty().bind(Symbol::intern("x"), bound);
        let thunk = heap.alloc_tenured(Node::Thunk {
            expr: Rc::new(Expr::var("x")),
            env,
        });
        let mut c = Collector::new(heap.tenured_len());
        c.mark_root(thunk);
        c.trace(&heap);
        let (freed, _) = c.sweep(&mut heap, None);
        assert_eq!(freed, 0);
    }

    #[test]
    fn indirection_targets_survive() {
        let mut heap = Heap::new();
        let v = heap.alloc_tenured(Node::Value(HValue::Int(3)));
        let ind = heap.alloc_tenured(Node::Ind(v));
        let mut c = Collector::new(heap.tenured_len());
        c.mark_root(ind);
        c.trace(&heap);
        let (freed, _) = c.sweep(&mut heap, None);
        assert_eq!(freed, 0);
        assert!(matches!(heap.whnf(ind), Some(crate::heap::Whnf::Int(3))));
    }

    #[test]
    fn immediates_and_evacuated_nurseries_are_no_ops_for_the_marker() {
        let mut heap = Heap::new();
        let t = heap.alloc_tenured(Node::Value(HValue::Int(5)));
        let mut c = Collector::new(heap.tenured_len());
        c.mark_root(NodeId::imm_int(7).unwrap());
        c.mark_root(NodeId::imm_con(Symbol::intern("True")).unwrap());
        c.mark_root(t);
        c.trace(&heap);
        let (freed, _) = c.sweep(&mut heap, None);
        assert_eq!(freed, 0);
    }
}
