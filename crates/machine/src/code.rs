//! Core lowered to a flat, arena-indexed code format.
//!
//! The tree-walking machine interprets `Rc<Expr>` nodes, cloning
//! refcounted children every step and resolving every variable by
//! scanning `Symbol` entries in chunked environment frames. This module
//! compiles a desugared program once into a single flat [`Code`] arena:
//!
//! * every expression node becomes one `u32`-indexed [`COp`] in a
//!   contiguous `Vec` — the executor copies a small `Copy` op instead of
//!   touching refcounts;
//! * variables are resolved **at compile time** to lexical back-indices
//!   ("slot `k` from the top of the runtime environment"), so lookup is
//!   indexed loads through the chunk chain instead of a `Symbol` scan —
//!   and top-level names become direct indices into a per-machine global
//!   table;
//! * case alternatives are pre-lowered into dispatch arms keyed by
//!   constructor tag (a `Symbol` is a globally interned `u32`, so the
//!   runtime match is an integer compare);
//! * string literals are interned once per program in an `Arc<str>`
//!   table.
//!
//! `Code` holds no `Rc` and no thread-local state, so it is `Send + Sync`:
//! the evaluation pool compiles the program once and shares one
//! `Arc<Code>` across all worker machines. Per-query expressions compile
//! into a machine-local *extension* buffer ([`LinkedCode`]); `CodeId`s
//! below the base length address the shared program, the rest address the
//! extension.

use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use urk_syntax::core::{Alt, AltCon, Expr, PrimOp};
use urk_syntax::Symbol;

use crate::heap::NodeId;

/// An index into a [`Code`] arena (base program or machine extension).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct CodeId(pub(crate) u32);

/// One flat code op. `Copy`, so the executor never clones refcounts on
/// the hot path; children are referenced by [`CodeId`] or by ranges into
/// the side tables ([`CodeBuf::kids`], [`CodeBuf::arms`],
/// [`CodeBuf::strs`]).
#[derive(Copy, Clone, Debug)]
pub(crate) enum COp {
    /// A local variable, resolved to "slot `k` back from the top" of the
    /// runtime environment.
    Local(u32),
    /// A top-level binding, resolved to an index into the machine's
    /// global node table.
    Global(u32),
    Int(i64),
    Char(char),
    /// A string literal (index into the interned string table).
    Str(u32),
    /// A saturated constructor; `n` argument ops at `kids[args..]`.
    Con {
        tag: Symbol,
        args: u32,
        n: u16,
    },
    App {
        f: CodeId,
        a: CodeId,
    },
    Lam {
        body: CodeId,
    },
    Let {
        rhs: CodeId,
        body: CodeId,
    },
    /// A recursive group; `n` right-hand sides at `kids[rhss..]`.
    LetRec {
        rhss: u32,
        n: u16,
        body: CodeId,
    },
    /// A case dispatch; `n` pre-lowered arms at `arms[arms_at..]`.
    Case {
        scrut: CodeId,
        arms_at: u32,
        n: u16,
    },
    /// A strict unary primitive.
    Prim1 {
        op: PrimOp,
        a: CodeId,
    },
    /// A strict binary primitive (operand order stays a machine policy).
    Prim2 {
        op: PrimOp,
        a: CodeId,
        b: CodeId,
    },
    Seq {
        a: CodeId,
        b: CodeId,
    },
    MapExn {
        f: CodeId,
        a: CodeId,
    },
    IsExn {
        a: CodeId,
    },
    GetExn {
        a: CodeId,
    },
    Raise {
        a: CodeId,
    },
}

/// What one pre-lowered case arm matches. Constructor dispatch is a
/// `Symbol` compare — an interned `u32` equality, no name scan.
#[derive(Copy, Clone, Debug)]
pub(crate) enum CPat {
    Con(Symbol),
    Int(i64),
    Char(char),
    Str(u32),
    Default,
}

/// One pre-lowered case arm. `binders` is how many scrutinee fields the
/// arm pushes (for `Default`, `bind_scrut` pushes the scrutinee itself);
/// the rhs was compiled under exactly that many extra slots.
#[derive(Copy, Clone, Debug)]
pub(crate) struct CArm {
    pub(crate) pat: CPat,
    pub(crate) rhs: CodeId,
    pub(crate) binders: u16,
    pub(crate) bind_scrut: bool,
}

/// The contiguous storage one compilation unit emits into.
#[derive(Debug, Default)]
pub struct CodeBuf {
    pub(crate) ops: Vec<COp>,
    pub(crate) kids: Vec<CodeId>,
    pub(crate) arms: Vec<CArm>,
    pub(crate) strs: Vec<Arc<str>>,
}

impl CodeBuf {
    fn len_of(&self) -> Bases {
        Bases {
            ops: self.ops.len() as u32,
            kids: self.kids.len() as u32,
            arms: self.arms.len() as u32,
            strs: self.strs.len() as u32,
        }
    }
}

/// Table offsets a compilation starts from, so extension code emits
/// absolute indices that address past the shared base tables.
#[derive(Copy, Clone, Debug, Default)]
struct Bases {
    ops: u32,
    kids: u32,
    arms: u32,
    strs: u32,
}

/// A whole compiled program: the flat op arena plus the top-level
/// binding table. Immutable and `Send + Sync` — one `Arc<Code>` serves
/// every worker in a pool.
#[derive(Debug)]
pub struct Code {
    pub(crate) buf: CodeBuf,
    /// Top-level bindings in program order: `(name, rhs entry point)`.
    pub(crate) globals: Vec<(Symbol, CodeId)>,
    /// Name → global-table index (later bindings shadow earlier ones,
    /// matching the tree machine's environment order).
    pub(crate) global_index: HashMap<Symbol, u32>,
    /// Ops emitted compiling the program (observability).
    pub(crate) compile_ops: u64,
    /// Wall-clock microseconds spent compiling the program.
    pub(crate) compile_micros: u64,
}

impl Code {
    /// Number of ops in the program arena.
    pub fn op_count(&self) -> usize {
        self.buf.ops.len()
    }

    /// Ops emitted compiling the program (same as [`Code::op_count`],
    /// typed for stats accumulation).
    pub fn compile_ops(&self) -> u64 {
        self.compile_ops
    }

    /// Wall-clock microseconds spent compiling the program.
    pub fn compile_micros(&self) -> u64 {
        self.compile_micros
    }
}

// `Code` must stay shareable across pool workers; a compile error here
// means an `Rc` or thread-bound type leaked into the arena.
#[allow(dead_code)]
fn code_is_send_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Code>();
}

/// Compiles a desugared top-level binding group into one flat [`Code`]
/// arena. Free variables of every right-hand side must be bound by the
/// group itself (the session's combined Prelude + loads satisfy this).
///
/// # Panics
///
/// Panics on an unbound variable — like the tree machine, which panics
/// when `MEnv::lookup` misses; the front end guarantees closedness.
pub fn compile_program(binds: &[(Symbol, Rc<Expr>)]) -> Code {
    let t0 = std::time::Instant::now();
    let mut buf = CodeBuf::default();
    let mut global_index: HashMap<Symbol, u32> = HashMap::with_capacity(binds.len());
    for (i, (name, _)) in binds.iter().enumerate() {
        // Later bindings shadow earlier ones, as in `bind_recursive`.
        global_index.insert(*name, i as u32);
    }
    let mut globals = Vec::with_capacity(binds.len());
    for (name, rhs) in binds {
        let mut c = Compiler {
            buf: &mut buf,
            globals: &global_index,
            scope: Vec::new(),
            bases: Bases::default(),
        };
        globals.push((*name, c.compile(rhs)));
    }
    let compile_ops = buf.ops.len() as u64;
    Code {
        buf,
        globals,
        global_index,
        compile_ops,
        compile_micros: t0.elapsed().as_micros() as u64,
    }
}

/// Compiles one query expression into `ext`, resolving free variables
/// against `base`'s global table. Returns the entry point and the number
/// of ops emitted.
pub(crate) fn compile_query(base: &Code, ext: &mut CodeBuf, expr: &Expr) -> (CodeId, u64) {
    let before = ext.ops.len();
    // Absolute addressing offsets by the base tables only: `ext` may
    // already hold earlier queries, and the emit helpers index as
    // `bases + ext.len()`, which accounts for that existing content.
    let bases = base.buf.len_of();
    let mut c = Compiler {
        buf: ext,
        globals: &base.global_index,
        scope: Vec::new(),
        bases,
    };
    let entry = c.compile(expr);
    (entry, (ext.ops.len() - before) as u64)
}

/// The one-pass lowering walk. `scope` is the compile-time mirror of the
/// runtime environment: code compiled with `scope.len() == n` always
/// executes under an environment of exactly `n` slots, so a variable at
/// scope position `i` is slot `n - 1 - i` back from the top.
struct Compiler<'a> {
    buf: &'a mut CodeBuf,
    globals: &'a HashMap<Symbol, u32>,
    scope: Vec<Symbol>,
    /// Zero for program compilation; `compile_query` sets it so
    /// extension indices address past the shared base tables.
    bases: Bases,
}

impl Compiler<'_> {
    fn emit(&mut self, op: COp) -> CodeId {
        let id = CodeId(self.bases.ops + self.buf.ops.len() as u32);
        self.buf.ops.push(op);
        id
    }

    fn push_kids(&mut self, kids: &[CodeId]) -> u32 {
        let at = self.bases.kids + self.buf.kids.len() as u32;
        self.buf.kids.extend_from_slice(kids);
        at
    }

    fn intern_str(&mut self, s: &str) -> u32 {
        // Program-level literals are few; a linear scan keeps the table
        // deduplicated without a side map.
        if let Some(i) = self.buf.strs.iter().position(|t| &**t == s) {
            return self.bases.strs + i as u32;
        }
        let i = self.bases.strs + self.buf.strs.len() as u32;
        self.buf.strs.push(Arc::from(s));
        i
    }

    fn compile(&mut self, e: &Expr) -> CodeId {
        match e {
            Expr::Var(v) => {
                if let Some(i) = self.scope.iter().rposition(|s| s == v) {
                    let back = (self.scope.len() - 1 - i) as u32;
                    return self.emit(COp::Local(back));
                }
                if let Some(g) = self.globals.get(v) {
                    return self.emit(COp::Global(*g));
                }
                panic!("unbound variable '{v}' while compiling");
            }
            Expr::Int(n) => self.emit(COp::Int(*n)),
            Expr::Char(c) => self.emit(COp::Char(*c)),
            Expr::Str(s) => {
                let i = self.intern_str(s);
                self.emit(COp::Str(i))
            }
            Expr::Con(c, args) => {
                let kid_ids: Vec<CodeId> = args.iter().map(|a| self.compile(a)).collect();
                let args_at = self.push_kids(&kid_ids);
                self.emit(COp::Con {
                    tag: *c,
                    args: args_at,
                    n: u16::try_from(kid_ids.len()).expect("constructor arity fits u16"),
                })
            }
            Expr::App(f, a) => {
                let f = self.compile(f);
                let a = self.compile(a);
                self.emit(COp::App { f, a })
            }
            Expr::Lam(x, b) => {
                self.scope.push(*x);
                let body = self.compile(b);
                self.scope.pop();
                self.emit(COp::Lam { body })
            }
            Expr::Let(x, rhs, body) => {
                let rhs = self.compile(rhs);
                self.scope.push(*x);
                let body = self.compile(body);
                self.scope.pop();
                self.emit(COp::Let { rhs, body })
            }
            Expr::LetRec(binds, body) => {
                for (name, _) in binds {
                    self.scope.push(*name);
                }
                let rhs_ids: Vec<CodeId> = binds.iter().map(|(_, r)| self.compile(r)).collect();
                let body = self.compile(body);
                self.scope.truncate(self.scope.len() - binds.len());
                let rhss = self.push_kids(&rhs_ids);
                self.emit(COp::LetRec {
                    rhss,
                    n: u16::try_from(rhs_ids.len()).expect("letrec group fits u16"),
                    body,
                })
            }
            Expr::Case(scrut, alts) => {
                let scrut = self.compile(scrut);
                let lowered: Vec<CArm> = alts.iter().map(|a| self.compile_arm(a)).collect();
                let arms_at = self.bases.arms + self.buf.arms.len() as u32;
                self.buf.arms.extend_from_slice(&lowered);
                self.emit(COp::Case {
                    scrut,
                    arms_at,
                    n: u16::try_from(lowered.len()).expect("alternative count fits u16"),
                })
            }
            Expr::Prim(op, args) => match op {
                PrimOp::Seq => {
                    let a = self.compile(&args[0]);
                    let b = self.compile(&args[1]);
                    self.emit(COp::Seq { a, b })
                }
                PrimOp::MapExn => {
                    let f = self.compile(&args[0]);
                    let a = self.compile(&args[1]);
                    self.emit(COp::MapExn { f, a })
                }
                PrimOp::UnsafeIsException => {
                    let a = self.compile(&args[0]);
                    self.emit(COp::IsExn { a })
                }
                PrimOp::UnsafeGetException => {
                    let a = self.compile(&args[0]);
                    self.emit(COp::GetExn { a })
                }
                _ if args.len() == 1 => {
                    let a = self.compile(&args[0]);
                    self.emit(COp::Prim1 { op: *op, a })
                }
                _ => {
                    let a = self.compile(&args[0]);
                    let b = self.compile(&args[1]);
                    self.emit(COp::Prim2 { op: *op, a, b })
                }
            },
            Expr::Raise(e) => {
                let a = self.compile(e);
                self.emit(COp::Raise { a })
            }
        }
    }

    fn compile_arm(&mut self, alt: &Alt) -> CArm {
        match &alt.con {
            AltCon::Default => {
                // A default arm may bind the forced scrutinee (only the
                // first binder, matching the tree machine's `select`).
                let bind_scrut = !alt.binders.is_empty();
                if bind_scrut {
                    self.scope.push(alt.binders[0]);
                }
                let rhs = self.compile(&alt.rhs);
                if bind_scrut {
                    self.scope.pop();
                }
                CArm {
                    pat: CPat::Default,
                    rhs,
                    binders: 0,
                    bind_scrut,
                }
            }
            AltCon::Con(c) => {
                for b in &alt.binders {
                    self.scope.push(*b);
                }
                let rhs = self.compile(&alt.rhs);
                self.scope.truncate(self.scope.len() - alt.binders.len());
                CArm {
                    pat: CPat::Con(*c),
                    rhs,
                    binders: u16::try_from(alt.binders.len()).expect("binder count fits u16"),
                    bind_scrut: false,
                }
            }
            AltCon::Int(n) => self.literal_arm(CPat::Int(*n), alt),
            AltCon::Char(c) => self.literal_arm(CPat::Char(*c), alt),
            AltCon::Str(s) => {
                let i = self.intern_str(s);
                self.literal_arm(CPat::Str(i), alt)
            }
        }
    }

    fn literal_arm(&mut self, pat: CPat, alt: &Alt) -> CArm {
        let rhs = self.compile(&alt.rhs);
        CArm {
            pat,
            rhs,
            binders: 0,
            bind_scrut: false,
        }
    }
}

/// The machine's view of its compiled code: the shared program base plus
/// a machine-local extension holding per-query entry points. Heap thunks
/// carry `CodeId`s valid for the machine's whole life — the extension
/// only grows.
#[derive(Debug)]
pub(crate) struct LinkedCode {
    pub(crate) base: Arc<Code>,
    pub(crate) ext: CodeBuf,
    /// One heap node per top-level binding, knot-tied through this table
    /// (global code refers here by index, so global thunks carry empty
    /// environments).
    pub(crate) global_nodes: Vec<NodeId>,
}

impl LinkedCode {
    pub(crate) fn new(base: Arc<Code>) -> LinkedCode {
        LinkedCode {
            base,
            ext: CodeBuf::default(),
            global_nodes: Vec::new(),
        }
    }

    #[inline]
    pub(crate) fn op(&self, id: CodeId) -> COp {
        let base = &self.base.buf.ops;
        let i = id.0 as usize;
        if i < base.len() {
            base[i]
        } else {
            self.ext.ops[i - base.len()]
        }
    }

    #[inline]
    pub(crate) fn kid(&self, i: u32) -> CodeId {
        let base = &self.base.buf.kids;
        let i = i as usize;
        if i < base.len() {
            base[i]
        } else {
            self.ext.kids[i - base.len()]
        }
    }

    #[inline]
    pub(crate) fn arm(&self, i: u32) -> CArm {
        let base = &self.base.buf.arms;
        let i = i as usize;
        if i < base.len() {
            base[i]
        } else {
            self.ext.arms[i - base.len()]
        }
    }

    /// Borrowed view of an interned string literal (for comparisons that
    /// need no allocation, e.g. string-pattern dispatch).
    #[inline]
    pub(crate) fn str_ref(&self, i: u32) -> &str {
        let base = &self.base.buf.strs;
        let i = i as usize;
        if i < base.len() {
            &base[i]
        } else {
            &self.ext.strs[i - base.len()]
        }
    }

    #[inline]
    pub(crate) fn str_at(&self, i: u32) -> Rc<str> {
        let base = &self.base.buf.strs;
        let i = i as usize;
        let s: &Arc<str> = if i < base.len() {
            &base[i]
        } else {
            &self.ext.strs[i - base.len()]
        };
        Rc::from(&**s)
    }
}
