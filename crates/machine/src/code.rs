//! Core lowered to a flat, arena-indexed code format.
//!
//! The tree-walking machine interprets `Rc<Expr>` nodes, cloning
//! refcounted children every step and resolving every variable by
//! scanning `Symbol` entries in chunked environment frames. This module
//! compiles a desugared program once into a single flat [`Code`] arena:
//!
//! * every expression node becomes one `u32`-indexed [`COp`] in a
//!   contiguous `Vec` — the executor copies a small `Copy` op instead of
//!   touching refcounts;
//! * variables are resolved **at compile time** to lexical back-indices
//!   ("slot `k` from the top of the runtime environment"), so lookup is
//!   indexed loads through the chunk chain instead of a `Symbol` scan —
//!   and top-level names become direct indices into a per-machine global
//!   table;
//! * case alternatives are pre-lowered into dispatch arms keyed by
//!   constructor tag (a `Symbol` is a globally interned `u32`, so the
//!   runtime match is an integer compare);
//! * string literals are interned once per program in an `Arc<str>`
//!   table.
//!
//! `Code` holds no `Rc` and no thread-local state, so it is `Send + Sync`:
//! the evaluation pool compiles the program once and shares one
//! `Arc<Code>` across all worker machines. Per-query expressions compile
//! into a machine-local *extension* buffer ([`LinkedCode`]); `CodeId`s
//! below the base length address the shared program, the rest address the
//! extension.

use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use urk_syntax::core::{Alt, AltCon, Expr, PrimOp};
use urk_syntax::Symbol;

use crate::heap::NodeId;

/// An index into a [`Code`] arena (base program or machine extension).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct CodeId(pub(crate) u32);

/// One flat code op. `Copy`, so the executor never clones refcounts on
/// the hot path; children are referenced by [`CodeId`] or by ranges into
/// the side tables ([`CodeBuf::kids`], [`CodeBuf::arms`],
/// [`CodeBuf::strs`]).
#[derive(Copy, Clone, Debug)]
pub(crate) enum COp {
    /// A local variable, resolved to "slot `k` back from the top" of the
    /// runtime environment.
    Local(u32),
    /// A top-level binding, resolved to an index into the machine's
    /// global node table.
    Global(u32),
    Int(i64),
    Char(char),
    /// A string literal (index into the interned string table).
    Str(u32),
    /// A saturated constructor; `n` argument ops at `kids[args..]`.
    Con {
        tag: Symbol,
        args: u32,
        n: u16,
    },
    App {
        f: CodeId,
        a: CodeId,
    },
    Lam {
        body: CodeId,
    },
    Let {
        rhs: CodeId,
        body: CodeId,
    },
    /// A recursive group; `n` right-hand sides at `kids[rhss..]`.
    LetRec {
        rhss: u32,
        n: u16,
        body: CodeId,
    },
    /// A case dispatch; `n` pre-lowered arms at `arms[arms_at..]`.
    Case {
        scrut: CodeId,
        arms_at: u32,
        n: u16,
    },
    /// A strict unary primitive.
    Prim1 {
        op: PrimOp,
        a: CodeId,
    },
    /// A strict binary primitive (operand order stays a machine policy).
    Prim2 {
        op: PrimOp,
        a: CodeId,
        b: CodeId,
    },
    Seq {
        a: CodeId,
        b: CodeId,
    },
    MapExn {
        f: CodeId,
        a: CodeId,
    },
    IsExn {
        a: CodeId,
    },
    GetExn {
        a: CodeId,
    },
    Raise {
        a: CodeId,
    },
    /// Tier-2: a call-free straight-line region (primitives over
    /// locals/globals/literals) executed atomically in one step when every
    /// variable leaf is already forced; otherwise evaluation bails out to
    /// the stepped path through `body`. Emitted only by
    /// [`crate::tier2_optimize`], in strict positions.
    Fused {
        body: CodeId,
    },
    /// Tier-2: a lazy-position right-hand side licensed for speculative
    /// evaluation. Allocation evaluates `body` eagerly when it is a ready
    /// region (or a constructor/lambda to build), storing a synchronous
    /// raise as a *poisoned* node — §3.3's `raise ex` overwrite, which is
    /// observationally identical to the thunk it replaces.
    Spec {
        body: CodeId,
    },
    /// Tier-2: an application whose callee op (`f`) is a `Global`, with a
    /// monomorphic inline-cache slot caching the resolved callee value
    /// per machine.
    AppG {
        f: CodeId,
        ic: u32,
        a: CodeId,
    },
}

impl COp {
    /// A dense discriminant for the coverage map's op-pair matrix
    /// (`0..`[`crate::coverage::OP_KINDS`]). Exhaustive so a new variant
    /// fails to compile until the coverage dimension is reconsidered.
    pub(crate) fn kind_index(&self) -> u8 {
        match self {
            COp::Local(_) => 0,
            COp::Global(_) => 1,
            COp::Int(_) => 2,
            COp::Char(_) => 3,
            COp::Str(_) => 4,
            COp::Con { .. } => 5,
            COp::App { .. } => 6,
            COp::Lam { .. } => 7,
            COp::Let { .. } => 8,
            COp::LetRec { .. } => 9,
            COp::Case { .. } => 10,
            COp::Prim1 { .. } => 11,
            COp::Prim2 { .. } => 12,
            COp::Seq { .. } => 13,
            COp::MapExn { .. } => 14,
            COp::IsExn { .. } => 15,
            COp::GetExn { .. } => 16,
            COp::Raise { .. } => 17,
            COp::Fused { .. } => 18,
            COp::Spec { .. } => 19,
            COp::AppG { .. } => 20,
        }
    }
}

/// What one pre-lowered case arm matches. Constructor dispatch is a
/// `Symbol` compare — an interned `u32` equality, no name scan.
#[derive(Copy, Clone, Debug)]
pub(crate) enum CPat {
    Con(Symbol),
    Int(i64),
    Char(char),
    Str(u32),
    Default,
}

/// One pre-lowered case arm. `binders` is how many scrutinee fields the
/// arm pushes (for `Default`, `bind_scrut` pushes the scrutinee itself);
/// the rhs was compiled under exactly that many extra slots.
#[derive(Copy, Clone, Debug)]
pub(crate) struct CArm {
    pub(crate) pat: CPat,
    pub(crate) rhs: CodeId,
    pub(crate) binders: u16,
    pub(crate) bind_scrut: bool,
}

/// The contiguous storage one compilation unit emits into.
#[derive(Debug, Default)]
pub struct CodeBuf {
    pub(crate) ops: Vec<COp>,
    pub(crate) kids: Vec<CodeId>,
    pub(crate) arms: Vec<CArm>,
    pub(crate) strs: Vec<Arc<str>>,
}

impl CodeBuf {
    fn len_of(&self) -> Bases {
        Bases {
            ops: self.ops.len() as u32,
            kids: self.kids.len() as u32,
            arms: self.arms.len() as u32,
            strs: self.strs.len() as u32,
        }
    }
}

/// Table offsets a compilation starts from, so extension code emits
/// absolute indices that address past the shared base tables.
#[derive(Copy, Clone, Debug, Default)]
struct Bases {
    ops: u32,
    kids: u32,
    arms: u32,
    strs: u32,
}

/// A whole compiled program: the flat op arena plus the top-level
/// binding table. Immutable and `Send + Sync` — one `Arc<Code>` serves
/// every worker in a pool.
#[derive(Debug)]
pub struct Code {
    pub(crate) buf: CodeBuf,
    /// Top-level bindings in program order: `(name, rhs entry point)`.
    pub(crate) globals: Vec<(Symbol, CodeId)>,
    /// Name → global-table index (later bindings shadow earlier ones,
    /// matching the tree machine's environment order).
    pub(crate) global_index: HashMap<Symbol, u32>,
    /// Ops emitted compiling the program (observability).
    pub(crate) compile_ops: u64,
    /// Wall-clock microseconds spent compiling the program.
    pub(crate) compile_micros: u64,
    /// True when [`crate::tier2_optimize`] produced this image (the
    /// machine tags its stats with [`crate::Tier::Two`] on link).
    pub(crate) tier2: bool,
    /// Number of `AppG` inline-cache slots the image allocates (the
    /// machine sizes its per-machine cache table from this on link).
    pub(crate) ic_slots: u32,
}

impl Code {
    /// Number of ops in the program arena.
    pub fn op_count(&self) -> usize {
        self.buf.ops.len()
    }

    /// True when this image was produced by the tier-2 pass.
    pub fn is_tier2(&self) -> bool {
        self.tier2
    }

    /// Number of inline-cache slots the image's `AppG` call sites use.
    pub fn ic_slot_count(&self) -> u32 {
        self.ic_slots
    }

    /// Ops emitted compiling the program (same as [`Code::op_count`],
    /// typed for stats accumulation).
    pub fn compile_ops(&self) -> u64 {
        self.compile_ops
    }

    /// Wall-clock microseconds spent compiling the program.
    pub fn compile_micros(&self) -> u64 {
        self.compile_micros
    }
}

// `Code` must stay shareable across pool workers; a compile error here
// means an `Rc` or thread-bound type leaked into the arena.
#[allow(dead_code)]
fn code_is_send_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Code>();
}

/// A structural defect found by [`Code::verify`]: the op index it was
/// found at and what is wrong with it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodeVerifyError {
    /// Absolute op index the defect was found at.
    pub at: u32,
    /// What is wrong.
    pub message: String,
}

impl std::fmt::Display for CodeVerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt code arena at op {}: {}", self.at, self.message)
    }
}

impl std::error::Error for CodeVerifyError {}

/// A read-only view over a base arena plus an optional extension, for
/// verification (mirrors [`LinkedCode`]'s base-then-ext indexing).
struct VerifyView<'a> {
    base: &'a CodeBuf,
    ext: Option<&'a CodeBuf>,
    globals_len: usize,
    ic_slots: u32,
}

/// Upper bound on ops in one tier-2 fused region — keeps the atomic
/// in-step evaluation (a bounded recursive walk) small, so a region can
/// never turn one machine step into unbounded work. The tier-2 pass never
/// emits a larger region and [`Code::verify`] rejects one.
pub(crate) const MAX_REGION_OPS: usize = 64;

impl VerifyView<'_> {
    fn ops_total(&self) -> usize {
        self.base.ops.len() + self.ext.map_or(0, |e| e.ops.len())
    }
    fn kids_total(&self) -> usize {
        self.base.kids.len() + self.ext.map_or(0, |e| e.kids.len())
    }
    fn arms_total(&self) -> usize {
        self.base.arms.len() + self.ext.map_or(0, |e| e.arms.len())
    }
    fn strs_total(&self) -> usize {
        self.base.strs.len() + self.ext.map_or(0, |e| e.strs.len())
    }
    fn op(&self, i: usize) -> Option<COp> {
        if i < self.base.ops.len() {
            Some(self.base.ops[i])
        } else {
            self.ext
                .and_then(|e| e.ops.get(i - self.base.ops.len()).copied())
        }
    }
    fn kid(&self, i: usize) -> CodeId {
        if i < self.base.kids.len() {
            self.base.kids[i]
        } else {
            self.ext.expect("in range").kids[i - self.base.kids.len()]
        }
    }
    fn arm(&self, i: usize) -> CArm {
        if i < self.base.arms.len() {
            self.base.arms[i]
        } else {
            self.ext.expect("in range").arms[i - self.base.arms.len()]
        }
    }
}

impl Code {
    /// Statically checks the arena's structural invariants, the ones the
    /// executor relies on without checking on the hot path:
    ///
    /// * every referenced op index is in bounds, and every child's
    ///   [`CodeId`] is strictly below its parent's (the compiler emits
    ///   children first, which also makes the arena acyclic);
    /// * `Local(back)` back-indices stay inside the lexical depth the op
    ///   is executed at (tracked exactly as the [`Compiler`] scope does:
    ///   lambda and let bodies one deeper, `letrec` groups `n` deeper,
    ///   case arms deeper by their binder count);
    /// * `Global`, string, kid-range, and arm-range indices address their
    ///   tables in bounds.
    ///
    /// Runs on every program compile in debug builds, and in release
    /// under `--verify-code` (see `MachineConfig::verify_code`).
    pub fn verify(&self) -> Result<(), CodeVerifyError> {
        let view = VerifyView {
            base: &self.buf,
            ext: None,
            globals_len: self.globals.len(),
            ic_slots: self.ic_slots,
        };
        for (_, entry) in &self.globals {
            verify_entry(&view, *entry, 0)?;
        }
        Ok(())
    }
}

/// Verifies one query entry point compiled into `ext` against `base`.
pub(crate) fn verify_query(
    base: &Code,
    ext: &CodeBuf,
    entry: CodeId,
) -> Result<(), CodeVerifyError> {
    let view = VerifyView {
        base: &base.buf,
        ext: Some(ext),
        globals_len: base.globals.len(),
        ic_slots: base.ic_slots,
    };
    verify_entry(&view, entry, 0)
}

/// Walks the tree rooted at `entry`, tracking the lexical depth each op
/// executes at, and checks every structural invariant along the way.
fn verify_entry(view: &VerifyView<'_>, entry: CodeId, depth: u32) -> Result<(), CodeVerifyError> {
    let err = |at: CodeId, message: String| CodeVerifyError { at: at.0, message };
    let mut work: Vec<(CodeId, u32)> = vec![(entry, depth)];
    // The arena is tree-shaped (one parent per op), so the walk visits
    // each op at most once per entry; the budget is a defensive bound
    // against corrupted arenas re-sharing children.
    let mut budget = 4 * view.ops_total() as u64 + 16;
    while let Some((id, depth)) = work.pop() {
        budget = budget.checked_sub(1).ok_or_else(|| {
            err(
                id,
                "arena walk exceeded its budget (not tree-shaped)".into(),
            )
        })?;
        let Some(op) = view.op(id.0 as usize) else {
            return Err(err(
                id,
                format!("op index out of range ({})", view.ops_total()),
            ));
        };
        let kid = |child: CodeId, d: u32, work: &mut Vec<(CodeId, u32)>| {
            if child.0 >= id.0 {
                return Err(err(
                    id,
                    format!("child {} not strictly before its parent", child.0),
                ));
            }
            work.push((child, d));
            Ok(())
        };
        match op {
            COp::Local(back) => {
                if back >= depth {
                    return Err(err(
                        id,
                        format!("local back-index {back} escapes env depth {depth}"),
                    ));
                }
            }
            COp::Global(g) => {
                if g as usize >= view.globals_len {
                    return Err(err(
                        id,
                        format!("global index {g} out of range ({})", view.globals_len),
                    ));
                }
            }
            COp::Int(_) | COp::Char(_) => {}
            COp::Str(s) => {
                if s as usize >= view.strs_total() {
                    return Err(err(
                        id,
                        format!("string index {s} out of range ({})", view.strs_total()),
                    ));
                }
            }
            COp::Con { args, n, .. } => {
                let end = args as u64 + n as u64;
                if end > view.kids_total() as u64 {
                    return Err(err(
                        id,
                        format!(
                            "constructor kid range {args}..{end} out of range ({})",
                            view.kids_total()
                        ),
                    ));
                }
                for i in args..args + n as u32 {
                    kid(view.kid(i as usize), depth, &mut work)?;
                }
            }
            COp::App { f, a } => {
                kid(f, depth, &mut work)?;
                kid(a, depth, &mut work)?;
            }
            COp::Lam { body } => kid(body, depth + 1, &mut work)?,
            COp::Let { rhs, body } => {
                kid(rhs, depth, &mut work)?;
                kid(body, depth + 1, &mut work)?;
            }
            COp::LetRec { rhss, n, body } => {
                let end = rhss as u64 + n as u64;
                if end > view.kids_total() as u64 {
                    return Err(err(
                        id,
                        format!(
                            "letrec kid range {rhss}..{end} out of range ({})",
                            view.kids_total()
                        ),
                    ));
                }
                let inner = depth + n as u32;
                for i in rhss..rhss + n as u32 {
                    kid(view.kid(i as usize), inner, &mut work)?;
                }
                kid(body, inner, &mut work)?;
            }
            COp::Case { scrut, arms_at, n } => {
                kid(scrut, depth, &mut work)?;
                let end = arms_at as u64 + n as u64;
                if end > view.arms_total() as u64 {
                    return Err(err(
                        id,
                        format!(
                            "case arm range {arms_at}..{end} out of range ({})",
                            view.arms_total()
                        ),
                    ));
                }
                for i in arms_at..arms_at + n as u32 {
                    let arm = view.arm(i as usize);
                    if let CPat::Str(s) = arm.pat {
                        if s as usize >= view.strs_total() {
                            return Err(err(
                                id,
                                format!(
                                    "arm string index {s} out of range ({})",
                                    view.strs_total()
                                ),
                            ));
                        }
                    }
                    let d = depth + arm.binders as u32 + u32::from(arm.bind_scrut);
                    kid(arm.rhs, d, &mut work)?;
                }
            }
            COp::Prim2 { a, b, .. } | COp::Seq { a, b } | COp::MapExn { f: a, a: b } => {
                kid(a, depth, &mut work)?;
                kid(b, depth, &mut work)?;
            }
            COp::Prim1 { a, .. } | COp::IsExn { a } | COp::GetExn { a } | COp::Raise { a } => {
                kid(a, depth, &mut work)?;
            }
            COp::Fused { body } => {
                kid(body, depth, &mut work)?;
                verify_region(view, id, body)?;
            }
            COp::Spec { body } => {
                kid(body, depth, &mut work)?;
                verify_spec(view, id, body)?;
            }
            COp::AppG { f, ic, a } => {
                kid(f, depth, &mut work)?;
                kid(a, depth, &mut work)?;
                match view.op(f.0 as usize) {
                    Some(COp::Global(_)) => {}
                    _ => {
                        return Err(err(id, format!("AppG callee op {} is not a Global", f.0)));
                    }
                }
                if ic >= view.ic_slots {
                    return Err(err(
                        id,
                        format!("inline-cache slot {ic} out of range ({})", view.ic_slots),
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Checks that the tree rooted at `root` is a legal fused region: only
/// WHNF-transparent ops (locals, globals, literals, nullary constructors)
/// and strict primitive combinators, at most [`MAX_REGION_OPS`] ops, and
/// at least one primitive (a region with none would be a pointless
/// wrapper the pass never emits). The size budget doubles as a cycle
/// bound on corrupted arenas.
fn verify_region(view: &VerifyView<'_>, at: CodeId, root: CodeId) -> Result<(), CodeVerifyError> {
    let err = |message: String| CodeVerifyError { at: at.0, message };
    let mut work = vec![root];
    let mut size = 0usize;
    let mut prims = 0usize;
    while let Some(id) = work.pop() {
        size += 1;
        if size > MAX_REGION_OPS {
            return Err(err(format!(
                "fused region exceeds {MAX_REGION_OPS} ops (or is cyclic)"
            )));
        }
        let Some(op) = view.op(id.0 as usize) else {
            return Err(err(format!("op index out of range ({})", view.ops_total())));
        };
        match op {
            COp::Local(_) | COp::Global(_) | COp::Int(_) | COp::Char(_) | COp::Str(_) => {}
            COp::Con { n: 0, .. } => {}
            COp::Prim1 { a, .. } => {
                prims += 1;
                work.push(a);
            }
            COp::Prim2 { a, b, .. } => {
                prims += 1;
                work.push(a);
                work.push(b);
            }
            COp::Seq { a, b } => {
                prims += 1;
                work.push(a);
                work.push(b);
            }
            other => {
                return Err(err(format!(
                    "unfusable op kind {} in region",
                    other.kind_index()
                )));
            }
        }
    }
    if prims == 0 {
        return Err(err("fused region contains no primitive".into()));
    }
    Ok(())
}

/// Checks a speculation body: either an eagerly buildable value form
/// (lambda, constructor, string literal) or a legal fused region whose
/// raises the executor stores as poison (§3.3) instead of propagating.
fn verify_spec(view: &VerifyView<'_>, at: CodeId, body: CodeId) -> Result<(), CodeVerifyError> {
    match view.op(body.0 as usize) {
        Some(COp::Lam { .. } | COp::Con { .. } | COp::Str(_)) => Ok(()),
        _ => verify_region(view, at, body),
    }
}

/// Compiles a desugared top-level binding group into one flat [`Code`]
/// arena. Free variables of every right-hand side must be bound by the
/// group itself (the session's combined Prelude + loads satisfy this).
///
/// # Panics
///
/// Panics on an unbound variable — like the tree machine, which panics
/// when `MEnv::lookup` misses; the front end guarantees closedness.
pub fn compile_program(binds: &[(Symbol, Rc<Expr>)]) -> Code {
    let t0 = std::time::Instant::now();
    let mut buf = CodeBuf::default();
    let mut global_index: HashMap<Symbol, u32> = HashMap::with_capacity(binds.len());
    for (i, (name, _)) in binds.iter().enumerate() {
        // Later bindings shadow earlier ones, as in `bind_recursive`.
        global_index.insert(*name, i as u32);
    }
    let mut globals = Vec::with_capacity(binds.len());
    for (name, rhs) in binds {
        let mut c = Compiler {
            buf: &mut buf,
            globals: &global_index,
            scope: Vec::new(),
            bases: Bases::default(),
        };
        globals.push((*name, c.compile(rhs)));
    }
    let compile_ops = buf.ops.len() as u64;
    Code {
        buf,
        globals,
        global_index,
        compile_ops,
        compile_micros: t0.elapsed().as_micros() as u64,
        tier2: false,
        ic_slots: 0,
    }
}

/// Compiles one query expression into `ext`, resolving free variables
/// against `base`'s global table. Returns the entry point and the number
/// of ops emitted.
pub(crate) fn compile_query(base: &Code, ext: &mut CodeBuf, expr: &Expr) -> (CodeId, u64) {
    let before = ext.ops.len();
    // Absolute addressing offsets by the base tables only: `ext` may
    // already hold earlier queries, and the emit helpers index as
    // `bases + ext.len()`, which accounts for that existing content.
    let bases = base.buf.len_of();
    let mut c = Compiler {
        buf: ext,
        globals: &base.global_index,
        scope: Vec::new(),
        bases,
    };
    let entry = c.compile(expr);
    (entry, (ext.ops.len() - before) as u64)
}

/// The one-pass lowering walk. `scope` is the compile-time mirror of the
/// runtime environment: code compiled with `scope.len() == n` always
/// executes under an environment of exactly `n` slots, so a variable at
/// scope position `i` is slot `n - 1 - i` back from the top.
struct Compiler<'a> {
    buf: &'a mut CodeBuf,
    globals: &'a HashMap<Symbol, u32>,
    scope: Vec<Symbol>,
    /// Zero for program compilation; `compile_query` sets it so
    /// extension indices address past the shared base tables.
    bases: Bases,
}

impl Compiler<'_> {
    fn emit(&mut self, op: COp) -> CodeId {
        let id = CodeId(self.bases.ops + self.buf.ops.len() as u32);
        self.buf.ops.push(op);
        id
    }

    fn push_kids(&mut self, kids: &[CodeId]) -> u32 {
        let at = self.bases.kids + self.buf.kids.len() as u32;
        self.buf.kids.extend_from_slice(kids);
        at
    }

    fn intern_str(&mut self, s: &str) -> u32 {
        // Program-level literals are few; a linear scan keeps the table
        // deduplicated without a side map.
        if let Some(i) = self.buf.strs.iter().position(|t| &**t == s) {
            return self.bases.strs + i as u32;
        }
        let i = self.bases.strs + self.buf.strs.len() as u32;
        self.buf.strs.push(Arc::from(s));
        i
    }

    fn compile(&mut self, e: &Expr) -> CodeId {
        match e {
            Expr::Var(v) => {
                if let Some(i) = self.scope.iter().rposition(|s| s == v) {
                    let back = (self.scope.len() - 1 - i) as u32;
                    return self.emit(COp::Local(back));
                }
                if let Some(g) = self.globals.get(v) {
                    return self.emit(COp::Global(*g));
                }
                panic!("unbound variable '{v}' while compiling");
            }
            Expr::Int(n) => self.emit(COp::Int(*n)),
            Expr::Char(c) => self.emit(COp::Char(*c)),
            Expr::Str(s) => {
                let i = self.intern_str(s);
                self.emit(COp::Str(i))
            }
            Expr::Con(c, args) => {
                let kid_ids: Vec<CodeId> = args.iter().map(|a| self.compile(a)).collect();
                let args_at = self.push_kids(&kid_ids);
                self.emit(COp::Con {
                    tag: *c,
                    args: args_at,
                    n: u16::try_from(kid_ids.len()).expect("constructor arity fits u16"),
                })
            }
            Expr::App(f, a) => {
                let f = self.compile(f);
                let a = self.compile(a);
                self.emit(COp::App { f, a })
            }
            Expr::Lam(x, b) => {
                self.scope.push(*x);
                let body = self.compile(b);
                self.scope.pop();
                self.emit(COp::Lam { body })
            }
            Expr::Let(x, rhs, body) => {
                let rhs = self.compile(rhs);
                self.scope.push(*x);
                let body = self.compile(body);
                self.scope.pop();
                self.emit(COp::Let { rhs, body })
            }
            Expr::LetRec(binds, body) => {
                for (name, _) in binds {
                    self.scope.push(*name);
                }
                let rhs_ids: Vec<CodeId> = binds.iter().map(|(_, r)| self.compile(r)).collect();
                let body = self.compile(body);
                self.scope.truncate(self.scope.len() - binds.len());
                let rhss = self.push_kids(&rhs_ids);
                self.emit(COp::LetRec {
                    rhss,
                    n: u16::try_from(rhs_ids.len()).expect("letrec group fits u16"),
                    body,
                })
            }
            Expr::Case(scrut, alts) => {
                let scrut = self.compile(scrut);
                let lowered: Vec<CArm> = alts.iter().map(|a| self.compile_arm(a)).collect();
                let arms_at = self.bases.arms + self.buf.arms.len() as u32;
                self.buf.arms.extend_from_slice(&lowered);
                self.emit(COp::Case {
                    scrut,
                    arms_at,
                    n: u16::try_from(lowered.len()).expect("alternative count fits u16"),
                })
            }
            Expr::Prim(op, args) => match op {
                PrimOp::Seq => {
                    let a = self.compile(&args[0]);
                    let b = self.compile(&args[1]);
                    self.emit(COp::Seq { a, b })
                }
                PrimOp::MapExn => {
                    let f = self.compile(&args[0]);
                    let a = self.compile(&args[1]);
                    self.emit(COp::MapExn { f, a })
                }
                PrimOp::UnsafeIsException => {
                    let a = self.compile(&args[0]);
                    self.emit(COp::IsExn { a })
                }
                PrimOp::UnsafeGetException => {
                    let a = self.compile(&args[0]);
                    self.emit(COp::GetExn { a })
                }
                _ if args.len() == 1 => {
                    let a = self.compile(&args[0]);
                    self.emit(COp::Prim1 { op: *op, a })
                }
                _ => {
                    let a = self.compile(&args[0]);
                    let b = self.compile(&args[1]);
                    self.emit(COp::Prim2 { op: *op, a, b })
                }
            },
            Expr::Raise(e) => {
                let a = self.compile(e);
                self.emit(COp::Raise { a })
            }
        }
    }

    fn compile_arm(&mut self, alt: &Alt) -> CArm {
        match &alt.con {
            AltCon::Default => {
                // A default arm may bind the forced scrutinee (only the
                // first binder, matching the tree machine's `select`).
                let bind_scrut = !alt.binders.is_empty();
                if bind_scrut {
                    self.scope.push(alt.binders[0]);
                }
                let rhs = self.compile(&alt.rhs);
                if bind_scrut {
                    self.scope.pop();
                }
                CArm {
                    pat: CPat::Default,
                    rhs,
                    binders: 0,
                    bind_scrut,
                }
            }
            AltCon::Con(c) => {
                for b in &alt.binders {
                    self.scope.push(*b);
                }
                let rhs = self.compile(&alt.rhs);
                self.scope.truncate(self.scope.len() - alt.binders.len());
                CArm {
                    pat: CPat::Con(*c),
                    rhs,
                    binders: u16::try_from(alt.binders.len()).expect("binder count fits u16"),
                    bind_scrut: false,
                }
            }
            AltCon::Int(n) => self.literal_arm(CPat::Int(*n), alt),
            AltCon::Char(c) => self.literal_arm(CPat::Char(*c), alt),
            AltCon::Str(s) => {
                let i = self.intern_str(s);
                self.literal_arm(CPat::Str(i), alt)
            }
        }
    }

    fn literal_arm(&mut self, pat: CPat, alt: &Alt) -> CArm {
        let rhs = self.compile(&alt.rhs);
        CArm {
            pat,
            rhs,
            binders: 0,
            bind_scrut: false,
        }
    }
}

/// The machine's view of its compiled code: the shared program base plus
/// a machine-local extension holding per-query entry points. Heap thunks
/// carry `CodeId`s valid for the machine's whole life — the extension
/// only grows.
#[derive(Debug)]
pub(crate) struct LinkedCode {
    pub(crate) base: Arc<Code>,
    pub(crate) ext: CodeBuf,
    /// One heap node per top-level binding, knot-tied through this table
    /// (global code refers here by index, so global thunks carry empty
    /// environments).
    pub(crate) global_nodes: Vec<NodeId>,
}

impl LinkedCode {
    pub(crate) fn new(base: Arc<Code>) -> LinkedCode {
        LinkedCode {
            base,
            ext: CodeBuf::default(),
            global_nodes: Vec::new(),
        }
    }

    #[inline]
    pub(crate) fn op(&self, id: CodeId) -> COp {
        let base = &self.base.buf.ops;
        let i = id.0 as usize;
        if i < base.len() {
            base[i]
        } else {
            self.ext.ops[i - base.len()]
        }
    }

    #[inline]
    pub(crate) fn kid(&self, i: u32) -> CodeId {
        let base = &self.base.buf.kids;
        let i = i as usize;
        if i < base.len() {
            base[i]
        } else {
            self.ext.kids[i - base.len()]
        }
    }

    #[inline]
    pub(crate) fn arm(&self, i: u32) -> CArm {
        let base = &self.base.buf.arms;
        let i = i as usize;
        if i < base.len() {
            base[i]
        } else {
            self.ext.arms[i - base.len()]
        }
    }

    /// Borrowed view of an interned string literal (for comparisons that
    /// need no allocation, e.g. string-pattern dispatch).
    #[inline]
    pub(crate) fn str_ref(&self, i: u32) -> &str {
        let base = &self.base.buf.strs;
        let i = i as usize;
        if i < base.len() {
            &base[i]
        } else {
            &self.ext.strs[i - base.len()]
        }
    }

    #[inline]
    pub(crate) fn str_at(&self, i: u32) -> Rc<str> {
        let base = &self.base.buf.strs;
        let i = i as usize;
        let s: &Arc<str> = if i < base.len() {
            &base[i]
        } else {
            &self.ext.strs[i - base.len()]
        };
        Rc::from(&**s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urk_syntax::{desugar_program, parse_program, DataEnv};

    fn compiled(src: &str) -> Code {
        let mut data = DataEnv::new();
        let prog =
            desugar_program(&parse_program(src).expect("parses"), &mut data).expect("desugars");
        compile_program(&prog.binds)
    }

    #[test]
    fn verify_accepts_compiler_output() {
        let code = compiled(
            "double x = x + x\n\
             classify n = case n of { 0 -> \"zero\"; _ -> \"other\" }\n\
             len xs = case xs of { [] -> 0; y:ys -> 1 + len ys }\n\
             observe e = if unsafeIsException e then 0 else e\n\
             main = double (len [1, 2, 3]) + classify 0 `seq` 9",
        );
        code.verify()
            .expect("compiler-emitted arenas are well-formed");
    }

    #[test]
    fn verify_rejects_an_escaping_local_back_index() {
        let mut code = compiled("id x = x");
        let at = code
            .buf
            .ops
            .iter()
            .position(|op| matches!(op, COp::Local(_)))
            .expect("the identity body is a local");
        // Sabotage: point the variable five slots past the lambda's
        // one-deep environment.
        code.buf.ops[at] = COp::Local(5);
        let err = code.verify().expect_err("escaping back-index");
        assert_eq!(err.at, at as u32);
        assert!(
            err.message.contains("escapes env depth"),
            "unexpected message: {err}"
        );
    }

    #[test]
    fn verify_rejects_a_dangling_kid_range() {
        let mut code = compiled("pair = Pair 1 2");
        let at = code
            .buf
            .ops
            .iter()
            .position(|op| matches!(op, COp::Con { .. }))
            .expect("a constructor op");
        let COp::Con { tag, args, .. } = code.buf.ops[at] else {
            unreachable!()
        };
        code.buf.ops[at] = COp::Con { tag, args, n: 200 };
        let err = code.verify().expect_err("dangling kid range");
        assert!(
            err.message.contains("kid range"),
            "unexpected message: {err}"
        );
    }

    #[test]
    fn verify_rejects_forward_references_and_cycles() {
        let mut code = compiled("loopy = 1 + 2");
        let at = code
            .buf
            .ops
            .iter()
            .position(|op| matches!(op, COp::Prim2 { .. }))
            .expect("an addition op");
        let COp::Prim2 { op, b, .. } = code.buf.ops[at] else {
            unreachable!()
        };
        // Sabotage: the op's own id as a child — a self-cycle. The
        // strictly-decreasing child rule catches it immediately (and the
        // walk budget would bound it even if it did not).
        code.buf.ops[at] = COp::Prim2 {
            op,
            a: CodeId(at as u32),
            b,
        };
        let err = code.verify().expect_err("self-cycle");
        assert!(
            err.message.contains("not strictly before"),
            "unexpected message: {err}"
        );
    }

    #[test]
    fn verify_rejects_out_of_range_globals_and_strings() {
        let mut code = compiled("greeting = \"hello\"");
        let at = code
            .buf
            .ops
            .iter()
            .position(|op| matches!(op, COp::Str(_)))
            .expect("a string literal");
        code.buf.ops[at] = COp::Str(99);
        let err = code.verify().expect_err("dangling string index");
        assert!(err.message.contains("string index"), "{err}");

        let mut code = compiled("seven = 7");
        code.buf.ops[0] = COp::Global(42);
        let err = code.verify().expect_err("dangling global index");
        assert!(err.message.contains("global index"), "{err}");
    }

    fn tier2_of(src: &str) -> Code {
        crate::tier2::tier2_optimize(&compiled(src), &crate::tier2::Tier2Facts::empty())
    }

    fn find_op(code: &Code, pred: impl Fn(&COp) -> bool) -> usize {
        code.buf
            .ops
            .iter()
            .position(pred)
            .expect("expected op kind present")
    }

    #[test]
    fn verify_rejects_a_fused_region_wrapping_a_raise() {
        // §3.3 discipline: a Raise inside an atomic region would skip the
        // per-frame trim; the region grammar excludes it.
        let mut code = tier2_of("f x = x + x\nmain = f 1");
        let at = find_op(&code, |op| matches!(op, COp::Fused { .. }));
        let raise_at = code.buf.ops.len() as u32;
        let COp::Fused { body } = code.buf.ops[at] else {
            unreachable!()
        };
        code.buf.ops.push(COp::Raise { a: body });
        code.buf.ops[at] = COp::Fused {
            body: CodeId(raise_at),
        };
        // Re-point: child must stay strictly before the parent, so move
        // the Fused op itself past the new Raise.
        let fused = code.buf.ops[at];
        code.buf.ops[at] = COp::Int(0);
        code.buf.ops.push(fused);
        let entry_global = code
            .globals
            .iter_mut()
            .find(|(_, e)| e.0 == at as u32)
            .map(|(_, e)| e);
        if let Some(e) = entry_global {
            *e = CodeId(code.buf.ops.len() as u32 - 1);
        } else {
            // The Fused op was not a global entry; reach it through a new
            // synthetic global so the walk visits it.
            code.globals.push((
                Symbol::intern("sabotaged"),
                CodeId(code.buf.ops.len() as u32 - 1),
            ));
        }
        let err = code.verify().expect_err("raise inside a region");
        assert!(err.message.contains("unfusable op kind"), "{err}");
    }

    #[test]
    fn verify_rejects_a_fused_region_wrapping_an_application() {
        // Calls are unbounded work: a region containing one would turn a
        // single step into arbitrary evaluation.
        let mut code = tier2_of("f x = x + x\nmain = f 1");
        let app_at = find_op(&code, |op| matches!(op, COp::App { .. } | COp::AppG { .. }));
        code.buf.ops.push(COp::Fused {
            body: CodeId(app_at as u32),
        });
        code.globals.push((
            Symbol::intern("sabotaged"),
            CodeId(code.buf.ops.len() as u32 - 1),
        ));
        let err = code.verify().expect_err("application inside a region");
        assert!(err.message.contains("unfusable op kind"), "{err}");
    }

    #[test]
    fn verify_rejects_a_region_with_no_primitive() {
        let mut code = tier2_of("main = 2 * 3 + 1");
        let int_at = find_op(&code, |op| matches!(op, COp::Int(_)));
        let fused_at = find_op(&code, |op| matches!(op, COp::Fused { .. }));
        code.buf.ops[fused_at] = COp::Fused {
            body: CodeId(int_at as u32),
        };
        let err = code.verify().expect_err("pointless region");
        assert!(err.message.contains("no primitive"), "{err}");
    }

    #[test]
    fn verify_rejects_a_speculation_wrapping_an_application() {
        let mut code = tier2_of("f x = x + x\nmain = let s = 2 * 3 in f s");
        let app_at = find_op(&code, |op| matches!(op, COp::App { .. } | COp::AppG { .. }));
        let spec_at = find_op(&code, |op| matches!(op, COp::Spec { .. }));
        // Only sabotage if the App precedes the Spec (child ordering);
        // otherwise synthesize a fresh Spec past the App.
        if app_at < spec_at {
            code.buf.ops[spec_at] = COp::Spec {
                body: CodeId(app_at as u32),
            };
        } else {
            code.buf.ops.push(COp::Spec {
                body: CodeId(app_at as u32),
            });
            code.globals.push((
                Symbol::intern("sabotaged"),
                CodeId(code.buf.ops.len() as u32 - 1),
            ));
        }
        let err = code.verify().expect_err("unbounded speculation");
        assert!(err.message.contains("unfusable op kind"), "{err}");
    }

    #[test]
    fn verify_rejects_an_inline_cache_slot_out_of_range() {
        let mut code = tier2_of("f x = x + x\nmain = f 1");
        let at = find_op(&code, |op| matches!(op, COp::AppG { .. }));
        let COp::AppG { f, a, .. } = code.buf.ops[at] else {
            unreachable!()
        };
        code.buf.ops[at] = COp::AppG { f, ic: 99, a };
        let err = code.verify().expect_err("dangling cache slot");
        assert!(err.message.contains("inline-cache slot"), "{err}");
    }

    #[test]
    fn verify_rejects_an_inline_cached_call_on_a_non_global() {
        let mut code = tier2_of("f x = x + x\nmain = f 1");
        let at = find_op(&code, |op| matches!(op, COp::AppG { .. }));
        let COp::AppG { ic, a, .. } = code.buf.ops[at] else {
            unreachable!()
        };
        let int_at = find_op(&code, |op| matches!(op, COp::Int(_)));
        code.buf.ops[at] = COp::AppG {
            f: CodeId(int_at as u32),
            ic,
            a,
        };
        let err = code.verify().expect_err("cached callee must be a global");
        assert!(err.message.contains("not a Global"), "{err}");
    }

    #[test]
    fn verify_rejects_an_oversized_region() {
        // Chain MAX_REGION_OPS + 1 negations: every op is region-legal,
        // but the size cap (the single-step work bound) must reject it.
        let mut code = compiled("seed = 0");
        let mut cur = CodeId(
            code.buf
                .ops
                .iter()
                .position(|op| matches!(op, COp::Int(_)))
                .expect("the literal") as u32,
        );
        for _ in 0..MAX_REGION_OPS {
            code.buf.ops.push(COp::Prim1 {
                op: urk_syntax::core::PrimOp::Neg,
                a: cur,
            });
            cur = CodeId(code.buf.ops.len() as u32 - 1);
        }
        code.buf.ops.push(COp::Fused { body: cur });
        code.globals.push((
            Symbol::intern("oversized"),
            CodeId(code.buf.ops.len() as u32 - 1),
        ));
        let err = code.verify().expect_err("region past the size cap");
        assert!(err.message.contains("exceeds"), "{err}");
    }

    #[test]
    fn verify_query_checks_extension_code_against_the_base() {
        use urk_syntax::{desugar_expr, parse_expr_src};
        let base = compiled("double x = x + x");
        let data = DataEnv::new();
        let query =
            desugar_expr(&parse_expr_src("double 21").expect("parses"), &data).expect("desugars");
        let mut ext = CodeBuf::default();
        let (entry, _) = compile_query(&base, &mut ext, &query);
        verify_query(&base, &ext, entry).expect("well-formed query");
        // Sabotage the extension: a local in a depth-zero query.
        let at = ext
            .ops
            .iter()
            .position(|op| matches!(op, COp::Global(_)))
            .expect("the call head resolves globally");
        ext.ops[at] = COp::Local(0);
        let err = verify_query(&base, &ext, entry).expect_err("no slots at depth 0");
        assert!(err.message.contains("escapes env depth"), "{err}");
    }
}
