//! A cheap execution-coverage signal for the fuzzer.
//!
//! The compiled backend dispatches one flat [`COp`](crate::code) per
//! `step_ceval`; recording the *pair* of consecutive op kinds gives an
//! edge-coverage signal analogous to AFL's branch pairs, but over the
//! lowered code's control skeleton instead of machine branches. The map is
//! a dense `KINDS × KINDS` matrix of hit counters — small enough to clear
//! per candidate and diff against a global "seen" bitmap in microseconds.
//!
//! The hook is off by default ([`MachineConfig::coverage`]) and costs one
//! `Option` test per compiled step when disabled; nothing is recorded for
//! the tree backend, which shares every semantic decision with the
//! compiled one anyway (the differential battery proves it).
//!
//! [`MachineConfig::coverage`]: crate::MachineConfig::coverage

/// Number of distinct [`COp`](crate::code) kinds (enum variants). Kept in
/// sync by `COp::kind_index`'s exhaustive match.
pub const OP_KINDS: usize = 21;

/// Number of [`urk_syntax::core::PrimOp`] variants (the enum is fieldless,
/// so `op as usize` indexes the profile matrix densely).
pub const PRIM_OPS: usize = 22;

/// Operand value classes for the prim-op profile (see
/// [`OpCoverage::prim_profile`]): a coarse shape lattice that separates
/// the values primitives branch on — zero and negative integers get their
/// own classes because they steer `Div`/`Mod`/`Neg` onto raise paths.
pub const OPERAND_CLASSES: usize = 8;

/// Dense op-pair hit counters: `pairs[prev * OP_KINDS + cur]` counts how
/// often op kind `cur` executed immediately after `prev` within one
/// episode (the edge cursor resets between episodes, so pairs never span
/// an episode boundary).
///
/// `prims` is the value-profile companion: one counter per
/// `(prim op, operand position, operand class)` triple, recorded by
/// `Machine::apply_prim` on both backends when coverage is armed. It
/// tells the fuzzer *what kinds of values* reached each primitive, which
/// op-pair edges alone cannot distinguish (`1/2` and `1/0` walk the same
/// edges).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpCoverage {
    pairs: Vec<u32>,
    prims: Vec<u32>,
    last: Option<u8>,
}

impl Default for OpCoverage {
    fn default() -> OpCoverage {
        OpCoverage::new()
    }
}

impl OpCoverage {
    /// An empty map.
    pub fn new() -> OpCoverage {
        OpCoverage {
            pairs: vec![0; OP_KINDS * OP_KINDS],
            prims: vec![0; PRIM_OPS * 2 * OPERAND_CLASSES],
            last: None,
        }
    }

    /// Records one executed op kind (the compiled loop calls this once per
    /// `Eval` dispatch).
    #[inline]
    pub(crate) fn hit(&mut self, kind: u8) {
        if let Some(prev) = self.last {
            let i = prev as usize * OP_KINDS + kind as usize;
            self.pairs[i] = self.pairs[i].saturating_add(1);
        }
        self.last = Some(kind);
    }

    /// Records one primitive operand observation: `op` is the dense
    /// `PrimOp` discriminant, `pos` the operand position (0 or 1), and
    /// `class` an operand class below [`OPERAND_CLASSES`].
    #[inline]
    pub(crate) fn hit_prim(&mut self, op: usize, pos: usize, class: usize) {
        let i = (op * 2 + pos) * OPERAND_CLASSES + class;
        self.prims[i] = self.prims[i].saturating_add(1);
    }

    /// Ends the current episode: the next recorded op starts a fresh edge
    /// rather than pairing with the previous episode's last op.
    pub fn end_episode(&mut self) {
        self.last = None;
    }

    /// The raw `OP_KINDS × OP_KINDS` counter matrix, row = previous op.
    pub fn pairs(&self) -> &[u32] {
        &self.pairs
    }

    /// Number of distinct op pairs with a non-zero count.
    pub fn edges_hit(&self) -> usize {
        self.pairs.iter().filter(|&&c| c != 0).count()
    }

    /// Clears all counters and the edge cursor.
    pub fn clear(&mut self) {
        self.pairs.fill(0);
        self.prims.fill(0);
        self.last = None;
    }

    /// Iterates the non-zero pairs as `(prev_kind, cur_kind, count)`.
    pub fn iter_hits(&self) -> impl Iterator<Item = (u8, u8, u32)> + '_ {
        self.pairs.iter().enumerate().filter_map(|(i, &c)| {
            (c != 0).then_some(((i / OP_KINDS) as u8, (i % OP_KINDS) as u8, c))
        })
    }

    /// The raw prim-operand profile matrix, indexed
    /// `(op * 2 + position) * OPERAND_CLASSES + class`.
    pub fn prim_profile(&self) -> &[u32] {
        &self.prims
    }

    /// Iterates the non-zero prim-profile cells as `(flat_index, count)`
    /// (the flat index is already a dense feature id for fingerprints).
    pub fn iter_prim_hits(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.prims
            .iter()
            .enumerate()
            .filter_map(|(i, &c)| (c != 0).then_some((i as u32, c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_accumulate_and_reset() {
        let mut cov = OpCoverage::new();
        cov.hit(1); // no previous op: establishes the cursor only
        cov.hit(2);
        cov.hit(2);
        assert_eq!(cov.edges_hit(), 2);
        let hits: Vec<_> = cov.iter_hits().collect();
        assert!(hits.contains(&(1, 2, 1)));
        assert!(hits.contains(&(2, 2, 1)));
        cov.end_episode();
        cov.hit(5); // must not pair with the stale cursor
        assert_eq!(cov.edges_hit(), 2);
        cov.clear();
        assert_eq!(cov.edges_hit(), 0);
    }
}
