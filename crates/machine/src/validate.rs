//! Translation validation for the tier-2 pass.
//!
//! [`tier2_optimize_certified`](crate::tier2_optimize_certified) records a
//! [`Tier2Cert`]: one entry per transform, naming which fact licensed it
//! and which source op maps to which destination op. This module is the
//! *independent* half of the bargain — [`validate_tier2`] walks the tier-1
//! and tier-2 arenas in lockstep and re-derives every obligation from
//! scratch, trusting nothing the compiler stored:
//!
//! * **Region legality is re-proven op-by-op.** Every `Fused`/`Spec`
//!   region is re-scanned on the *source* side: call-free grammar
//!   (locals, globals, literals, nullary constructors, strict prims),
//!   size within [`MAX_REGION_OPS`], at least one primitive.
//! * **Speculated raises land as §3.3 poison, structurally.** `Spec` is
//!   accepted only in lazy (allocation) positions and `Fused` only in
//!   demanded ones — the walker re-derives the context from the op shapes
//!   alone, so a speculation site that would *propagate* a raise instead
//!   of storing it cannot be mis-filed.
//! * **Constants are re-checked against a fresh fact.** `ConstSubst`
//!   entries are discharged against a freshly computed [`Tier2Facts`]
//!   (the caller recomputes the analysis), never the fact the compiler
//!   stored — a corrupted licence is caught before any execution.
//! * **The §3.5 Seeded draw-stream exclusion is enforced.** Substituted
//!   constants must mirror a source body that is *already* that literal
//!   (no draw is erased), and `SpecCall` inlining may duplicate its
//!   argument only when the argument is a draw-free leaf.
//!
//! Anything structural the certificate does not explain — an op-kind
//! divergence, an undischarged or duplicated entry, an inline-cache slot
//! collision — is a [`ValidationError`]. The report counts what was
//! discharged, for observability and the validator-cost bench.

use std::collections::HashMap;

use crate::code::{CArm, COp, CPat, Code, CodeId, MAX_REGION_OPS};
use crate::tier2::{CertKind, FactVal, Tier2Cert, Tier2Facts};

/// A discharged-obligation tally: what the validator re-proved.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ValidationReport {
    /// `Fused` regions re-proven call-free and in demanded position.
    pub fused: usize,
    /// `Spec` sites over value forms (lambda/constructor).
    pub spec_value: usize,
    /// `Spec` sites over prim regions.
    pub spec_region: usize,
    /// Strictness-licensed beta-inlined call speculations.
    pub spec_call: usize,
    /// Constant substitutions re-checked against fresh facts.
    pub const_subst: usize,
    /// Case folds re-derived (static scrutinee, first match, no binders).
    pub case_fold: usize,
    /// Inline-cache installations (slots proven distinct and in range).
    pub app_g: usize,
    /// Ops verified as plain structural copies.
    pub copied: usize,
}

/// Why a tier-2 image was refused. `src_at`/`dst_at` are op indices into
/// the tier-1 and tier-2 arenas where the obligation failed.
#[derive(Clone, Debug, PartialEq)]
pub struct ValidationError {
    /// Op index in the tier-1 (source) arena.
    pub src_at: u32,
    /// Op index in the tier-2 (destination) arena.
    pub dst_at: u32,
    /// The obligation that could not be discharged.
    pub message: String,
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tier-2 validation failed at src op {} / dst op {}: {}",
            self.src_at, self.dst_at, self.message
        )
    }
}

impl std::error::Error for ValidationError {}

/// The evaluation context the validator re-derives while walking — the
/// licence boundary between fusing (demanded now) and speculating
/// (suspended): a raise inside a `Fused` region raises anyway, a raise
/// inside a `Spec` region must be *stored* (§3.3), and nothing wraps
/// inside an already-atomic region.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum Ctx {
    Strict,
    Lazy,
}

/// Validates one tier-2 compilation: `t2` must be derivable from `base`
/// via exactly the transforms `cert` records, with every licence
/// re-discharged against `fresh` — facts the caller recomputed for this
/// call, never the ones the optimiser consumed.
pub fn validate_tier2(
    base: &Code,
    t2: &Code,
    cert: &Tier2Cert,
    fresh: &Tier2Facts,
) -> Result<ValidationReport, ValidationError> {
    // Step 0: the destination image must pass the structural verifier on
    // its own terms (acyclicity, arities, region grammar, lexical depth).
    if let Err(e) = t2.verify() {
        return Err(ValidationError {
            src_at: 0,
            dst_at: e.at,
            message: format!("tier-2 image fails Code::verify: {}", e.message),
        });
    }
    if !t2.is_tier2() {
        return Err(ValidationError {
            src_at: 0,
            dst_at: 0,
            message: "image is not tagged tier-2".into(),
        });
    }
    let mut cert_map: HashMap<(u32, u32), usize> = HashMap::new();
    for (i, entry) in cert.entries.iter().enumerate() {
        if cert_map.insert((entry.src, entry.dst), i).is_some() {
            return Err(ValidationError {
                src_at: entry.src,
                dst_at: entry.dst,
                message: "duplicate certificate entry for the same op pair".into(),
            });
        }
    }
    let mut ck = Checker {
        src: base,
        dst: t2,
        cert,
        cert_map,
        used: vec![false; cert.entries.len()],
        facts: fresh,
        ics: Vec::new(),
        report: ValidationReport::default(),
    };
    if base.globals.len() != t2.globals.len() {
        return Err(ValidationError {
            src_at: 0,
            dst_at: 0,
            message: format!(
                "global table length changed: {} -> {}",
                base.globals.len(),
                t2.globals.len()
            ),
        });
    }
    for ((sn, se), (dn, de)) in base.globals.iter().zip(&t2.globals) {
        if sn != dn {
            return Err(ValidationError {
                src_at: se.0,
                dst_at: de.0,
                message: format!("global renamed: {sn} -> {dn}"),
            });
        }
        ck.check(*se, *de, Ctx::Strict)?;
    }
    // Every recorded entry must have been discharged by the walk — a
    // stale or unreachable certificate is a defect, not slack.
    for (i, used) in ck.used.iter().enumerate() {
        if !used {
            let e = &cert.entries[i];
            return Err(ValidationError {
                src_at: e.src,
                dst_at: e.dst,
                message: "certificate entry never discharged by the lockstep walk".into(),
            });
        }
    }
    // Inline-cache slots: distinct, in range, and fully accounted for.
    let mut seen = vec![false; t2.ic_slot_count() as usize];
    for ic in &ck.ics {
        match seen.get_mut(*ic as usize) {
            Some(slot) if !*slot => *slot = true,
            Some(_) => {
                return Err(ValidationError {
                    src_at: 0,
                    dst_at: 0,
                    message: format!("inline-cache slot {ic} used by two sites"),
                })
            }
            None => {
                return Err(ValidationError {
                    src_at: 0,
                    dst_at: 0,
                    message: format!(
                        "inline-cache slot {ic} out of range ({} slots)",
                        t2.ic_slot_count()
                    ),
                })
            }
        }
    }
    if ck.ics.len() != t2.ic_slot_count() as usize {
        return Err(ValidationError {
            src_at: 0,
            dst_at: 0,
            message: format!(
                "{} inline-cache sites for {} declared slots",
                ck.ics.len(),
                t2.ic_slot_count()
            ),
        });
    }
    Ok(ck.report)
}

struct Checker<'a> {
    src: &'a Code,
    dst: &'a Code,
    cert: &'a Tier2Cert,
    cert_map: HashMap<(u32, u32), usize>,
    used: Vec<bool>,
    facts: &'a Tier2Facts,
    ics: Vec<u32>,
    report: ValidationReport,
}

impl Checker<'_> {
    fn s_op(&self, id: CodeId) -> COp {
        self.src.buf.ops[id.0 as usize]
    }

    fn d_op(&self, id: CodeId) -> COp {
        self.dst.buf.ops[id.0 as usize]
    }

    fn s_str(&self, i: u32) -> &str {
        &self.src.buf.strs[i as usize]
    }

    fn d_str(&self, i: u32) -> &str {
        &self.dst.buf.strs[i as usize]
    }

    fn err<T>(
        &self,
        s: CodeId,
        d: CodeId,
        message: impl Into<String>,
    ) -> Result<T, ValidationError> {
        Err(ValidationError {
            src_at: s.0,
            dst_at: d.0,
            message: message.into(),
        })
    }

    /// Takes (and marks used) the certificate entry for this op pair.
    fn take_cert(&mut self, s: CodeId, d: CodeId) -> Option<CertKind> {
        let i = *self.cert_map.get(&(s.0, d.0))?;
        if self.used[i] {
            return None; // re-use is a structural divergence, caught below
        }
        self.used[i] = true;
        Some(self.cert.entries[i].kind.clone())
    }

    /// Re-derives the constant-substitution licence for global `g` from
    /// the fresh facts and the *source* arena: WHNF-safe, proven literal,
    /// and a source body that is already a literal op of the same kind
    /// (the §3.5 exclusion — substituting a computed constant would erase
    /// a draw the tree machine performs). Returns the licensed value.
    fn const_licence(&self, g: u32) -> Option<FactVal> {
        let fact = self.facts.globals.get(g as usize)?;
        if !fact.whnf_safe {
            return None;
        }
        let value = fact.value.as_ref()?;
        let (_, entry) = self.src.globals.get(g as usize)?;
        match (self.s_op(*entry), value) {
            (COp::Int(_), FactVal::Int(_))
            | (COp::Char(_), FactVal::Char(_))
            | (COp::Str(_), FactVal::Str(_)) => Some(value.clone()),
            _ => None,
        }
    }

    /// Scans the *source* subtree as a fused-region candidate, re-proving
    /// the call-free grammar op-by-op. Returns `(ops, prims)`.
    fn region_scan(&self, id: CodeId) -> Option<(usize, usize)> {
        let (size, prims) = match self.s_op(id) {
            COp::Local(_) | COp::Global(_) | COp::Int(_) | COp::Char(_) | COp::Str(_) => (1, 0),
            COp::Con { n: 0, .. } => (1, 0),
            COp::Prim1 { a, .. } => {
                let (s, p) = self.region_scan(a)?;
                (s + 1, p + 1)
            }
            COp::Prim2 { a, b, .. } | COp::Seq { a, b } => {
                let (sa, pa) = self.region_scan(a)?;
                let (sb, pb) = self.region_scan(b)?;
                (sa + sb + 1, pa + pb + 1)
            }
            _ => return None,
        };
        (size <= MAX_REGION_OPS).then_some((size, prims))
    }

    /// Re-proves a source subtree is a legal, worthwhile region.
    fn require_region(&self, s: CodeId, d: CodeId, what: &str) -> Result<(), ValidationError> {
        match self.region_scan(s) {
            Some((size, prims)) if size >= 2 && prims >= 1 => Ok(()),
            Some(_) => self.err(s, d, format!("{what}: region has no primitive work")),
            None => self.err(
                s,
                d,
                format!("{what}: source subtree is not a call-free region within the size cap"),
            ),
        }
    }

    /// The core lockstep obligation: the tier-2 op `d` must be derivable
    /// from the tier-1 op `s` in context `ctx` — a certified transform or
    /// a structural copy, nothing else.
    fn check(&mut self, s: CodeId, d: CodeId, ctx: Ctx) -> Result<(), ValidationError> {
        if let Some(kind) = self.take_cert(s, d) {
            return self.check_cert(s, d, ctx, kind);
        }
        self.check_copy(s, d, ctx)
    }

    fn check_cert(
        &mut self,
        s: CodeId,
        d: CodeId,
        ctx: Ctx,
        kind: CertKind,
    ) -> Result<(), ValidationError> {
        match kind {
            CertKind::Fused => {
                if ctx != Ctx::Strict {
                    return self.err(s, d, "Fused region outside a demanded position");
                }
                let COp::Fused { body } = self.d_op(d) else {
                    return self.err(s, d, "Fused certificate on a non-Fused destination op");
                };
                self.require_region(s, d, "Fused")?;
                self.check_region(s, body)?;
                self.report.fused += 1;
                Ok(())
            }
            CertKind::SpecValue => {
                if ctx != Ctx::Lazy {
                    return self.err(s, d, "Spec site outside an allocation position");
                }
                let COp::Spec { body } = self.d_op(d) else {
                    return self.err(s, d, "Spec certificate on a non-Spec destination op");
                };
                let value_form = match self.s_op(s) {
                    COp::Lam { .. } => true,
                    COp::Con { n, .. } => n >= 1,
                    _ => false,
                };
                if !value_form {
                    return self.err(s, d, "SpecValue source is not a lambda or constructor");
                }
                self.check_copy(s, body, Ctx::Lazy)?;
                self.report.spec_value += 1;
                Ok(())
            }
            CertKind::SpecRegion => {
                if ctx != Ctx::Lazy {
                    return self.err(s, d, "Spec site outside an allocation position");
                }
                let COp::Spec { body } = self.d_op(d) else {
                    return self.err(s, d, "Spec certificate on a non-Spec destination op");
                };
                self.require_region(s, d, "SpecRegion")?;
                self.check_region(s, body)?;
                self.report.spec_region += 1;
                Ok(())
            }
            CertKind::SpecCall { callee } => {
                if ctx != Ctx::Lazy {
                    return self.err(s, d, "Spec site outside an allocation position");
                }
                let COp::Spec { body: region } = self.d_op(d) else {
                    return self.err(s, d, "Spec certificate on a non-Spec destination op");
                };
                let COp::App { f, a } = self.s_op(s) else {
                    return self.err(s, d, "SpecCall source is not an application");
                };
                if !matches!(self.s_op(f), COp::Global(g) if g == callee) {
                    return self.err(s, d, "SpecCall callee does not match the source head");
                }
                // The licence proper, from *fresh* facts: the parameter is
                // certainly demanded, so an exceptional argument makes the
                // call exceptional — storing the raise as poison keeps the
                // denoted set.
                let demanded = self
                    .facts
                    .globals
                    .get(callee as usize)
                    .is_some_and(|f| f.demands.as_slice() == [true]);
                if !demanded {
                    return self.err(
                        s,
                        d,
                        "SpecCall licence not re-derivable: fresh facts do not prove the \
                         callee's parameter demanded",
                    );
                }
                let Some((_, entry)) = self.src.globals.get(callee as usize) else {
                    return self.err(s, d, "SpecCall callee index out of range");
                };
                let COp::Lam { body } = self.s_op(*entry) else {
                    return self.err(s, d, "SpecCall callee is not a manifest lambda");
                };
                let Some((bsize, bprims)) = self.region_scan_callee(body) else {
                    return self.err(s, d, "SpecCall callee body is not a one-parameter region");
                };
                let Some((asize, aprims)) = self.region_scan(a) else {
                    return self.err(s, d, "SpecCall argument is not a call-free region");
                };
                let occ = self
                    .count_param_leaves(body)
                    .expect("region_scan_callee proved the body shape");
                if occ >= 2 && !self.is_draw_free_leaf(a) {
                    return self.err(
                        s,
                        d,
                        "SpecCall duplicates a non-leaf argument (would fork the Seeded \
                         draw stream)",
                    );
                }
                let size = bsize - occ + occ * asize;
                let prims = bprims + occ * aprims;
                if size < 2 || prims < 1 || size > MAX_REGION_OPS {
                    return self.err(s, d, "SpecCall inlined region out of bounds");
                }
                self.check_subst(body, a, region)?;
                self.report.spec_call += 1;
                Ok(())
            }
            CertKind::ConstSubst { global } => {
                if !matches!(self.s_op(s), COp::Global(g) if g == global) {
                    return self.err(s, d, "ConstSubst source is not the certified global");
                }
                let Some(value) = self.const_licence(global) else {
                    return self.err(s, d, "ConstSubst licence not re-derivable from fresh facts");
                };
                let ok = match (self.d_op(d), &value) {
                    (COp::Int(n), FactVal::Int(m)) => n == *m,
                    (COp::Char(c), FactVal::Char(e)) => c == *e,
                    (COp::Str(i), FactVal::Str(t)) => self.d_str(i) == t,
                    _ => false,
                };
                if !ok {
                    return self.err(
                        s,
                        d,
                        "substituted constant disagrees with the freshly proven value",
                    );
                }
                self.report.const_subst += 1;
                Ok(())
            }
            CertKind::CaseFold { arm } => {
                let COp::Case { scrut, arms_at, n } = self.s_op(s) else {
                    return self.err(s, d, "CaseFold source is not a case");
                };
                let Some(v) = self.static_value(scrut) else {
                    return self.err(s, d, "CaseFold scrutinee has no static value");
                };
                // Re-derive the first match independently.
                let mut first: Option<u32> = None;
                for i in 0..u32::from(n) {
                    let at = self.src.buf.arms[(arms_at + i) as usize];
                    if self.arm_matches(&at, &v) {
                        first = Some(i);
                        break;
                    }
                }
                if first != Some(arm) {
                    return self.err(s, d, "CaseFold selected an arm that is not the first match");
                }
                let at = self.src.buf.arms[(arms_at + arm) as usize];
                if at.binders != 0 || at.bind_scrut {
                    return self.err(
                        s,
                        d,
                        "CaseFold arm binds — fold would shift the environment",
                    );
                }
                self.report.case_fold += 1;
                // The fold substitutes the arm's rhs in place, in the
                // *incoming* context (a fold under a lazy binding may
                // legally speculate its result).
                self.check(at.rhs, d, ctx)
            }
            CertKind::AppG { callee, ic } => {
                let COp::App { f, a } = self.s_op(s) else {
                    return self.err(s, d, "AppG source is not an application");
                };
                if !matches!(self.s_op(f), COp::Global(g) if g == callee) {
                    return self.err(s, d, "AppG callee does not match the source head");
                }
                let COp::AppG {
                    f: df,
                    ic: dic,
                    a: da,
                } = self.d_op(d)
                else {
                    return self.err(s, d, "AppG certificate on a non-AppG destination op");
                };
                if !matches!(self.d_op(df), COp::Global(g) if g == callee) {
                    return self.err(s, d, "AppG destination callee op mismatch");
                }
                if dic != ic {
                    return self.err(s, d, "AppG inline-cache slot disagrees with certificate");
                }
                self.ics.push(ic);
                self.check(a, da, Ctx::Lazy)?;
                self.report.app_g += 1;
                Ok(())
            }
        }
    }

    /// An uncertified pair must be a structural copy: same op kind, same
    /// immediate payload (strings compared by content, never by index),
    /// children checked in the contexts their positions dictate.
    fn check_copy(&mut self, s: CodeId, d: CodeId, _ctx: Ctx) -> Result<(), ValidationError> {
        self.report.copied += 1;
        match (self.s_op(s), self.d_op(d)) {
            (COp::Local(a), COp::Local(b)) if a == b => Ok(()),
            (COp::Global(a), COp::Global(b)) if a == b => Ok(()),
            (COp::Int(a), COp::Int(b)) if a == b => Ok(()),
            (COp::Char(a), COp::Char(b)) if a == b => Ok(()),
            (COp::Str(a), COp::Str(b)) if self.s_str(a) == self.d_str(b) => Ok(()),
            (
                COp::Con { tag, args, n },
                COp::Con {
                    tag: t2,
                    args: a2,
                    n: n2,
                },
            ) if tag == t2 && n == n2 => {
                for i in 0..u32::from(n) {
                    let sk = self.src.buf.kids[(args + i) as usize];
                    let dk = self.dst.buf.kids[(a2 + i) as usize];
                    self.check(sk, dk, Ctx::Lazy)?;
                }
                Ok(())
            }
            (COp::App { f, a }, COp::App { f: df, a: da }) => {
                self.check(f, df, Ctx::Strict)?;
                self.check(a, da, Ctx::Lazy)
            }
            (COp::Lam { body }, COp::Lam { body: db }) => self.check(body, db, Ctx::Strict),
            (COp::Let { rhs, body }, COp::Let { rhs: dr, body: db }) => {
                self.check(rhs, dr, Ctx::Lazy)?;
                self.check(body, db, Ctx::Strict)
            }
            (
                COp::LetRec { rhss, n, body },
                COp::LetRec {
                    rhss: dr,
                    n: n2,
                    body: db,
                },
            ) if n == n2 => {
                for i in 0..u32::from(n) {
                    let sk = self.src.buf.kids[(rhss + i) as usize];
                    let dk = self.dst.buf.kids[(dr + i) as usize];
                    // Recursive rhss are copied under Strict and never
                    // speculated (the knot is unfinished at allocation).
                    self.check(sk, dk, Ctx::Strict)?;
                }
                self.check(body, db, Ctx::Strict)
            }
            (
                COp::Case { scrut, arms_at, n },
                COp::Case {
                    scrut: ds,
                    arms_at: da,
                    n: n2,
                },
            ) if n == n2 => {
                self.check(scrut, ds, Ctx::Strict)?;
                for i in 0..u32::from(n) {
                    let sa = self.src.buf.arms[(arms_at + i) as usize];
                    let dd = self.dst.buf.arms[(da + i) as usize];
                    self.check_arm(s, d, &sa, &dd)?;
                }
                Ok(())
            }
            (COp::Prim1 { op, a }, COp::Prim1 { op: o2, a: da }) if op == o2 => {
                self.check(a, da, Ctx::Strict)
            }
            (
                COp::Prim2 { op, a, b },
                COp::Prim2 {
                    op: o2,
                    a: da,
                    b: db,
                },
            ) if op == o2 => {
                self.check(a, da, Ctx::Strict)?;
                self.check(b, db, Ctx::Strict)
            }
            (COp::Seq { a, b }, COp::Seq { a: da, b: db }) => {
                self.check(a, da, Ctx::Strict)?;
                self.check(b, db, Ctx::Strict)
            }
            (COp::MapExn { f, a }, COp::MapExn { f: df, a: da }) => {
                self.check(f, df, Ctx::Strict)?;
                self.check(a, da, Ctx::Strict)
            }
            (COp::IsExn { a }, COp::IsExn { a: da }) => self.check(a, da, Ctx::Strict),
            (COp::GetExn { a }, COp::GetExn { a: da }) => self.check(a, da, Ctx::Strict),
            (COp::Raise { a }, COp::Raise { a: da }) => self.check(a, da, Ctx::Strict),
            (COp::Fused { .. } | COp::Spec { .. } | COp::AppG { .. }, _) => {
                self.err(s, d, "tier-2 op in the tier-1 source arena")
            }
            (so, dop) => self.err(
                s,
                d,
                format!(
                    "structural divergence without a certificate: src kind {} vs dst kind {}",
                    so.kind_index(),
                    dop.kind_index()
                ),
            ),
        }
    }

    fn check_arm(
        &mut self,
        s: CodeId,
        d: CodeId,
        sa: &CArm,
        da: &CArm,
    ) -> Result<(), ValidationError> {
        let pat_ok = match (sa.pat, da.pat) {
            (CPat::Con(a), CPat::Con(b)) => a == b,
            (CPat::Int(a), CPat::Int(b)) => a == b,
            (CPat::Char(a), CPat::Char(b)) => a == b,
            (CPat::Str(a), CPat::Str(b)) => self.s_str(a) == self.d_str(b),
            (CPat::Default, CPat::Default) => true,
            _ => false,
        };
        if !pat_ok || sa.binders != da.binders || sa.bind_scrut != da.bind_scrut {
            return self.err(s, d, "case arm shape diverges");
        }
        self.check(sa.rhs, da.rhs, Ctx::Strict)
    }

    /// Lockstep walk *inside* a region: every source op must be
    /// region-legal, and the only transform the destination may carry is
    /// a certified constant substitution (nothing wraps inside a region).
    fn check_region(&mut self, s: CodeId, d: CodeId) -> Result<(), ValidationError> {
        if let Some(kind) = self.take_cert(s, d) {
            return match kind {
                CertKind::ConstSubst { .. } => self.check_cert(s, d, Ctx::Strict, kind),
                _ => self.err(s, d, "only constant substitution is legal inside a region"),
            };
        }
        match (self.s_op(s), self.d_op(d)) {
            (COp::Local(a), COp::Local(b)) if a == b => Ok(()),
            (COp::Global(a), COp::Global(b)) if a == b => Ok(()),
            (COp::Int(a), COp::Int(b)) if a == b => Ok(()),
            (COp::Char(a), COp::Char(b)) if a == b => Ok(()),
            (COp::Str(a), COp::Str(b)) if self.s_str(a) == self.d_str(b) => Ok(()),
            (COp::Con { tag, n: 0, .. }, COp::Con { tag: t2, n: 0, .. }) if tag == t2 => Ok(()),
            (COp::Prim1 { op, a }, COp::Prim1 { op: o2, a: da }) if op == o2 => {
                self.check_region(a, da)
            }
            (
                COp::Prim2 { op, a, b },
                COp::Prim2 {
                    op: o2,
                    a: da,
                    b: db,
                },
            ) if op == o2 => {
                self.check_region(a, da)?;
                self.check_region(b, db)
            }
            (COp::Seq { a, b }, COp::Seq { a: da, b: db }) => {
                self.check_region(a, da)?;
                self.check_region(b, db)
            }
            _ => self.err(s, d, "region contents diverge from the source"),
        }
    }

    /// Lockstep walk of a beta-substituted callee body: where the body
    /// reads its parameter (`Local(0)`), the destination must carry a
    /// copy of the *argument* region; everywhere else it mirrors the body.
    fn check_subst(&mut self, body: CodeId, arg: CodeId, d: CodeId) -> Result<(), ValidationError> {
        match self.s_op(body) {
            COp::Local(0) => self.check_region(arg, d),
            COp::Local(_) => self.err(body, d, "SpecCall body captures beyond its parameter"),
            COp::Prim1 { op, a } => {
                let COp::Prim1 { op: o2, a: da } = self.d_op(d) else {
                    return self.err(body, d, "inlined region diverges from the callee body");
                };
                if op != o2 {
                    return self.err(body, d, "inlined region diverges from the callee body");
                }
                self.check_subst(a, arg, da)
            }
            COp::Prim2 { op, a, b } => {
                let COp::Prim2 {
                    op: o2,
                    a: da,
                    b: db,
                } = self.d_op(d)
                else {
                    return self.err(body, d, "inlined region diverges from the callee body");
                };
                if op != o2 {
                    return self.err(body, d, "inlined region diverges from the callee body");
                }
                self.check_subst(a, arg, da)?;
                self.check_subst(b, arg, db)
            }
            COp::Seq { a, b } => {
                let COp::Seq { a: da, b: db } = self.d_op(d) else {
                    return self.err(body, d, "inlined region diverges from the callee body");
                };
                self.check_subst(a, arg, da)?;
                self.check_subst(b, arg, db)
            }
            _ => self.check_region(body, d),
        }
    }

    /// Region scan for a callee body that may read `Local(0)` (and only
    /// `Local(0)` — any deeper capture disqualifies it).
    fn region_scan_callee(&self, id: CodeId) -> Option<(usize, usize)> {
        match self.s_op(id) {
            COp::Local(0) => Some((1, 0)),
            COp::Local(_) => None,
            _ => self.region_scan(id),
        }
    }

    fn count_param_leaves(&self, id: CodeId) -> Option<usize> {
        match self.s_op(id) {
            COp::Local(0) => Some(1),
            COp::Local(_) => None,
            COp::Global(_) | COp::Int(_) | COp::Char(_) | COp::Str(_) | COp::Con { n: 0, .. } => {
                Some(0)
            }
            COp::Prim1 { a, .. } => self.count_param_leaves(a),
            COp::Prim2 { a, b, .. } | COp::Seq { a, b } => {
                Some(self.count_param_leaves(a)? + self.count_param_leaves(b)?)
            }
            _ => None,
        }
    }

    fn is_draw_free_leaf(&self, id: CodeId) -> bool {
        matches!(
            self.s_op(id),
            COp::Local(_)
                | COp::Global(_)
                | COp::Int(_)
                | COp::Char(_)
                | COp::Str(_)
                | COp::Con { n: 0, .. }
        )
    }

    /// Statically known scrutinee value, re-derived with fresh facts.
    fn static_value(&self, id: CodeId) -> Option<StaticScrut> {
        match self.s_op(id) {
            COp::Int(n) => Some(StaticScrut::Int(n)),
            COp::Char(c) => Some(StaticScrut::Char(c)),
            COp::Str(s) => Some(StaticScrut::Str(self.s_str(s).to_string())),
            COp::Con { tag, n: 0, .. } => Some(StaticScrut::Con0(tag)),
            COp::Global(g) => match self.const_licence(g)? {
                FactVal::Int(n) => Some(StaticScrut::Int(n)),
                FactVal::Char(c) => Some(StaticScrut::Char(c)),
                FactVal::Str(s) => Some(StaticScrut::Str(s)),
            },
            _ => None,
        }
    }

    fn arm_matches(&self, arm: &CArm, v: &StaticScrut) -> bool {
        match (arm.pat, v) {
            (CPat::Default, _) => true,
            (CPat::Int(a), StaticScrut::Int(b)) => a == *b,
            (CPat::Char(a), StaticScrut::Char(b)) => a == *b,
            (CPat::Str(si), StaticScrut::Str(s)) => self.s_str(si) == s,
            (CPat::Con(c), StaticScrut::Con0(d)) => c == *d,
            _ => false,
        }
    }
}

/// A re-derived static scrutinee (owned, so fresh facts can supply it).
enum StaticScrut {
    Int(i64),
    Char(char),
    Str(String),
    Con0(urk_syntax::Symbol),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::compile_program;
    use crate::tier2::{tier2_optimize_certified, GlobalFact};
    use urk_syntax::{desugar_program, parse_program, DataEnv};

    fn compile_src(src: &str) -> Code {
        let mut data = DataEnv::new();
        let prog =
            desugar_program(&parse_program(src).expect("parses"), &mut data).expect("desugars");
        compile_program(&prog.binds)
    }

    #[test]
    fn an_unmodified_compilation_validates() {
        let base = compile_src(
            "f x = x * x + 1\n\
             g n = if n == 0 then 0 else g (n - 1) + f n\n\
             main = let p = Pair (2 * 3) 4 in g 5",
        );
        let facts = Tier2Facts::empty();
        let (t2, cert) = tier2_optimize_certified(&base, &facts);
        let report = validate_tier2(&base, &t2, &cert, &facts).expect("validates");
        assert!(report.fused > 0, "{report:?}");
        assert!(report.app_g > 0, "{report:?}");
    }

    #[test]
    fn a_dropped_certificate_entry_is_caught() {
        let base = compile_src("f x = x * x + 1\nmain = f 3");
        let facts = Tier2Facts::empty();
        let (t2, mut cert) = tier2_optimize_certified(&base, &facts);
        assert!(!cert.entries.is_empty());
        cert.entries.pop();
        let err = validate_tier2(&base, &t2, &cert, &facts).expect_err("must refuse");
        assert!(
            err.message.contains("divergence") || err.message.contains("discharged"),
            "{err}"
        );
    }

    #[test]
    fn a_corrupted_constant_licence_is_caught_statically() {
        let base = compile_src("k = 42\nmain = k + 1");
        // The compiler is handed a *lying* fact (k = 7)…
        let lying = Tier2Facts {
            globals: vec![
                GlobalFact {
                    whnf_safe: true,
                    value: Some(FactVal::Int(7)),
                    demands: Vec::new(),
                },
                GlobalFact::default(),
            ],
        };
        let (t2, cert) = tier2_optimize_certified(&base, &lying);
        // …and the validator, re-deriving against honest facts, refuses
        // the image before anything runs.
        let honest = Tier2Facts {
            globals: vec![
                GlobalFact {
                    whnf_safe: true,
                    value: Some(FactVal::Int(42)),
                    demands: Vec::new(),
                },
                GlobalFact::default(),
            ],
        };
        let err = validate_tier2(&base, &t2, &cert, &honest).expect_err("must refuse");
        assert!(
            err.message
                .contains("disagrees with the freshly proven value"),
            "{err}"
        );
    }

    #[test]
    fn strictness_facts_license_a_call_speculation_site() {
        let base = compile_src("sq x = x * x\nmain = let y = sq 5 in y + 1");
        // Without the demand fact the call stays a thunk…
        let (plain, cert0) = tier2_optimize_certified(&base, &Tier2Facts::empty());
        let r0 = validate_tier2(&base, &plain, &cert0, &Tier2Facts::empty()).expect("validates");
        assert_eq!(r0.spec_call, 0);
        // …and with it the site speculates, and the validator re-proves
        // the licence from the fresh facts.
        let facts = Tier2Facts {
            globals: vec![
                GlobalFact {
                    whnf_safe: false,
                    value: None,
                    demands: vec![true],
                },
                GlobalFact::default(),
            ],
        };
        let (t2, cert) = tier2_optimize_certified(&base, &facts);
        let report = validate_tier2(&base, &t2, &cert, &facts).expect("validates");
        assert_eq!(report.spec_call, 1, "{report:?}");
        // A validator handed facts that *cannot* re-derive the licence
        // refuses the same image.
        let err = validate_tier2(&base, &t2, &cert, &Tier2Facts::empty()).expect_err("refuses");
        assert!(err.message.contains("SpecCall licence"), "{err}");
    }

    #[test]
    fn duplicating_spec_call_requires_a_leaf_argument() {
        // `sq (a + b)` duplicates a prim subtree under x * x: rejected by
        // the compiler (no Spec emitted), so the thunk survives.
        let base = compile_src("sq x = x * x\nmain a b = let y = sq (a + b) in y + 1");
        let facts = Tier2Facts {
            globals: vec![
                GlobalFact {
                    whnf_safe: false,
                    value: None,
                    demands: vec![true],
                },
                GlobalFact::default(),
            ],
        };
        let (t2, cert) = tier2_optimize_certified(&base, &facts);
        assert!(
            !cert
                .entries
                .iter()
                .any(|e| matches!(e.kind, CertKind::SpecCall { .. })),
            "duplicating a prim argument must not speculate"
        );
        validate_tier2(&base, &t2, &cert, &facts).expect("still validates");
        // A single-occurrence parameter accepts a prim-subtree argument.
        let base = compile_src("inc x = x + 1\nmain a b = let y = inc (a * b) in y");
        let (t2, cert) = tier2_optimize_certified(&base, &facts);
        let report = validate_tier2(&base, &t2, &cert, &facts).expect("validates");
        assert_eq!(report.spec_call, 1, "{report:?}");
    }
}
