//! Machine environments: persistent maps from variables to heap nodes.

use std::rc::Rc;

use urk_syntax::Symbol;

use crate::heap::NodeId;

/// A persistent environment (immutable linked list of bindings).
#[derive(Clone, Default)]
pub struct MEnv(Option<Rc<MEnvNode>>);

struct MEnvNode {
    name: Symbol,
    node: NodeId,
    rest: MEnv,
}

impl MEnv {
    /// The empty environment.
    pub fn empty() -> MEnv {
        MEnv(None)
    }

    /// Extends with one binding.
    pub fn bind(&self, name: Symbol, node: NodeId) -> MEnv {
        MEnv(Some(Rc::new(MEnvNode {
            name,
            node,
            rest: self.clone(),
        })))
    }

    /// Looks up a variable.
    pub fn lookup(&self, name: Symbol) -> Option<NodeId> {
        let mut cur = self;
        while let Some(n) = &cur.0 {
            if n.name == name {
                return Some(n.node);
            }
            cur = &n.rest;
        }
        None
    }

    /// Number of bindings (diagnostics only).
    pub fn len(&self) -> usize {
        let mut n = 0;
        let mut cur = self;
        while let Some(node) = &cur.0 {
            n += 1;
            cur = &node.rest;
        }
        n
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_none()
    }

    /// Visits every bound node (including shadowed bindings), outermost
    /// last. Used by the garbage collector's mark phase.
    pub fn for_each_node(&self, mut f: impl FnMut(NodeId)) {
        let mut cur = self;
        while let Some(n) = &cur.0 {
            f(n.node);
            cur = &n.rest;
        }
    }
}

impl std::fmt::Debug for MEnv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MEnv({} bindings)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_shadow_lookup() {
        let x = Symbol::intern("x");
        let env = MEnv::empty().bind(x, NodeId(1)).bind(x, NodeId(2));
        assert_eq!(env.lookup(x), Some(NodeId(2)));
        assert_eq!(env.lookup(Symbol::intern("y")), None);
        assert_eq!(env.len(), 2);
        assert!(MEnv::empty().is_empty());
    }
}
