//! Machine environments: persistent maps from variables to heap nodes.
//!
//! The representation is a *chunked* persistent list: bindings are packed
//! into shared chunks of up to [`CHUNK`] entries, and an environment is a
//! `(chunk, length)` view of a chunk chain. Extending the tip of a chunk
//! that still has room appends in place (the old view, being shorter, is
//! unaffected), so a run of `bind`s costs one `Rc` allocation per `CHUNK`
//! bindings instead of one per binding — and lookup chases one pointer per
//! chunk instead of one per binding.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use urk_syntax::Symbol;

use crate::heap::NodeId;

/// Bindings per chunk. Machine environments are almost always shallow
/// (lambda params + a few lets), so one chunk covers the common case.
const CHUNK: usize = 16;

struct Chunk {
    /// Append-only within a chunk's lifetime: entries below any view's
    /// `len` are never mutated, so older (shorter) views stay valid.
    entries: RefCell<Vec<(Symbol, NodeId)>>,
    parent: MEnv,
}

/// A persistent environment: a view of the first `len` entries of `chunk`,
/// then everything in its parent chain.
#[derive(Clone, Default)]
pub struct MEnv {
    chunk: Option<Rc<Chunk>>,
    len: u32,
}

impl MEnv {
    /// The empty environment.
    pub fn empty() -> MEnv {
        MEnv {
            chunk: None,
            len: 0,
        }
    }

    /// Extends with one binding.
    pub fn bind(&self, name: Symbol, node: NodeId) -> MEnv {
        if let Some(c) = &self.chunk {
            let mut entries = c.entries.borrow_mut();
            // Only the *tip* view may append in place; a shorter view must
            // not graft its binding over entries it cannot see.
            if entries.len() == self.len as usize && entries.len() < CHUNK {
                entries.push((name, node));
                return MEnv {
                    chunk: self.chunk.clone(),
                    len: self.len + 1,
                };
            }
        }
        let mut entries = Vec::with_capacity(CHUNK);
        entries.push((name, node));
        MEnv {
            chunk: Some(Rc::new(Chunk {
                entries: RefCell::new(entries),
                parent: self.clone(),
            })),
            len: 1,
        }
    }

    /// Looks up a variable (innermost binding wins).
    pub fn lookup(&self, name: Symbol) -> Option<NodeId> {
        let mut chunk = self.chunk.as_ref();
        let mut len = self.len as usize;
        while let Some(c) = chunk {
            let entries = c.entries.borrow();
            for (n, id) in entries[..len].iter().rev() {
                if *n == name {
                    return Some(*id);
                }
            }
            chunk = c.parent.chunk.as_ref();
            len = c.parent.len as usize;
        }
        None
    }

    /// Number of bindings (diagnostics only).
    pub fn len(&self) -> usize {
        let mut n = 0;
        let mut chunk = self.chunk.as_ref();
        let mut len = self.len as usize;
        while let Some(c) = chunk {
            n += len;
            chunk = c.parent.chunk.as_ref();
            len = c.parent.len as usize;
        }
        n
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.chunk.is_none()
    }

    /// Visits every bound node (including shadowed bindings), outermost
    /// last. Used by the garbage collector's mark phase.
    pub fn for_each_node(&self, mut f: impl FnMut(NodeId)) {
        let mut chunk = self.chunk.as_ref();
        let mut len = self.len as usize;
        while let Some(c) = chunk {
            let entries = c.entries.borrow();
            for (_, id) in entries[..len].iter().rev() {
                f(*id);
            }
            chunk = c.parent.chunk.as_ref();
            len = c.parent.len as usize;
        }
    }

    /// Rewrites every bound node in place through `f`. Used by the copying
    /// minor collector to redirect nursery references to their tenured
    /// copies. `f` must be idempotent: shared chunks are reachable from
    /// several views and are rewritten once per view.
    pub fn update_nodes(&self, f: &mut dyn FnMut(NodeId) -> NodeId) {
        let mut chunk = self.chunk.as_ref();
        let mut len = self.len as usize;
        while let Some(c) = chunk {
            {
                let mut entries = c.entries.borrow_mut();
                for (_, id) in entries[..len].iter_mut() {
                    *id = f(*id);
                }
            }
            chunk = c.parent.chunk.as_ref();
            len = c.parent.len as usize;
        }
    }
}

impl std::fmt::Debug for MEnv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MEnv({} bindings)", self.len())
    }
}

struct CChunk {
    /// Append-only within a chunk's lifetime, as in [`Chunk`] — but
    /// stored inline as a fixed array, so starting a chunk is a single
    /// allocation (the `Rc`) instead of two. Only the first `init` slots
    /// are meaningful; slots below any view's `len` are never mutated.
    entries: RefCell<[NodeId; CHUNK]>,
    init: Cell<usize>,
    parent: CEnv,
}

/// The compiled backend's environment: the same chunked persistent
/// structure as [`MEnv`], minus the names. The compiler resolved every
/// variable to a back-index at compile time, so slots are addressed by
/// position — `get_back(k)` walks whole chunks instead of scanning
/// `Symbol` entries.
#[derive(Clone, Default)]
pub struct CEnv {
    chunk: Option<Rc<CChunk>>,
    len: u32,
}

impl CEnv {
    /// The empty environment.
    pub fn empty() -> CEnv {
        CEnv {
            chunk: None,
            len: 0,
        }
    }

    /// Extends with one slot.
    pub fn push(&self, node: NodeId) -> CEnv {
        if let Some(c) = &self.chunk {
            let init = c.init.get();
            if init == self.len as usize && init < CHUNK {
                c.entries.borrow_mut()[init] = node;
                c.init.set(init + 1);
                return CEnv {
                    chunk: self.chunk.clone(),
                    len: self.len + 1,
                };
            }
        }
        let mut entries = [NodeId(0); CHUNK];
        entries[0] = node;
        CEnv {
            chunk: Some(Rc::new(CChunk {
                entries: RefCell::new(entries),
                init: Cell::new(1),
                parent: self.clone(),
            })),
            len: 1,
        }
    }

    /// The slot `back` positions from the top (0 = innermost binding).
    ///
    /// # Panics
    ///
    /// Panics if `back` exceeds the environment depth — which would mean
    /// compile-time scope resolution and the runtime environment
    /// disagree, a compiler bug.
    pub fn get_back(&self, back: u32) -> NodeId {
        let mut back = back as usize;
        let mut chunk = self.chunk.as_ref();
        let mut len = self.len as usize;
        while let Some(c) = chunk {
            if back < len {
                return c.entries.borrow()[len - 1 - back];
            }
            back -= len;
            chunk = c.parent.chunk.as_ref();
            len = c.parent.len as usize;
        }
        panic!("slot {back} past the end of the environment (compiler bug)");
    }

    /// Number of slots (diagnostics only).
    pub fn len(&self) -> usize {
        let mut n = 0;
        let mut chunk = self.chunk.as_ref();
        let mut len = self.len as usize;
        while let Some(c) = chunk {
            n += len;
            chunk = c.parent.chunk.as_ref();
            len = c.parent.len as usize;
        }
        n
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.chunk.is_none()
    }

    /// Visits every slot, innermost first. Used by the collector.
    pub fn for_each_node(&self, mut f: impl FnMut(NodeId)) {
        let mut chunk = self.chunk.as_ref();
        let mut len = self.len as usize;
        while let Some(c) = chunk {
            let entries = c.entries.borrow();
            for id in entries[..len].iter().rev() {
                f(*id);
            }
            chunk = c.parent.chunk.as_ref();
            len = c.parent.len as usize;
        }
    }

    /// Rewrites every slot in place through `f`, as [`MEnv::update_nodes`].
    pub fn update_nodes(&self, f: &mut dyn FnMut(NodeId) -> NodeId) {
        let mut chunk = self.chunk.as_ref();
        let mut len = self.len as usize;
        while let Some(c) = chunk {
            {
                let mut entries = c.entries.borrow_mut();
                for id in entries[..len].iter_mut() {
                    *id = f(*id);
                }
            }
            chunk = c.parent.chunk.as_ref();
            len = c.parent.len as usize;
        }
    }
}

impl std::fmt::Debug for CEnv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CEnv({} slots)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_shadow_lookup() {
        let x = Symbol::intern("x");
        let env = MEnv::empty().bind(x, NodeId(1)).bind(x, NodeId(2));
        assert_eq!(env.lookup(x), Some(NodeId(2)));
        assert_eq!(env.lookup(Symbol::intern("y")), None);
        assert_eq!(env.len(), 2);
        assert!(MEnv::empty().is_empty());
    }

    #[test]
    fn older_views_are_unaffected_by_in_place_extension() {
        let a = Symbol::intern("a");
        let b = Symbol::intern("b");
        let base = MEnv::empty().bind(a, NodeId(1));
        // Extend the same tip twice: the two extensions must not see each
        // other, and `base` must see neither.
        let left = base.bind(b, NodeId(2));
        let right = base.bind(b, NodeId(3));
        assert_eq!(base.lookup(b), None);
        assert_eq!(left.lookup(b), Some(NodeId(2)));
        assert_eq!(right.lookup(b), Some(NodeId(3)));
        assert_eq!(left.lookup(a), Some(NodeId(1)));
        assert_eq!(right.lookup(a), Some(NodeId(1)));
        assert_eq!(base.len(), 1);
        assert_eq!(left.len(), 2);
        assert_eq!(right.len(), 2);
    }

    #[test]
    fn lookup_and_shadowing_across_chunk_boundaries() {
        let syms: Vec<Symbol> = (0..3 * CHUNK)
            .map(|i| Symbol::intern(&format!("v{i}")))
            .collect();
        let mut env = MEnv::empty();
        for (i, s) in syms.iter().enumerate() {
            env = env.bind(*s, NodeId(i as u32));
        }
        assert_eq!(env.len(), 3 * CHUNK);
        for (i, s) in syms.iter().enumerate() {
            assert_eq!(env.lookup(*s), Some(NodeId(i as u32)), "v{i}");
        }
        // Shadow an early binding from the outermost chunk.
        let env2 = env.bind(syms[0], NodeId(999));
        assert_eq!(env2.lookup(syms[0]), Some(NodeId(999)));
        assert_eq!(env.lookup(syms[0]), Some(NodeId(0)));
    }

    #[test]
    fn for_each_node_visits_shadowed_bindings_innermost_first() {
        let x = Symbol::intern("x");
        let y = Symbol::intern("y");
        let env = MEnv::empty()
            .bind(x, NodeId(1))
            .bind(y, NodeId(2))
            .bind(x, NodeId(3));
        let mut seen = Vec::new();
        env.for_each_node(|n| seen.push(n));
        assert_eq!(seen, vec![NodeId(3), NodeId(2), NodeId(1)]);
    }

    #[test]
    fn branching_past_a_full_tip_starts_a_fresh_chunk() {
        let mut env = MEnv::empty();
        for i in 0..CHUNK {
            env = env.bind(Symbol::intern(&format!("f{i}")), NodeId(i as u32));
        }
        // Tip is full: both extensions land in (distinct) fresh chunks.
        let a = env.bind(Symbol::intern("a"), NodeId(100));
        let b = env.bind(Symbol::intern("b"), NodeId(200));
        assert_eq!(a.lookup(Symbol::intern("a")), Some(NodeId(100)));
        assert_eq!(a.lookup(Symbol::intern("b")), None);
        assert_eq!(b.lookup(Symbol::intern("b")), Some(NodeId(200)));
        assert_eq!(b.lookup(Symbol::intern("a")), None);
        assert_eq!(a.lookup(Symbol::intern("f0")), Some(NodeId(0)));
        assert_eq!(a.len(), CHUNK + 1);
    }
}
