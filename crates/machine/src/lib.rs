//! # urk-machine
//!
//! The operational side of the PLDI 1999 reproduction: a lazy
//! graph-reduction machine implementing imprecise exceptions with the
//! paper's §3.3 strategy — catch marks on the evaluation stack, `raise` as
//! stack trimming, in-flight thunks poisoned with `raise ex` (synchronous)
//! or restored resumably (asynchronous, §5.1), and black holes as
//! detectable bottoms (§5.2).
//!
//! The machine's *evaluation-order policy* for primitives plays the role
//! of the paper's optimiser: different policies surface different members
//! of the (fixed) denotational exception set (§3.5).
//!
//! # Examples
//!
//! ```
//! use std::rc::Rc;
//! use urk_machine::{Machine, MachineConfig, MEnv, Outcome};
//! use urk_syntax::{parse_expr_src, desugar_expr, DataEnv, Exception};
//!
//! let data = DataEnv::new();
//! let e = desugar_expr(&parse_expr_src("(1/0) + 2")?, &data)?;
//! let mut m = Machine::new(MachineConfig::default());
//! // Evaluate under a catch mark, as getException would:
//! match m.eval(Rc::new(e), &MEnv::empty(), true).expect("no machine error") {
//!     Outcome::Caught(exn) => assert_eq!(exn, Exception::DivideByZero),
//!     other => panic!("expected a caught exception, got {other:?}"),
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod chaos;
pub mod code;
pub mod compiled;
pub mod coverage;
pub mod env;
pub mod gc;
pub mod heap;
pub mod interrupt;
pub mod machine;
pub mod tier2;
pub mod validate;

pub use chaos::FaultPlan;
pub use code::{compile_program, Code, CodeVerifyError};
pub use coverage::{OpCoverage, OPERAND_CLASSES, OP_KINDS, PRIM_OPS};
pub use env::{CEnv, MEnv};
pub use heap::{
    AuditFinding, HValue, Heap, HeapAudit, MinorOutcome, Node, NodeId, Whnf, MAX_AUDIT_FINDINGS,
};
pub use interrupt::InterruptHandle;
pub use machine::{
    Backend, BlackholeMode, Machine, MachineConfig, MachineError, OrderPolicy, Outcome, Stats, Tier,
};
pub use tier2::{
    tier2_optimize, tier2_optimize_certified, CertEntry, CertKind, FactVal, GlobalFact, Tier2Cert,
    Tier2Facts,
};
pub use validate::{validate_tier2, ValidationError, ValidationReport};

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;
    use urk_syntax::core::Expr;
    use urk_syntax::Exception;
    use urk_syntax::{desugar_expr, desugar_program, parse_expr_src, parse_program, DataEnv};

    fn core_of(src: &str) -> Rc<Expr> {
        let data = DataEnv::new();
        Rc::new(desugar_expr(&parse_expr_src(src).expect("parses"), &data).expect("desugars"))
    }

    fn eval_with(config: MachineConfig, src: &str, catch: bool) -> (Machine, Outcome) {
        let mut m = Machine::new(config);
        let out = m
            .eval(core_of(src), &MEnv::empty(), catch)
            .expect("no machine error");
        (m, out)
    }

    fn render(src: &str) -> String {
        let mut m = Machine::new(MachineConfig::default());
        let out = m
            .eval(core_of(src), &MEnv::empty(), false)
            .expect("no machine error");
        match out {
            Outcome::Value(n) => m.render(n, 16),
            Outcome::Caught(e) | Outcome::Uncaught(e) => format!("(raise {e})"),
        }
    }

    fn caught(src: &str) -> Exception {
        let (_, out) = eval_with(MachineConfig::default(), src, true);
        match out {
            Outcome::Caught(e) => e,
            other => panic!("expected a caught exception, got {other:?}"),
        }
    }

    // ------------------------------------------------------------------
    // Plain evaluation
    // ------------------------------------------------------------------

    #[test]
    fn arithmetic_and_structures() {
        assert_eq!(render("1 + 2 * 3"), "7");
        assert_eq!(render("[1, 2]"), "Cons 1 (Cons 2 Nil)");
        assert_eq!(render("(1, 'a')"), "Pair 1 'a'");
        assert_eq!(render(r#"strAppend "ab" "cd""#), "\"abcd\"");
        assert_eq!(render("if 1 < 2 then 10 else 20"), "10");
    }

    #[test]
    fn laziness_discards_exceptional_arguments() {
        // (\x -> 3)(1/0) = 3 — call-by-need never forces x.
        assert_eq!(render(r"(\x -> 3) (1/0)"), "3");
        assert_eq!(render("let x = 1/0 in 42"), "42");
    }

    #[test]
    fn sharing_evaluates_shared_thunks_once() {
        // let x = <expensive> in x + x should update the thunk once.
        let (m, out) = eval_with(MachineConfig::default(), "let x = 10 * 10 in x + x", false);
        assert!(matches!(out, Outcome::Value(_)));
        assert_eq!(m.stats().thunk_updates, 1);
    }

    #[test]
    fn recursion_through_letrec() {
        assert_eq!(
            render("let f = \\n -> if n == 0 then 1 else n * f (n - 1) in f 10"),
            "3628800"
        );
    }

    #[test]
    fn programs_bind_as_a_recursive_group() {
        let mut data = DataEnv::new();
        let prog = desugar_program(
            &parse_program(
                "zipWith f [] [] = []\n\
                 zipWith f (x:xs) (y:ys) = f x y : zipWith f xs ys\n\
                 zipWith f xs ys = raise (UserError \"Unequal lists\")",
            )
            .expect("parses"),
            &mut data,
        )
        .expect("desugars");
        let mut m = Machine::new(MachineConfig::default());
        let env = m.bind_recursive(&prog.binds, &MEnv::empty());
        let e = Rc::new(
            desugar_expr(
                &parse_expr_src("zipWith (/) [1, 2] [1, 0]").expect("parses"),
                &data,
            )
            .expect("desugars"),
        );
        let out = m.eval(e, &env, false).expect("no machine error");
        let Outcome::Value(n) = out else {
            panic!("spine is defined")
        };
        assert_eq!(m.render(n, 16), "Cons 1 (Cons (raise DivideByZero) Nil)");
    }

    // ------------------------------------------------------------------
    // §3.3: raise = stack trimming; catch marks; poisoning
    // ------------------------------------------------------------------

    #[test]
    fn uncaught_exceptions_are_reported() {
        let (_, out) = eval_with(MachineConfig::default(), "1/0", false);
        assert!(matches!(out, Outcome::Uncaught(Exception::DivideByZero)));
    }

    #[test]
    fn catch_mark_stops_the_trim() {
        assert_eq!(caught("1 + (2 * (3 - (1/0)))"), Exception::DivideByZero);
        assert_eq!(
            caught(r#"raise (UserError "Urk")"#),
            Exception::UserError("Urk".into())
        );
    }

    #[test]
    fn trimming_poisons_in_flight_thunks() {
        // Force a shared exceptional thunk twice: the second force must
        // re-raise the same exception without re-evaluating.
        let mut m = Machine::new(MachineConfig::default());
        let t = m.alloc_expr(
            &Rc::new(Expr::div(Expr::int(1), Expr::int(0))),
            &MEnv::empty(),
        );
        let first = m.eval_node(t, true).expect("no machine error");
        assert!(matches!(first, Outcome::Caught(Exception::DivideByZero)));
        assert_eq!(m.stats().thunks_poisoned, 1);
        let steps_before = m.stats().steps;
        let second = m.eval_node(t, true).expect("no machine error");
        assert!(matches!(second, Outcome::Caught(Exception::DivideByZero)));
        assert!(
            m.stats().steps - steps_before <= 4,
            "poisoned thunk must re-raise without re-evaluation"
        );
    }

    #[test]
    fn no_exception_program_touches_no_exception_machinery() {
        let (m, out) = eval_with(
            MachineConfig::default(),
            "let f = \\n -> if n == 0 then 0 else n + f (n - 1) in f 100",
            false,
        );
        assert!(matches!(out, Outcome::Value(_)));
        assert_eq!(m.stats().thunks_poisoned, 0);
        assert_eq!(m.stats().frames_trimmed, 0);
        assert_eq!(m.stats().blackholes_detected, 0);
    }

    // ------------------------------------------------------------------
    // §3.5: evaluation order is a policy; the denotation is not
    // ------------------------------------------------------------------

    #[test]
    fn order_policy_selects_the_representative_exception() {
        let src = r#"(1/0) + raise (UserError "Urk")"#;
        let l2r = MachineConfig {
            order: OrderPolicy::LeftToRight,
            ..MachineConfig::default()
        };
        let r2l = MachineConfig {
            order: OrderPolicy::RightToLeft,
            ..MachineConfig::default()
        };
        let (_, a) = eval_with(l2r, src, true);
        let (_, b) = eval_with(r2l, src, true);
        assert!(matches!(a, Outcome::Caught(Exception::DivideByZero)));
        assert!(matches!(b, Outcome::Caught(Exception::UserError(_))));
    }

    #[test]
    fn seeded_order_is_deterministic_per_seed() {
        let src = r#"(1/0) + raise (UserError "Urk")"#;
        let run = |seed| {
            let (_, out) = eval_with(
                MachineConfig {
                    order: OrderPolicy::Seeded(seed),
                    ..MachineConfig::default()
                },
                src,
                true,
            );
            match out {
                Outcome::Caught(e) => e,
                other => panic!("{other:?}"),
            }
        };
        assert_eq!(run(7), run(7));
        // Some pair of seeds should disagree; sweep a few.
        let exceptions: std::collections::BTreeSet<_> =
            (0..16).map(run).map(|e| e.to_string()).collect();
        assert_eq!(exceptions.len(), 2, "both representatives should occur");
    }

    #[test]
    fn value_results_are_order_independent() {
        for policy in [
            OrderPolicy::LeftToRight,
            OrderPolicy::RightToLeft,
            OrderPolicy::Seeded(3),
        ] {
            let (_, out) = eval_with(
                MachineConfig {
                    order: policy,
                    ..MachineConfig::default()
                },
                "(2 + 3) * (4 - 1)",
                false,
            );
            let Outcome::Value(n) = out else { panic!() };
            let _ = n;
        }
    }

    // ------------------------------------------------------------------
    // §5.2: detectable bottoms
    // ------------------------------------------------------------------

    #[test]
    fn black_hole_detection_raises_nontermination() {
        let (m, out) = eval_with(
            MachineConfig::default(),
            "let black = black + 1 in black",
            true,
        );
        assert!(matches!(out, Outcome::Caught(Exception::NonTermination)));
        assert!(m.stats().blackholes_detected >= 1);
    }

    #[test]
    fn black_hole_loop_mode_spins_to_the_step_limit() {
        let mut m = Machine::new(MachineConfig {
            blackholes: BlackholeMode::Loop,
            max_steps: 5_000,
            ..MachineConfig::default()
        });
        let e = core_of("let black = black + 1 in black");
        let r = m.eval(e, &MEnv::empty(), true);
        assert_eq!(r.expect_err("should spin"), MachineError::StepLimit);
    }

    // ------------------------------------------------------------------
    // §5.1: asynchronous exceptions
    // ------------------------------------------------------------------

    fn slow_expr() -> Rc<Expr> {
        core_of("let f = \\n -> if n == 0 then 42 else f (n - 1) in f 100000")
    }

    #[test]
    fn interrupts_are_delivered_and_thunks_are_resumable() {
        let mut m = Machine::new(MachineConfig {
            event_schedule: vec![(1_000, Exception::Interrupt)],
            ..MachineConfig::default()
        });
        // Make the computation a shared heap node so we can resume it.
        let work = m.alloc_expr(&slow_expr(), &MEnv::empty());
        let first = m.eval_node(work, true).expect("no machine error");
        assert!(matches!(first, Outcome::Caught(Exception::Interrupt)));
        assert!(m.stats().thunks_restored >= 1, "{:?}", m.stats());
        assert_eq!(m.stats().thunks_poisoned, 0);
        // The schedule is exhausted; evaluation resumes and completes.
        let second = m.eval_node(work, true).expect("no machine error");
        let Outcome::Value(n) = second else {
            panic!("resumed evaluation should complete, got {second:?}")
        };
        assert_eq!(m.render(n, 4), "42");
    }

    #[test]
    fn timeout_on_step_limit_is_an_asynchronous_exception() {
        let mut m = Machine::new(MachineConfig {
            max_steps: 2_000,
            timeout_on_step_limit: true,
            ..MachineConfig::default()
        });
        let out = m
            .eval(slow_expr(), &MEnv::empty(), true)
            .expect("timeout is delivered as an exception");
        assert!(matches!(out, Outcome::Caught(Exception::Timeout)));
    }

    #[test]
    fn stack_exhaustion_raises_stack_overflow() {
        let mut m = Machine::new(MachineConfig {
            max_stack: 500,
            ..MachineConfig::default()
        });
        // Non-tail recursion grows the evaluation stack.
        let e = core_of("let f = \\n -> 1 + f (n + 1) in f 0");
        let out = m.eval(e, &MEnv::empty(), true).expect("no machine error");
        assert!(matches!(out, Outcome::Caught(Exception::StackOverflow)));
    }

    #[test]
    fn heap_exhaustion_raises_heap_overflow() {
        let mut m = Machine::new(MachineConfig {
            max_heap: 2_000,
            ..MachineConfig::default()
        });
        let e = core_of("let f = \\n -> n : f (n + 1) in let len = \\xs -> case xs of { [] -> 0; y:ys -> 1 + len ys } in len (f 0)");
        let out = m.eval(e, &MEnv::empty(), true).expect("no machine error");
        assert!(matches!(out, Outcome::Caught(Exception::HeapOverflow)));
    }

    #[test]
    fn uncaught_async_exception_aborts_the_program() {
        let mut m = Machine::new(MachineConfig {
            event_schedule: vec![(500, Exception::Interrupt)],
            ..MachineConfig::default()
        });
        let out = m
            .eval(slow_expr(), &MEnv::empty(), false)
            .expect("no machine error");
        assert!(matches!(out, Outcome::Uncaught(Exception::Interrupt)));
    }

    #[test]
    fn async_delivery_at_every_step_of_a_protected_episode_is_caught() {
        // Regression (found by `urk fuzz`): the catch mark used to be
        // popped one step before the episode returned, so an asynchronous
        // exception delivered on that exact step escaped as `Uncaught`
        // from a catch=true episode. Sweep the delivery point across every
        // step of a small run: the only legal outcomes are the value or
        // `Caught(Interrupt)`.
        let src = "seq ((\\x -> x) (19 / 28)) (case Just 3 of { Just v -> 21 })";
        for at in 1..=64u64 {
            let (m, out) = eval_with(
                MachineConfig {
                    event_schedule: vec![(at, Exception::Interrupt)],
                    ..MachineConfig::default()
                },
                src,
                true,
            );
            match out {
                // A value means the episode finished before the delivery
                // point (the event is still pending, so rendering would
                // absorb it — don't).
                Outcome::Value(_) => assert!(
                    m.stats().steps < at,
                    "episode returned a value past the delivery at step {at}"
                ),
                Outcome::Caught(Exception::Interrupt) => {}
                other => panic!("delivery at step {at} produced {other:?}"),
            }
        }
    }

    // ------------------------------------------------------------------
    // §5.4: mapException and unsafeIsException, operationally
    // ------------------------------------------------------------------

    #[test]
    fn map_exception_rewrites_the_representative() {
        assert_eq!(
            caught(r#"mapException (\x -> UserError "Urk") (1/0)"#),
            Exception::UserError("Urk".into())
        );
        // Normal values pass through untouched.
        assert_eq!(render(r#"mapException (\x -> UserError "Urk") 42"#), "42");
    }

    #[test]
    fn map_exception_does_not_catch_async() {
        let mut m = Machine::new(MachineConfig {
            event_schedule: vec![(1_000, Exception::Interrupt)],
            ..MachineConfig::default()
        });
        let e = core_of(
            r#"mapException (\x -> UserError "remapped")
                 (let f = \n -> if n == 0 then 1 else f (n - 1) in f 100000)"#,
        );
        let out = m.eval(e, &MEnv::empty(), true).expect("no machine error");
        assert!(
            matches!(out, Outcome::Caught(Exception::Interrupt)),
            "async exceptions pass through mapException: {out:?}"
        );
    }

    #[test]
    fn unsafe_is_exception_observes_evaluation() {
        assert_eq!(render("unsafeIsException (1/0)"), "True");
        assert_eq!(render("unsafeIsException 3"), "False");
    }

    #[test]
    fn unsafe_is_exception_order_gap_from_section_5_4() {
        // isException ((1/0) + loop): left-to-right finds DivideByZero and
        // answers True; right-to-left dives into the loop and diverges.
        // (BlackholeMode::Loop models an implementation without detectable
        // bottoms.)
        let src = "let loop = loop in unsafeIsException ((1/0) + loop)";
        let mut l2r = Machine::new(MachineConfig {
            order: OrderPolicy::LeftToRight,
            blackholes: BlackholeMode::Loop,
            max_steps: 20_000,
            ..MachineConfig::default()
        });
        let out = l2r
            .eval(core_of(src), &MEnv::empty(), false)
            .expect("terminates");
        let Outcome::Value(n) = out else {
            panic!("{out:?}")
        };
        assert_eq!(l2r.render(n, 2), "True");

        let mut r2l = Machine::new(MachineConfig {
            order: OrderPolicy::RightToLeft,
            blackholes: BlackholeMode::Loop,
            max_steps: 20_000,
            ..MachineConfig::default()
        });
        let r = r2l.eval(core_of(src), &MEnv::empty(), false);
        assert_eq!(r.expect_err("diverges"), MachineError::StepLimit);
    }

    // ------------------------------------------------------------------
    // Pattern-match failures from compiled matches
    // ------------------------------------------------------------------

    #[test]
    fn missing_case_raises_pattern_match_fail() {
        let e = caught("case Nothing of { Just n -> n }");
        assert!(matches!(e, Exception::PatternMatchFail(_)));
    }

    #[test]
    fn raise_with_exceptional_payload_propagates_payload_exception() {
        // raise (UserError (showInt (1/0))): forcing the payload raises
        // DivideByZero, which replaces the UserError.
        assert_eq!(
            caught("raise (UserError (showInt (1/0)))"),
            Exception::DivideByZero
        );
    }

    // ------------------------------------------------------------------
    // Garbage collection
    // ------------------------------------------------------------------

    #[test]
    fn gc_reclaims_garbage_and_preserves_results() {
        // A loop that churns: each iteration allocates list cells that die
        // immediately. With a low threshold the collector must run, the
        // arena must stay bounded, and the answer must be right.
        let src = "let { len = \\xs -> case xs of { [] -> 0; y:ys -> 1 + len ys }
                       ; mk = \\n -> if n == 0 then [] else n : mk (n - 1)
                       ; go = \\i acc -> if i == 0 then acc
                                         else go (i - 1) (acc + len (mk 50)) }
                   in go 200 0";
        let mut m = Machine::new(MachineConfig {
            gc_threshold: 20_000,
            ..MachineConfig::default()
        });
        let out = m
            .eval(core_of(src), &MEnv::empty(), false)
            .expect("no machine error");
        let Outcome::Value(n) = out else {
            panic!("{out:?}")
        };
        assert_eq!(m.render(n, 4), "10000");
        assert!(
            m.stats().gc_runs >= 1,
            "collector should have run: {:?}",
            m.stats()
        );
        assert!(m.stats().gc_freed > 0);
        assert!(
            m.heap().len() < 60_000,
            "arena should stay bounded, got {} nodes",
            m.heap().len()
        );
        // Cells were recycled: total allocations far exceed the arena that
        // remains, because churned list cells died in the nursery (minor
        // collections dropped them without ever tenuring them).
        let churned = m.heap().len();
        assert!(
            m.stats().allocations as usize > churned,
            "allocations={} should exceed the remaining arena {churned}",
            m.stats().allocations,
        );
        assert!(
            m.stats().minor_gcs >= 1,
            "nursery collections should have run: {:?}",
            m.stats()
        );
        assert!(
            m.stats().nodes_promoted > 0,
            "live survivors should have been tenured: {:?}",
            m.stats()
        );
    }

    #[test]
    fn unboxed_values_are_shared_across_evaluations_and_survive_gc() {
        let mut m = Machine::new(MachineConfig::default());
        let a = m
            .eval(core_of("1 + 2"), &MEnv::empty(), false)
            .expect("no machine error");
        let b = m
            .eval(core_of("5 - 2"), &MEnv::empty(), false)
            .expect("no machine error");
        let (Outcome::Value(a), Outcome::Value(b)) = (a, b) else {
            panic!("expected values")
        };
        // Both results are the same tagged immediate word for 3 — no heap
        // cell at all.
        assert_eq!(a, b, "small-int results should be the same tagged word");
        assert_eq!(a, NodeId::imm_int(3).unwrap());
        assert!(m.stats().unboxed_hits >= 2, "{:?}", m.stats());
        // A full collection cannot touch an immediate (it has no cell):
        // the id stays valid for the embedder.
        m.collect_with(&[]);
        assert_eq!(m.render(a, 4), "3");
        let t = m
            .eval(core_of("1 == 1"), &MEnv::empty(), false)
            .expect("no machine error");
        let Outcome::Value(t) = t else {
            panic!("expected a value")
        };
        assert_eq!(m.render(t, 4), "True");
    }

    #[test]
    fn unboxed_literals_are_not_heap_allocations() {
        // Small integers and nullary constructors live in the tagged id
        // word itself: a fresh machine has an *empty* heap (the PR 1
        // intern pool is gone), and arithmetic over small ints produces an
        // immediate result, not a cell.
        let mut m = Machine::new(MachineConfig::default());
        assert_eq!(m.heap().len(), 0);
        assert_eq!(m.stats().allocations, 0);
        let out = m
            .eval(core_of("(1 + 2) * 4"), &MEnv::empty(), false)
            .expect("no machine error");
        let Outcome::Value(n) = out else {
            panic!("{out:?}")
        };
        assert_eq!(n, NodeId::imm_int(12).unwrap());
        assert!(m.stats().unboxed_hits >= 1, "{:?}", m.stats());
    }

    #[test]
    fn free_list_reuse_keeps_the_arena_at_its_high_water_mark() {
        // Two identical churn-heavy runs: the second one's promotions are
        // served from the free list, so the tenured arena must not grow
        // between them. The tiny nursery forces minor collections (and
        // promotions) that the default sizing would absorb entirely.
        let src = "let { mk = \\n -> if n == 0 then [] else n : mk (n - 1)
                       ; len = \\xs -> case xs of { [] -> 0; y:ys -> 1 + len ys } }
                   in len (mk 400)";
        let mut m = Machine::new(MachineConfig {
            gc_threshold: 2_000,
            nursery_size: 256,
            ..MachineConfig::default()
        });
        let run = |m: &mut Machine| {
            let out = m
                .eval(core_of(src), &MEnv::empty(), false)
                .expect("no machine error");
            let Outcome::Value(n) = out else {
                panic!("{out:?}")
            };
            assert_eq!(m.render(n, 4), "400");
        };
        run(&mut m);
        m.collect_with(&[]);
        let high_water = m.heap().tenured_len();
        let reuses_before = m.stats().freelist_reuses;
        run(&mut m);
        assert_eq!(
            m.heap().tenured_len(),
            high_water,
            "the second run's promotions should be served from the free list"
        );
        assert!(m.stats().freelist_reuses > reuses_before, "{:?}", m.stats());
    }

    #[test]
    fn gc_keeps_rooted_program_environments_alive() {
        let mut data = DataEnv::new();
        let prog = desugar_program(
            &parse_program("double x = x + x\nten = double 5").expect("parses"),
            &mut data,
        )
        .expect("desugars");
        let mut m = Machine::new(MachineConfig {
            gc_threshold: 1_000,
            ..MachineConfig::default()
        });
        let env = m.bind_recursive(&prog.binds, &MEnv::empty());
        // Churn to force collections, then use the program again.
        let churn = core_of("let f = \\n -> if n == 0 then 0 else f (n - 1) in f 20000");
        let _ = m.eval(churn, &MEnv::empty(), false).expect("ok");
        assert!(m.stats().gc_runs >= 1);
        let e = Rc::new(
            desugar_expr(&parse_expr_src("ten + double 100").expect("parses"), &data)
                .expect("desugars"),
        );
        let out = m.eval(e, &env, false).expect("ok");
        let Outcome::Value(n) = out else {
            panic!("{out:?}")
        };
        assert_eq!(m.render(n, 4), "210");
    }

    #[test]
    fn gc_can_be_disabled() {
        let mut m = Machine::new(MachineConfig {
            gc: false,
            gc_threshold: 100,
            ..MachineConfig::default()
        });
        let out = m
            .eval(
                core_of("let f = \\n -> if n == 0 then 7 else f (n - 1) in f 5000"),
                &MEnv::empty(),
                false,
            )
            .expect("ok");
        assert!(matches!(out, Outcome::Value(_)));
        assert_eq!(m.stats().gc_runs, 0);
    }

    #[test]
    fn stats_track_allocation_and_stack() {
        let (m, _) = eval_with(
            MachineConfig::default(),
            "let len = \\xs -> case xs of { [] -> 0; y:ys -> 1 + len ys } in 1 + len [1, 2, 3]",
            false,
        );
        assert!(m.stats().allocations > 0);
        assert!(m.stats().max_stack_depth >= 2);
        let mut m2 = Machine::new(MachineConfig::default());
        m2.reset_stats();
        assert_eq!(m2.stats().steps, 0);
    }
}
