//! The tier-2 optimisation pass: analysis-licensed superinstruction
//! codegen over a compiled [`Code`] image.
//!
//! The paper's central claim (§4–§5) is that an *imprecise* exception
//! semantics licenses exactly the transformations a precise one forbids:
//! because an exceptional result denotes a **set** of exceptions and an
//! evaluator may surface any member, the compiler may reorder, fuse, and
//! speculate strict code without tracking which exception "comes first" —
//! and it may evaluate a lazy binding early as long as a synchronous raise
//! is *stored* (§3.3's `raise ex` overwrite) rather than propagated. This
//! pass cashes that licence in three ways:
//!
//! 1. **Fused regions** ([`COp::Fused`]): maximal call-free subtrees of
//!    strict primitives over locals/globals/literals collapse into one op
//!    executed atomically when every variable leaf is already forced —
//!    no `PrimArgs` frames, no per-op step prologue, no thunk traffic.
//!    Termination within a step is *syntactic*: regions are call-free and
//!    capped at [`MAX_REGION_OPS`] ops, which [`Code::verify`] enforces.
//! 2. **Speculation sites** ([`COp::Spec`]): lazy right-hand sides that
//!    are value forms (lambdas, constructors) build their value at
//!    allocation time; prim regions evaluate eagerly, storing a raise as
//!    a poisoned node — observationally the thunk §3.3 trimming would
//!    have left behind. Unlicensed speculation (propagating the raise)
//!    is exactly what the sabotage battery proves the oracle catches.
//! 3. **Inline-cached calls** ([`COp::AppG`]): applications whose callee
//!    is a top-level name get a per-machine monomorphic cache slot, so
//!    hot curried spines skip the global-table indirection and the
//!    callee's already-forced function value is entered directly.
//!
//! The pass also performs two purely static reductions under the same
//! licence: *constant substitution* of globals whose analysis fact proves
//! a WHNF-safe literal value (the emitted literal comes from the **fact**,
//! making the licence load-bearing — a corrupted fact produces an
//! observably wrong constant the differential oracle flags), and
//! *case-of-known-constructor* folding when the scrutinee is a literal,
//! a nullary constructor, or such a constant global.
//!
//! Everything the pass emits is re-checked: [`Code::verify`] knows the
//! tier-2 ops' structural rules, and the differential battery
//! (`tests/tier2.rs`) compares tier-2 runs against the tree machine,
//! tier 1, and the denotational semantics under both order policies,
//! chaos plans, and interrupt sweeps. Facts are a *licence*, never a
//! proof — the oracle has the last word.

use std::collections::HashMap;
use std::sync::Arc;

use urk_syntax::Symbol;

use crate::code::{CArm, COp, Code, CodeBuf, CodeId, MAX_REGION_OPS};

/// A per-global analysis fact in `Code`-indexable form: entry `i`
/// describes global `i` of the image being optimised (the same program
/// order [`crate::compile_program`] assigns). Produced by
/// `urk-analysis`'s `binding_facts` export and converted by the session
/// layer, so `urk-machine` stays independent of the analysis crate.
#[derive(Clone, Debug, Default)]
pub struct GlobalFact {
    /// Forcing this global to WHNF cannot raise or diverge (the
    /// analysis's `Effect::whnf_safe`). Required for constant
    /// substitution: replacing a name by its value erases a force.
    pub whnf_safe: bool,
    /// The global's proven WHNF value, when it is a literal the analysis
    /// could determine (arity-0 bindings only).
    pub value: Option<FactVal>,
    /// Must-demand per parameter: `demands[i]` proves that an exceptional
    /// `i`-th argument makes a saturated call's result exceptional, which
    /// per §4 licenses evaluating that argument eagerly (the denoted
    /// exception set is unchanged — only *which* member surfaces moves,
    /// and that is exactly the imprecision the semantics grants). Length
    /// equals the binding's manifest arity; empty licenses nothing.
    pub demands: Vec<bool>,
}

/// A literal value an analysis fact can prove (the `Send + Sync` subset
/// of the analysis lattice's value component).
#[derive(Clone, Debug, PartialEq)]
pub enum FactVal {
    Int(i64),
    Char(char),
    Str(String),
}

/// The complete licence for one program: facts indexed by global number.
/// Missing entries (or [`Tier2Facts::empty`]) simply license nothing —
/// the pass still fuses regions and installs inline caches, which need
/// no analysis facts.
#[derive(Clone, Debug, Default)]
pub struct Tier2Facts {
    /// One fact per global, in global-index order. May be shorter than
    /// the global table; absent entries license nothing.
    pub globals: Vec<GlobalFact>,
}

impl Tier2Facts {
    /// A licence that licenses nothing (fusion and inline caches still
    /// apply — they are always sound).
    pub fn empty() -> Tier2Facts {
        Tier2Facts::default()
    }
}

/// What licensed one emitted transform, recorded by the optimiser for the
/// translation validator. One entry per site, keyed by the *pair* of the
/// source-arena op and the emitted destination-arena op it maps to — the
/// validator walks both arenas in lockstep and refuses any structural
/// divergence it cannot find a discharged certificate for.
#[derive(Clone, Debug, PartialEq)]
pub enum CertKind {
    /// `dst` is `COp::Fused` wrapping a verbatim copy of the call-free
    /// prim region rooted at `src` (demanded position: a raise inside
    /// raises anyway).
    Fused,
    /// `dst` is `COp::Spec` wrapping a lazy *value form* (lambda or
    /// constructor) — building it early is draw-free and cannot raise.
    SpecValue,
    /// `dst` is `COp::Spec` wrapping a call-free prim region evaluated at
    /// allocation time; a raise is stored as §3.3 poison.
    SpecRegion,
    /// `dst` is `COp::Spec` wrapping the callee's body with the argument
    /// beta-substituted for its parameter — licensed by the strictness
    /// fact `demands == [true]` on `callee`: the call's result is
    /// exceptional whenever the argument is, so evaluating eagerly keeps
    /// the denoted set.
    SpecCall {
        /// Global index of the inlined callee.
        callee: u32,
    },
    /// `dst` is a literal op substituted for `COp::Global(global)` under
    /// the constant-substitution licence (WHNF-safe fact with a proven
    /// literal value matching the source body's own literal kind).
    ConstSubst {
        /// Global index whose fact supplied the literal.
        global: u32,
    },
    /// The `COp::Case` at `src` was folded to the right-hand side of arm
    /// `arm` (first match on a static scrutinee, no binders).
    CaseFold {
        /// Index of the selected arm within the case's arm block.
        arm: u32,
    },
    /// `dst` is `COp::AppG` replacing a `COp::App` whose callee is
    /// `COp::Global(callee)`, with inline-cache slot `ic`.
    AppG {
        /// Global index of the cached callee.
        callee: u32,
        /// The monomorphic inline-cache slot patched into the site.
        ic: u32,
    },
}

/// One certificate entry: source op, destination op, and the claimed
/// licence connecting them.
#[derive(Clone, Debug, PartialEq)]
pub struct CertEntry {
    /// Op index in the tier-1 (source) arena.
    pub src: u32,
    /// Op index in the tier-2 (destination) arena.
    pub dst: u32,
    /// The transform kind and the facts it claims.
    pub kind: CertKind,
}

/// The full certificate for one tier-2 compilation: every transform the
/// pass performed, in emission order. [`crate::validate::validate_tier2`]
/// independently re-derives and discharges each entry.
#[derive(Clone, Debug, Default)]
pub struct Tier2Cert {
    /// All recorded transform sites.
    pub entries: Vec<CertEntry>,
}

/// The evaluation context a source op is being copied under, which
/// decides what the pass may wrap around it.
#[derive(Copy, Clone, PartialEq, Eq)]
enum Ctx {
    /// The op's value is demanded now: a prim region may be wrapped in
    /// [`COp::Fused`] (a raise here raises anyway, so atomic evaluation
    /// surfaces a member of the same denoted set).
    Strict,
    /// The op is being suspended: value forms and prim regions may be
    /// wrapped in [`COp::Spec`] (a raise must be *stored*, not raised).
    Lazy,
    /// Already inside a fused region: copy verbatim (no nested wrappers;
    /// constant substitution still applies).
    Region,
}

/// A statically known scrutinee value for case folding.
enum StaticVal {
    Int(i64),
    Char(char),
    Str(Arc<str>),
    Con0(Symbol),
}

/// Optimises a tier-1 [`Code`] image into a tier-2 one. Pure function of
/// the image and the facts: the output is a fresh arena with the same
/// global table (names and order), marked [`Code::is_tier2`], carrying
/// the number of inline-cache slots its `AppG` sites use.
pub fn tier2_optimize(base: &Code, facts: &Tier2Facts) -> Code {
    tier2_optimize_certified(base, facts).0
}

/// [`tier2_optimize`], but also returning the certificate recording which
/// fact licensed each transform — the input to the translation validator.
pub fn tier2_optimize_certified(base: &Code, facts: &Tier2Facts) -> (Code, Tier2Cert) {
    let t0 = std::time::Instant::now();
    let mut rw = Rewriter {
        src: base,
        facts,
        out: CodeBuf::default(),
        ic_slots: 0,
        cert: Tier2Cert::default(),
    };
    let mut globals = Vec::with_capacity(base.globals.len());
    for (name, entry) in &base.globals {
        // A global's right-hand side is forced on demand — demand is
        // strict from the thunk's point of view.
        globals.push((*name, rw.go(*entry, Ctx::Strict)));
    }
    let ic_slots = rw.ic_slots;
    let cert = rw.cert;
    let out = rw.out;
    let compile_ops = out.ops.len() as u64;
    let global_index: HashMap<Symbol, u32> = base.global_index.clone();
    let code = Code {
        buf: out,
        globals,
        global_index,
        compile_ops,
        compile_micros: base.compile_micros() + t0.elapsed().as_micros() as u64,
        tier2: true,
        ic_slots,
    };
    (code, cert)
}

struct Rewriter<'a> {
    src: &'a Code,
    facts: &'a Tier2Facts,
    out: CodeBuf,
    ic_slots: u32,
    cert: Tier2Cert,
}

impl Rewriter<'_> {
    fn src_op(&self, id: CodeId) -> COp {
        self.src.buf.ops[id.0 as usize]
    }

    fn src_kid(&self, i: u32) -> CodeId {
        self.src.buf.kids[i as usize]
    }

    fn src_arm(&self, i: u32) -> CArm {
        self.src.buf.arms[i as usize]
    }

    fn src_str(&self, i: u32) -> &Arc<str> {
        &self.src.buf.strs[i as usize]
    }

    fn emit(&mut self, op: COp) -> CodeId {
        self.out.ops.push(op);
        CodeId(self.out.ops.len() as u32 - 1)
    }

    /// Records one certificate entry for the transform that mapped the
    /// source op `src` to the emitted op `dst`.
    fn certify(&mut self, src: CodeId, dst: CodeId, kind: CertKind) {
        self.cert.entries.push(CertEntry {
            src: src.0,
            dst: dst.0,
            kind,
        });
    }

    /// Interns a string in the output table (linear scan — the table is
    /// per-program and small, same trade-off as the compiler's).
    fn intern(&mut self, s: &str) -> u32 {
        if let Some(i) = self.out.strs.iter().position(|t| &**t == s) {
            return i as u32;
        }
        self.out.strs.push(Arc::from(s));
        self.out.strs.len() as u32 - 1
    }

    /// The constant-substitution licence check: global `g` may be
    /// replaced by a literal iff its fact proves a WHNF-safe literal
    /// value **and** the source body is already a literal op of the
    /// matching kind. The second condition keeps a Seeded machine in
    /// lockstep with the tree backend: folding a *computed* constant
    /// (say `k = 2 + 3`) would erase the §3.5 draw the tree machine
    /// performs when `k` is first forced. The emitted literal comes from
    /// the fact, so a corrupted licence is observable.
    fn const_literal(&mut self, g: u32) -> Option<COp> {
        let fact = self.facts.globals.get(g as usize)?;
        if !fact.whnf_safe {
            return None;
        }
        let value = fact.value.as_ref()?;
        let (_, entry) = self.src.globals[g as usize];
        match (self.src_op(entry), value) {
            (COp::Int(_), FactVal::Int(n)) => Some(COp::Int(*n)),
            (COp::Char(_), FactVal::Char(c)) => Some(COp::Char(*c)),
            (COp::Str(_), FactVal::Str(s)) => {
                let s = s.clone();
                let i = self.intern(&s);
                Some(COp::Str(i))
            }
            _ => None,
        }
    }

    /// Scans whether the subtree at `id` is a legal fused region, and
    /// how big: `Some((ops, prims))` if every op is region-legal and the
    /// total stays within [`MAX_REGION_OPS`].
    fn region_scan(&self, id: CodeId) -> Option<(usize, usize)> {
        let (size, prims) = match self.src_op(id) {
            COp::Local(_) | COp::Global(_) | COp::Int(_) | COp::Char(_) | COp::Str(_) => (1, 0),
            COp::Con { n: 0, .. } => (1, 0),
            COp::Prim1 { a, .. } => {
                let (s, p) = self.region_scan(a)?;
                (s + 1, p + 1)
            }
            COp::Prim2 { a, b, .. } | COp::Seq { a, b } => {
                let (sa, pa) = self.region_scan(a)?;
                let (sb, pb) = self.region_scan(b)?;
                (sa + sb + 1, pa + pb + 1)
            }
            _ => return None,
        };
        (size <= MAX_REGION_OPS).then_some((size, prims))
    }

    /// True if the subtree is worth wrapping as a region: at least one
    /// primitive (a bare leaf gains nothing) within the size cap.
    fn regionable(&self, id: CodeId) -> bool {
        matches!(self.region_scan(id), Some((size, prims)) if size >= 2 && prims >= 1)
    }

    /// Copies the subtree at `id` into the output arena under `ctx`,
    /// wrapping what the context licenses. Children are always emitted
    /// before parents (the verifier's acyclicity invariant).
    fn go(&mut self, id: CodeId, ctx: Ctx) -> CodeId {
        if let COp::Global(g) = self.src_op(id) {
            if let Some(lit) = self.const_literal(g) {
                let dst = self.emit(lit);
                self.certify(id, dst, CertKind::ConstSubst { global: g });
                return dst;
            }
        }
        if let COp::Case { .. } = self.src_op(id) {
            if let Some((arm, rhs)) = self.try_fold_case(id) {
                // The folded arm has no binders, so its rhs was compiled
                // at the same depth as the case — substitute in place,
                // in the same context.
                let dst = self.go(rhs, ctx);
                self.certify(id, dst, CertKind::CaseFold { arm });
                return dst;
            }
        }
        match ctx {
            Ctx::Region => self.copy_op(id, Ctx::Region),
            Ctx::Strict => {
                if self.regionable(id) {
                    let body = self.copy_op(id, Ctx::Region);
                    let dst = self.emit(COp::Fused { body });
                    self.certify(id, dst, CertKind::Fused);
                    dst
                } else {
                    self.copy_op(id, Ctx::Strict)
                }
            }
            Ctx::Lazy => match self.src_op(id) {
                // Value forms build eagerly at the allocation site —
                // draw-free, so sound under every order policy.
                COp::Lam { .. } => {
                    let body = self.copy_op(id, Ctx::Lazy);
                    let dst = self.emit(COp::Spec { body });
                    self.certify(id, dst, CertKind::SpecValue);
                    dst
                }
                COp::Con { n, .. } if n >= 1 => {
                    let body = self.copy_op(id, Ctx::Lazy);
                    let dst = self.emit(COp::Spec { body });
                    self.certify(id, dst, CertKind::SpecValue);
                    dst
                }
                _ if self.regionable(id) => {
                    let body = self.copy_op(id, Ctx::Region);
                    let dst = self.emit(COp::Spec { body });
                    self.certify(id, dst, CertKind::SpecRegion);
                    dst
                }
                COp::App { .. } => match self.try_spec_call(id) {
                    Some(dst) => dst,
                    None => self.copy_op(id, Ctx::Lazy),
                },
                _ => self.copy_op(id, Ctx::Lazy),
            },
        }
    }

    /// The strictness-licensed call speculation: a lazily-bound saturated
    /// call `g a` to a known unary global whose fact proves its parameter
    /// *demanded* may be beta-inlined into one prim region and evaluated
    /// at allocation time (`Spec`). The demand fact is what makes this
    /// sound where the WHNF-only rule rejects it: if `a` raises, the call
    /// would have raised too, so storing the raise as §3.3 poison denotes
    /// the same set.
    ///
    /// Structural side-conditions (all validator-re-proved):
    /// * the callee body and the argument are both region-legal (so the
    ///   inlined result is one call-free prim region);
    /// * every `Local` in the callee body is `Local(0)` (the parameter);
    /// * if the parameter occurs **more than once**, the argument must be
    ///   a single draw-free leaf — duplicating a prim subtree would fork
    ///   the §3.5 Seeded draw stream;
    /// * the substituted region keeps ≥ 1 prim and fits `MAX_REGION_OPS`.
    fn try_spec_call(&mut self, id: CodeId) -> Option<CodeId> {
        let COp::App { f, a } = self.src_op(id) else {
            return None;
        };
        let COp::Global(g) = self.src_op(f) else {
            return None;
        };
        let fact = self.facts.globals.get(g as usize)?;
        if fact.demands.as_slice() != [true] {
            return None;
        }
        let (_, entry) = self.src.globals[g as usize];
        let COp::Lam { body } = self.src_op(entry) else {
            return None;
        };
        let (bsize, bprims) = self.region_scan(body)?;
        let (asize, aprims) = self.region_scan(a)?;
        let occ = self.count_param_leaves(body)?;
        if occ >= 2 && !self.is_draw_free_leaf(a) {
            return None;
        }
        let size = bsize - occ + occ * asize;
        let prims = bprims + occ * aprims;
        if size < 2 || prims < 1 || size > MAX_REGION_OPS {
            return None;
        }
        let region = self.inline_call_region(body, a);
        let dst = self.emit(COp::Spec { body: region });
        self.certify(id, dst, CertKind::SpecCall { callee: g });
        Some(dst)
    }

    /// Counts `Local(0)` leaves in a region-legal callee body; `None` if
    /// any other `Local` appears (the body would capture an environment
    /// the call site does not have).
    fn count_param_leaves(&self, id: CodeId) -> Option<usize> {
        match self.src_op(id) {
            COp::Local(0) => Some(1),
            COp::Local(_) => None,
            COp::Global(_) | COp::Int(_) | COp::Char(_) | COp::Str(_) | COp::Con { n: 0, .. } => {
                Some(0)
            }
            COp::Prim1 { a, .. } => self.count_param_leaves(a),
            COp::Prim2 { a, b, .. } | COp::Seq { a, b } => {
                Some(self.count_param_leaves(a)? + self.count_param_leaves(b)?)
            }
            _ => None,
        }
    }

    /// A draw-free leaf: safe to duplicate without touching the §3.5
    /// Seeded draw stream (no prim inside, so no draws ever).
    fn is_draw_free_leaf(&self, id: CodeId) -> bool {
        matches!(
            self.src_op(id),
            COp::Local(_)
                | COp::Global(_)
                | COp::Int(_)
                | COp::Char(_)
                | COp::Str(_)
                | COp::Con { n: 0, .. }
        )
    }

    /// Copies the callee body into the output arena with every `Local(0)`
    /// replaced by a fresh copy of the argument subtree. Both sides are
    /// region-legal, so plain structural recursion suffices; the argument
    /// keeps its own `Local` indices (it executes in the allocation-site
    /// environment, which is exactly the suspended thunk's).
    fn inline_call_region(&mut self, body: CodeId, arg: CodeId) -> CodeId {
        match self.src_op(body) {
            COp::Local(0) => self.go(arg, Ctx::Region),
            COp::Prim1 { op, a } => {
                let a2 = self.inline_call_region(a, arg);
                self.emit(COp::Prim1 { op, a: a2 })
            }
            COp::Prim2 { op, a, b } => {
                let a2 = self.inline_call_region(a, arg);
                let b2 = self.inline_call_region(b, arg);
                self.emit(COp::Prim2 { op, a: a2, b: b2 })
            }
            COp::Seq { a, b } => {
                let a2 = self.inline_call_region(a, arg);
                let b2 = self.inline_call_region(b, arg);
                self.emit(COp::Seq { a: a2, b: b2 })
            }
            _ => self.go(body, Ctx::Region),
        }
    }

    /// The statically known value of a scrutinee op, if any.
    fn static_value(&self, id: CodeId) -> Option<StaticVal> {
        match self.src_op(id) {
            COp::Int(n) => Some(StaticVal::Int(n)),
            COp::Char(c) => Some(StaticVal::Char(c)),
            COp::Str(s) => Some(StaticVal::Str(self.src_str(s).clone())),
            COp::Con { tag, n: 0, .. } => Some(StaticVal::Con0(tag)),
            COp::Global(g) => {
                let fact = self.facts.globals.get(g as usize)?;
                if !fact.whnf_safe {
                    return None;
                }
                // Same licence shape as `const_literal`: the source body
                // must already be the literal the fact claims.
                let (_, entry) = self.src.globals[g as usize];
                match (self.src_op(entry), fact.value.as_ref()?) {
                    (COp::Int(_), FactVal::Int(n)) => Some(StaticVal::Int(*n)),
                    (COp::Char(_), FactVal::Char(c)) => Some(StaticVal::Char(*c)),
                    (COp::Str(_), FactVal::Str(s)) => Some(StaticVal::Str(Arc::from(&**s))),
                    _ => None,
                }
            }
            _ => None,
        }
    }

    /// Case-of-known-constructor: if the scrutinee's value is static and
    /// the first matching arm binds nothing, the whole case reduces to
    /// that arm's right-hand side at compile time. Discarding the
    /// scrutinee is licensed because static values cannot raise (and a
    /// constant global is WHNF-safe by its fact). A non-matching sweep
    /// stays dynamic so the runtime `PatternMatchFail` survives.
    fn try_fold_case(&self, id: CodeId) -> Option<(u32, CodeId)> {
        let COp::Case { scrut, arms_at, n } = self.src_op(id) else {
            return None;
        };
        let v = self.static_value(scrut)?;
        for i in 0..u32::from(n) {
            let arm = self.src_arm(arms_at + i);
            let matched = match (arm.pat, &v) {
                (crate::code::CPat::Default, _) => true,
                (crate::code::CPat::Int(a), StaticVal::Int(b)) => a == *b,
                (crate::code::CPat::Char(a), StaticVal::Char(b)) => a == *b,
                (crate::code::CPat::Str(si), StaticVal::Str(s)) => **self.src_str(si) == **s,
                (crate::code::CPat::Con(c), StaticVal::Con0(d)) => c == *d,
                _ => false,
            };
            if matched {
                // An arm that binds (scrutinee fields or the scrutinee
                // itself) would change the rhs's environment depth —
                // keep the dispatch dynamic.
                return (arm.binders == 0 && !arm.bind_scrut).then_some((i, arm.rhs));
            }
        }
        None
    }

    /// Copies one op, recursing into children with the contexts their
    /// positions dictate. `ctx` only matters as `Region` (inside a fused
    /// region, children stay region elements and nothing wraps).
    fn copy_op(&mut self, id: CodeId, ctx: Ctx) -> CodeId {
        let in_region = ctx == Ctx::Region;
        match self.src_op(id) {
            COp::Local(back) => self.emit(COp::Local(back)),
            COp::Global(g) => self.emit(COp::Global(g)),
            COp::Int(n) => self.emit(COp::Int(n)),
            COp::Char(c) => self.emit(COp::Char(c)),
            COp::Str(s) => {
                let s = self.src_str(s).clone();
                let i = self.intern(&s);
                self.emit(COp::Str(i))
            }
            COp::Con { tag, args, n } => {
                let fields: Vec<CodeId> = (0..u32::from(n))
                    .map(|i| self.go(self.src_kid(args + i), Ctx::Lazy))
                    .collect();
                let args2 = self.out.kids.len() as u32;
                self.out.kids.extend(fields);
                self.emit(COp::Con {
                    tag,
                    args: args2,
                    n,
                })
            }
            COp::App { f, a } => {
                // A known-global callee (that is not being constant-
                // substituted) gets a monomorphic inline-cache slot.
                let ic_callee = match self.src_op(f) {
                    COp::Global(g) if !in_region => (self.const_literal(g).is_none()).then_some(g),
                    _ => None,
                };
                if let Some(g) = ic_callee {
                    let f2 = self.emit(COp::Global(g));
                    let a2 = self.go(a, Ctx::Lazy);
                    let ic = self.ic_slots;
                    self.ic_slots += 1;
                    let dst = self.emit(COp::AppG { f: f2, ic, a: a2 });
                    self.certify(id, dst, CertKind::AppG { callee: g, ic });
                    dst
                } else {
                    let f2 = self.go(f, Ctx::Strict);
                    let a2 = self.go(a, Ctx::Lazy);
                    self.emit(COp::App { f: f2, a: a2 })
                }
            }
            COp::Lam { body } => {
                let body2 = self.go(body, Ctx::Strict);
                self.emit(COp::Lam { body: body2 })
            }
            COp::Let { rhs, body } => {
                let rhs2 = self.go(rhs, Ctx::Lazy);
                let body2 = self.go(body, Ctx::Strict);
                self.emit(COp::Let {
                    rhs: rhs2,
                    body: body2,
                })
            }
            COp::LetRec { rhss, n, body } => {
                // Recursive right-hand sides are copied under Strict —
                // a Fused wrapper under the group's thunk forces
                // atomically with the same §3.3 poisoning — but never
                // Spec: speculating a self-referential binding at
                // allocation time would read its own unfinished knot.
                let rhss2: Vec<CodeId> = (0..u32::from(n))
                    .map(|i| self.go(self.src_kid(rhss + i), Ctx::Strict))
                    .collect();
                let body2 = self.go(body, Ctx::Strict);
                let rhss_at = self.out.kids.len() as u32;
                self.out.kids.extend(rhss2);
                self.emit(COp::LetRec {
                    rhss: rhss_at,
                    n,
                    body: body2,
                })
            }
            COp::Case { scrut, arms_at, n } => {
                let scrut2 = self.go(scrut, Ctx::Strict);
                let arms2: Vec<CArm> = (0..u32::from(n))
                    .map(|i| {
                        let arm = self.src_arm(arms_at + i);
                        let pat = match arm.pat {
                            crate::code::CPat::Str(si) => {
                                let s = self.src_str(si).clone();
                                crate::code::CPat::Str(self.intern(&s))
                            }
                            other => other,
                        };
                        CArm {
                            pat,
                            rhs: self.go(arm.rhs, Ctx::Strict),
                            binders: arm.binders,
                            bind_scrut: arm.bind_scrut,
                        }
                    })
                    .collect();
                let arms_at2 = self.out.arms.len() as u32;
                self.out.arms.extend(arms2);
                self.emit(COp::Case {
                    scrut: scrut2,
                    arms_at: arms_at2,
                    n,
                })
            }
            COp::Prim1 { op, a } => {
                let a2 = self.go(a, if in_region { Ctx::Region } else { Ctx::Strict });
                self.emit(COp::Prim1 { op, a: a2 })
            }
            COp::Prim2 { op, a, b } => {
                let c = if in_region { Ctx::Region } else { Ctx::Strict };
                let a2 = self.go(a, c);
                let b2 = self.go(b, c);
                self.emit(COp::Prim2 { op, a: a2, b: b2 })
            }
            COp::Seq { a, b } => {
                let c = if in_region { Ctx::Region } else { Ctx::Strict };
                let a2 = self.go(a, c);
                let b2 = self.go(b, c);
                self.emit(COp::Seq { a: a2, b: b2 })
            }
            COp::MapExn { f, a } => {
                let f2 = self.go(f, Ctx::Strict);
                let a2 = self.go(a, Ctx::Strict);
                self.emit(COp::MapExn { f: f2, a: a2 })
            }
            COp::IsExn { a } => {
                let a2 = self.go(a, Ctx::Strict);
                self.emit(COp::IsExn { a: a2 })
            }
            COp::GetExn { a } => {
                let a2 = self.go(a, Ctx::Strict);
                self.emit(COp::GetExn { a: a2 })
            }
            COp::Raise { a } => {
                let a2 = self.go(a, Ctx::Strict);
                self.emit(COp::Raise { a: a2 })
            }
            COp::Fused { .. } | COp::Spec { .. } | COp::AppG { .. } => {
                unreachable!("tier-2 ops in a tier-1 source image")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::compile_program;
    use crate::machine::{Machine, MachineConfig, Outcome};
    use crate::{MEnv, OrderPolicy};
    use std::rc::Rc;
    use urk_syntax::{desugar_expr, desugar_program, parse_expr_src, parse_program, DataEnv};

    fn compile_src(src: &str) -> (DataEnv, Code) {
        let mut data = DataEnv::new();
        let prog =
            desugar_program(&parse_program(src).expect("parses"), &mut data).expect("desugars");
        let code = compile_program(&prog.binds);
        (data, code)
    }

    fn count_kinds(code: &Code) -> [usize; crate::coverage::OP_KINDS] {
        let mut counts = [0usize; crate::coverage::OP_KINDS];
        for op in &code.buf.ops {
            counts[op.kind_index() as usize] += 1;
        }
        counts
    }

    fn render_with(code: Arc<Code>, data: &DataEnv, query: &str, config: MachineConfig) -> String {
        let mut m = Machine::new(config);
        m.link_code(code);
        let e = desugar_expr(&parse_expr_src(query).expect("parses"), data).expect("desugars");
        match m.eval_code_expr(&e, false).expect("no machine error") {
            Outcome::Value(n) => m.render(n, 32),
            Outcome::Caught(e) | Outcome::Uncaught(e) => format!("(raise {e})"),
        }
    }

    fn tree_render(src: &str, query: &str) -> String {
        let mut data = DataEnv::new();
        let prog =
            desugar_program(&parse_program(src).expect("parses"), &mut data).expect("desugars");
        let mut m = Machine::new(MachineConfig::default());
        let env = m.bind_recursive(&prog.binds, &MEnv::empty());
        let e = desugar_expr(&parse_expr_src(query).expect("parses"), &data).expect("desugars");
        match m.eval(Rc::new(e), &env, false).expect("no machine error") {
            Outcome::Value(n) => m.render(n, 32),
            Outcome::Caught(e) | Outcome::Uncaught(e) => format!("(raise {e})"),
        }
    }

    #[test]
    fn optimized_images_verify_and_are_tagged() {
        let (_, code) = compile_src(
            "f x = x * x + 1\n\
             g n = if n == 0 then 0 else g (n - 1) + f n\n\
             main = g 5",
        );
        let t2 = tier2_optimize(&code, &Tier2Facts::empty());
        assert!(t2.is_tier2());
        t2.verify().expect("tier-2 image verifies");
        let counts = count_kinds(&t2);
        assert!(counts[18] > 0, "expected fused regions: {counts:?}");
        assert!(counts[20] > 0, "expected inline-cached calls: {counts:?}");
        assert_eq!(t2.ic_slot_count() as usize, counts[20]);
    }

    #[test]
    fn speculation_sites_cover_lazy_value_forms_and_prim_regions() {
        let (_, code) = compile_src(
            "pair a b = Pair a b\n\
             main = let k = \\y -> y + 1 in let s = 2 * 3 + 1 in pair (k 1) s",
        );
        let t2 = tier2_optimize(&code, &Tier2Facts::empty());
        t2.verify().expect("verifies");
        let counts = count_kinds(&t2);
        assert!(counts[19] > 0, "expected speculation sites: {counts:?}");
    }

    #[test]
    fn constant_substitution_requires_the_full_licence() {
        let (_, code) = compile_src("k = 42\nmain = k + 1");
        // No facts: the global load survives.
        let t2 = tier2_optimize(&code, &Tier2Facts::empty());
        assert!(count_kinds(&t2)[1] > 0, "global load should survive");
        // A licensed literal fact substitutes the fact's value.
        let facts = Tier2Facts {
            globals: vec![
                GlobalFact {
                    whnf_safe: true,
                    value: Some(FactVal::Int(42)),
                    demands: Vec::new(),
                },
                GlobalFact::default(),
            ],
        };
        let t2 = tier2_optimize(&code, &facts);
        t2.verify().expect("verifies");
        let main_entry = t2.globals[1].1;
        // main's body became Fused{42 + 1} — no Global op anywhere in it.
        assert!(
            !t2.buf.ops[..=main_entry.0 as usize]
                .iter()
                .any(|op| matches!(op, COp::Global(0))),
            "constant global should be substituted"
        );
        // Without whnf_safe the value is not licensed.
        let unsafe_facts = Tier2Facts {
            globals: vec![GlobalFact {
                whnf_safe: false,
                value: Some(FactVal::Int(42)),
                demands: Vec::new(),
            }],
        };
        let t2 = tier2_optimize(&code, &unsafe_facts);
        assert!(count_kinds(&t2)[1] > 0, "unlicensed const must not fold");
    }

    #[test]
    fn case_of_known_constructor_folds_and_dynamic_cases_survive() {
        let (_, code) = compile_src(
            "main = case True of { True -> 1; False -> 2 }\n\
             dyn x = case x of { True -> 1; False -> 2 }",
        );
        let t2 = tier2_optimize(&code, &Tier2Facts::empty());
        t2.verify().expect("verifies");
        let counts = count_kinds(&t2);
        // main's case folded away; dyn's stayed.
        assert_eq!(counts[10], 1, "one dynamic case should remain: {counts:?}");
    }

    #[test]
    fn binding_arms_are_never_folded() {
        let (data, code) = compile_src("main = case Just 3 of { Just v -> v; Nothing -> 0 }");
        let t2 = tier2_optimize(&code, &Tier2Facts::empty());
        t2.verify().expect("verifies");
        // Just 3 is not a nullary constructor — no static value, no fold.
        assert_eq!(count_kinds(&t2)[10], 1);
        assert_eq!(
            render_with(Arc::new(t2), &data, "main", MachineConfig::default()),
            "3"
        );
    }

    #[test]
    fn tier2_agrees_with_the_tree_machine_on_a_smoke_corpus() {
        let progs: &[(&str, &str)] = &[
            (
                "fib n = if n < 2 then n else fib (n - 1) + fib (n - 2)",
                "fib 12",
            ),
            (
                "sumTo n acc = if n == 0 then acc else sumTo (n - 1) (acc + n)",
                "sumTo 500 0",
            ),
            ("main = let x = 1/0 in 42", "main"),
            ("main = (1/0) + 2", "main"),
            (
                "k = 42\nmain = case k of { 42 -> \"yes\"; n -> \"no\" }",
                "main",
            ),
            (
                "len xs = case xs of { [] -> 0; y:ys -> 1 + len ys }\n\
                 mk n = if n == 0 then [] else n : mk (n - 1)",
                "len (mk 40)",
            ),
            ("main = seq (unsafeIsException (1/0)) (2 * 3 + 4)", "main"),
        ];
        for (prog, query) in progs {
            let (data, code) = compile_src(prog);
            let t2 = Arc::new(tier2_optimize(&code, &Tier2Facts::empty()));
            t2.verify().expect("verifies");
            assert_eq!(
                tree_render(prog, query),
                render_with(t2.clone(), &data, query, MachineConfig::default()),
                "{query}"
            );
        }
    }

    #[test]
    fn seeded_runs_stay_in_lockstep_with_the_tree_backend() {
        let prog = "both a b = a + b\nmain = both ((1/0) + raise (UserError \"a\")) (2 - raise (UserError \"b\"))";
        let (data, code) = compile_src(prog);
        let t2 = Arc::new(tier2_optimize(&code, &Tier2Facts::empty()));
        for seed in 0..16u64 {
            let config = MachineConfig {
                order: OrderPolicy::Seeded(seed),
                ..MachineConfig::default()
            };
            let mut data2 = DataEnv::new();
            let prog2 = desugar_program(&parse_program(prog).expect("parses"), &mut data2)
                .expect("desugars");
            let mut tm = Machine::new(config.clone());
            let env = tm.bind_recursive(&prog2.binds, &MEnv::empty());
            let e =
                desugar_expr(&parse_expr_src("main").expect("parses"), &data2).expect("desugars");
            let tree = match tm.eval(Rc::new(e), &env, false).expect("no machine error") {
                Outcome::Value(n) => tm.render(n, 32),
                Outcome::Caught(e) | Outcome::Uncaught(e) => format!("(raise {e})"),
            };
            assert_eq!(
                tree,
                render_with(t2.clone(), &data, "main", config),
                "seed {seed}"
            );
        }
    }
}
