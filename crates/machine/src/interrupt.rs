//! Real asynchronous exception delivery (§5.1, beyond the step schedule).
//!
//! [`MachineConfig::event_schedule`](crate::MachineConfig::event_schedule)
//! injects asynchronous exceptions at *deterministic step counts* — perfect
//! for reproducible tests, useless for a production embedding where a
//! watchdog thread or a serving frontend must cancel an evaluation at a
//! *wall-clock* deadline. An [`InterruptHandle`] is the bridge: a cloneable,
//! thread-safe cell that any thread may arm with an asynchronous exception,
//! and that the machine loop polls with a single relaxed atomic load per
//! step (no allocation, no branch beyond the load's zero check).
//!
//! Delivery follows the paper's §5.1 story exactly: the pending exception is
//! raised as an *asynchronous* exception, so the stack trim restores every
//! in-flight thunk to a resumable suspension rather than poisoning it — the
//! interrupted work can be re-entered later and still produce its value.
//!
//! Only asynchronous exceptions can be delivered this way: a synchronous
//! exception is part of an expression's denotation and cannot arrive from
//! outside without breaking the semantics. Injecting an asynchronous one can
//! only *add* members to the set of behaviours the semantics already allows
//! — which is what makes external cancellation sound (§5.1).

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use urk_syntax::Exception;

/// A cloneable, thread-safe asynchronous-exception cell.
///
/// The empty state is encoded as `0`; a pending exception is stored as its
/// [`Exception::nullary_index`] plus one (every asynchronous exception is
/// payload-free, so this covers them all). Orderings are `Relaxed`
/// throughout: the cell synchronises nothing but itself — the machine only
/// needs to *eventually* observe a delivery, exactly like a signal flag.
///
/// # Examples
///
/// ```
/// use urk_machine::InterruptHandle;
/// use urk_syntax::Exception;
///
/// let h = InterruptHandle::new();
/// let watchdog = h.clone();
/// assert!(watchdog.deliver(Exception::Timeout));
/// assert_eq!(h.take(), Some(Exception::Timeout));
/// assert_eq!(h.take(), None);
/// ```
#[derive(Clone, Debug, Default)]
pub struct InterruptHandle {
    cell: Arc<AtomicU8>,
}

impl InterruptHandle {
    /// A fresh, unarmed handle.
    pub fn new() -> InterruptHandle {
        InterruptHandle::default()
    }

    /// Arms the cell with an asynchronous exception. Returns `false` (and
    /// delivers nothing) for a synchronous exception — those belong to the
    /// denotation and may not be injected from outside. A later delivery
    /// overwrites an earlier undelivered one; the machine raises whichever
    /// it observes first.
    pub fn deliver(&self, e: Exception) -> bool {
        if !e.is_asynchronous() {
            return false;
        }
        let idx = e
            .nullary_index()
            .expect("asynchronous exceptions are payload-free");
        self.cell.store(idx + 1, Ordering::Relaxed);
        true
    }

    /// True if an exception is armed but not yet taken. One relaxed load —
    /// this is the machine's per-step poll.
    #[inline]
    pub fn is_pending(&self) -> bool {
        self.cell.load(Ordering::Relaxed) != 0
    }

    /// Takes the pending exception, disarming the cell.
    pub fn take(&self) -> Option<Exception> {
        match self.cell.swap(0, Ordering::Relaxed) {
            0 => None,
            n => Some(Exception::nullary_constructors()[(n - 1) as usize].clone()),
        }
    }

    /// Disarms the cell without reading it (e.g. when a request finishes
    /// before its watchdog fires, so the stale deadline cannot leak into
    /// the next evaluation on the same machine).
    pub fn clear(&self) {
        self.cell.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_round_trips_every_asynchronous_exception() {
        let h = InterruptHandle::new();
        for e in Exception::nullary_constructors() {
            if !e.is_asynchronous() {
                continue;
            }
            assert!(h.deliver(e.clone()));
            assert!(h.is_pending());
            assert_eq!(h.take(), Some(e));
            assert!(!h.is_pending());
        }
    }

    #[test]
    fn synchronous_exceptions_are_refused() {
        let h = InterruptHandle::new();
        assert!(!h.deliver(Exception::DivideByZero));
        assert!(!h.deliver(Exception::UserError("Urk".into())));
        assert!(!h.is_pending());
        assert_eq!(h.take(), None);
    }

    #[test]
    fn clones_share_the_cell_across_threads() {
        let h = InterruptHandle::new();
        let remote = h.clone();
        let t = std::thread::spawn(move || remote.deliver(Exception::Interrupt));
        assert!(t.join().expect("no panic"));
        assert_eq!(h.take(), Some(Exception::Interrupt));
    }

    #[test]
    fn clear_disarms_a_stale_delivery() {
        let h = InterruptHandle::new();
        h.deliver(Exception::Timeout);
        h.clear();
        assert_eq!(h.take(), None);
    }

    #[test]
    fn later_delivery_overwrites_earlier() {
        let h = InterruptHandle::new();
        h.deliver(Exception::Timeout);
        h.deliver(Exception::Interrupt);
        assert_eq!(h.take(), Some(Exception::Interrupt));
    }
}
