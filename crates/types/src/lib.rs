//! # urk-types
//!
//! Hindley–Milner type inference for the Urk core language, including the
//! paper's typed primitives (`raise :: Exception -> a`,
//! `getException :: a -> IO (ExVal a)`, `mapException`, `seq`) and checking
//! of user type signatures by skolemization.
//!
//! # Examples
//!
//! ```
//! use urk_syntax::{parse_expr_src, desugar_expr, DataEnv};
//! use urk_types::{infer_expr, Type};
//! use std::collections::HashMap;
//!
//! let env = DataEnv::new();
//! let e = desugar_expr(&parse_expr_src("1 + 2")?, &env)?;
//! let t = infer_expr(&e, &env, &HashMap::new()).expect("types");
//! assert_eq!(t, Type::Int);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod infer;
pub mod ty;

pub use infer::{infer_expr, infer_program, Inferencer, TypeError};
pub use ty::{Scheme, TyVar, Type};

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use urk_syntax::{desugar_expr, desugar_program, parse_expr_src, parse_program, DataEnv};

    fn ty_of(src: &str) -> Result<Type, TypeError> {
        let env = DataEnv::new();
        let e = desugar_expr(&parse_expr_src(src).expect("parses"), &env).expect("desugars");
        infer_expr(&e, &env, &HashMap::new())
    }

    fn ty_str(src: &str) -> String {
        ty_of(src).expect("types").to_string()
    }

    fn program_types(src: &str) -> Result<HashMap<String, String>, TypeError> {
        let mut env = DataEnv::new();
        let prog =
            desugar_program(&parse_program(src).expect("parses"), &mut env).expect("desugars");
        let schemes = infer_program(&prog, &env)?;
        Ok(schemes
            .into_iter()
            .map(|(k, v)| (k.as_str(), v.ty.to_string()))
            .collect())
    }

    #[test]
    fn literals_and_arithmetic() {
        assert_eq!(ty_str("1 + 2 * 3"), "Int");
        assert_eq!(ty_str("'a'"), "Char");
        assert_eq!(ty_str("\"hi\""), "Str");
        assert_eq!(ty_str("1 < 2"), "Bool");
    }

    #[test]
    fn lambda_and_application() {
        assert_eq!(ty_str(r"\x -> x"), "a -> a");
        assert_eq!(ty_str(r"(\x -> x + 1) 3"), "Int");
        assert_eq!(ty_str(r"\f x -> f (f x)"), "(a -> a) -> a -> a");
    }

    #[test]
    fn raise_is_polymorphic_in_its_result() {
        // §3.1: raise :: Exception -> a, so a raise can sit anywhere.
        assert_eq!(ty_str("1 + raise DivideByZero"), "Int");
        assert_eq!(ty_str(r#"raise (UserError "Urk")"#), "a");
        // And the argument must be an Exception:
        assert!(ty_of("raise 3").is_err());
    }

    #[test]
    fn get_exception_has_the_io_type_of_section_3_5() {
        // getException :: a -> IO (ExVal a)
        assert_eq!(ty_str("getException (1 + 2)"), "IO (ExVal Int)");
        assert_eq!(ty_str(r"\x -> getException x"), "a -> IO (ExVal a)");
    }

    #[test]
    fn map_exception_is_pure() {
        // §5.4: mapException :: (Exception -> Exception) -> a -> a
        assert_eq!(
            ty_str(r#"mapException (\x -> UserError "Urk") (1 / 0)"#),
            "Int"
        );
    }

    #[test]
    fn io_bind_types_check() {
        assert_eq!(ty_str(r"getChar >>= \c -> putChar c"), "IO Unit");
        assert_eq!(ty_str("do { c <- getChar; return c }"), "IO Char");
        // Mis-typed continuation:
        assert!(ty_of(r"getChar >>= \c -> c + 1").is_err());
    }

    #[test]
    fn occurs_check_fires() {
        assert!(ty_of(r"\x -> x x").is_err());
    }

    #[test]
    fn let_polymorphism() {
        assert_eq!(
            ty_str(r"let id = \x -> x in (id 1, id 'c')"),
            "Pair Int Char"
        );
    }

    #[test]
    fn case_alternatives_must_agree() {
        assert!(ty_of("case True of { True -> 1; False -> 'c' }").is_err());
        assert_eq!(ty_str("case True of { True -> 1; False -> 2 }"), "Int");
    }

    #[test]
    fn case_binders_are_typed_from_the_constructor() {
        assert_eq!(
            ty_str("case Just 3 of { Just n -> n + 1; Nothing -> 0 }"),
            "Int"
        );
        // Scrutinising an Int list as a Maybe fails.
        assert!(ty_of("case [1] of { Just n -> n; Nothing -> 0 }").is_err());
    }

    #[test]
    fn recursive_program_types() {
        let tys = program_types("len [] = 0\nlen (x:xs) = 1 + len xs").expect("types");
        assert_eq!(tys["len"], "[a] -> Int");
    }

    #[test]
    fn mutual_recursion() {
        let tys = program_types(
            "isEven n = if n == 0 then True else isOdd (n - 1)\n\
             isOdd n = if n == 0 then False else isEven (n - 1)",
        )
        .expect("types");
        assert_eq!(tys["isEven"], "Int -> Bool");
        assert_eq!(tys["isOdd"], "Int -> Bool");
    }

    #[test]
    fn signatures_accepted_and_rejected() {
        // Matching signature.
        assert!(program_types("f :: Int -> Int\nf x = x + 0").is_ok());
        // Restricting signature (more specific than inferred) is accepted.
        assert!(program_types("g :: Int -> Int\ng x = x").is_ok());
        // Over-general signature must be rejected.
        assert!(program_types("h :: a -> b\nh x = x").is_err());
        // Flatly wrong signature.
        assert!(program_types("k :: Int -> Bool\nk x = x + 1").is_err());
    }

    #[test]
    fn exceptions_are_ordinary_data() {
        // Exception is scrutinable like any algebraic type (§3.1).
        assert_eq!(
            ty_str("case DivideByZero of { DivideByZero -> 0; UserError s -> strLen s; _ -> 1 }"),
            "Int"
        );
    }

    #[test]
    fn exval_scrutiny_types() {
        assert_eq!(ty_str("case OK 3 of { OK v -> v; Bad e -> 0 }"), "Int");
    }

    #[test]
    fn unbound_variable_is_reported() {
        let err = ty_of("zorp + 1").expect_err("should fail");
        assert!(err.0.contains("zorp"));
    }

    #[test]
    fn user_data_declarations_are_typed() {
        let tys = program_types(
            "data Tree a = Leaf | Node (Tree a) a (Tree a)\n\
             depth Leaf = 0\n\
             depth (Node l x r) = 1 + max2 (depth l) (depth r)\n\
             max2 a b = if a < b then b else a",
        )
        .expect("types");
        assert_eq!(tys["depth"], "Tree a -> Int");
    }

    #[test]
    fn seq_is_polymorphic() {
        assert_eq!(ty_str("seq (1/0) 'x'"), "Char");
    }

    #[test]
    fn unsafe_is_exception_types() {
        assert_eq!(ty_str("unsafeIsException (1/0)"), "Bool");
    }
}
