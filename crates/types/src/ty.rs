//! Types, type schemes, and pretty-printing.

use std::collections::BTreeSet;
use std::fmt;

use urk_syntax::Symbol;

/// A unification variable.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TyVar(pub u32);

/// A monotype.
#[derive(Clone, PartialEq, Debug)]
pub enum Type {
    /// A unification (or quantified) variable.
    Var(TyVar),
    /// A rigid skolem constant, used when checking user signatures.
    Skolem(u32),
    Int,
    Char,
    Str,
    /// `a -> b`.
    Fun(Box<Type>, Box<Type>),
    /// An applied type constructor: `Bool`, `List a`, `IO a`, `ExVal a`, ...
    Con(Symbol, Vec<Type>),
}

impl Type {
    /// `a -> b` as a convenience constructor.
    pub fn fun(a: Type, b: Type) -> Type {
        Type::Fun(Box::new(a), Box::new(b))
    }

    /// A nullary type constructor.
    pub fn con0(name: &str) -> Type {
        Type::Con(Symbol::intern(name), vec![])
    }

    /// `Bool`.
    pub fn bool() -> Type {
        Type::con0("Bool")
    }

    /// `Exception`.
    pub fn exception() -> Type {
        Type::con0("Exception")
    }

    /// `IO t`.
    pub fn io(t: Type) -> Type {
        Type::Con(Symbol::intern("IO"), vec![t])
    }

    /// `List t`.
    pub fn list(t: Type) -> Type {
        Type::Con(Symbol::intern("List"), vec![t])
    }

    /// `ExVal t`.
    pub fn exval(t: Type) -> Type {
        Type::Con(Symbol::intern("ExVal"), vec![t])
    }

    /// The free unification variables.
    pub fn free_vars(&self) -> BTreeSet<TyVar> {
        let mut out = BTreeSet::new();
        self.free_vars_into(&mut out);
        out
    }

    pub(crate) fn free_vars_into(&self, out: &mut BTreeSet<TyVar>) {
        match self {
            Type::Var(v) => {
                out.insert(*v);
            }
            Type::Int | Type::Char | Type::Str | Type::Skolem(_) => {}
            Type::Fun(a, b) => {
                a.free_vars_into(out);
                b.free_vars_into(out);
            }
            Type::Con(_, args) => {
                for a in args {
                    a.free_vars_into(out);
                }
            }
        }
    }

    /// True if the type mentions any skolem constant.
    pub fn has_skolem(&self) -> bool {
        match self {
            Type::Skolem(_) => true,
            Type::Var(_) | Type::Int | Type::Char | Type::Str => false,
            Type::Fun(a, b) => a.has_skolem() || b.has_skolem(),
            Type::Con(_, args) => args.iter().any(Type::has_skolem),
        }
    }
}

/// A polytype `forall vars. ty`.
#[derive(Clone, PartialEq, Debug)]
pub struct Scheme {
    pub vars: Vec<TyVar>,
    pub ty: Type,
}

impl Scheme {
    /// A scheme with no quantified variables.
    pub fn mono(ty: Type) -> Scheme {
        Scheme { vars: vec![], ty }
    }
}

fn var_name(index: usize) -> String {
    let letter = (b'a' + (index % 26) as u8) as char;
    let suffix = index / 26;
    if suffix == 0 {
        letter.to_string()
    } else {
        format!("{letter}{suffix}")
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Collect variables in first-appearance order for stable letters.
        let mut order = Vec::new();
        collect_order(self, &mut order);
        fmt_ty(self, &order, 0, f)
    }
}

fn collect_order(t: &Type, order: &mut Vec<TyVar>) {
    match t {
        Type::Var(v) if !order.contains(v) => order.push(*v),
        Type::Fun(a, b) => {
            collect_order(a, order);
            collect_order(b, order);
        }
        Type::Con(_, args) => args.iter().for_each(|a| collect_order(a, order)),
        _ => {}
    }
}

fn fmt_ty(t: &Type, order: &[TyVar], prec: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match t {
        Type::Var(v) => {
            let idx = order.iter().position(|x| x == v).unwrap_or(0);
            write!(f, "{}", var_name(idx))
        }
        Type::Skolem(n) => write!(f, "!{n}"),
        Type::Int => f.write_str("Int"),
        Type::Char => f.write_str("Char"),
        Type::Str => f.write_str("Str"),
        Type::Fun(a, b) => {
            if prec > 0 {
                f.write_str("(")?;
            }
            fmt_ty(a, order, 1, f)?;
            f.write_str(" -> ")?;
            fmt_ty(b, order, 0, f)?;
            if prec > 0 {
                f.write_str(")")?;
            }
            Ok(())
        }
        Type::Con(name, args) => {
            if name.as_str() == "List" && args.len() == 1 {
                f.write_str("[")?;
                fmt_ty(&args[0], order, 0, f)?;
                return f.write_str("]");
            }
            if args.is_empty() {
                return write!(f, "{name}");
            }
            if prec > 1 {
                f.write_str("(")?;
            }
            write!(f, "{name}")?;
            for a in args {
                f.write_str(" ")?;
                fmt_ty(a, order, 2, f)?;
            }
            if prec > 1 {
                f.write_str(")")?;
            }
            Ok(())
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.ty.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_stable_letters() {
        let a = Type::Var(TyVar(42));
        let b = Type::Var(TyVar(7));
        let t = Type::fun(a.clone(), Type::fun(b, a));
        assert_eq!(t.to_string(), "a -> b -> a");
    }

    #[test]
    fn display_lists_and_applications() {
        let t = Type::fun(Type::list(Type::Int), Type::io(Type::exval(Type::Int)));
        assert_eq!(t.to_string(), "[Int] -> IO (ExVal Int)");
    }

    #[test]
    fn function_arguments_are_parenthesised() {
        let t = Type::fun(Type::fun(Type::Int, Type::Int), Type::Int);
        assert_eq!(t.to_string(), "(Int -> Int) -> Int");
    }

    #[test]
    fn free_vars_and_skolems() {
        let t = Type::fun(Type::Var(TyVar(1)), Type::Skolem(0));
        assert_eq!(t.free_vars().len(), 1);
        assert!(t.has_skolem());
        assert!(!Type::Int.has_skolem());
    }
}
