//! Hindley–Milner type inference (Algorithm W with an in-place
//! substitution) over the core language.
//!
//! The paper's primitives get the types of §3.1/§3.5:
//!
//! ```text
//! raise        :: Exception -> a
//! getException :: a -> IO (ExVal a)
//! mapException :: (Exception -> Exception) -> a -> a
//! ```
//!
//! `IO`'s constructors are typed as primitives (`Bind`'s real data-type
//! would need an existential), matching §4.4's reading of `IO` as an
//! algebraic data type at the *semantic* level only.

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use urk_syntax::ast::SType;
use urk_syntax::core::{Alt, AltCon, CoreProgram, Expr, PrimOp};
use urk_syntax::{ConInfo, DataEnv, Symbol};

use crate::ty::{Scheme, TyVar, Type};

/// A type error with a human-readable message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TypeError(pub String);

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error: {}", self.0)
    }
}

impl std::error::Error for TypeError {}

/// The inference engine.
pub struct Inferencer<'a> {
    data: &'a DataEnv,
    subst: HashMap<TyVar, Type>,
    next: u32,
    /// Lexically scoped term variables.
    scopes: Vec<(Symbol, Scheme)>,
    next_skolem: u32,
}

/// Infers a scheme for every top-level binding of `prog`, then checks user
/// signatures.
///
/// The top level is split into strongly connected binding groups
/// (dependency analysis, as in Haskell), so that a function is polymorphic
/// in the groups *after* its own: without this, monomorphic recursion
/// would force e.g. every use of `foldl` across the Prelude to one type.
///
/// # Errors
///
/// Returns the first [`TypeError`] encountered.
pub fn infer_program(
    prog: &CoreProgram,
    data: &DataEnv,
) -> Result<HashMap<Symbol, Scheme>, TypeError> {
    let mut inf = Inferencer::new(data);
    let mut out = HashMap::new();
    for group in binding_groups(&prog.binds) {
        let binds: Vec<(Symbol, std::rc::Rc<Expr>)> =
            group.iter().map(|&i| prog.binds[i].clone()).collect();
        let tys = inf.infer_letrec_group(&binds)?;
        let env_fv = inf.env_free_vars();
        for (name, ty) in tys {
            let scheme = inf.generalize_over(ty, &env_fv);
            inf.scopes.push((name, scheme.clone()));
            out.insert(name, scheme);
        }
    }
    for (name, sig) in &prog.sigs {
        let Some(inferred) = out.get(name) else {
            return Err(TypeError(format!("signature for '{name}' lacks a binding")));
        };
        inf.check_signature(*name, inferred.clone(), sig)?;
    }
    Ok(out)
}

/// Splits bindings into strongly connected components in dependency order
/// (Tarjan's algorithm, iterative).
fn binding_groups(binds: &[(Symbol, std::rc::Rc<Expr>)]) -> Vec<Vec<usize>> {
    let index_of: HashMap<Symbol, usize> = binds
        .iter()
        .enumerate()
        .map(|(i, (n, _))| (*n, i))
        .collect();
    let deps: Vec<Vec<usize>> = binds
        .iter()
        .map(|(_, rhs)| {
            rhs.free_vars()
                .into_iter()
                .filter_map(|v| index_of.get(&v).copied())
                .collect()
        })
        .collect();

    // Iterative Tarjan.
    let n = binds.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    let mut counter = 0usize;

    enum Phase {
        Enter(usize),
        Resume(usize, usize),
    }

    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut work = vec![Phase::Enter(root)];
        while let Some(phase) = work.pop() {
            match phase {
                Phase::Enter(v) => {
                    index[v] = counter;
                    low[v] = counter;
                    counter += 1;
                    stack.push(v);
                    on_stack[v] = true;
                    work.push(Phase::Resume(v, 0));
                }
                Phase::Resume(v, mut i) => {
                    let mut descend = None;
                    while i < deps[v].len() {
                        let w = deps[v][i];
                        i += 1;
                        if index[w] == usize::MAX {
                            descend = Some(w);
                            break;
                        } else if on_stack[w] {
                            low[v] = low[v].min(index[w]);
                        }
                    }
                    match descend {
                        Some(w) => {
                            work.push(Phase::Resume(v, i));
                            work.push(Phase::Enter(w));
                        }
                        None => {
                            if low[v] == index[v] {
                                let mut scc = Vec::new();
                                while let Some(w) = stack.pop() {
                                    on_stack[w] = false;
                                    scc.push(w);
                                    if w == v {
                                        break;
                                    }
                                }
                                scc.sort_unstable();
                                sccs.push(scc);
                            }
                            if let Some(Phase::Resume(parent, _)) = work.last() {
                                let p = *parent;
                                low[p] = low[p].min(low[v]);
                            }
                        }
                    }
                }
            }
        }
    }
    sccs
}

/// Infers the type of a single expression against a global environment.
///
/// # Errors
///
/// Returns the first [`TypeError`] encountered.
pub fn infer_expr(
    e: &Expr,
    data: &DataEnv,
    globals: &HashMap<Symbol, Scheme>,
) -> Result<Type, TypeError> {
    let mut inf = Inferencer::new(data);
    for (name, scheme) in globals {
        inf.scopes.push((*name, scheme.clone()));
    }
    let t = inf.infer(e)?;
    Ok(inf.resolve_deep(&t))
}

impl<'a> Inferencer<'a> {
    pub fn new(data: &'a DataEnv) -> Inferencer<'a> {
        Inferencer {
            data,
            subst: HashMap::new(),
            next: 0,
            scopes: Vec::new(),
            next_skolem: 0,
        }
    }

    fn fresh(&mut self) -> Type {
        let v = TyVar(self.next);
        self.next += 1;
        Type::Var(v)
    }

    // ------------------------------------------------------------------
    // Substitution and unification
    // ------------------------------------------------------------------

    /// Follows the substitution one level.
    fn resolve(&self, t: &Type) -> Type {
        let mut t = t.clone();
        while let Type::Var(v) = t {
            match self.subst.get(&v) {
                Some(next) => t = next.clone(),
                None => return Type::Var(v),
            }
        }
        t
    }

    /// Applies the substitution everywhere.
    fn resolve_deep(&self, t: &Type) -> Type {
        match self.resolve(t) {
            Type::Fun(a, b) => Type::fun(self.resolve_deep(&a), self.resolve_deep(&b)),
            Type::Con(c, args) => Type::Con(c, args.iter().map(|a| self.resolve_deep(a)).collect()),
            other => other,
        }
    }

    fn occurs(&self, v: TyVar, t: &Type) -> bool {
        match self.resolve(t) {
            Type::Var(w) => v == w,
            Type::Fun(a, b) => self.occurs(v, &a) || self.occurs(v, &b),
            Type::Con(_, args) => args.iter().any(|a| self.occurs(v, a)),
            _ => false,
        }
    }

    pub fn unify(&mut self, t1: &Type, t2: &Type) -> Result<(), TypeError> {
        let a = self.resolve(t1);
        let b = self.resolve(t2);
        match (&a, &b) {
            (Type::Var(v), Type::Var(w)) if v == w => Ok(()),
            (Type::Var(v), _) => {
                if self.occurs(*v, &b) {
                    return Err(TypeError(format!(
                        "infinite type: cannot unify {} with {}",
                        self.resolve_deep(&a),
                        self.resolve_deep(&b)
                    )));
                }
                self.subst.insert(*v, b);
                Ok(())
            }
            (_, Type::Var(_)) => self.unify(&b, &a),
            (Type::Int, Type::Int) | (Type::Char, Type::Char) | (Type::Str, Type::Str) => Ok(()),
            (Type::Skolem(m), Type::Skolem(n)) if m == n => Ok(()),
            (Type::Fun(a1, b1), Type::Fun(a2, b2)) => {
                self.unify(a1, a2)?;
                self.unify(b1, b2)
            }
            (Type::Con(c1, args1), Type::Con(c2, args2))
                if c1 == c2 && args1.len() == args2.len() =>
            {
                for (x, y) in args1.iter().zip(args2) {
                    self.unify(x, y)?;
                }
                Ok(())
            }
            _ => Err(TypeError(format!(
                "cannot unify {} with {}",
                self.resolve_deep(&a),
                self.resolve_deep(&b)
            ))),
        }
    }

    // ------------------------------------------------------------------
    // Environment and generalization
    // ------------------------------------------------------------------

    fn lookup(&self, name: Symbol) -> Option<&Scheme> {
        self.scopes
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|(_, s)| s)
    }

    fn instantiate(&mut self, s: &Scheme) -> Type {
        let mapping: HashMap<TyVar, Type> = s.vars.iter().map(|v| (*v, self.fresh())).collect();
        fn go(t: &Type, m: &HashMap<TyVar, Type>) -> Type {
            match t {
                Type::Var(v) => m.get(v).cloned().unwrap_or(Type::Var(*v)),
                Type::Fun(a, b) => Type::fun(go(a, m), go(b, m)),
                Type::Con(c, args) => Type::Con(*c, args.iter().map(|a| go(a, m)).collect()),
                other => other.clone(),
            }
        }
        go(&s.ty, &mapping)
    }

    fn env_free_vars(&self) -> BTreeSet<TyVar> {
        let mut out = BTreeSet::new();
        for (_, s) in &self.scopes {
            let resolved = self.resolve_deep(&s.ty);
            let mut fv = resolved.free_vars();
            for q in &s.vars {
                fv.remove(q);
            }
            out.extend(fv);
        }
        out
    }

    fn generalize(&self, ty: Type) -> Scheme {
        self.generalize_over(ty, &self.env_free_vars())
    }

    fn generalize_over(&self, ty: Type, env_fv: &BTreeSet<TyVar>) -> Scheme {
        let resolved = self.resolve_deep(&ty);
        let vars: Vec<TyVar> = resolved
            .free_vars()
            .into_iter()
            .filter(|v| !env_fv.contains(v))
            .collect();
        Scheme { vars, ty: resolved }
    }

    // ------------------------------------------------------------------
    // Built-in schemes
    // ------------------------------------------------------------------

    fn primop_scheme(&mut self, op: PrimOp) -> Type {
        use Type as T;
        let int2 = || T::fun(T::Int, T::fun(T::Int, T::Int));
        let cmp = || T::fun(T::Int, T::fun(T::Int, T::bool()));
        match op {
            PrimOp::Add | PrimOp::Sub | PrimOp::Mul | PrimOp::Div | PrimOp::Mod => int2(),
            PrimOp::Neg => T::fun(T::Int, T::Int),
            PrimOp::IntEq | PrimOp::IntLt | PrimOp::IntLe | PrimOp::IntGt | PrimOp::IntGe => cmp(),
            PrimOp::CharEq => T::fun(T::Char, T::fun(T::Char, T::bool())),
            PrimOp::Seq => {
                let a = self.fresh();
                let b = self.fresh();
                T::fun(a, T::fun(b.clone(), b))
            }
            PrimOp::ShowInt => T::fun(T::Int, T::Str),
            PrimOp::StrAppend => T::fun(T::Str, T::fun(T::Str, T::Str)),
            PrimOp::StrLen => T::fun(T::Str, T::Int),
            PrimOp::StrEq => T::fun(T::Str, T::fun(T::Str, T::bool())),
            PrimOp::Ord => T::fun(T::Char, T::Int),
            PrimOp::Chr => T::fun(T::Int, T::Char),
            PrimOp::MapExn => {
                let a = self.fresh();
                T::fun(T::fun(T::exception(), T::exception()), T::fun(a.clone(), a))
            }
            PrimOp::UnsafeIsException => {
                let a = self.fresh();
                T::fun(a, T::bool())
            }
            PrimOp::UnsafeGetException => {
                let a = self.fresh();
                T::fun(a.clone(), T::exval(a))
            }
        }
    }

    /// The result and field types for a data constructor, freshly
    /// instantiated.
    fn con_types(&mut self, info: &ConInfo) -> (Type, Vec<Type>) {
        let mapping: HashMap<Symbol, Type> =
            info.ty_params.iter().map(|p| (*p, self.fresh())).collect();
        let args = info
            .arg_types
            .iter()
            .map(|t| stype_to_type(t, &mapping))
            .collect();
        let result = Type::Con(
            info.ty_name,
            info.ty_params.iter().map(|p| mapping[p].clone()).collect(),
        );
        (result, args)
    }

    /// Types for the `IO` pseudo-constructors (§4.4).
    fn io_con_type(&mut self, name: &str, args: &[Type]) -> Result<Type, TypeError> {
        use Type as T;
        let expect = |n: usize| -> Result<(), TypeError> {
            if args.len() == n {
                Ok(())
            } else {
                Err(TypeError(format!(
                    "IO constructor '{name}' applied to {} arguments, expects {n}",
                    args.len()
                )))
            }
        };
        match name {
            "Return" => {
                expect(1)?;
                Ok(T::io(args[0].clone()))
            }
            "Bind" => {
                expect(2)?;
                let a = self.fresh();
                let b = self.fresh();
                self.unify(&args[0], &T::io(a.clone()))?;
                self.unify(&args[1], &T::fun(a, T::io(b.clone())))?;
                Ok(T::io(b))
            }
            "GetChar" => {
                expect(0)?;
                Ok(T::io(T::Char))
            }
            "PutChar" => {
                expect(1)?;
                self.unify(&args[0], &T::Char)?;
                Ok(T::io(T::con0("Unit")))
            }
            "PutStr" => {
                expect(1)?;
                self.unify(&args[0], &T::Str)?;
                Ok(T::io(T::con0("Unit")))
            }
            "GetException" => {
                expect(1)?;
                Ok(T::io(T::exval(args[0].clone())))
            }
            "Fork" => {
                expect(1)?;
                let a = self.fresh();
                self.unify(&args[0], &T::io(a))?;
                Ok(T::io(T::Int)) // thread ids are Ints
            }
            "Yield" => {
                expect(0)?;
                Ok(T::io(T::con0("Unit")))
            }
            "NewMVar" => {
                expect(1)?;
                Ok(T::io(T::Con(Symbol::intern("MVar"), vec![args[0].clone()])))
            }
            "NewEmptyMVar" => {
                expect(0)?;
                let a = self.fresh();
                Ok(T::io(T::Con(Symbol::intern("MVar"), vec![a])))
            }
            "TakeMVar" => {
                expect(1)?;
                let a = self.fresh();
                self.unify(&args[0], &T::Con(Symbol::intern("MVar"), vec![a.clone()]))?;
                Ok(T::io(a))
            }
            "PutMVar" => {
                expect(2)?;
                let a = self.fresh();
                self.unify(&args[0], &T::Con(Symbol::intern("MVar"), vec![a.clone()]))?;
                self.unify(&args[1], &a)?;
                Ok(T::io(T::con0("Unit")))
            }
            "ThrowTo" => {
                expect(2)?;
                self.unify(&args[0], &T::Int)?;
                self.unify(&args[1], &T::exception())?;
                Ok(T::io(T::con0("Unit")))
            }
            _ => Err(TypeError(format!("unknown IO constructor '{name}'"))),
        }
    }

    // ------------------------------------------------------------------
    // Inference proper
    // ------------------------------------------------------------------

    pub fn infer(&mut self, e: &Expr) -> Result<Type, TypeError> {
        match e {
            Expr::Var(v) => match self.lookup(*v) {
                Some(s) => {
                    let s = s.clone();
                    Ok(self.instantiate(&s))
                }
                None => Err(TypeError(format!("unbound variable '{v}'"))),
            },
            Expr::Int(_) => Ok(Type::Int),
            Expr::Char(_) => Ok(Type::Char),
            Expr::Str(_) => Ok(Type::Str),
            Expr::Con(c, args) => {
                let arg_tys = args
                    .iter()
                    .map(|a| self.infer(a))
                    .collect::<Result<Vec<_>, _>>()?;
                let info = self
                    .data
                    .con(*c)
                    .ok_or_else(|| TypeError(format!("unknown constructor '{c}'")))?
                    .clone();
                if info.io_primitive {
                    return self.io_con_type(&c.as_str(), &arg_tys);
                }
                let (result, fields) = self.con_types(&info);
                if fields.len() != arg_tys.len() {
                    return Err(TypeError(format!(
                        "constructor '{c}' applied to {} arguments, expects {}",
                        arg_tys.len(),
                        fields.len()
                    )));
                }
                for (got, want) in arg_tys.iter().zip(&fields) {
                    self.unify(got, want)?;
                }
                Ok(result)
            }
            Expr::App(f, x) => {
                let tf = self.infer(f)?;
                let tx = self.infer(x)?;
                let result = self.fresh();
                self.unify(&tf, &Type::fun(tx, result.clone()))?;
                Ok(result)
            }
            Expr::Lam(x, b) => {
                let targ = self.fresh();
                self.scopes.push((*x, Scheme::mono(targ.clone())));
                let tbody = self.infer(b);
                self.scopes.pop();
                Ok(Type::fun(targ, tbody?))
            }
            Expr::Let(x, rhs, body) => {
                let trhs = self.infer(rhs)?;
                let scheme = self.generalize(trhs);
                self.scopes.push((*x, scheme));
                let t = self.infer(body);
                self.scopes.pop();
                t
            }
            Expr::LetRec(binds, body) => {
                let tys = self.infer_letrec_group(binds)?;
                let n = self.scopes.len();
                let env_fv = self.env_free_vars();
                for (name, ty) in tys {
                    let scheme = self.generalize_over(ty, &env_fv);
                    self.scopes.push((name, scheme));
                }
                let t = self.infer(body);
                self.scopes.truncate(n);
                t
            }
            Expr::Case(scrut, alts) => self.infer_case(scrut, alts),
            Expr::Prim(op, args) => {
                let mut ty = self.primop_scheme(*op);
                for a in args {
                    let ta = self.infer(a)?;
                    let result = self.fresh();
                    self.unify(&ty, &Type::fun(ta, result.clone()))?;
                    ty = result;
                }
                Ok(ty)
            }
            Expr::Raise(x) => {
                let tx = self.infer(x)?;
                self.unify(&tx, &Type::exception())?;
                Ok(self.fresh()) // raise :: Exception -> a
            }
        }
    }

    /// Infers monotypes for one recursive binding group (monomorphic
    /// recursion, generalized by the caller).
    fn infer_letrec_group(
        &mut self,
        binds: &[(Symbol, std::rc::Rc<Expr>)],
    ) -> Result<Vec<(Symbol, Type)>, TypeError> {
        let n = self.scopes.len();
        let placeholders: Vec<Type> = binds.iter().map(|_| self.fresh()).collect();
        for ((name, _), t) in binds.iter().zip(&placeholders) {
            self.scopes.push((*name, Scheme::mono(t.clone())));
        }
        let result = (|| {
            for ((_, rhs), t) in binds.iter().zip(&placeholders) {
                let got = self.infer(rhs)?;
                self.unify(&got, t)?;
            }
            Ok(())
        })();
        self.scopes.truncate(n);
        result?;
        Ok(binds
            .iter()
            .zip(placeholders)
            .map(|((name, _), t)| (*name, t))
            .collect())
    }

    fn infer_case(&mut self, scrut: &Expr, alts: &[Alt]) -> Result<Type, TypeError> {
        let tscrut = self.infer(scrut)?;
        let tresult = self.fresh();
        for alt in alts {
            match &alt.con {
                AltCon::Int(_) => self.unify(&tscrut, &Type::Int)?,
                AltCon::Char(_) => self.unify(&tscrut, &Type::Char)?,
                AltCon::Str(_) => self.unify(&tscrut, &Type::Str)?,
                AltCon::Default => {
                    // A default alternative may bind the scrutinee itself.
                    if let Some(b) = alt.binders.first() {
                        let t = tscrut.clone();
                        self.scopes.push((*b, Scheme::mono(t)));
                        let r = self.infer(&alt.rhs);
                        self.scopes.pop();
                        self.unify(&r?, &tresult)?;
                        continue;
                    }
                }
                AltCon::Con(c) => {
                    let info = self
                        .data
                        .con(*c)
                        .ok_or_else(|| TypeError(format!("unknown constructor '{c}'")))?
                        .clone();
                    if info.io_primitive {
                        return Err(TypeError("IO values cannot be scrutinised by case".into()));
                    }
                    let (result, fields) = self.con_types(&info);
                    self.unify(&tscrut, &result)?;
                    if fields.len() != alt.binders.len() {
                        return Err(TypeError(format!(
                            "alternative for '{c}' binds {} variables, expects {}",
                            alt.binders.len(),
                            fields.len()
                        )));
                    }
                    let n = self.scopes.len();
                    for (b, t) in alt.binders.iter().zip(fields) {
                        self.scopes.push((*b, Scheme::mono(t)));
                    }
                    let t = self.infer(&alt.rhs);
                    self.scopes.truncate(n);
                    self.unify(&t?, &tresult)?;
                    continue;
                }
            }
            let t = self.infer(&alt.rhs)?;
            self.unify(&t, &tresult)?;
        }
        Ok(tresult)
    }

    // ------------------------------------------------------------------
    // Signature checking
    // ------------------------------------------------------------------

    /// Checks that the inferred scheme is at least as general as the
    /// declared signature: the declared type, with its variables made
    /// rigid (skolemized), must unify with a fresh instantiation of the
    /// inferred scheme.
    fn check_signature(
        &mut self,
        name: Symbol,
        inferred: Scheme,
        sig: &SType,
    ) -> Result<(), TypeError> {
        let mut mapping: HashMap<Symbol, Type> = HashMap::new();
        let declared = skolemize(sig, &mut mapping, &mut self.next_skolem);
        let got = self.instantiate(&inferred);
        self.unify(&got, &declared).map_err(|e| {
            TypeError(format!(
                "signature for '{name}' does not match inferred type {}: {}",
                inferred.ty, e.0
            ))
        })
    }
}

/// Converts a surface type, mapping type variables through `mapping`.
fn stype_to_type(t: &SType, mapping: &HashMap<Symbol, Type>) -> Type {
    match t {
        SType::Var(v) => mapping.get(v).cloned().unwrap_or(Type::con0("Unit")),
        SType::Fun(a, b) => Type::fun(stype_to_type(a, mapping), stype_to_type(b, mapping)),
        SType::List(t) => Type::list(stype_to_type(t, mapping)),
        SType::Tuple(items) => {
            let name = if items.len() == 2 { "Pair" } else { "Triple" };
            Type::Con(
                Symbol::intern(name),
                items.iter().map(|i| stype_to_type(i, mapping)).collect(),
            )
        }
        SType::Con(c, args) => match c.as_str().as_str() {
            "Int" if args.is_empty() => Type::Int,
            "Char" if args.is_empty() => Type::Char,
            "Str" if args.is_empty() => Type::Str,
            _ => Type::Con(*c, args.iter().map(|a| stype_to_type(a, mapping)).collect()),
        },
    }
}

/// Converts a signature, giving each type variable a rigid skolem.
fn skolemize(t: &SType, mapping: &mut HashMap<Symbol, Type>, next: &mut u32) -> Type {
    match t {
        SType::Var(v) => mapping
            .entry(*v)
            .or_insert_with(|| {
                let s = Type::Skolem(*next);
                *next += 1;
                s
            })
            .clone(),
        SType::Fun(a, b) => Type::fun(skolemize(a, mapping, next), skolemize(b, mapping, next)),
        SType::List(t) => Type::list(skolemize(t, mapping, next)),
        SType::Tuple(items) => {
            let name = if items.len() == 2 { "Pair" } else { "Triple" };
            Type::Con(
                Symbol::intern(name),
                items.iter().map(|i| skolemize(i, mapping, next)).collect(),
            )
        }
        SType::Con(c, args) => match c.as_str().as_str() {
            "Int" if args.is_empty() => Type::Int,
            "Char" if args.is_empty() => Type::Char,
            "Str" if args.is_empty() => Type::Str,
            _ => Type::Con(
                *c,
                args.iter().map(|a| skolemize(a, mapping, next)).collect(),
            ),
        },
    }
}
