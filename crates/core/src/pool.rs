//! A multi-worker evaluation service: session pool, batch scheduler,
//! shared result cache.
//!
//! [`Session`] is deliberately single-threaded (`Rc` heaps, the works),
//! so the pool runs **one fully-loaded session per worker thread** and
//! moves *programs* (source strings), never sessions, across threads.
//! Jobs flow through a bounded MPMC queue (submitters block when it is
//! full — backpressure, not unbounded buffering), each job runs under
//! the pool's [`Supervisor`] envelope (deadline, budgets, panic
//! isolation, bounded retry), and results land in a
//! [`SharedBatch`](urk_io::SharedBatch) keyed by submission index, so
//! [`EvalPool::eval_batch`] returns answers in submission order no
//! matter which worker finished first.
//!
//! All workers share one content-addressed [`ResultCache`]. That sharing
//! is licensed by the paper's semantics: an expression denotes a *set*
//! of exceptions and any member is an admissible answer, so an answer
//! computed by worker 2 yesterday is exactly as valid as one computed by
//! worker 7 now — provided it was a *pure* outcome. The pool therefore
//! never caches asynchronous-exception results or chaos-mode runs (see
//! [`crate::cache`] for the full argument).
//!
//! Shutdown comes in two strengths: [`EvalPool::shutdown`] closes the
//! queue and drains everything already accepted; [`EvalPool::shutdown_now`]
//! additionally cancels queued jobs (they complete with a
//! [`PoolError`]) and delivers `Interrupt` to every in-flight machine
//! through each worker's shared [`InterruptHandle`], then waits a
//! bounded grace period for the workers to exit.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use urk_io::SharedBatch;
use urk_machine::{Backend, Code, InterruptHandle, Stats};
use urk_syntax::Exception;

use crate::cache::{cache_key, CacheStats, CachedEval, ResultCache};
use crate::error::Error;
use crate::session::{Options, Session};
use crate::supervise::Supervisor;

/// How a pool is shaped.
#[derive(Clone, Debug)]
pub struct PoolConfig {
    /// Worker threads, each owning a fully-loaded session (min 1).
    pub workers: usize,
    /// Bounded job-queue depth; submitters block when it is full.
    pub queue_cap: usize,
    /// Shared result-cache capacity in entries (0 disables caching).
    pub cache_cap: usize,
    /// The supervision envelope every job runs under.
    pub supervisor: Supervisor,
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        PoolConfig {
            workers: 4,
            queue_cap: 256,
            cache_cap: 4096,
            supervisor: Supervisor::default(),
        }
    }
}

/// One finished job.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// The rendered value, or `(raise E)` for an exceptional outcome.
    pub rendered: String,
    /// The representative exception, if the outcome raised.
    pub exception: Option<Exception>,
    /// Machine counters; on a cache hit these are the counters of the
    /// evaluation that populated the entry, with `cache_hits` stamped.
    pub stats: Stats,
    /// True if the answer came from the shared cache (no machine ran).
    pub cache_hit: bool,
    /// Supervision attempts consumed (0 on a cache hit).
    pub attempts: u32,
    /// True if the supervisor's deadline ended the final attempt.
    pub timed_out: bool,
}

/// Why a job failed: a front-end error, an evaluation error, a worker
/// panic, or cancellation at shutdown. Stringified so job results stay
/// `Send` regardless of what the underlying error carried.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PoolError(pub String);

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for PoolError {}

/// What one submitted job comes back as.
pub type JobResult = Result<JobOutcome, PoolError>;

/// One unit of work in flight: the program, where its answer goes, and
/// which submission slot it fills.
struct Job {
    src: String,
    index: usize,
    batch: SharedBatch<JobResult>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// A bounded MPMC queue: submitters block in [`JobQueue::push`] when
/// full, workers block in [`JobQueue::pop`] when empty; closing wakes
/// everyone.
struct JobQueue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
}

impl JobQueue {
    fn new(cap: usize) -> JobQueue {
        JobQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Blocks until there is room, then enqueues. Returns the job back
    /// if the queue has been closed.
    fn push(&self, job: Job) -> Result<(), Job> {
        let mut st = self.state.lock().expect("job queue poisoned");
        loop {
            if st.closed {
                return Err(job);
            }
            if st.jobs.len() < self.cap {
                st.jobs.push_back(job);
                self.not_empty.notify_one();
                return Ok(());
            }
            st = self.not_full.wait(st).expect("job queue poisoned");
        }
    }

    /// Blocks until a job arrives; `None` once the queue is closed *and*
    /// drained (workers exit on `None`).
    fn pop(&self) -> Option<Job> {
        let mut st = self.state.lock().expect("job queue poisoned");
        loop {
            if let Some(job) = st.jobs.pop_front() {
                self.not_full.notify_one();
                return Some(job);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).expect("job queue poisoned");
        }
    }

    /// Closes the queue; optionally drains (and returns) jobs that were
    /// accepted but not yet picked up, so a hard shutdown can fail them
    /// instead of running them.
    fn close(&self, drain_pending: bool) -> Vec<Job> {
        let mut st = self.state.lock().expect("job queue poisoned");
        st.closed = true;
        let pending = if drain_pending {
            st.jobs.drain(..).collect()
        } else {
            Vec::new()
        };
        self.not_empty.notify_all();
        self.not_full.notify_all();
        pending
    }
}

/// A pool of evaluation workers sharing a content-addressed result
/// cache. See the module docs for the architecture.
pub struct EvalPool {
    queue: Arc<JobQueue>,
    cache: Arc<ResultCache>,
    /// One cancellation handle per worker; `shutdown_now` delivers
    /// `Interrupt` through these to stop in-flight machines.
    cancels: Vec<InterruptHandle>,
    /// Behind a mutex so shutdown can run while another thread is
    /// blocked in `eval_batch`.
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// Live-worker count; `shutdown_now`'s bounded join waits on this
    /// instead of `JoinHandle::join`, which has no timeout.
    alive: Arc<(Mutex<usize>, Condvar)>,
}

impl EvalPool {
    /// Starts a pool of `config.workers` threads, each loading the
    /// Prelude plus every program in `sources` into its own session
    /// configured by `options`.
    ///
    /// The sources are compiled once on the calling thread first, so a
    /// bad program is reported here as an [`Error`] rather than killing
    /// workers asynchronously.
    ///
    /// # Errors
    ///
    /// Front-end errors from loading `sources`.
    pub fn start(
        sources: &[&str],
        options: Options,
        config: PoolConfig,
    ) -> Result<EvalPool, Error> {
        // Probe-load on the caller's thread: validates every source (and
        // warms the global interner) before any worker exists. On the
        // compiled backend the probe also lowers the program to flat code
        // once; every worker links this same `Arc<Code>` image instead of
        // recompiling it per thread.
        let shared_code = {
            let mut probe = Session::new();
            probe.options = options.clone();
            for src in sources {
                probe.load(src)?;
            }
            (options.backend == Backend::Compiled).then(|| probe.compiled_code())
        };

        let nworkers = config.workers.max(1);
        let queue = Arc::new(JobQueue::new(config.queue_cap));
        let cache = Arc::new(ResultCache::new(config.cache_cap));
        let alive = Arc::new((Mutex::new(nworkers), Condvar::new()));
        let owned_sources: Vec<String> = sources.iter().map(|s| (*s).to_string()).collect();

        let mut cancels = Vec::with_capacity(nworkers);
        let mut handles = Vec::with_capacity(nworkers);
        for worker_id in 0..nworkers {
            let cancel = InterruptHandle::new();
            cancels.push(cancel.clone());

            let queue = Arc::clone(&queue);
            let cache = Arc::clone(&cache);
            let alive = Arc::clone(&alive);
            let options = options.clone();
            let sources = owned_sources.clone();
            let code = shared_code.clone();
            let supervisor = Supervisor {
                interrupt: Some(cancel),
                ..config.supervisor.clone()
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("urk-pool-{worker_id}"))
                    .spawn(move || {
                        worker_loop(&queue, &cache, &supervisor, options, &sources, code);
                        let (count, cond) = &*alive;
                        *count.lock().expect("alive counter poisoned") -= 1;
                        cond.notify_all();
                    })
                    .expect("spawning a pool worker failed"),
            );
        }

        Ok(EvalPool {
            queue,
            cache,
            cancels,
            workers: Mutex::new(handles),
            alive,
        })
    }

    /// Evaluates a batch, blocking until every job has an answer.
    /// Results come back in **submission order** regardless of worker
    /// scheduling. A job rejected because the pool is shutting down
    /// completes with a [`PoolError`] rather than being dropped.
    pub fn eval_batch<S: AsRef<str>>(&self, exprs: &[S]) -> Vec<JobResult> {
        let batch: SharedBatch<JobResult> = SharedBatch::new(exprs.len());
        for (index, src) in exprs.iter().enumerate() {
            let job = Job {
                src: src.as_ref().to_string(),
                index,
                batch: batch.clone(),
            };
            if self.queue.push(job).is_err() {
                batch.fulfil(index, Err(PoolError("pool is shut down".to_string())));
            }
        }
        batch.wait()
    }

    /// Evaluates one expression through the pool (a one-job batch).
    pub fn eval_one(&self, src: &str) -> JobResult {
        self.eval_batch(&[src])
            .pop()
            .expect("a one-job batch has one result")
    }

    /// A snapshot of the shared cache's counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Graceful shutdown: stop accepting jobs, run everything already
    /// accepted to completion, join all workers. Idempotent.
    pub fn shutdown(&self) {
        self.queue.close(false);
        let mut workers = self.workers.lock().expect("worker list poisoned");
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
    }

    /// Hard shutdown: close the queue, fail every job still waiting in
    /// it, deliver `Interrupt` to every in-flight machine, and wait up
    /// to `grace` for the workers to exit. Returns `true` if every
    /// worker exited within the grace period (workers still running —
    /// e.g. wedged in foreign code — are left detached, never blocking
    /// the caller).
    pub fn shutdown_now(&self, grace: Duration) -> bool {
        let pending = self.queue.close(true);
        for job in pending {
            job.batch.fulfil(
                job.index,
                Err(PoolError("cancelled: pool shut down".to_string())),
            );
        }
        for cancel in &self.cancels {
            cancel.deliver(Exception::Interrupt);
        }

        // Bounded join: wait on the alive counter (JoinHandle::join has
        // no timeout), then reap the handles only once all have exited.
        let deadline = Instant::now() + grace;
        let (count, cond) = &*self.alive;
        let mut alive = count.lock().expect("alive counter poisoned");
        while *alive > 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = cond
                .wait_timeout(alive, deadline - now)
                .expect("alive counter poisoned");
            alive = guard;
        }
        drop(alive);

        let mut workers = self.workers.lock().expect("worker list poisoned");
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
        true
    }
}

impl Drop for EvalPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One worker: build a private session, then serve jobs until the queue
/// closes. Each job is additionally wrapped in `catch_unwind` so even a
/// panic outside the machine (the supervisor already isolates machine
/// panics) fails one job, not the pool.
fn worker_loop(
    queue: &JobQueue,
    cache: &ResultCache,
    supervisor: &Supervisor,
    options: Options,
    sources: &[String],
    code: Option<Arc<Code>>,
) {
    let mut session = Session::new();
    session.options = options;
    for src in sources {
        session
            .load(src)
            .expect("sources were validated by the probe load");
    }
    if let Some(code) = code {
        // The worker's program is byte-for-byte the probe's (same
        // sources, same Prelude), so the probe's compiled image is its
        // compiled image.
        session.set_compiled_code(code);
    }

    while let Some(job) = queue.pop() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            handle_job(&session, cache, supervisor, &job.src)
        }))
        .unwrap_or_else(|_| Err(PoolError("worker panicked while serving job".to_string())));
        job.batch.fulfil(job.index, result);
    }
}

/// Serve one job: compile, consult the cache, evaluate on a miss, and
/// insert the answer back if (and only if) it is a pure outcome.
fn handle_job(
    session: &Session,
    cache: &ResultCache,
    supervisor: &Supervisor,
    src: &str,
) -> JobResult {
    let expr = session
        .compile_expr(src)
        .map_err(|e| PoolError(e.to_string()))?;
    let key = cache_key(
        &expr,
        &session.options.machine,
        &session.options.denot,
        session.options.render_depth,
        session.options.backend,
    );

    if let Some(hit) = cache.get(&key) {
        let mut stats = hit.stats;
        stats.cache_hits = 1;
        return Ok(JobOutcome {
            rendered: hit.rendered,
            exception: hit.exception,
            stats,
            cache_hit: true,
            attempts: 0,
            timed_out: false,
        });
    }

    let supervised = session
        .eval_supervised_expr(expr, supervisor)
        .map_err(|e| PoolError(e.to_string()))?;
    let result = supervised.result;

    // Cache only pure outcomes: an asynchronous exception (or anything
    // evaluated with async injections or under chaos) reflects external
    // events, not the expression's denotation, and must not be replayed
    // to later requests.
    let pure = session.options.machine.chaos.is_none()
        && result.stats.async_injected == 0
        && !result
            .exception
            .as_ref()
            .is_some_and(Exception::is_asynchronous);
    if pure {
        cache.insert(
            key,
            CachedEval {
                rendered: result.rendered.clone(),
                exception: result.exception.clone(),
                stats: result.stats.clone(),
            },
        );
    }

    let mut stats = result.stats;
    if cache.capacity() > 0 {
        stats.cache_misses = 1;
    }
    Ok(JobOutcome {
        rendered: result.rendered,
        exception: result.exception,
        stats,
        cache_hit: false,
        attempts: supervised.attempts,
        timed_out: supervised.timed_out,
    })
}
