//! A multi-worker evaluation service: session pool, batch scheduler,
//! shared result cache.
//!
//! [`Session`] is deliberately single-threaded (`Rc` heaps, the works),
//! so the pool runs **one fully-loaded session per worker thread** and
//! moves *programs* (source strings), never sessions, across threads.
//! Jobs flow through a bounded MPMC queue (submitters block when it is
//! full — backpressure, not unbounded buffering), each job runs under
//! the pool's [`Supervisor`] envelope (deadline, budgets, panic
//! isolation, bounded retry), and results land in a
//! [`SharedBatch`](urk_io::SharedBatch) keyed by submission index, so
//! [`EvalPool::eval_batch`] returns answers in submission order no
//! matter which worker finished first.
//!
//! All workers share one content-addressed [`ResultCache`]. That sharing
//! is licensed by the paper's semantics: an expression denotes a *set*
//! of exceptions and any member is an admissible answer, so an answer
//! computed by worker 2 yesterday is exactly as valid as one computed by
//! worker 7 now — provided it was a *pure* outcome. The pool therefore
//! never caches asynchronous-exception results or chaos-mode runs (see
//! [`crate::cache`] for the full argument).
//!
//! Shutdown comes in two strengths: [`EvalPool::shutdown`] closes the
//! queue and drains everything already accepted; [`EvalPool::shutdown_now`]
//! additionally cancels queued jobs (they complete with a
//! [`PoolError`]) and delivers `Interrupt` to every in-flight machine
//! through each worker's shared [`InterruptHandle`], then waits a
//! bounded grace period for the workers to exit.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use urk_io::SharedBatch;
use urk_machine::{Backend, Code, InterruptHandle, Stats};
use urk_syntax::Exception;

use crate::cache::{cache_key, CacheStats, CachedEval, ResultCache};
use crate::error::Error;
use crate::session::{Options, Session};
use crate::supervise::Supervisor;

/// How a pool is shaped.
#[derive(Clone, Debug)]
pub struct PoolConfig {
    /// Worker threads, each owning a fully-loaded session (min 1).
    pub workers: usize,
    /// Bounded job-queue depth; submitters block when it is full.
    pub queue_cap: usize,
    /// Shared result-cache capacity in entries (0 disables caching).
    pub cache_cap: usize,
    /// The supervision envelope every job runs under.
    pub supervisor: Supervisor,
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        PoolConfig {
            workers: 4,
            queue_cap: 256,
            cache_cap: 4096,
            supervisor: Supervisor::default(),
        }
    }
}

/// One finished job.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// The rendered value, or `(raise E)` for an exceptional outcome.
    pub rendered: String,
    /// The representative exception, if the outcome raised.
    pub exception: Option<Exception>,
    /// Machine counters; on a cache hit these are the counters of the
    /// evaluation that populated the entry, with `cache_hits` stamped.
    pub stats: Stats,
    /// True if the answer came from the shared cache (no machine ran).
    pub cache_hit: bool,
    /// Supervision attempts consumed (0 on a cache hit).
    pub attempts: u32,
    /// True if the supervisor's deadline ended the final attempt.
    pub timed_out: bool,
}

/// Why a job failed: a front-end error, an evaluation error, a worker
/// panic, or cancellation at shutdown. Stringified so job results stay
/// `Send` regardless of what the underlying error carried.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PoolError(pub String);

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for PoolError {}

/// What one submitted job comes back as.
pub type JobResult = Result<JobOutcome, PoolError>;

/// Per-job overrides of the pool's supervision envelope. The network
/// tier maps a client's `deadline_ms`/budget fields here, so one slow
/// remote request can be put on a short leash without reconfiguring the
/// pool. `None` fields inherit the pool supervisor's values.
#[derive(Clone, Debug, Default)]
pub struct JobLimits {
    /// Wall-clock deadline for this job.
    pub deadline: Option<Duration>,
    /// Machine-step budget for this job.
    pub max_steps: Option<u64>,
    /// Heap budget (nodes) for this job.
    pub max_heap: Option<usize>,
    /// Stack budget (frames) for this job.
    pub max_stack: Option<usize>,
}

impl JobLimits {
    fn is_default(&self) -> bool {
        self.deadline.is_none()
            && self.max_steps.is_none()
            && self.max_heap.is_none()
            && self.max_stack.is_none()
    }

    /// The pool supervisor with this job's overrides applied (the
    /// job-level value wins where both are set).
    fn apply(&self, base: &Supervisor) -> Supervisor {
        Supervisor {
            deadline: self.deadline.or(base.deadline),
            max_steps: self.max_steps.or(base.max_steps),
            max_heap: self.max_heap.or(base.max_heap),
            max_stack: self.max_stack.or(base.max_stack),
            ..base.clone()
        }
    }
}

/// Why a non-blocking submission was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity — the caller should shed load
    /// (the network tier answers `overloaded`) rather than block.
    QueueFull,
    /// The pool is shutting down; no further jobs are accepted.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => f.write_str("job queue is full"),
            SubmitError::Closed => f.write_str("pool is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// One unit of work in flight: the program, where its answer goes,
/// which submission slot it fills, and its supervision overrides.
struct Job {
    src: String,
    index: usize,
    batch: SharedBatch<JobResult>,
    limits: JobLimits,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// A bounded MPMC queue: submitters block in [`JobQueue::push`] when
/// full (or bounce immediately via [`JobQueue::try_push`]), workers
/// block in [`JobQueue::pop`] when empty; closing wakes everyone.
///
/// The state lock recovers from poisoning (`into_inner`): the queue is a
/// plain `VecDeque` plus a flag with no invariant spanning the lock, so
/// a panic escaping one worker (e.g. from a panic payload's `Drop`
/// outside `catch_unwind`) must cost that worker only, never cascade
/// `PoisonError` panics into every other worker and the submitter.
struct JobQueue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
}

/// Recovers the guard from a poisoned lock (see [`JobQueue`] docs).
fn relock<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(|e| e.into_inner())
}

impl JobQueue {
    /// A queue admitting at most `cap` pending jobs.
    ///
    /// A `cap` of 0 is **clamped to 1**: a zero-capacity blocking queue
    /// could never accept a job, deadlocking every submitter. Callers
    /// for whom "capacity 0" means "shed everything" must reject the
    /// configuration up front instead of relying on the clamp — the
    /// `urk serve --queue-cap 0` CLI validation does exactly that.
    fn new(cap: usize) -> JobQueue {
        JobQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Blocks until there is room, then enqueues. Returns the job back
    /// if the queue has been closed.
    fn push(&self, job: Job) -> Result<(), Job> {
        let mut st = relock(&self.state);
        loop {
            if st.closed {
                return Err(job);
            }
            if st.jobs.len() < self.cap {
                st.jobs.push_back(job);
                self.not_empty.notify_one();
                return Ok(());
            }
            st = self.not_full.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Enqueues without blocking; refuses with the job and the reason
    /// when the queue is full or closed. This is the admission path the
    /// network tier sheds load on.
    fn try_push(&self, job: Job) -> Result<(), (Job, SubmitError)> {
        let mut st = relock(&self.state);
        if st.closed {
            return Err((job, SubmitError::Closed));
        }
        if st.jobs.len() >= self.cap {
            return Err((job, SubmitError::QueueFull));
        }
        st.jobs.push_back(job);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Jobs currently waiting (admitted, not yet picked up).
    fn len(&self) -> usize {
        relock(&self.state).jobs.len()
    }

    /// Blocks until a job arrives; `None` once the queue is closed *and*
    /// drained (workers exit on `None`).
    fn pop(&self) -> Option<Job> {
        let mut st = relock(&self.state);
        loop {
            if let Some(job) = st.jobs.pop_front() {
                self.not_full.notify_one();
                return Some(job);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue; optionally drains (and returns) jobs that were
    /// accepted but not yet picked up, so a hard shutdown can fail them
    /// instead of running them.
    fn close(&self, drain_pending: bool) -> Vec<Job> {
        let mut st = relock(&self.state);
        st.closed = true;
        let pending = if drain_pending {
            st.jobs.drain(..).collect()
        } else {
            Vec::new()
        };
        self.not_empty.notify_all();
        self.not_full.notify_all();
        pending
    }
}

/// A pool of evaluation workers sharing a content-addressed result
/// cache. See the module docs for the architecture.
pub struct EvalPool {
    queue: Arc<JobQueue>,
    cache: Arc<ResultCache>,
    /// One cancellation handle per worker; `shutdown_now` delivers
    /// `Interrupt` through these to stop in-flight machines.
    cancels: Vec<InterruptHandle>,
    /// Behind a mutex so shutdown can run while another thread is
    /// blocked in `eval_batch`.
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// Live-worker count; `shutdown_now`'s bounded join waits on this
    /// instead of `JoinHandle::join`, which has no timeout.
    alive: Arc<(Mutex<usize>, Condvar)>,
    /// Worker-thread count (after the min-1 clamp), for observers.
    nworkers: usize,
}

impl EvalPool {
    /// Starts a pool of `config.workers` threads, each loading the
    /// Prelude plus every program in `sources` into its own session
    /// configured by `options`.
    ///
    /// The sources are compiled once on the calling thread first, so a
    /// bad program is reported here as an [`Error`] rather than killing
    /// workers asynchronously.
    ///
    /// # Errors
    ///
    /// Front-end errors from loading `sources`.
    pub fn start(
        sources: &[&str],
        options: Options,
        config: PoolConfig,
    ) -> Result<EvalPool, Error> {
        // Probe-load on the caller's thread: validates every source (and
        // warms the global interner) before any worker exists. On the
        // compiled backend the probe also lowers the program to flat code
        // once; every worker links this same `Arc<Code>` image instead of
        // recompiling it per thread.
        let shared_code = {
            let mut probe = Session::new();
            probe.options = options.clone();
            for src in sources {
                probe.load(src)?;
            }
            (options.backend == Backend::Compiled).then(|| probe.compiled_code())
        };

        let nworkers = config.workers.max(1);
        let queue = Arc::new(JobQueue::new(config.queue_cap));
        let cache = Arc::new(ResultCache::new(config.cache_cap));
        let alive = Arc::new((Mutex::new(nworkers), Condvar::new()));
        let owned_sources: Vec<String> = sources.iter().map(|s| (*s).to_string()).collect();

        let mut cancels = Vec::with_capacity(nworkers);
        let mut handles = Vec::with_capacity(nworkers);
        for worker_id in 0..nworkers {
            let cancel = InterruptHandle::new();
            cancels.push(cancel.clone());

            let queue = Arc::clone(&queue);
            let cache = Arc::clone(&cache);
            let alive = Arc::clone(&alive);
            let options = options.clone();
            let sources = owned_sources.clone();
            let code = shared_code.clone();
            let supervisor = Supervisor {
                interrupt: Some(cancel),
                ..config.supervisor.clone()
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("urk-pool-{worker_id}"))
                    .spawn(move || {
                        worker_loop(&queue, &cache, &supervisor, options, &sources, code);
                        let (count, cond) = &*alive;
                        *relock(count) -= 1;
                        cond.notify_all();
                    })
                    .expect("spawning a pool worker failed"),
            );
        }

        Ok(EvalPool {
            queue,
            cache,
            cancels,
            workers: Mutex::new(handles),
            alive,
            nworkers,
        })
    }

    /// Evaluates a batch, blocking until every job has an answer.
    /// Results come back in **submission order** regardless of worker
    /// scheduling. A job rejected because the pool is shutting down
    /// completes with a [`PoolError`] rather than being dropped.
    pub fn eval_batch<S: AsRef<str>>(&self, exprs: &[S]) -> Vec<JobResult> {
        let batch: SharedBatch<JobResult> = SharedBatch::new(exprs.len());
        for (index, src) in exprs.iter().enumerate() {
            let job = Job {
                src: src.as_ref().to_string(),
                index,
                batch: batch.clone(),
                limits: JobLimits::default(),
            };
            if self.queue.push(job).is_err() {
                batch.fulfil(index, Err(PoolError("pool is shut down".to_string())));
            }
        }
        batch.wait()
    }

    /// Submits one job **without blocking**: the job fills `batch` slot
    /// `index` when a worker finishes it. When the bounded queue is at
    /// capacity the job is refused with [`SubmitError::QueueFull`] and
    /// nothing is enqueued — the network tier's load-shedding hook: a
    /// full queue becomes an explicit `overloaded` answer instead of a
    /// blocked accept loop.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] under backpressure;
    /// [`SubmitError::Closed`] once shutdown has begun. In both cases
    /// the caller still owns slot `index` and must fulfil it (or answer
    /// the client directly).
    pub fn try_submit(
        &self,
        src: &str,
        limits: JobLimits,
        index: usize,
        batch: &SharedBatch<JobResult>,
    ) -> Result<(), SubmitError> {
        let job = Job {
            src: src.to_string(),
            index,
            batch: batch.clone(),
            limits,
        };
        self.queue.try_push(job).map_err(|(_, reason)| reason)
    }

    /// Evaluates one expression through the pool (a one-job batch).
    pub fn eval_one(&self, src: &str) -> JobResult {
        self.eval_batch(&[src])
            .pop()
            .expect("a one-job batch has one result")
    }

    /// Jobs admitted but not yet picked up by a worker — the
    /// backpressure signal the serving tier surfaces in its `stats`
    /// response.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// The bounded queue's capacity (after the min-1 clamp).
    pub fn queue_cap(&self) -> usize {
        self.queue.cap
    }

    /// How many worker threads the pool runs.
    pub fn worker_count(&self) -> usize {
        self.nworkers
    }

    /// A snapshot of the shared cache's counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The shared result cache itself (tests use this to poison shard
    /// locks and prove the pool keeps serving).
    #[doc(hidden)]
    pub fn shared_cache(&self) -> &ResultCache {
        &self.cache
    }

    /// Graceful shutdown: stop accepting jobs, run everything already
    /// accepted to completion, join all workers. Idempotent.
    pub fn shutdown(&self) {
        self.queue.close(false);
        let mut workers = relock(&self.workers);
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
    }

    /// Hard shutdown: close the queue, fail every job still waiting in
    /// it, deliver `Interrupt` to every in-flight machine, and wait up
    /// to `grace` for the workers to exit. Returns `true` if every
    /// worker exited within the grace period (workers still running —
    /// e.g. wedged in foreign code — are left detached, never blocking
    /// the caller).
    pub fn shutdown_now(&self, grace: Duration) -> bool {
        let pending = self.queue.close(true);
        for job in pending {
            job.batch.fulfil(
                job.index,
                Err(PoolError("cancelled: pool shut down".to_string())),
            );
        }
        for cancel in &self.cancels {
            cancel.deliver(Exception::Interrupt);
        }

        // Bounded join: wait on the alive counter (JoinHandle::join has
        // no timeout), then reap the handles only once all have exited.
        let deadline = Instant::now() + grace;
        let (count, cond) = &*self.alive;
        let mut alive = relock(count);
        while *alive > 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = cond
                .wait_timeout(alive, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            alive = guard;
        }
        drop(alive);

        let mut workers = relock(&self.workers);
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
        true
    }
}

impl Drop for EvalPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One worker: build a private session, then serve jobs until the queue
/// closes. Each job is additionally wrapped in `catch_unwind` so even a
/// panic outside the machine (the supervisor already isolates machine
/// panics) fails one job, not the pool.
fn worker_loop(
    queue: &JobQueue,
    cache: &ResultCache,
    supervisor: &Supervisor,
    options: Options,
    sources: &[String],
    code: Option<Arc<Code>>,
) {
    let mut session = Session::new();
    session.options = options;
    for src in sources {
        session
            .load(src)
            .expect("sources were validated by the probe load");
    }
    if let Some(code) = code {
        // The worker's program is byte-for-byte the probe's (same
        // sources, same Prelude), so the probe's compiled image is its
        // compiled image.
        session.set_compiled_code(code);
    }

    while let Some(job) = queue.pop() {
        // Per-job limits tighten (or relax) the pool envelope for this
        // job only; the common no-override case skips the clone.
        let sup;
        let effective = if job.limits.is_default() {
            supervisor
        } else {
            sup = job.limits.apply(supervisor);
            &sup
        };
        let result = catch_unwind(AssertUnwindSafe(|| {
            handle_job(&session, cache, effective, &job.src)
        }))
        .unwrap_or_else(|_| Err(PoolError("worker panicked while serving job".to_string())));
        job.batch.fulfil(job.index, result);
    }
}

/// Serve one job: compile, consult the cache, evaluate on a miss, and
/// insert the answer back if (and only if) it is a pure outcome.
fn handle_job(
    session: &Session,
    cache: &ResultCache,
    supervisor: &Supervisor,
    src: &str,
) -> JobResult {
    let expr = session
        .compile_expr(src)
        .map_err(|e| PoolError(e.to_string()))?;
    let key = cache_key(
        &expr,
        &session.options.machine,
        &session.options.denot,
        session.options.render_depth,
        session.options.backend,
        session.options.tier,
    );

    if let Some(hit) = cache.get(&key) {
        let mut stats = hit.stats;
        stats.cache_hits = 1;
        return Ok(JobOutcome {
            rendered: hit.rendered,
            exception: hit.exception,
            stats,
            cache_hit: true,
            attempts: 0,
            timed_out: false,
        });
    }

    let supervised = session
        .eval_supervised_expr(expr, supervisor)
        .map_err(|e| PoolError(e.to_string()))?;
    let result = supervised.result;

    // Cache only pure outcomes: an asynchronous exception (or anything
    // evaluated with async injections or under chaos) reflects external
    // events, not the expression's denotation, and must not be replayed
    // to later requests.
    let pure = session.options.machine.chaos.is_none()
        && result.stats.async_injected == 0
        && !result
            .exception
            .as_ref()
            .is_some_and(Exception::is_asynchronous);
    if pure {
        cache.insert(
            key,
            CachedEval {
                rendered: result.rendered.clone(),
                exception: result.exception.clone(),
                stats: result.stats.clone(),
            },
        );
    }

    let mut stats = result.stats;
    if cache.capacity() > 0 {
        stats.cache_misses = 1;
    }
    Ok(JobOutcome {
        rendered: result.rendered,
        exception: result.exception,
        stats,
        cache_hit: false,
        attempts: supervised.attempts,
        timed_out: supervised.timed_out,
    })
}
