//! The network serving tier: `urk serve`, a TCP front-end over
//! [`EvalPool`].
//!
//! Clients hold persistent connections and speak the length-prefixed
//! JSON-lines protocol of [`urk_io::wire`]: a `batch` request fans its
//! expressions into the pool's bounded job queue and the results stream
//! back **in submission order** — each as soon as it (and everything
//! before it) is done — via the same [`SharedBatch`] plumbing that backs
//! in-process [`EvalPool::eval_batch`]. The answer a remote client sees
//! is therefore byte-identical to a local evaluation; serving it from
//! another machine, another worker, or the shared cache is licensed by
//! the paper's refinement argument (an expression denotes a *set* of
//! exceptions; any member is an admissible answer — DESIGN.md §12).
//!
//! Three policies keep the tier honest under pressure:
//!
//! * **Load shedding, not blocking.** Jobs are admitted with the pool's
//!   non-blocking [`EvalPool::try_submit`]; when the bounded queue is
//!   full the job is never enqueued and the client receives an explicit
//!   `overloaded` response for that index. The accept loop and the other
//!   connections never stall behind a full queue.
//! * **Per-request leashes.** A batch's `deadline_ms`/`max_steps`/
//!   `max_heap`/`max_stack` fields become a [`JobLimits`] override, so
//!   one slow remote job dies by the pool [`Supervisor`]'s watchdog
//!   (delivered through the worker's `InterruptHandle`) without
//!   reconfiguring the pool or stalling anyone else.
//! * **Frame-bounded failure.** A payload that fails to decode costs one
//!   `error` response, not the connection; only an untrustworthy length
//!   field (or transport failure) drops the link. See `urk_io::wire`.
//!
//! Shutdown is cooperative: a `shutdown` frame (or [`Server::stop`])
//! raises a flag, wakes the accept loop, and every connection thread —
//! which polls the flag between reads — drains out; the pool then shuts
//! down gracefully, completing accepted work.

use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use urk_io::{
    parse_json, read_frame, write_frame, FrameError, Json, Request, Response, SharedBatch,
    WireCacheStats, WireStats, WireTotals, MAX_FRAME_LEN,
};

use crate::error::Error;
use crate::pool::{EvalPool, JobLimits, JobResult, PoolConfig, SubmitError};
use crate::session::Options;

/// How often a blocked connection read wakes up to check the stop flag.
const POLL: Duration = Duration::from_millis(100);

/// How the serving tier is shaped.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// The address to bind (`"127.0.0.1:0"` picks a free port; see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// The pool behind the listener.
    pub pool: PoolConfig,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            pool: PoolConfig::default(),
        }
    }
}

/// Why the server could not start (or serve).
#[derive(Debug)]
pub enum ServeError {
    /// The pool failed to start (a front-end error in the sources).
    Start(Error),
    /// Binding or configuring the listener failed.
    Io(io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Start(e) => write!(f, "starting the pool failed: {e}"),
            ServeError::Io(e) => write!(f, "listener error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Whole-server counters, all monotone except the `connections` gauge.
#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    requests: AtomicU64,
    jobs_submitted: AtomicU64,
    jobs_shed: AtomicU64,
    protocol_errors: AtomicU64,
    total_jobs: AtomicU64,
    total_steps: AtomicU64,
    total_unboxed_hits: AtomicU64,
    total_fused_steps: AtomicU64,
    total_ic_hits: AtomicU64,
    total_ic_misses: AtomicU64,
    total_compile_micros: AtomicU64,
    total_cache_hits: AtomicU64,
    total_cache_misses: AtomicU64,
}

/// State shared by the accept loop and every connection thread.
struct Shared {
    pool: EvalPool,
    stop: AtomicBool,
    addr: SocketAddr,
    backend: &'static str,
    counters: Counters,
}

impl Shared {
    /// Raises the stop flag and wakes the accept loop (which is blocked
    /// in `accept`) with a throwaway connection. Idempotent.
    fn request_stop(&self) {
        if !self.stop.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect(self.addr);
        }
    }
}

/// A running `urk serve` instance. Dropping the handle stops the server
/// and joins every thread; prefer [`Server::join`] to do so explicitly.
pub struct Server {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds `config.addr`, starts the pool (loading `sources` into
    /// every worker session configured by `options`), and begins
    /// accepting connections on a background thread.
    ///
    /// # Errors
    ///
    /// [`ServeError::Start`] for front-end errors in `sources`;
    /// [`ServeError::Io`] if the listener cannot bind.
    pub fn start(
        sources: &[&str],
        options: Options,
        config: ServeConfig,
    ) -> Result<Server, ServeError> {
        let backend = options.backend.name();
        let pool = EvalPool::start(sources, options, config.pool).map_err(ServeError::Start)?;
        let listener = TcpListener::bind(&config.addr).map_err(ServeError::Io)?;
        let addr = listener.local_addr().map_err(ServeError::Io)?;

        let shared = Arc::new(Shared {
            pool,
            stop: AtomicBool::new(false),
            addr,
            backend,
            counters: Counters::default(),
        });
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("urk-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared, &conns))
                .map_err(ServeError::Io)?
        };

        Ok(Server {
            shared,
            accept: Some(accept),
            conns,
        })
    }

    /// The bound address (the actual port when `addr` asked for `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Asks the server to stop: no new connections are accepted, live
    /// connections drain at their next poll tick. Idempotent; returns
    /// immediately — use [`Server::join`] to wait.
    pub fn stop(&self) {
        self.shared.request_stop();
    }

    /// Blocks until the server stops (a `shutdown` frame or
    /// [`Server::stop`]), then joins every connection thread and shuts
    /// the pool down gracefully (accepted work completes).
    pub fn join(mut self) {
        self.join_inner();
    }

    fn join_inner(&mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
            let handles: Vec<JoinHandle<()>> = {
                let mut conns = self.conns.lock().unwrap_or_else(|e| e.into_inner());
                conns.drain(..).collect()
            };
            for h in handles {
                let _ = h.join();
            }
            self.shared.pool.shutdown();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shared.request_stop();
        self.join_inner();
    }
}

/// Accepts until the stop flag rises. Each connection gets its own
/// thread; finished handles are reaped opportunistically so a
/// long-running server does not accumulate them.
fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let mut next_id: u64 = 0;
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            return; // `stream` is the wake-up connection (or a late client).
        }

        let handle = {
            let shared = Arc::clone(shared);
            std::thread::Builder::new()
                .name(format!("urk-serve-conn-{next_id}"))
                .spawn(move || serve_connection(stream, &shared))
        };
        next_id += 1;
        if let Ok(handle) = handle {
            let mut conns = conns.lock().unwrap_or_else(|e| e.into_inner());
            conns.retain(|h| !h.is_finished());
            conns.push(handle);
        }
    }
}

/// Reads exactly `buf.len()` bytes, polling the stop flag between
/// reads. Returns `Ok(false)` on a clean EOF **before any byte** (a
/// frame boundary) or when asked to stop at a frame boundary; a short
/// read mid-buffer is an error.
fn read_exact_polling(
    stream: &mut TcpStream,
    buf: &mut [u8],
    stop: &AtomicBool,
) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        if stop.load(Ordering::SeqCst) && filled == 0 {
            return Ok(false);
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF mid-frame",
                ))
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// As [`urk_io::read_frame`], but wakes every [`POLL`] to check the
/// stop flag so an idle connection cannot pin the server open.
fn read_frame_polling(
    stream: &mut TcpStream,
    stop: &AtomicBool,
) -> Result<Option<Vec<u8>>, FrameError> {
    let mut len_bytes = [0u8; 4];
    if !read_exact_polling(stream, &mut len_bytes, stop)? {
        return Ok(None);
    }
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len];
    if !read_exact_polling(stream, &mut payload, stop)? {
        return Err(FrameError::Io(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed mid-frame",
        )));
    }
    Ok(Some(payload))
}

/// Serves one client until it disconnects, the protocol becomes
/// untrustworthy, or the server stops.
fn serve_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL));
    let counters = &shared.counters;
    counters.connections.fetch_add(1, Ordering::Relaxed);

    loop {
        let payload = match read_frame_polling(&mut stream, &shared.stop) {
            Ok(Some(payload)) => payload,
            Ok(None) => break, // clean close (or server stop at a boundary)
            Err(FrameError::TooLarge(n)) => {
                // The stream can no longer be trusted: answer once, drop.
                counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let resp = Response::Error {
                    id: None,
                    message: format!("frame length {n} exceeds the {MAX_FRAME_LEN}-byte bound"),
                };
                let _ = write_frame(&mut stream, &resp.encode());
                break;
            }
            Err(FrameError::Io(_)) => break,
        };

        let request = match Request::decode(&payload) {
            Ok(req) => req,
            Err(e) => {
                // A bad payload costs one frame, never the connection.
                counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let resp = Response::Error {
                    id: salvage_id(&payload),
                    message: e.to_string(),
                };
                if write_frame(&mut stream, &resp.encode()).is_err() {
                    break;
                }
                continue;
            }
        };

        counters.requests.fetch_add(1, Ordering::Relaxed);
        let keep_going = match request {
            Request::Ping { id } => send(&mut stream, &Response::Pong { id }),
            Request::Stats { id } => send(&mut stream, &stats_response(shared, id)),
            Request::Shutdown { id } => {
                let _ = write_frame(&mut stream, &Response::ShuttingDown { id }.encode());
                shared.request_stop();
                false
            }
            Request::Batch {
                id,
                exprs,
                deadline_ms,
                max_steps,
                max_heap,
                max_stack,
            } => {
                let limits = JobLimits {
                    deadline: deadline_ms.map(Duration::from_millis),
                    max_steps,
                    max_heap: max_heap.map(|n| n as usize),
                    max_stack: max_stack.map(|n| n as usize),
                };
                serve_batch(&mut stream, shared, id, &exprs, limits)
            }
        };
        if !keep_going {
            break;
        }
    }

    counters.connections.fetch_sub(1, Ordering::Relaxed);
}

/// Admits a batch through [`EvalPool::try_submit`] and streams the
/// answers back in submission order. Returns `false` when the
/// connection died mid-stream.
fn serve_batch(
    stream: &mut TcpStream,
    shared: &Shared,
    id: u64,
    exprs: &[String],
    limits: JobLimits,
) -> bool {
    let counters = &shared.counters;
    let batch: SharedBatch<JobResult> = SharedBatch::new(exprs.len());
    let mut shed = vec![false; exprs.len()];

    // Admission pass: non-blocking. A full queue sheds the job — the
    // slot is fulfilled locally so the stream below never waits on it.
    for (index, src) in exprs.iter().enumerate() {
        match shared.pool.try_submit(src, limits.clone(), index, &batch) {
            Ok(()) => {
                counters.jobs_submitted.fetch_add(1, Ordering::Relaxed);
            }
            Err(SubmitError::QueueFull) => {
                shed[index] = true;
                counters.jobs_shed.fetch_add(1, Ordering::Relaxed);
                batch.fulfil(index, Err(crate::pool::PoolError("shed".to_string())));
            }
            Err(SubmitError::Closed) => {
                batch.fulfil(
                    index,
                    Err(crate::pool::PoolError("pool is shut down".to_string())),
                );
            }
        }
    }

    // Streaming pass: submission order, each answer as soon as ready.
    let mut shed_count: u64 = 0;
    for index in 0..exprs.len() {
        let resp = if shed[index] {
            shed_count += 1;
            Response::Overloaded {
                id,
                index: index as u64,
            }
        } else {
            match batch.take(index) {
                Ok(out) => {
                    counters.total_jobs.fetch_add(1, Ordering::Relaxed);
                    counters
                        .total_steps
                        .fetch_add(out.stats.steps, Ordering::Relaxed);
                    counters
                        .total_unboxed_hits
                        .fetch_add(out.stats.unboxed_hits, Ordering::Relaxed);
                    counters
                        .total_fused_steps
                        .fetch_add(out.stats.fused_steps, Ordering::Relaxed);
                    counters
                        .total_ic_hits
                        .fetch_add(out.stats.ic_hits, Ordering::Relaxed);
                    counters
                        .total_ic_misses
                        .fetch_add(out.stats.ic_misses, Ordering::Relaxed);
                    counters
                        .total_compile_micros
                        .fetch_add(out.stats.compile_micros, Ordering::Relaxed);
                    counters
                        .total_cache_hits
                        .fetch_add(out.stats.cache_hits, Ordering::Relaxed);
                    counters
                        .total_cache_misses
                        .fetch_add(out.stats.cache_misses, Ordering::Relaxed);
                    Response::Result {
                        id,
                        index: index as u64,
                        rendered: out.rendered,
                        exception: out.exception.map(|e| e.to_string()),
                        cache_hit: out.cache_hit,
                        attempts: u64::from(out.attempts),
                        timed_out: out.timed_out,
                        stats: WireStats {
                            steps: out.stats.steps,
                            allocations: out.stats.allocations,
                            unboxed_hits: out.stats.unboxed_hits,
                            fused_steps: out.stats.fused_steps,
                            ic_hits: out.stats.ic_hits,
                            ic_misses: out.stats.ic_misses,
                            compile_ops: out.stats.compile_ops,
                            compile_micros: out.stats.compile_micros,
                            cache_hits: out.stats.cache_hits,
                            cache_misses: out.stats.cache_misses,
                            backend: out.stats.backend.name().to_string(),
                            tier: out.stats.tier.name().to_string(),
                        },
                    }
                }
                Err(e) => Response::JobError {
                    id,
                    index: index as u64,
                    message: e.to_string(),
                },
            }
        };
        if write_frame(stream, &resp.encode()).is_err() {
            // The client went away mid-stream. Drain the remaining
            // slots so in-flight workers aren't left fulfilling a batch
            // nobody reads (harmless either way — SharedBatch is
            // refcounted — but draining keeps the accounting exact).
            for (rest, was_shed) in shed.iter().enumerate().skip(index + 1) {
                if !was_shed {
                    let _ = batch.take(rest);
                }
            }
            return false;
        }
    }

    send(
        stream,
        &Response::BatchDone {
            id,
            jobs: exprs.len() as u64,
            shed: shed_count,
        },
    )
}

/// Builds the `stats` snapshot from the pool, the shared cache, and the
/// server's own counters.
fn stats_response(shared: &Shared, id: u64) -> Response {
    let counters = &shared.counters;
    let cache = shared.pool.cache_stats();
    Response::Stats {
        id,
        workers: shared.pool.worker_count() as u64,
        queue_depth: shared.pool.queue_depth() as u64,
        queue_cap: shared.pool.queue_cap() as u64,
        connections: counters.connections.load(Ordering::Relaxed),
        requests: counters.requests.load(Ordering::Relaxed),
        jobs_submitted: counters.jobs_submitted.load(Ordering::Relaxed),
        jobs_shed: counters.jobs_shed.load(Ordering::Relaxed),
        protocol_errors: counters.protocol_errors.load(Ordering::Relaxed),
        backend: shared.backend.to_string(),
        cache: WireCacheStats {
            hits: cache.hits,
            misses: cache.misses,
            evictions: cache.evictions,
            insertions: cache.insertions,
            entries: cache.entries as u64,
            capacity: cache.capacity as u64,
            hit_rate: cache.hit_rate(),
        },
        totals: WireTotals {
            jobs: counters.total_jobs.load(Ordering::Relaxed),
            steps: counters.total_steps.load(Ordering::Relaxed),
            unboxed_hits: counters.total_unboxed_hits.load(Ordering::Relaxed),
            fused_steps: counters.total_fused_steps.load(Ordering::Relaxed),
            ic_hits: counters.total_ic_hits.load(Ordering::Relaxed),
            ic_misses: counters.total_ic_misses.load(Ordering::Relaxed),
            compile_micros: counters.total_compile_micros.load(Ordering::Relaxed),
            cache_hits: counters.total_cache_hits.load(Ordering::Relaxed),
            cache_misses: counters.total_cache_misses.load(Ordering::Relaxed),
        },
    }
}

fn send(stream: &mut TcpStream, resp: &Response) -> bool {
    write_frame(stream, &resp.encode()).is_ok()
}

/// Pulls a best-effort `id` out of a payload that failed to decode, so
/// the error response can still be matched to its request.
fn salvage_id(payload: &[u8]) -> Option<u64> {
    let text = std::str::from_utf8(payload).ok()?;
    parse_json(text).ok()?.get("id").and_then(Json::as_u64)
}

// ---------------------------------------------------------------------
// A minimal blocking client, used by the load generator and the tests
// (and handy for scripting against a live server).
// ---------------------------------------------------------------------

/// One answer to a batched expression, as seen by a [`Client`].
#[derive(Clone, Debug, PartialEq)]
pub enum RemoteOutcome {
    /// The job finished; fields mirror [`Response::Result`].
    Done {
        rendered: String,
        exception: Option<String>,
        cache_hit: bool,
        timed_out: bool,
    },
    /// The job failed with a front-end or pool error.
    Failed(String),
    /// The job was load-shed at admission (queue full).
    Overloaded,
}

/// A blocking client for one `urk serve` connection.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Transport errors from `TcpStream::connect`.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream, next_id: 0 })
    }

    fn fresh_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    /// Sends one raw request and reads one raw response frame.
    ///
    /// # Errors
    ///
    /// Transport or protocol errors.
    pub fn round_trip(&mut self, req: &Request) -> io::Result<Response> {
        write_frame(&mut self.stream, &req.encode())?;
        self.read_response()
    }

    fn read_response(&mut self) -> io::Result<Response> {
        let payload = read_frame(&mut self.stream)
            .map_err(|e| io::Error::other(e.to_string()))?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))?;
        Response::decode(&payload).map_err(|e| io::Error::other(e.to_string()))
    }

    /// Evaluates a batch with optional per-request limits, collecting
    /// the streamed responses into submission-order outcomes.
    ///
    /// # Errors
    ///
    /// Transport/protocol errors, or a stream that violates the
    /// protocol (wrong id, out-of-range index, missing `batch_done`).
    pub fn eval_batch(
        &mut self,
        exprs: &[&str],
        deadline_ms: Option<u64>,
    ) -> io::Result<Vec<RemoteOutcome>> {
        let id = self.fresh_id();
        let req = Request::Batch {
            id,
            exprs: exprs.iter().map(|s| (*s).to_string()).collect(),
            deadline_ms,
            max_steps: None,
            max_heap: None,
            max_stack: None,
        };
        write_frame(&mut self.stream, &req.encode())?;

        let mut out: Vec<Option<RemoteOutcome>> = vec![None; exprs.len()];
        loop {
            let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
            match self.read_response()? {
                Response::Result {
                    id: rid,
                    index,
                    rendered,
                    exception,
                    cache_hit,
                    timed_out,
                    ..
                } => {
                    if rid != id {
                        return Err(bad("response id mismatch"));
                    }
                    let slot = out
                        .get_mut(index as usize)
                        .ok_or_else(|| bad("result index out of range"))?;
                    *slot = Some(RemoteOutcome::Done {
                        rendered,
                        exception,
                        cache_hit,
                        timed_out,
                    });
                }
                Response::JobError {
                    id: rid,
                    index,
                    message,
                } => {
                    if rid != id {
                        return Err(bad("response id mismatch"));
                    }
                    let slot = out
                        .get_mut(index as usize)
                        .ok_or_else(|| bad("result index out of range"))?;
                    *slot = Some(RemoteOutcome::Failed(message));
                }
                Response::Overloaded { id: rid, index } => {
                    if rid != id {
                        return Err(bad("response id mismatch"));
                    }
                    let slot = out
                        .get_mut(index as usize)
                        .ok_or_else(|| bad("result index out of range"))?;
                    *slot = Some(RemoteOutcome::Overloaded);
                }
                Response::BatchDone { id: rid, .. } => {
                    if rid != id {
                        return Err(bad("response id mismatch"));
                    }
                    return out
                        .into_iter()
                        .collect::<Option<Vec<_>>>()
                        .ok_or_else(|| bad("batch_done before every result"));
                }
                Response::Error { message, .. } => return Err(io::Error::other(message)),
                _ => return Err(bad("unexpected response type mid-batch")),
            }
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Transport/protocol errors, or a non-pong answer.
    pub fn ping(&mut self) -> io::Result<()> {
        let id = self.fresh_id();
        match self.round_trip(&Request::Ping { id })? {
            Response::Pong { id: rid } if rid == id => Ok(()),
            other => Err(io::Error::other(format!("expected pong, got {other:?}"))),
        }
    }

    /// Fetches the server's `stats` snapshot.
    ///
    /// # Errors
    ///
    /// Transport/protocol errors, or a non-stats answer.
    pub fn stats(&mut self) -> io::Result<Response> {
        let id = self.fresh_id();
        match self.round_trip(&Request::Stats { id })? {
            resp @ Response::Stats { .. } => Ok(resp),
            other => Err(io::Error::other(format!("expected stats, got {other:?}"))),
        }
    }

    /// Asks the server to shut down gracefully.
    ///
    /// # Errors
    ///
    /// Transport/protocol errors, or a refusal.
    pub fn shutdown(&mut self) -> io::Result<()> {
        let id = self.fresh_id();
        match self.round_trip(&Request::Shutdown { id })? {
            Response::ShuttingDown { id: rid } if rid == id => Ok(()),
            other => Err(io::Error::other(format!(
                "expected shutting_down, got {other:?}"
            ))),
        }
    }

    /// Sends raw bytes as one frame and reads one response — the tests'
    /// hook for malformed-payload goldens.
    ///
    /// # Errors
    ///
    /// Transport/protocol errors.
    pub fn send_raw(&mut self, payload: &[u8]) -> io::Result<Response> {
        write_frame(&mut self.stream, payload)?;
        self.read_response()
    }
}
