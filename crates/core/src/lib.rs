//! # urk — imprecise exceptions for a lazy language
//!
//! A production-quality reproduction of **"A Semantics for Imprecise
//! Exceptions"** (Peyton Jones, Reid, Hoare, Marlow, Henderson — PLDI
//! 1999), built around a small lazy functional language called **Urk**
//! (after the paper's favourite error message).
//!
//! The paper's design, all of it executable here:
//!
//! * exceptions are **values**: `raise :: Exception -> a` makes every type
//!   contain exceptional values (§3.1);
//! * an exceptional value denotes a **set** of exceptions, so the rich
//!   transformation algebra of a lazy language survives (§3.4, §4);
//! * `getException :: a -> IO (ExVal a)` confines the choice of a single
//!   representative to the IO monad (§3.5);
//! * the implementation is the classic **stack-trimming** machine (§3.3),
//!   with asynchronous exceptions (§5.1), detectable black holes (§5.2),
//!   and `mapException`/`unsafeIsException` (§5.4).
//!
//! # Quick start
//!
//! ```
//! use urk::Session;
//!
//! let mut session = Session::new(); // Prelude loaded
//! session.load("half n = 100 / n")?;
//!
//! // Ordinary evaluation on the graph-reduction machine:
//! assert_eq!(session.eval("half 4")?.rendered, "25");
//!
//! // The paper's headline: the *denotation* carries both exceptions …
//! let set = session
//!     .exception_set(r#"(1/0) + error "Urk""#)?
//!     .expect("exceptional");
//! assert!(set.contains(&urk::Exception::DivideByZero));
//! assert!(set.contains(&urk::Exception::UserError("Urk".into())));
//!
//! // … while the machine reports the representative it met first:
//! let out = session.eval(r#"(1/0) + error "Urk""#)?;
//! assert_eq!(out.exception, Some(urk::Exception::DivideByZero));
//! # Ok::<(), urk::Error>(())
//! ```
//!
//! # Crate map
//!
//! | layer | crate |
//! |---|---|
//! | syntax, desugaring, match compiler | `urk-syntax` |
//! | Hindley–Milner types | `urk-types` |
//! | denotational semantics (+ rejected baselines) | `urk-denot` |
//! | graph-reduction machine | `urk-machine` |
//! | IO transition system | `urk-io` |
//! | transformations, strictness, law validator | `urk-transform` |

pub mod cache;
pub mod error;
pub mod pool;
pub mod serve;
pub mod session;
pub mod soak;
pub mod supervise;

pub use cache::{cache_key, CacheKey, CacheStats, CachedEval, ResultCache};
pub use error::Error;
pub use pool::{EvalPool, JobLimits, JobOutcome, JobResult, PoolConfig, PoolError, SubmitError};
pub use serve::{Client, RemoteOutcome, ServeConfig, ServeError, Server};
pub use session::{tier2_facts_for, EvalResult, Options, Session};
pub use soak::{run_soak, SoakConfig, SoakReport};
pub use supervise::{SupervisedResult, Supervisor};

// The vocabulary users need, re-exported.
pub use urk_analysis::{analyze_program, Analysis, Diagnostic, Effect, LintCode};
pub use urk_denot::{Denot, DenotConfig, ExnSet, Verdict};
pub use urk_io::ChaosReport;
pub use urk_io::{Event, IoResult, RunOutcome, SemIoResult, SemRunOutcome, Trace};
pub use urk_machine::{
    tier2_optimize, Backend, BlackholeMode, Code, FaultPlan, InterruptHandle, MachineConfig,
    MachineError, OrderPolicy, Stats, Tier, Tier2Facts,
};
pub use urk_syntax::Exception;
pub use urk_transform::{classify_all, render_table, LawReport};

/// The Prelude source, embedded at build time.
pub fn prelude_source() -> &'static str {
    include_str!("../prelude.urk")
}

#[cfg(test)]
mod tests {
    use super::*;
    use urk_io::SemIoResult;

    #[test]
    fn session_loads_the_prelude_and_evaluates() {
        let s = Session::new();
        assert_eq!(s.eval("sum [1 .. 10]").expect("evals").rendered, "55");
        assert_eq!(
            s.eval("map (\\x -> x * x) [1, 2, 3]")
                .expect("evals")
                .rendered,
            "Cons 1 (Cons 4 (Cons 9 Nil))"
        );
        assert_eq!(
            s.eval("sort [3, 1, 2]").expect("evals").rendered,
            "Cons 1 (Cons 2 (Cons 3 Nil))"
        );
    }

    #[test]
    fn prelude_error_is_the_paper_definition() {
        let s = Session::new();
        let out = s.eval(r#"error "Urk""#).expect("evals");
        assert_eq!(out.exception, Some(Exception::UserError("Urk".into())));
    }

    #[test]
    fn headline_denotation_and_machine_choice() {
        let s = Session::new();
        let set = s
            .exception_set(r#"(1/0) + error "Urk""#)
            .expect("evals")
            .expect("exceptional");
        assert!(set.contains(&Exception::DivideByZero));
        assert!(set.contains(&Exception::UserError("Urk".into())));
        let out = s.eval(r#"(1/0) + error "Urk""#).expect("evals");
        assert!(matches!(
            out.exception,
            Some(ref e) if set.contains(e)
        ));
    }

    #[test]
    fn zipwith_examples_from_section_3_2() {
        let s = Session::new();
        assert_eq!(
            s.eval("zipWith (+) [] [1]").expect("evals").rendered,
            "(raise UserError \"Unequal lists\")"
        );
        assert_eq!(
            s.eval("zipWith (/) [1, 2] [1, 0]").expect("evals").rendered,
            "Cons 1 (Cons (raise DivideByZero) Nil)"
        );
        // §3.2: forcing the whole structure flushes the exception out.
        let forced = s
            .eval("forceList (zipWith (/) [1, 2] [1, 0])")
            .expect("evals");
        assert_eq!(forced.exception, Some(Exception::DivideByZero));
    }

    #[test]
    fn loop_from_the_prelude_is_bottom() {
        let mut s = Session::new();
        s.options.denot.fuel = 50_000;
        let set = s.exception_set("loop").expect("evals").expect("bottom");
        assert!(set.is_all());
    }

    #[test]
    fn type_queries_work() {
        let s = Session::new();
        assert_eq!(s.type_of("map").expect("types"), "(a -> b) -> [a] -> [b]");
        assert_eq!(
            s.type_of("getException (head [1])").expect("types"),
            "IO (ExVal Int)"
        );
        assert_eq!(
            s.type_of_binding("zipWith").expect("bound"),
            "(a -> b -> c) -> [a] -> [b] -> [c]"
        );
    }

    #[test]
    fn run_main_machine_and_semantic() {
        let mut s = Session::new();
        s.load("main = do\n  c <- getChar\n  putChar c\n  putStr \"!\"\n  return 7")
            .expect("loads");
        let out = s.run_main("q").expect("runs");
        assert!(matches!(out.result, urk_io::IoResult::Done(ref v) if v == "7"));
        assert_eq!(out.trace.output(), "q!");

        let sem = s.run_main_semantic("q", 0).expect("runs");
        assert!(matches!(sem.result, SemIoResult::Done(ref v) if v == "7"));
        assert_eq!(sem.trace.output(), "q!");
    }

    #[test]
    fn duplicate_definitions_are_rejected_across_loads() {
        let mut s = Session::new();
        s.load("f x = x").expect("loads");
        let err = s.load("f x = x + 1").expect_err("duplicate");
        assert!(matches!(err, Error::DuplicateDefinition(_)));
        // Redefining a Prelude name is also rejected.
        let err2 = s.load("map f xs = xs").expect_err("duplicate");
        assert!(matches!(err2, Error::DuplicateDefinition(_)));
    }

    #[test]
    fn type_errors_are_reported_on_load_and_eval() {
        let mut s = Session::new();
        assert!(matches!(
            s.load("bad = 1 + 'c'").expect_err("ill-typed"),
            Error::Type(_)
        ));
        assert!(matches!(
            s.eval("head 3").expect_err("ill-typed"),
            Error::Type(_)
        ));
    }

    #[test]
    fn strictness_of_prelude_functions() {
        let s = Session::new();
        let sigs = s.strictness();
        let sig = |n: &str| sigs[&urk_syntax::Symbol::intern(n)].clone();
        // length is strict in its list; const is lazy in its second arg.
        assert_eq!(sig("length"), vec![true]);
        assert_eq!(sig("const"), vec![true, false]);
        // sum forces the list (via foldl's application chain) — at least
        // the analysis must be *sound*, so just check arity here.
        assert_eq!(sig("sum").len(), 1);
    }

    #[test]
    fn law_tables_are_exported_through_the_facade() {
        let reports = classify_all();
        assert!(reports.len() >= 14);
        let table = render_table(&reports);
        assert!(table.contains("plus-commute-exceptional"));
    }

    #[test]
    fn lazy_infinite_structures_work_through_the_prelude() {
        let s = Session::new();
        assert_eq!(
            s.eval("take 5 (iterate (\\x -> x * 2) 1)")
                .expect("evals")
                .rendered,
            "Cons 1 (Cons 2 (Cons 4 (Cons 8 (Cons 16 Nil))))"
        );
        assert_eq!(s.eval("head (repeat 9)").expect("evals").rendered, "9");
    }

    #[test]
    fn options_control_the_machine_policy() {
        let mut s = Session::new();
        s.options.machine.order = OrderPolicy::RightToLeft;
        let out = s.eval(r#"(1/0) + error "Urk""#).expect("evals");
        assert_eq!(out.exception, Some(Exception::UserError("Urk".into())));
    }

    #[test]
    fn optimizer_preserves_prelude_behaviour() {
        let mut s = Session::new();
        s.load("quad x = double (double x)\ndouble x = x + x")
            .expect("loads");
        let before = s.eval("quad 10 + sum [1 .. 20]").expect("evals").rendered;
        let report = s.optimize().expect("optimizes and re-typechecks");
        assert!(report.total_rewrites() > 0);
        let after = s.eval("quad 10 + sum [1 .. 20]").expect("evals").rendered;
        assert_eq!(before, after);
    }

    #[test]
    fn validated_optimization_reports_verdicts() {
        let mut s = Session::new();
        s.load("risky n = (\\u -> u + u) (100 / n)").expect("loads");
        let report = s
            .optimize_validated(&["risky 5", "risky 0", "zipWith (+) [] [1]"])
            .expect("optimizes");
        assert_eq!(report.validation.len(), 3);
        assert!(report.validated(), "{:?}", report.validation);
    }

    #[test]
    fn unsafe_get_exception_is_pure_and_policy_dependent() {
        // §6: a pure getException would break referential transparency
        // across "recompilations" — demonstrate exactly that.
        let mut s = Session::new();
        let src = r#"case unsafeGetException ((1/0) + error "Urk") of
                       { OK v -> "ok" ; Bad DivideByZero -> "div" ; Bad e -> "urk" }"#;
        assert_eq!(s.type_of(src).expect("types"), "Str");
        assert_eq!(s.eval(src).expect("evals").rendered, "\"div\"");
        s.options.machine.order = OrderPolicy::RightToLeft;
        assert_eq!(s.eval(src).expect("evals").rendered, "\"urk\"");
        // The denotational evaluator's deterministic choice is the least
        // member — one fixed resolution of the obligation.
        assert_eq!(s.denot_show(src, 4).expect("evals"), "\"div\"");
    }

    #[test]
    fn match_warnings_flag_partial_functions() {
        let mut s = Session::new();
        s.load("total b = case b of { True -> 1; False -> 2 }\npartial (Just x) = x")
            .expect("loads");
        let w = s.match_warnings();
        // Prelude partial functions and the new one appear; the total
        // function does not.
        assert!(w.contains(&"head".to_string()), "{w:?}");
        assert!(w.contains(&"tail".to_string()));
        // zipWith is *total by equations* (its third clause catches
        // everything), so it does not warn.
        assert!(!w.contains(&"zipWith".to_string()));
        assert!(w.contains(&"partial".to_string()));
        assert!(!w.contains(&"total".to_string()));
    }

    #[test]
    fn run_action_performs_named_io_bindings() {
        let mut s = Session::new();
        s.load(r#"greet = putStr "hi" >> return 1"#).expect("loads");
        let out = s.run_action("greet", "").expect("runs");
        assert_eq!(out.trace.output(), "hi");
        assert!(matches!(
            s.run_action("nope", ""),
            Err(Error::MissingBinding(_))
        ));
    }

    #[test]
    fn get_exception_wraps_function_values_too() {
        // §3.5: getException evaluates to WHNF only; a lambda is a normal
        // value even when *applying* it would raise.
        let mut s = Session::new();
        s.load(
            r#"bomb = 1 / 0
mkf = \x -> x + bomb
main = do
  v <- getException mkf
  case v of
    OK f  -> putStr "caught a function"
    Bad e -> putStr "exception""#,
        )
        .expect("loads");
        let out = s.run_main("").expect("runs");
        assert_eq!(out.trace.output(), "caught a function");
    }

    #[test]
    fn bare_sessions_have_no_prelude() {
        let s = Session::bare();
        assert!(s.eval("sum [1]").is_err());
        assert_eq!(s.eval("1 + 1").expect("evals").rendered, "2");
    }
}
