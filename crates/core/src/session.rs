//! The [`Session`]: the whole pipeline behind one handle.
//!
//! A session owns the data-type environment, the Prelude plus any loaded
//! user programs (as one recursive top-level group), and the inferred type
//! environment. Expressions can then be evaluated on the machine
//! ([`Session::eval`]), denotationally ([`Session::denot_show`],
//! [`Session::exception_set`]), or performed as IO
//! ([`Session::run_main`], [`Session::run_main_semantic`]).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use urk_denot::{show_denot, Denot, DenotConfig, DenotEvaluator, Env as DEnv, ExnSet, Thunk};
use urk_io::{
    run_denot, run_machine, AsyncSchedule, ExceptionOracle, RunOutcome, SeededOracle,
    SemRunOutcome, StringInput,
};
use urk_machine::{
    compile_program, tier2_optimize_certified, validate_tier2, Backend, Code, FactVal, GlobalFact,
    MEnv, Machine, MachineConfig, Outcome, Stats, Tier, Tier2Facts,
};
use urk_syntax::core::{CoreProgram, Expr};
use urk_syntax::{
    desugar_expr, desugar_program, parse_expr_src, parse_program, DataEnv, Exception, Symbol,
};
use urk_types::{infer_expr, infer_program, Scheme};

use crate::error::Error;
use crate::prelude_source;

/// Pipeline options.
#[derive(Clone, Debug)]
pub struct Options {
    /// Configuration for machine evaluation (evaluation-order policy,
    /// black holes, limits, async schedule).
    pub machine: MachineConfig,
    /// Configuration for denotational evaluation (fuel, depth, the
    /// `unsafeIsException` denotation).
    pub denot: DenotConfig,
    /// Type-check loaded programs and evaluated expressions (default on;
    /// the evaluators assume well-typed input).
    pub typecheck: bool,
    /// How deep [`Session::eval`] renders a value result (default 32).
    /// Batch and server callers lower this to bound output size per
    /// request; the serving cache keys on it, since the rendered string
    /// is part of the cached answer.
    pub render_depth: u32,
    /// Which execution engine machine evaluations run on: the
    /// tree-walking interpreter (default) or the flat-code compiled
    /// backend. Both implement the same semantics; the compiled backend
    /// trades a one-time lowering of the program for cheaper dispatch
    /// on every step.
    pub backend: Backend,
    /// Which optimisation tier the compiled backend runs at. Tier 1 is
    /// the direct lowering; tier 2 reruns the exception-effect analysis
    /// and uses its summaries as a *license* to fuse WHNF-safe regions
    /// into superinstructions, speculate lazy bindings, and patch
    /// monomorphic inline caches into known-global call sites. Ignored
    /// by the tree backend.
    pub tier: Tier,
    /// Translation-validate every tier-2 compilation before linking it:
    /// audit the analysis facts against a fresh recomputation, then walk
    /// the tier-1/tier-2 arenas in lockstep discharging the certificate.
    /// On by default in debug builds, opt-in (`--validate-tier2`) in
    /// release. Like `verify_code`, a pure pass/panic gate that cannot
    /// change an answer — excluded from serving-cache keys.
    pub validate_tier2: bool,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            machine: MachineConfig::default(),
            denot: DenotConfig::default(),
            typecheck: true,
            render_depth: 32,
            backend: Backend::Tree,
            tier: Tier::One,
            validate_tier2: cfg!(debug_assertions),
        }
    }
}

/// The result of one machine evaluation.
#[derive(Clone, Debug)]
pub struct EvalResult {
    /// The value rendered to [`Options::render_depth`], or `(raise E)`
    /// for an uncaught exception.
    pub rendered: String,
    /// The representative exception, if evaluation raised.
    pub exception: Option<Exception>,
    /// Machine counters for this evaluation.
    pub stats: Stats,
}

/// A compiler/interpreter session.
pub struct Session {
    data: DataEnv,
    program: CoreProgram,
    types: HashMap<Symbol, Scheme>,
    /// The program lowered to flat code, compiled on first use and
    /// invalidated whenever the program changes — tagged with the tier
    /// it was compiled at, so switching [`Options::tier`] between calls
    /// recompiles instead of serving the other tier's image. Shared
    /// (`Arc`) so the pool can hand one compiled image to every worker.
    compiled: RefCell<Option<(Tier, Arc<Code>)>>,
    /// How many leading bindings are the Prelude's, so user-facing
    /// diagnostics ([`Session::lint`]) skip them.
    prelude_len: usize,
    /// Pipeline options (freely adjustable between calls).
    pub options: Options,
}

impl Default for Session {
    fn default() -> Session {
        Session::new()
    }
}

impl Session {
    /// A session with the Prelude loaded.
    ///
    /// # Panics
    ///
    /// Panics if the embedded Prelude fails to compile — a build error of
    /// this crate, not a user condition.
    pub fn new() -> Session {
        let mut s = Session::bare();
        s.load(prelude_source())
            .expect("the embedded Prelude must compile");
        s.prelude_len = s.program.binds.len();
        s
    }

    /// A session *without* the Prelude (used by tests and the law
    /// validator, which work on closed terms).
    pub fn bare() -> Session {
        Session {
            data: DataEnv::new(),
            program: CoreProgram::default(),
            types: HashMap::new(),
            compiled: RefCell::new(None),
            prelude_len: 0,
            options: Options::default(),
        }
    }

    /// Loads a program: `data` declarations and bindings are added to the
    /// session, and the combined program is re-type-checked.
    ///
    /// # Errors
    ///
    /// Syntax, desugaring, duplicate-definition, or type errors.
    pub fn load(&mut self, src: &str) -> Result<(), Error> {
        let parsed = parse_program(src)?;
        let new = desugar_program(&parsed, &mut self.data)?;
        for (name, _) in &new.binds {
            if self.program.binds.iter().any(|(n, _)| n == name) {
                return Err(Error::DuplicateDefinition(name.as_str()));
            }
        }
        self.program.binds.extend(new.binds);
        self.program.sigs.extend(new.sigs);
        self.compiled.replace(None);
        if self.options.typecheck {
            self.types = infer_program(&self.program, &self.data)?;
        }
        Ok(())
    }

    /// The data-type environment.
    pub fn data(&self) -> &DataEnv {
        &self.data
    }

    /// The combined core program (Prelude + loads).
    pub fn program(&self) -> &CoreProgram {
        &self.program
    }

    /// The inferred scheme of a top-level binding, rendered.
    pub fn type_of_binding(&self, name: &str) -> Option<String> {
        self.types
            .get(&Symbol::intern(name))
            .map(|s| s.ty.to_string())
    }

    /// Parses, desugars and (optionally) type-checks an expression against
    /// the session program.
    ///
    /// # Errors
    ///
    /// Syntax, desugaring, or type errors.
    pub fn compile_expr(&self, src: &str) -> Result<Rc<Expr>, Error> {
        let surface = parse_expr_src(src)?;
        let core = desugar_expr(&surface, &self.data)?;
        if self.options.typecheck {
            infer_expr(&core, &self.data, &self.types)?;
        }
        Ok(Rc::new(core))
    }

    /// The inferred type of an expression, rendered.
    ///
    /// # Errors
    ///
    /// Syntax, desugaring, or type errors.
    pub fn type_of(&self, src: &str) -> Result<String, Error> {
        let surface = parse_expr_src(src)?;
        let core = desugar_expr(&surface, &self.data)?;
        let t = infer_expr(&core, &self.data, &self.types)?;
        Ok(t.to_string())
    }

    /// A fresh machine with the session program bound; returns the
    /// machine and its global environment.
    pub fn machine(&self) -> (Machine, MEnv) {
        let mut m = Machine::new(self.options.machine.clone());
        let env = m.bind_recursive(&self.program.binds, &MEnv::empty());
        (m, env)
    }

    /// The session program lowered to flat code, compiling it on first
    /// use and caching the result until the program changes
    /// ([`Session::load`] and the optimisation passes invalidate it).
    /// The returned `Arc` is the image every compiled-backend machine
    /// links; the pool shares one across all workers.
    pub fn compiled_code(&self) -> Arc<Code> {
        let tier = self.options.tier;
        if let Some((cached_tier, code)) = self.compiled.borrow().as_ref() {
            if *cached_tier == tier {
                return Arc::clone(code);
            }
        }
        let base = compile_program(&self.program.binds);
        let code = match tier {
            Tier::One => Arc::new(base),
            Tier::Two => {
                let facts = self.tier2_facts();
                let (t2, cert) = tier2_optimize_certified(&base, &facts);
                if self.options.validate_tier2 {
                    // Audit the facts against a fresh analysis, then
                    // discharge the certificate against freshly reshaped
                    // facts — nothing the optimiser consumed is trusted.
                    let claimed = self.analyze().binding_facts(&self.program.binds);
                    if let Err(e) =
                        urk_analysis::audit_binding_facts(&self.program, &self.data, &claimed)
                    {
                        panic!("refusing to link an unvalidated tier-2 image: {e}");
                    }
                    let fresh = tier2_facts_for(self.analyze(), &self.program.binds);
                    if let Err(e) = validate_tier2(&base, &t2, &cert, &fresh) {
                        panic!("refusing to link an unvalidated tier-2 image: {e}");
                    }
                }
                Arc::new(t2)
            }
        };
        self.compiled.replace(Some((tier, Arc::clone(&code))));
        code
    }

    /// The analysis summaries of the session program in the shape the
    /// tier-2 pass consumes: one fact per global, in program order.
    fn tier2_facts(&self) -> Tier2Facts {
        tier2_facts_for(self.analyze(), &self.program.binds)
    }

    /// Whether the program is already lowered *at the current tier* —
    /// i.e. whether the next compiled-backend evaluation will reuse a
    /// cached image rather than paying the lowering cost.
    pub fn has_compiled_code(&self) -> bool {
        self.compiled
            .borrow()
            .as_ref()
            .is_some_and(|(tier, _)| *tier == self.options.tier)
    }

    /// Installs an already-compiled image of the session program, so
    /// pool workers reuse the probe session's single `Arc<Code>` instead
    /// of each lowering the same program again. The caller must ensure
    /// `code` was compiled from an identical program (the pool loads
    /// every worker from the same sources); the image carries its own
    /// tier tag.
    pub fn set_compiled_code(&self, code: Arc<Code>) {
        let tier = if code.is_tier2() {
            Tier::Two
        } else {
            Tier::One
        };
        self.compiled.replace(Some((tier, code)));
    }

    /// A fresh machine with the compiled program linked (globals
    /// allocated and rooted), ready for [`Machine::eval_code_expr`].
    pub fn compiled_machine(&self) -> Machine {
        let mut m = Machine::new(self.options.machine.clone());
        m.link_code(self.compiled_code());
        m
    }

    /// Evaluates an expression on the machine (no catch mark: an
    /// exception is reported as uncaught), on whichever backend
    /// [`Options::backend`] selects.
    ///
    /// # Errors
    ///
    /// Front-end errors, or [`Error::Machine`] on hard limits.
    pub fn eval(&self, src: &str) -> Result<EvalResult, Error> {
        let e = self.compile_expr(src)?;
        // If this evaluation is the one that pays the program's one-time
        // lowering cost, stamp that cost onto its stats below.
        let first_compile = self.options.backend == Backend::Compiled && !self.has_compiled_code();
        let (mut m, out) = match self.options.backend {
            Backend::Tree => {
                let (mut m, env) = self.machine();
                let out = m.eval(e, &env, false);
                (m, out)
            }
            Backend::Compiled => {
                let mut m = self.compiled_machine();
                let out = m.eval_code_expr(&e, false);
                (m, out)
            }
        };
        // An aborted run still burned steps and allocations; carry the
        // counters into the error so hitting a limit is diagnosable.
        let out = match out {
            Ok(out) => out,
            Err(error) => {
                return Err(Error::Machine {
                    error,
                    stats: Some(Box::new(m.stats().clone())),
                })
            }
        };
        let mut stats = m.stats().clone();
        if first_compile {
            let code = self.compiled_code();
            stats.compile_ops += code.compile_ops();
            stats.compile_micros += code.compile_micros();
        }
        Ok(match out {
            Outcome::Value(n) => EvalResult {
                rendered: m.render(n, self.options.render_depth),
                exception: None,
                stats,
            },
            Outcome::Caught(exn) | Outcome::Uncaught(exn) => EvalResult {
                rendered: format!("(raise {exn})"),
                exception: Some(exn),
                stats,
            },
        })
    }

    /// A denotational evaluator over the session's data environment.
    pub fn denot_evaluator(&self) -> DenotEvaluator<'_> {
        DenotEvaluator::with_config(&self.data, self.options.denot.clone())
    }

    /// Evaluates an expression denotationally and returns the denotation
    /// rendered to `depth`.
    ///
    /// # Errors
    ///
    /// Front-end errors.
    pub fn denot_show(&self, src: &str, depth: u32) -> Result<String, Error> {
        let e = self.compile_expr(src)?;
        let ev = self.denot_evaluator();
        let env = ev.bind_recursive(&self.program.binds, &DEnv::empty());
        let d = ev.eval(&e, &env);
        Ok(show_denot(&ev, &d, depth))
    }

    /// The *exception set* an expression denotes — `None` for a normal
    /// value. This is the paper's `S(·)` observed at the top level.
    ///
    /// # Errors
    ///
    /// Front-end errors.
    pub fn exception_set(&self, src: &str) -> Result<Option<ExnSet>, Error> {
        let e = self.compile_expr(src)?;
        let ev = self.denot_evaluator();
        let env = ev.bind_recursive(&self.program.binds, &DEnv::empty());
        match ev.eval(&e, &env) {
            Denot::Ok(_) => Ok(None),
            Denot::Bad(s) => Ok(Some(s)),
        }
    }

    /// Runs the differential chaos check on an expression: a seeded
    /// [`urk_io::chaos`] fault plan is injected into a machine evaluation
    /// and the outcome is verified against the denotational oracle (see
    /// the module docs for the two invariants). The session's machine and
    /// denot options are used as the baseline configuration.
    ///
    /// # Errors
    ///
    /// Front-end errors.
    pub fn chaos_check(&self, src: &str, seed: u64) -> Result<urk_io::ChaosReport, Error> {
        let e = self.compile_expr(src)?;
        Ok(match self.options.backend {
            Backend::Tree => urk_io::chaos_run(
                &self.data,
                &self.program.binds,
                &e,
                &self.options.machine,
                self.options.denot.fuel,
                seed,
            ),
            Backend::Compiled => urk_io::chaos_run_compiled(
                &self.data,
                &self.program.binds,
                &self.compiled_code(),
                &e,
                &self.options.machine,
                self.options.denot.fuel,
                seed,
            ),
        })
    }

    /// Performs `main` on the machine with the given input.
    ///
    /// # Errors
    ///
    /// [`Error::MissingBinding`] if `main` is not defined, plus front-end
    /// errors.
    pub fn run_main(&self, input: &str) -> Result<RunOutcome, Error> {
        self.run_action("main", input)
    }

    /// Performs a named IO binding on the machine.
    ///
    /// # Errors
    ///
    /// As [`Session::run_main`].
    pub fn run_action(&self, name: &str, input: &str) -> Result<RunOutcome, Error> {
        let sym = Symbol::intern(name);
        if self.program.lookup(sym).is_none() {
            return Err(Error::MissingBinding(name.into()));
        }
        let (mut m, env) = self.machine();
        let mut inp = StringInput::new(input);
        Ok(run_machine(&mut m, &env, Rc::new(Expr::Var(sym)), &mut inp))
    }

    /// Performs `main` as the root of a cooperative thread group
    /// (`forkIO`/`yield`, the §4.4 concurrency extension) on the machine.
    ///
    /// # Errors
    ///
    /// As [`Session::run_main`].
    pub fn run_main_concurrent(&self, input: &str) -> Result<urk_io::ConcurrentOutcome, Error> {
        let sym = Symbol::intern("main");
        if self.program.lookup(sym).is_none() {
            return Err(Error::MissingBinding("main".into()));
        }
        let (mut m, env) = self.machine();
        let root = m.alloc_expr(&Rc::new(Expr::Var(sym)), &env);
        let mut inp = StringInput::new(input);
        Ok(urk_io::run_concurrent(&mut m, root, &mut inp))
    }

    /// Performs `main` under the semantic LTS with a seeded oracle.
    ///
    /// # Errors
    ///
    /// As [`Session::run_main`].
    pub fn run_main_semantic(&self, input: &str, seed: u64) -> Result<SemRunOutcome, Error> {
        let mut oracle = SeededOracle::new(seed);
        self.run_main_semantic_with(input, &mut oracle, &AsyncSchedule::default())
    }

    /// Performs `main` under the semantic LTS with an explicit oracle and
    /// async schedule.
    ///
    /// # Errors
    ///
    /// As [`Session::run_main`].
    pub fn run_main_semantic_with(
        &self,
        input: &str,
        oracle: &mut dyn ExceptionOracle,
        schedule: &AsyncSchedule,
    ) -> Result<SemRunOutcome, Error> {
        let sym = Symbol::intern("main");
        if self.program.lookup(sym).is_none() {
            return Err(Error::MissingBinding("main".into()));
        }
        let ev = self.denot_evaluator();
        let env = ev.bind_recursive(&self.program.binds, &DEnv::empty());
        let action = Thunk::pending(Rc::new(Expr::Var(sym)), env);
        let mut inp = StringInput::new(input);
        Ok(run_denot(&ev, action, &mut inp, oracle, schedule))
    }

    /// Locations (function names, `case`, `lambda`, `do`) where a pattern
    /// match in the loaded program may fall through at runtime — i.e.
    /// where the match compiler had to plant a `PatternMatchFail` raise.
    /// The Prelude's deliberately partial functions (`head`, `tail`,
    /// `zipWith`, ...) appear here by design.
    pub fn match_warnings(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (_, rhs) in &self.program.binds {
            out.extend(urk_syntax::potential_match_failures(rhs));
        }
        out.sort();
        out.dedup();
        out
    }

    /// Strictness signatures for the session program (§3.4's analysis).
    pub fn strictness(&self) -> urk_transform::StrictSigs {
        urk_transform::analyze_program(&self.program)
    }

    /// The whole-program exception-effect analysis: per-binding summaries
    /// whose predicted sets conservatively over-approximate the §4
    /// denotational exception sets (⊥ — the analysis cannot bound the
    /// behaviour — is the full set, per §4.1).
    pub fn analyze(&self) -> urk_analysis::Analysis {
        urk_analysis::analyze_program(&self.program, &self.data)
    }

    /// The statically predicted exception set of an expression — a
    /// superset of what [`Session::exception_set`] denotes, and of any
    /// representative either machine backend can raise.
    ///
    /// # Errors
    ///
    /// Front-end errors from the expression.
    pub fn predicted_exceptions(&self, src: &str) -> Result<ExnSet, Error> {
        let e = self.compile_expr(src)?;
        Ok(self.analyze().predicted_set(&e, &self.data))
    }

    /// Lints the user-loaded bindings (the Prelude is analysed for
    /// summaries but not reported on): always-raising expressions
    /// (URK001), unreachable alternatives (URK002), dead
    /// `unsafeIsException`/`unsafeGetException` branches (URK003), and
    /// reachable pattern-match failures (URK004).
    pub fn lint(&self) -> Vec<urk_analysis::Diagnostic> {
        let user: std::collections::HashSet<Symbol> = self
            .program
            .binds
            .iter()
            .skip(self.prelude_len)
            .map(|(n, _)| *n)
            .collect();
        urk_analysis::lint_program(&self.program, &self.data)
            .into_iter()
            .filter(|d| user.contains(&d.binding))
            .collect()
    }

    /// Lints a single expression against the session program (reported
    /// under the pseudo-binding `it`, like a REPL result).
    ///
    /// # Errors
    ///
    /// Front-end errors from the expression.
    pub fn lint_expr(&self, src: &str) -> Result<Vec<urk_analysis::Diagnostic>, Error> {
        let e = self.compile_expr(src)?;
        let analysis = self.analyze();
        Ok(urk_analysis::lint_expr(
            &analysis,
            &self.data,
            Symbol::intern("it"),
            &e,
        ))
    }

    /// Runs the optimisation pipeline over the session program (Prelude
    /// included): simplifier to a fixpoint, then the strictness-driven
    /// call-by-value pass. The optimised program replaces the current one
    /// after re-type-checking.
    ///
    /// # Errors
    ///
    /// [`Error::Type`] if the optimised program fails to re-type-check
    /// (which would indicate a transformation bug — the test suite guards
    /// this).
    pub fn optimize(&mut self) -> Result<urk_transform::OptimizeReport, Error> {
        let optimizer = urk_transform::Optimizer::new();
        let (out, report) = optimizer.optimize_with_data(&self.program, &self.data);
        if self.options.typecheck {
            self.types = infer_program(&out, &self.data)?;
        }
        self.program = out;
        self.compiled.replace(None);
        Ok(report)
    }

    /// Like [`Session::optimize`], additionally validating that each
    /// query's denotation is unchanged-or-refined (§4.5's criterion). The
    /// program is replaced only if every query validates.
    ///
    /// # Errors
    ///
    /// Front-end errors from the queries; [`Error::Type`] as in
    /// [`Session::optimize`].
    pub fn optimize_validated(
        &mut self,
        queries: &[&str],
    ) -> Result<urk_transform::OptimizeReport, Error> {
        let compiled: Vec<Rc<Expr>> = queries
            .iter()
            .map(|q| self.compile_expr(q))
            .collect::<Result<_, _>>()?;
        let optimizer = urk_transform::Optimizer::new();
        let (out, report) = optimizer.optimize_validated(&self.program, &self.data, &compiled);
        if report.validated() {
            if self.options.typecheck {
                self.types = infer_program(&out, &self.data)?;
            }
            self.program = out;
            self.compiled.replace(None);
        }
        Ok(report)
    }
}

/// Reshapes an exception-effect [`Analysis`](urk_analysis::Analysis) of
/// `binds` into the machine's tier-2 licence — the mapping every tier-2
/// consumer (the session, the fuzz context, the bench harness) applies.
/// `whnf_safe` (empty exception set, no divergence, no opacity) is the
/// license to substitute an arity-0 binding's constant value; `Con`
/// constants are dropped because the flat image only carries literal
/// operands.
pub fn tier2_facts_for(
    analysis: urk_analysis::Analysis,
    binds: &[(Symbol, Rc<Expr>)],
) -> Tier2Facts {
    Tier2Facts {
        globals: analysis
            .binding_facts(binds)
            .into_iter()
            .map(|f| GlobalFact {
                whnf_safe: f.whnf_safe,
                value: f.val.and_then(|v| match v {
                    urk_analysis::Val::Int(i) => Some(FactVal::Int(i)),
                    urk_analysis::Val::Char(c) => Some(FactVal::Char(c)),
                    urk_analysis::Val::Str(s) => Some(FactVal::Str(s.to_string())),
                    urk_analysis::Val::Con(_) => None,
                }),
                demands: f.demands,
            })
            .collect(),
    }
}
