//! Long-run soak testing: millions of evaluations under continuous
//! invariant checking.
//!
//! The fuzzer (`urk-fuzz`) hunts for *terms* that break an invariant;
//! the soak harness holds the terms fixed and hunts for *state decay* —
//! a heap that drifts out of consistency after the 10⁶th episode, a
//! cache that returns different bytes for the same key, a pool that
//! reorders a batch. Three lanes run against one seeded term ring:
//!
//! * **machine lane** — long-lived tree and compiled machines evaluate
//!   ring terms over and over; every render must match the expected
//!   answer recorded on first evaluation (or `Caught(Interrupt)` when
//!   the lane's periodic interrupt churn landed), and both machines are
//!   [`urk_machine::Machine::audit_heap`]-audited on a fixed cadence;
//! * **pool lane** — an [`EvalPool`] evaluates batches (with duplicates)
//!   of the same terms' source text; results must come back in
//!   submission order and byte-identical to the first answer for that
//!   source, cache hit or not;
//! * **serve lane** (optional) — the same batch assertions through a live
//!   `urk serve` TCP server and [`Client`].
//!
//! The driver emits one JSON progress line per reporting interval and a
//! final [`SoakReport`]; any violation is recorded, never panicked, so a
//! soak always produces a report.

use std::collections::HashMap;
use std::rc::Rc;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use urk_fuzz::{FuzzCtx, TermGen, FUZZ_PRELUDE_SRC};
use urk_machine::{MEnv, Machine, MachineConfig, Outcome};
use urk_syntax::core::Expr;
use urk_syntax::{pretty::pretty, Exception};

use crate::pool::{EvalPool, PoolConfig};
use crate::serve::{Client, RemoteOutcome, ServeConfig, Server};
use crate::session::Options;
use crate::Backend;

/// Soak tunables.
#[derive(Debug)]
pub struct SoakConfig {
    /// Wall-clock budget.
    pub duration: Duration,
    /// Pool worker threads.
    pub jobs: usize,
    /// Seed for the term ring and batch composition.
    pub seed: u64,
    /// Jobs per pool/serve batch.
    pub batch: usize,
    /// Also run the serve lane (a live TCP server).
    pub serve: bool,
    /// JSON progress-line interval (zero disables progress output).
    pub report_every: Duration,
    /// Distinct terms in the ring.
    pub ring: usize,
    /// Machine-lane episodes between audits.
    pub audit_every: u64,
    /// Machine-lane episodes between interrupt deliveries (0 = off).
    pub interrupt_every: u64,
}

impl Default for SoakConfig {
    fn default() -> SoakConfig {
        SoakConfig {
            duration: Duration::from_secs(60),
            jobs: 4,
            seed: 1,
            batch: 64,
            serve: false,
            report_every: Duration::from_secs(5),
            ring: 48,
            audit_every: 256,
            interrupt_every: 509,
        }
    }
}

/// What a soak run did. `violations` empty ⇔ the run is clean.
#[derive(Clone, Debug, Default)]
pub struct SoakReport {
    pub evals: u64,
    pub machine_evals: u64,
    pub pool_evals: u64,
    pub serve_evals: u64,
    pub batches: u64,
    pub cache_hits: u64,
    pub audits: u64,
    pub interrupts: u64,
    /// First few violation descriptions (capped; the count is exact).
    pub violations: Vec<String>,
    pub violation_count: u64,
    pub elapsed_ms: u64,
}

impl SoakReport {
    pub fn is_clean(&self) -> bool {
        self.violation_count == 0
    }

    fn violate(&mut self, what: String) {
        self.violation_count += 1;
        if self.violations.len() < 16 {
            self.violations.push(what);
        }
    }

    /// The report as one JSON object (also the progress-line shape).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"evals\":{},\"machine_evals\":{},\"pool_evals\":{},\"serve_evals\":{},\
             \"batches\":{},\"cache_hits\":{},\"audits\":{},\"interrupts\":{},\
             \"violations\":{},\"elapsed_ms\":{}}}",
            self.evals,
            self.machine_evals,
            self.pool_evals,
            self.serve_evals,
            self.batches,
            self.cache_hits,
            self.audits,
            self.interrupts,
            self.violation_count,
            self.elapsed_ms
        )
    }
}

/// One ring slot: the term, its source text (for the pool/serve lanes),
/// and the expected observation recorded on first evaluation.
struct RingEntry {
    term: Rc<Expr>,
    src: String,
    expected: String,
}

/// Renders one machine outcome for comparison.
fn observe(m: &mut Machine, out: &Result<Outcome, urk_machine::MachineError>) -> String {
    match out {
        Ok(Outcome::Value(n)) => format!("value {}", m.render(*n, 16)),
        Ok(Outcome::Caught(e)) => format!("caught {e}"),
        Ok(Outcome::Uncaught(e)) => format!("uncaught {e}"),
        Err(e) => format!("error {e}"),
    }
}

/// The long-lived machine pair of the machine lane.
struct MachineLane {
    tree: Machine,
    tree_env: MEnv,
    compiled: Machine,
    episodes: u64,
}

impl MachineLane {
    fn new(ctx: &FuzzCtx) -> MachineLane {
        // `max_steps` is a cumulative lifetime budget, not per-episode;
        // the lane machines live for the whole soak and every ring entry
        // was probe-vetted to terminate, so the budget is unbounded —
        // this lane exists precisely to prove indefinite reuse.
        let config = MachineConfig {
            max_steps: u64::MAX,
            gc_threshold: 65_536,
            ..MachineConfig::default()
        };
        let mut tree = Machine::new(config.clone());
        let tree_env = tree.bind_recursive(&ctx.binds, &MEnv::empty());
        let mut compiled = Machine::new(config);
        compiled.link_code(std::sync::Arc::clone(&ctx.code));
        MachineLane {
            tree,
            tree_env,
            compiled,
            episodes: 0,
        }
    }

    /// One episode on both machines against one ring entry.
    fn step(&mut self, entry: &RingEntry, cfg: &SoakConfig, report: &mut SoakReport) {
        self.episodes += 1;
        let interrupted =
            cfg.interrupt_every > 0 && self.episodes.is_multiple_of(cfg.interrupt_every);
        if interrupted {
            // Pre-armed delivery: the machine must catch it at the episode
            // boundary and stay resumable — §5.1's contract under churn.
            self.tree.interrupt_handle().deliver(Exception::Interrupt);
            self.compiled
                .interrupt_handle()
                .deliver(Exception::Interrupt);
            report.interrupts += 1;
        }
        let t_out = self.tree.eval(Rc::clone(&entry.term), &self.tree_env, true);
        let t_obs = observe(&mut self.tree, &t_out);
        let c_out = self.compiled.eval_code_expr(&entry.term, true);
        let c_obs = observe(&mut self.compiled, &c_out);
        report.machine_evals += 2;
        report.evals += 2;
        let caught_interrupt = "caught interrupt: Interrupt";
        for (name, obs) in [("tree", &t_obs), ("compiled", &c_obs)] {
            let ok = obs == &entry.expected
                || (interrupted && obs.starts_with("caught"))
                || obs == caught_interrupt;
            if !ok {
                report.violate(format!(
                    "machine lane ep {}: {name} produced `{obs}`, expected `{}`",
                    self.episodes, entry.expected
                ));
            }
        }
        if self.episodes.is_multiple_of(cfg.audit_every) {
            report.audits += 2;
            for (name, m) in [("tree", &mut self.tree), ("compiled", &mut self.compiled)] {
                let audit = m.audit_heap();
                if !audit.is_consistent() {
                    report.violate(format!("machine lane ep {}: {name} {audit}", self.episodes));
                }
            }
        }
    }
}

/// Checks one batch's outcomes against the byte-identity map. `render`
/// extracts `(rendered, cache_hit)` or an error string per outcome.
fn check_batch<T>(
    lane: &str,
    srcs: &[&str],
    results: &[T],
    render: impl Fn(&T) -> Result<(String, bool), String>,
    expected: &mut HashMap<String, String>,
    report: &mut SoakReport,
) {
    if results.len() != srcs.len() {
        report.violate(format!(
            "{lane}: batch of {} came back with {} results",
            srcs.len(),
            results.len()
        ));
        return;
    }
    for (src, result) in srcs.iter().zip(results) {
        match render(result) {
            Err(e) => report.violate(format!("{lane}: job `{src}` failed: {e}")),
            Ok((rendered, cache_hit)) => {
                if cache_hit {
                    report.cache_hits += 1;
                }
                match expected.get(*src) {
                    None => {
                        expected.insert((*src).to_string(), rendered);
                    }
                    // Submission order + cache byte-identity in one check:
                    // a reordered batch or a poisoned cache entry both
                    // surface as a first-answer mismatch for this source.
                    Some(first) if *first != rendered => {
                        report.violate(format!(
                            "{lane}: `{src}` answered `{rendered}` (cache_hit={cache_hit}), \
                             first answer was `{first}`"
                        ));
                    }
                    Some(_) => {}
                }
            }
        }
    }
}

/// Runs a soak campaign. Never panics on an invariant violation — they
/// are collected into the report.
///
/// # Errors
///
/// Setup failures only: the pool or server refusing to start, or a
/// client connection failing.
pub fn run_soak(cfg: &SoakConfig) -> Result<SoakReport, String> {
    let started = Instant::now();
    let ctx = FuzzCtx::new();
    let mut report = SoakReport::default();

    // Build the ring and record expected answers from a fresh machine.
    let mut gen = TermGen::new(cfg.seed, 4);
    let mut probe = MachineLane::new(&ctx);
    let mut ring: Vec<RingEntry> = Vec::with_capacity(cfg.ring.max(1));
    while ring.len() < cfg.ring.max(1) {
        let term = Rc::new(gen.term());
        let out = probe.tree.eval(Rc::clone(&term), &probe.tree_env, true);
        if out.is_err() {
            continue; // step-limit pathology; not soak material
        }
        let expected = observe(&mut probe.tree, &out);
        let src = pretty(&term);
        ring.push(RingEntry {
            term,
            src,
            expected,
        });
    }

    let options = Options {
        backend: Backend::Compiled,
        ..Options::default()
    };
    let pool = EvalPool::start(
        &[FUZZ_PRELUDE_SRC],
        options.clone(),
        PoolConfig {
            workers: cfg.jobs.max(1),
            ..PoolConfig::default()
        },
    )
    .map_err(|e| format!("pool start: {e}"))?;

    let server = if cfg.serve {
        Some(
            Server::start(
                &[FUZZ_PRELUDE_SRC],
                options,
                ServeConfig {
                    pool: PoolConfig {
                        workers: cfg.jobs.max(1),
                        ..PoolConfig::default()
                    },
                    ..ServeConfig::default()
                },
            )
            .map_err(|e| format!("server start: {e}"))?,
        )
    } else {
        None
    };
    let mut client = match &server {
        Some(s) => Some(Client::connect(s.local_addr()).map_err(|e| format!("connect: {e}"))?),
        None => None,
    };

    let mut lane = MachineLane::new(&ctx);
    let mut batch_rng = SmallRng::seed_from_u64(cfg.seed ^ 0x736f_616b);
    let mut pool_expected: HashMap<String, String> = HashMap::new();
    let mut serve_expected: HashMap<String, String> = HashMap::new();
    let mut last_report = Instant::now();
    let mut round = 0u64;

    while started.elapsed() < cfg.duration {
        round += 1;

        // Machine lane: a chunk of episodes (the volume carrier).
        for _ in 0..512 {
            let i = (lane.episodes as usize) % ring.len();
            lane.step(&ring[i], cfg, &mut report);
        }

        // Pool lane: one batch per round, duplicates guaranteed by
        // sampling a small ring.
        let srcs: Vec<&str> = (0..cfg.batch.max(1))
            .map(|_| ring[batch_rng.gen_range(0..ring.len())].src.as_str())
            .collect();
        let results = pool.eval_batch(&srcs);
        report.batches += 1;
        report.pool_evals += srcs.len() as u64;
        report.evals += srcs.len() as u64;
        check_batch(
            "pool",
            &srcs,
            &results,
            |r| match r {
                Ok(out) => Ok((out.rendered.clone(), out.cache_hit)),
                Err(e) => Err(e.to_string()),
            },
            &mut pool_expected,
            &mut report,
        );

        // Serve lane: every 4th round, the same checks over TCP.
        if let Some(client) = client.as_mut() {
            if round.is_multiple_of(4) {
                match client.eval_batch(&srcs, None) {
                    Err(e) => report.violate(format!("serve: transport error: {e}")),
                    Ok(remote) => {
                        report.batches += 1;
                        report.serve_evals += srcs.len() as u64;
                        report.evals += srcs.len() as u64;
                        check_batch(
                            "serve",
                            &srcs,
                            &remote,
                            |r| match r {
                                RemoteOutcome::Done {
                                    rendered,
                                    cache_hit,
                                    ..
                                } => Ok((rendered.clone(), *cache_hit)),
                                RemoteOutcome::Failed(m) => Err(m.clone()),
                                RemoteOutcome::Overloaded => Err("overloaded".to_string()),
                            },
                            &mut serve_expected,
                            &mut report,
                        );
                    }
                }
            }
        }

        if !cfg.report_every.is_zero() && last_report.elapsed() >= cfg.report_every {
            report.elapsed_ms = started.elapsed().as_millis() as u64;
            println!("{}", report.to_json());
            last_report = Instant::now();
        }
    }

    // Final audits on the long-lived machines.
    report.audits += 2;
    for (name, m) in [("tree", &mut lane.tree), ("compiled", &mut lane.compiled)] {
        let audit = m.audit_heap();
        if !audit.is_consistent() {
            report.violate(format!("final audit: {name} {audit}"));
        }
    }

    if let Some(s) = server {
        s.stop();
        s.join();
    }
    pool.shutdown();
    report.elapsed_ms = started.elapsed().as_millis() as u64;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_two_second_soak_is_clean() {
        let report = run_soak(&SoakConfig {
            duration: Duration::from_secs(2),
            jobs: 2,
            batch: 16,
            ring: 12,
            serve: true,
            report_every: Duration::ZERO,
            ..SoakConfig::default()
        })
        .expect("soak runs");
        assert!(
            report.is_clean(),
            "soak violations: {:?}",
            report.violations
        );
        assert!(report.evals > 1_000, "soak too slow: {}", report.evals);
        assert!(report.serve_evals > 0);
        assert!(
            report.cache_hits > 0,
            "duplicate sources must hit the cache"
        );
        assert!(report.audits > 0);
    }
}
