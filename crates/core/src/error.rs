//! The unified error type for the public pipeline.

use std::fmt;

/// Anything that can go wrong between source text and a result.
#[derive(Clone, Debug)]
pub enum Error {
    /// Lexing, layout, or parsing failed.
    Syntax(urk_syntax::SyntaxError),
    /// Desugaring or match compilation failed.
    Desugar(urk_syntax::DesugarError),
    /// A `data` declaration was malformed.
    Data(urk_syntax::DataEnvError),
    /// Type inference or signature checking failed.
    Type(urk_types::TypeError),
    /// The machine hit a hard limit (or panicked under supervision). The
    /// stats gathered up to the abort are carried along when available, so
    /// an aborted run is diagnosable (how many steps/allocations it burned
    /// before dying).
    Machine {
        error: urk_machine::MachineError,
        stats: Option<Box<urk_machine::Stats>>,
    },
    /// A name was defined twice across loads.
    DuplicateDefinition(String),
    /// `main` (or another required binding) is missing.
    MissingBinding(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Syntax(e) => e.fmt(f),
            Error::Desugar(e) => e.fmt(f),
            Error::Data(e) => e.fmt(f),
            Error::Type(e) => e.fmt(f),
            Error::Machine { error, stats } => {
                error.fmt(f)?;
                if let Some(s) = stats {
                    write!(
                        f,
                        " (after {} steps, {} allocations)",
                        s.steps, s.allocations
                    )?;
                }
                Ok(())
            }
            Error::DuplicateDefinition(n) => write!(f, "duplicate definition of '{n}'"),
            Error::MissingBinding(n) => write!(f, "no definition of '{n}'"),
        }
    }
}

impl std::error::Error for Error {}

impl From<urk_syntax::SyntaxError> for Error {
    fn from(e: urk_syntax::SyntaxError) -> Error {
        Error::Syntax(e)
    }
}
impl From<urk_syntax::DesugarError> for Error {
    fn from(e: urk_syntax::DesugarError) -> Error {
        Error::Desugar(e)
    }
}
impl From<urk_syntax::DataEnvError> for Error {
    fn from(e: urk_syntax::DataEnvError) -> Error {
        Error::Data(e)
    }
}
impl From<urk_types::TypeError> for Error {
    fn from(e: urk_types::TypeError) -> Error {
        Error::Type(e)
    }
}
impl From<urk_machine::MachineError> for Error {
    fn from(e: urk_machine::MachineError) -> Error {
        Error::Machine {
            error: e,
            stats: None,
        }
    }
}
