//! Supervised evaluation: deadlines, budgets, panic isolation, retry.
//!
//! A [`Supervisor`] describes the envelope one request is allowed to
//! consume; [`Session::eval_supervised`] runs an expression inside it:
//!
//! * **wall-clock deadline** — a watchdog thread arms the machine's
//!   [`InterruptHandle`] with `Timeout` when the deadline passes, so a
//!   runaway evaluation is cancelled asynchronously (§5.1: the trim
//!   restores in-flight thunks; nothing is corrupted, and the exception is
//!   observed as `Caught(Timeout)` like any other);
//! * **resource budgets** — per-request step/heap/stack caps overriding
//!   the session defaults;
//! * **panic isolation** — an internal machine panic (a bug, not a user
//!   condition) is caught with `catch_unwind`, converted into
//!   [`MachineError::Internal`], and the poisoned machine is discarded;
//!   the session itself is untouched and stays usable;
//! * **retry with escalation** — a request killed by `HeapOverflow` or
//!   `StackOverflow` is retried (boundedly) with multiplied budgets before
//!   the failure is reported, since "the budget was too small" and "the
//!   program is a hog" look identical on the first attempt.
//!
//! Every attempt runs on a *fresh* machine, so a failed attempt cannot
//! leak poisoned thunks or a half-trimmed heap into the next one.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use urk_machine::{Backend, InterruptHandle, MEnv, Machine, MachineConfig, MachineError, Outcome};
use urk_syntax::core::Expr;
use urk_syntax::Exception;

use crate::error::Error;
use crate::session::{EvalResult, Session};

/// The envelope one supervised request may consume.
#[derive(Clone, Debug)]
pub struct Supervisor {
    /// Wall-clock deadline; past it a watchdog delivers `Timeout`.
    pub deadline: Option<Duration>,
    /// Per-request step cap (overrides the session's machine config).
    pub max_steps: Option<u64>,
    /// Per-request heap cap in nodes.
    pub max_heap: Option<usize>,
    /// Per-request stack cap in frames.
    pub max_stack: Option<usize>,
    /// How many times a `HeapOverflow`/`StackOverflow` death is retried
    /// with escalated budgets before being reported.
    pub retries: u32,
    /// Budget multiplier per escalation.
    pub growth: u32,
    /// An externally owned interrupt handle to run every attempt under.
    /// A pool uses this to cancel an in-flight request from outside (e.g.
    /// on shutdown) by delivering `Interrupt`; when unset, each request
    /// gets a private handle only its own watchdog can reach. The handle
    /// is disarmed when the request finishes, so a deadline that fires
    /// just after completion cannot leak into the next request sharing
    /// the handle.
    pub interrupt: Option<InterruptHandle>,
}

impl Default for Supervisor {
    fn default() -> Supervisor {
        Supervisor {
            deadline: None,
            max_steps: None,
            max_heap: None,
            max_stack: None,
            retries: 1,
            growth: 4,
            interrupt: None,
        }
    }
}

impl Supervisor {
    /// The default envelope: session budgets, no deadline, one retry.
    pub fn new() -> Supervisor {
        Supervisor::default()
    }

    /// An envelope with just a wall-clock deadline.
    pub fn with_deadline(ms: u64) -> Supervisor {
        Supervisor {
            deadline: Some(Duration::from_millis(ms)),
            ..Supervisor::default()
        }
    }
}

/// What a supervised evaluation produced, plus how hard it had to work.
#[derive(Clone, Debug)]
pub struct SupervisedResult {
    /// The evaluation result (a `Timeout` cancellation appears here as the
    /// caught exception, rendered `(raise Timeout)`).
    pub result: EvalResult,
    /// Attempts consumed (1 = no retry was needed).
    pub attempts: u32,
    /// True if the watchdog's `Timeout` ended the final attempt.
    pub timed_out: bool,
}

impl Session {
    /// Evaluates an expression under a [`Supervisor`]: wall-clock deadline,
    /// per-request budgets, panic isolation, bounded retry. Evaluation
    /// happens under a catch mark, so cancellations and budget deaths are
    /// observed as caught exceptions rather than aborts.
    ///
    /// # Errors
    ///
    /// Front-end errors; [`Error::Machine`] with
    /// [`MachineError::Internal`] if the machine panicked (the session
    /// remains usable), or with the underlying error if a hard limit was
    /// hit on the final attempt.
    pub fn eval_supervised(
        &self,
        src: &str,
        supervisor: &Supervisor,
    ) -> Result<SupervisedResult, Error> {
        let expr = self.compile_expr(src)?;
        self.eval_supervised_expr(expr, supervisor)
    }

    /// As [`Session::eval_supervised`], starting from an already compiled
    /// expression. The pool uses this split so one compilation serves
    /// both the cache key and the evaluation.
    ///
    /// # Errors
    ///
    /// As [`Session::eval_supervised`], minus the front-end errors.
    pub fn eval_supervised_expr(
        &self,
        expr: Rc<Expr>,
        supervisor: &Supervisor,
    ) -> Result<SupervisedResult, Error> {
        let mut cfg = self.options.machine.clone();
        if let Some(s) = supervisor.max_steps {
            cfg.max_steps = s;
        }
        if let Some(h) = supervisor.max_heap {
            cfg.max_heap = h;
        }
        if let Some(s) = supervisor.max_stack {
            cfg.max_stack = s;
        }

        // Resolve the backend once: on the compiled backend every attempt
        // links the same shared image, and if this call is the one that
        // pays the program's one-time lowering cost, that cost is stamped
        // onto the final result's stats.
        let first_compile = self.options.backend == Backend::Compiled && !self.has_compiled_code();
        let code = match self.options.backend {
            Backend::Compiled => Some(self.compiled_code()),
            Backend::Tree => None,
        };

        let growth = u64::from(supervisor.growth.max(1));
        let mut attempts = 0u32;
        loop {
            attempts += 1;

            let handle = supervisor.interrupt.clone().unwrap_or_default();
            let run_cfg = MachineConfig {
                interrupt: Some(handle.clone()),
                ..cfg.clone()
            };

            // The watchdog: sleeps in short slices so it both fires close
            // to the deadline and exits promptly when the request finishes
            // first (`done` flips before the join).
            let done = Arc::new(AtomicBool::new(false));
            let watchdog = supervisor.deadline.map(|d| {
                let done = Arc::clone(&done);
                let handle = handle.clone();
                std::thread::spawn(move || {
                    let deadline = Instant::now() + d;
                    while !done.load(Ordering::Relaxed) {
                        let now = Instant::now();
                        if now >= deadline {
                            handle.deliver(Exception::Timeout);
                            return;
                        }
                        std::thread::sleep((deadline - now).min(Duration::from_millis(1)));
                    }
                })
            });

            // One attempt on a fresh machine, panic-isolated. The machine
            // is moved out so stats and rendering survive the unwind guard.
            let binds = &self.program().binds;
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                let mut m = Machine::new(run_cfg);
                let out = match &code {
                    Some(code) => {
                        m.link_code(Arc::clone(code));
                        m.eval_code_expr(&expr, true)
                    }
                    None => {
                        let env = m.bind_recursive(binds, &MEnv::empty());
                        m.eval(expr.clone(), &env, true)
                    }
                };
                (m, out)
            }));

            done.store(true, Ordering::Relaxed);
            if let Some(t) = watchdog {
                let _ = t.join();
                // The watchdog may have fired in the instant the attempt
                // finished; disarm the handle so a stale deadline cannot
                // leak into a retry or (for a shared handle) the next
                // request on the same worker.
                handle.clear();
            }

            let (mut m, out) = match attempt {
                Ok(pair) => pair,
                Err(panic) => {
                    // The machine died of a bug; discard it, keep the
                    // session.
                    return Err(Error::Machine {
                        error: MachineError::Internal(panic_message(&panic)),
                        stats: None,
                    });
                }
            };
            let out = match out {
                Ok(out) => out,
                Err(error) => {
                    return Err(Error::Machine {
                        error,
                        stats: Some(Box::new(m.stats().clone())),
                    });
                }
            };

            let exception = match &out {
                Outcome::Caught(e) | Outcome::Uncaught(e) => Some(e.clone()),
                Outcome::Value(_) => None,
            };

            // Escalate resource deaths: grow the budgets and go again on a
            // fresh machine.
            if matches!(
                exception,
                Some(Exception::HeapOverflow | Exception::StackOverflow)
            ) && attempts <= supervisor.retries
            {
                cfg.max_heap = cfg.max_heap.saturating_mul(growth as usize);
                cfg.max_stack = cfg.max_stack.saturating_mul(growth as usize);
                continue;
            }

            let timed_out =
                matches!(exception, Some(Exception::Timeout)) && m.stats().async_injected > 0;
            let mut stats = m.stats().clone();
            if first_compile {
                if let Some(code) = &code {
                    stats.compile_ops += code.compile_ops();
                    stats.compile_micros += code.compile_micros();
                }
            }
            let result = match out {
                Outcome::Value(n) => EvalResult {
                    rendered: m.render(n, self.options.render_depth),
                    exception: None,
                    stats,
                },
                Outcome::Caught(exn) | Outcome::Uncaught(exn) => EvalResult {
                    rendered: format!("(raise {exn})"),
                    exception: Some(exn),
                    stats,
                },
            };
            return Ok(SupervisedResult {
                result,
                attempts,
                timed_out,
            });
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
