//! A shared, sharded, content-addressed result cache for pure outcomes.
//!
//! The paper's refinement criterion is what makes this sound: an
//! expression denotes a *set* of exceptions, and any implementation is
//! free to return any member (or the value, if the set is empty). A
//! cached answer is therefore just one more admissible witness — serving
//! it again later, or to a different worker, never steps outside the
//! denotation. Two restrictions keep that argument airtight:
//!
//! * only **pure** outcomes are cached: asynchronous exceptions
//!   (`Timeout`, `Interrupt`, overflow kills, ...) come from the outside
//!   world, not from the expression's denotation, and chaos-injected runs
//!   are excluded wholesale ([`EvalPool`](crate::EvalPool) enforces this
//!   at insert time);
//! * the key captures everything the answer can depend on: the
//!   alpha-invariant canonical serialization of the desugared Core
//!   expression ([`urk_syntax::expr_canonical_bytes`]) plus the
//!   semantics-relevant slice of the configuration — evaluation order,
//!   blackhole mode, budgets, the async event schedule, GC policy, the
//!   denotational fuel/depth/`unsafeIsException` settings, the render
//!   depth (the rendered string is part of the cached answer), the
//!   executing backend (tree-walker vs compiled code), and the
//!   execution tier (direct lowering vs the analysis-licensed
//!   superinstruction image). Run-only
//!   plumbing (the interrupt handle, the chaos plan, and the pure
//!   pass/panic gates that cannot change an answer — the `verify_code`
//!   arena check and the `validate_tier2` translation validator) is
//!   deliberately excluded from the key.
//!
//! Keys carry the *full* canonical bytes, not just a hash, so a
//! fingerprint collision degrades to a missed sharing opportunity rather
//! than a wrong answer.

use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use urk_denot::DenotConfig;
use urk_machine::{Backend, BlackholeMode, MachineConfig, OrderPolicy, Stats, Tier};
use urk_syntax::core::Expr;
use urk_syntax::{expr_canonical_bytes, fnv1a, Exception};

/// The content address of one evaluation request.
///
/// Equality compares the full canonical bytes (collision-proof); the
/// `Hash` impl forwards the precomputed FNV-1a fingerprint so probing a
/// shard's map costs O(1) on the key, with the byte comparison paid only
/// on a fingerprint match.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheKey {
    /// FNV-1a fingerprint of `expr` and `config` — the shard selector
    /// and hash-map probe.
    pub fingerprint: u64,
    /// Alpha-invariant canonical serialization of the desugared Core
    /// expression.
    pub expr: Vec<u8>,
    /// Serialized semantics-relevant configuration slice.
    pub config: Vec<u8>,
}

#[allow(clippy::derived_hash_with_manual_eq)]
impl Hash for CacheKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.fingerprint);
    }
}

/// Computes the content address of evaluating `expr` under the given
/// configuration. Two requests get the same key exactly when they are
/// the same desugared expression (up to alpha-renaming) under the same
/// semantics-relevant settings.
pub fn cache_key(
    expr: &Expr,
    machine: &MachineConfig,
    denot: &DenotConfig,
    render_depth: u32,
    backend: Backend,
    tier: Tier,
) -> CacheKey {
    let expr_bytes = expr_canonical_bytes(expr);
    let config = config_slice_bytes(machine, denot, render_depth, backend, tier);
    let mut all = Vec::with_capacity(expr_bytes.len() + config.len());
    all.extend_from_slice(&expr_bytes);
    all.extend_from_slice(&config);
    CacheKey {
        fingerprint: fnv1a(&all),
        expr: expr_bytes,
        config,
    }
}

/// Serializes the semantics-relevant slice of the configuration: every
/// knob that can change the rendered answer, the representative
/// exception, or which member of the exception set the machine picks.
fn config_slice_bytes(
    machine: &MachineConfig,
    denot: &DenotConfig,
    render_depth: u32,
    backend: Backend,
    tier: Tier,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(96);
    match machine.order {
        OrderPolicy::LeftToRight => out.push(0x01),
        OrderPolicy::RightToLeft => out.push(0x02),
        OrderPolicy::Seeded(seed) => {
            out.push(0x03);
            out.extend_from_slice(&seed.to_le_bytes());
        }
    }
    out.push(match machine.blackholes {
        BlackholeMode::Detect => 0x01,
        BlackholeMode::Loop => 0x02,
    });
    out.extend_from_slice(&machine.max_steps.to_le_bytes());
    out.extend_from_slice(&(machine.max_stack as u64).to_le_bytes());
    out.extend_from_slice(&(machine.max_heap as u64).to_le_bytes());
    out.push(u8::from(machine.timeout_on_step_limit));
    out.push(u8::from(machine.gc));
    out.extend_from_slice(&(machine.gc_threshold as u64).to_le_bytes());
    out.extend_from_slice(&(machine.nursery_size as u64).to_le_bytes());
    out.extend_from_slice(&(machine.event_schedule.len() as u64).to_le_bytes());
    for (step, exn) in &machine.event_schedule {
        out.extend_from_slice(&step.to_le_bytes());
        write_exception(&mut out, exn);
    }
    out.extend_from_slice(&denot.fuel.to_le_bytes());
    out.extend_from_slice(&denot.max_depth.to_le_bytes());
    out.push(u8::from(denot.pessimistic_is_exception));
    out.extend_from_slice(&render_depth.to_le_bytes());
    // The backend is part of the key even though both executors must
    // agree on outcomes: keeping the dimensions separate means a
    // divergence bug degrades to a duplicated entry, never to one
    // backend serving the other's (possibly wrong) answer.
    out.push(match backend {
        Backend::Tree => 0x01,
        Backend::Compiled => 0x02,
    });
    // Likewise for the execution tier: tier 2 must agree with tier 1 on
    // every outcome, but keying them apart means a codegen bug degrades
    // to a duplicated entry instead of cross-tier answer pollution.
    out.push(match tier {
        Tier::One => 0x01,
        Tier::Two => 0x02,
    });
    out
}

fn write_exception(out: &mut Vec<u8>, exn: &Exception) {
    match exn {
        Exception::DivideByZero => out.push(0x01),
        Exception::Overflow => out.push(0x02),
        Exception::UserError(s) => {
            out.push(0x03);
            out.extend_from_slice(&(s.len() as u64).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Exception::PatternMatchFail(s) => {
            out.push(0x04);
            out.extend_from_slice(&(s.len() as u64).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Exception::NonTermination => out.push(0x05),
        Exception::Interrupt => out.push(0x06),
        Exception::Timeout => out.push(0x07),
        Exception::StackOverflow => out.push(0x08),
        Exception::HeapOverflow => out.push(0x09),
        Exception::BlockedIndefinitely => out.push(0x0a),
    }
}

/// One cached answer: exactly what a fresh evaluation would have
/// reported, minus the work.
#[derive(Clone, Debug)]
pub struct CachedEval {
    /// The rendered value, or `(raise E)` for an exceptional outcome.
    pub rendered: String,
    /// The representative exception, if the outcome raised.
    pub exception: Option<Exception>,
    /// The stats of the evaluation that populated the entry (cache
    /// counters zeroed; the serving layer stamps them per request).
    pub stats: Stats,
}

/// A point-in-time snapshot of the cache's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries displaced to respect the capacity bound.
    pub evictions: u64,
    /// Successful inserts (including overwrites of an existing key).
    pub insertions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// The configured capacity bound (0 = caching disabled).
    pub capacity: usize,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0.0 when nothing was looked
    /// up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One shard: a map plus FIFO insertion order for eviction.
#[derive(Debug, Default)]
struct Shard {
    map: HashMap<CacheKey, CachedEval>,
    order: VecDeque<CacheKey>,
}

/// A sharded, capacity-bounded, content-addressed result cache.
///
/// Shard count is `capacity.clamp(1, 16)`; the configured capacity is
/// distributed across the shards with the division remainder spread one
/// entry at a time over the leading shards, so the per-shard bounds sum
/// to *exactly* `capacity` — the total population is always within the
/// configured capacity and every configured slot is reachable (a
/// capacity of 31 over 16 shards really holds 31 entries, not
/// `16 × ⌊31/16⌋ = 16`). Eviction is FIFO per shard. A capacity of 0
/// disables the cache entirely: lookups miss without counting and
/// inserts are dropped.
///
/// Shard locks recover from poisoning: a shard is a plain map-plus-queue
/// value with no invariant spanning the lock, so if a thread dies while
/// holding one (e.g. a panic payload's `Drop` firing inside
/// `catch_unwind` isolation), the next locker resumes with the state as
/// it stands instead of cascading the panic into every other worker.
#[derive(Debug)]
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard capacity bounds; `shard_caps.iter().sum() == capacity`.
    shard_caps: Vec<usize>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    insertions: AtomicU64,
}

/// Recovers the guard from a poisoned shard lock (see the type docs).
fn relock(shard: &Mutex<Shard>) -> std::sync::MutexGuard<'_, Shard> {
    shard.lock().unwrap_or_else(|e| e.into_inner())
}

impl ResultCache {
    /// A cache holding at most — and, under enough distinct keys per
    /// shard, exactly — `capacity` entries across all shards.
    pub fn new(capacity: usize) -> ResultCache {
        let nshards = capacity.clamp(1, 16);
        let (base, extra) = (capacity / nshards, capacity % nshards);
        ResultCache {
            shards: (0..nshards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_caps: (0..nshards)
                .map(|i| base + usize::from(i < extra))
                .collect(),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
        }
    }

    fn shard_index(&self, key: &CacheKey) -> usize {
        (key.fingerprint % self.shards.len() as u64) as usize
    }

    /// Looks up a key, counting the hit or miss. Always misses (without
    /// counting) when the cache is disabled.
    pub fn get(&self, key: &CacheKey) -> Option<CachedEval> {
        if self.capacity == 0 {
            return None;
        }
        let shard = relock(&self.shards[self.shard_index(key)]);
        match shard.map.get(key) {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts an entry, evicting the shard's oldest key if it is full.
    /// Dropped silently when the cache is disabled.
    pub fn insert(&self, key: CacheKey, value: CachedEval) {
        if self.capacity == 0 {
            return;
        }
        let index = self.shard_index(&key);
        let cap = self.shard_caps[index];
        let mut shard = relock(&self.shards[index]);
        if let Some(slot) = shard.map.get_mut(&key) {
            *slot = value;
            self.insertions.fetch_add(1, Ordering::Relaxed);
            return;
        }
        while shard.map.len() >= cap {
            match shard.order.pop_front() {
                Some(old) => {
                    shard.map.remove(&old);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
        shard.order.push_back(key.clone());
        shard.map.insert(key, value);
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Entries currently resident across all shards.
    pub fn entries(&self) -> usize {
        self.shards.iter().map(|s| relock(s).map.len()).sum()
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many shards the capacity is distributed over.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Poisons the lock of shard `index` by panicking on another thread
    /// while it is held — a test hook for the poison-recovery guarantee
    /// (a worker death must degrade to one lost lock acquisition, never
    /// cascade into other workers). Exposed because integration tests
    /// cannot reach the private shard mutexes.
    #[doc(hidden)]
    pub fn poison_shard_for_test(&self, index: usize) {
        let result = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let _guard = self.shards[index].lock().expect("not yet poisoned");
                    panic!("deliberate test poison");
                })
                .join()
        });
        assert!(result.is_err(), "the poisoning thread must panic");
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            entries: self.entries(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> CacheKey {
        CacheKey {
            fingerprint: n,
            expr: n.to_le_bytes().to_vec(),
            config: Vec::new(),
        }
    }

    fn entry(tag: &str) -> CachedEval {
        CachedEval {
            rendered: tag.to_string(),
            exception: None,
            stats: Stats::default(),
        }
    }

    #[test]
    fn pass_panic_gates_stay_out_of_the_key() {
        // `verify_code` is an arena check and `validate_tier2` a
        // translation-validation gate: both can only pass or panic, never
        // change an answer, so flipping them must not split the cache.
        // `validate_tier2` lives on `Options` (not `MachineConfig`) and is
        // structurally excluded; `verify_code` is on `MachineConfig` and
        // its exclusion is behavioral — pin both here.
        let e = Expr::int(42);
        let mk = |verify: bool| {
            let machine = MachineConfig {
                verify_code: verify,
                ..MachineConfig::default()
            };
            cache_key(
                &e,
                &machine,
                &DenotConfig::default(),
                8,
                Backend::Compiled,
                Tier::Two,
            )
        };
        assert_eq!(mk(false), mk(true));
        let off = crate::session::Options {
            validate_tier2: false,
            ..Default::default()
        };
        let on = crate::session::Options {
            validate_tier2: true,
            ..off.clone()
        };
        assert_eq!(
            cache_key(&e, &off.machine, &off.denot, 8, off.backend, off.tier),
            cache_key(&e, &on.machine, &on.denot, 8, on.backend, on.tier),
        );
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let cache = ResultCache::new(8);
        assert!(cache.get(&key(1)).is_none());
        cache.insert(key(1), entry("one"));
        let hit = cache.get(&key(1)).expect("just inserted");
        assert_eq!(hit.rendered, "one");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn capacity_zero_disables_the_cache() {
        let cache = ResultCache::new(0);
        cache.insert(key(1), entry("one"));
        assert!(cache.get(&key(1)).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 0, 0));
    }

    #[test]
    fn population_never_exceeds_capacity() {
        let cache = ResultCache::new(10);
        for n in 0..1000 {
            cache.insert(key(n), entry("x"));
            assert!(cache.entries() <= 10, "population exceeded capacity");
        }
        assert!(cache.stats().evictions > 0);
    }

    #[test]
    fn non_divisible_capacities_are_fully_reachable() {
        // 31 over 16 shards used to truncate to 16×1 = 16 slots; the
        // remainder must instead be spread over the leading shards.
        let cache = ResultCache::new(31);
        assert_eq!(cache.shard_count(), 16);
        // Fill every shard to exactly its bound: shard s receives keys
        // with fingerprints s, s+16, s+32, … (fingerprint % 16 routes).
        for shard in 0..16u64 {
            let cap = if shard < 15 { 2 } else { 1 };
            for k in 0..cap {
                cache.insert(key(shard + 16 * k), entry("x"));
            }
        }
        assert_eq!(
            cache.entries(),
            31,
            "the full configured population must be reachable"
        );
        assert_eq!(cache.stats().evictions, 0);
        // One more insert anywhere (shard 0 here) stays within the bound
        // via eviction.
        cache.insert(key(16 * 7), entry("y"));
        assert_eq!(cache.entries(), 31);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn shard_cap_distribution_sums_to_capacity() {
        for capacity in [1, 2, 7, 15, 16, 17, 31, 33, 100, 1000, 4097] {
            let cache = ResultCache::new(capacity);
            assert_eq!(
                cache.shard_caps.iter().sum::<usize>(),
                capacity,
                "capacity {capacity} must be fully distributed"
            );
            let (min, max) = (
                cache.shard_caps.iter().min().expect("non-empty"),
                cache.shard_caps.iter().max().expect("non-empty"),
            );
            assert!(max - min <= 1, "distribution must be balanced");
        }
    }

    #[test]
    fn a_poisoned_shard_recovers_instead_of_cascading() {
        let cache = ResultCache::new(8);
        cache.insert(key(3), entry("before"));
        for shard in 0..cache.shard_count() {
            cache.poison_shard_for_test(shard);
        }
        // Every operation still works: reads survive, writes land.
        assert_eq!(cache.get(&key(3)).expect("still cached").rendered, "before");
        cache.insert(key(4), entry("after"));
        assert_eq!(cache.get(&key(4)).expect("inserted").rendered, "after");
        assert_eq!(cache.entries(), 2);
    }

    #[test]
    fn fingerprint_collisions_do_not_alias() {
        let cache = ResultCache::new(8);
        let a = CacheKey {
            fingerprint: 7,
            expr: vec![1],
            config: vec![],
        };
        let b = CacheKey {
            fingerprint: 7,
            expr: vec![2],
            config: vec![],
        };
        cache.insert(a.clone(), entry("a"));
        assert!(
            cache.get(&b).is_none(),
            "colliding fingerprints must not alias"
        );
        assert_eq!(cache.get(&a).expect("present").rendered, "a");
    }

    #[test]
    fn overwriting_a_key_does_not_grow_the_population() {
        let cache = ResultCache::new(4);
        cache.insert(key(1), entry("a"));
        cache.insert(key(1), entry("b"));
        assert_eq!(cache.entries(), 1);
        assert_eq!(cache.get(&key(1)).expect("present").rendered, "b");
    }
}
