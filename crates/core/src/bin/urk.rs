//! The `urk` command-line interpreter.
//!
//! ```text
//! urk program.urk                      # perform `main` (stdin as input)
//! urk program.urk --expr "f 42"        # evaluate an expression instead
//! urk --expr "1/0 + error \"Urk\""     # no file: Prelude only
//! urk program.urk --type "main"        # show an inferred type
//! urk program.urk --denot "f 0"        # show the denotation (exception sets)
//! urk program.urk --order r            # right-to-left machine policy
//! urk program.urk --optimize           # run the optimiser first
//! urk program.urk --input "abc"        # feed input without stdin
//! urk program.urk --semantic --seed 7  # perform main under the §4.4 LTS
//! urk program.urk --optimize --dump-core  # show the optimised core
//! ```

use std::io::Read;
use std::process::ExitCode;

use urk::{IoResult, OrderPolicy, SemIoResult, Session};

struct Args {
    file: Option<String>,
    expr: Option<String>,
    type_of: Option<String>,
    denot: Option<String>,
    order: OrderPolicy,
    optimize: bool,
    dump_core: bool,
    stats: bool,
    input: Option<String>,
    semantic: bool,
    concurrent: bool,
    seed: u64,
    trace: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: urk [FILE.urk] [--expr E | --type E | --denot E]\n\
         \x20          [--order l|r|s[:SEED]] [--optimize] [--input STR]\n\
         \x20          [--semantic|--concurrent] [--seed N] [--trace] [--dump-core] [--stats]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut out = Args {
        file: None,
        expr: None,
        type_of: None,
        denot: None,
        order: OrderPolicy::LeftToRight,
        optimize: false,
        dump_core: false,
        stats: false,
        input: None,
        semantic: false,
        concurrent: false,
        seed: 0,
        trace: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--expr" => out.expr = Some(args.next().unwrap_or_else(|| usage())),
            "--type" => out.type_of = Some(args.next().unwrap_or_else(|| usage())),
            "--denot" => out.denot = Some(args.next().unwrap_or_else(|| usage())),
            "--input" => out.input = Some(args.next().unwrap_or_else(|| usage())),
            "--optimize" => out.optimize = true,
            "--dump-core" => out.dump_core = true,
            "--stats" => out.stats = true,
            "--semantic" => out.semantic = true,
            "--concurrent" => out.concurrent = true,
            "--trace" => out.trace = true,
            "--seed" => {
                out.seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--order" => {
                let v = args.next().unwrap_or_else(|| usage());
                out.order = match v.as_str() {
                    "l" => OrderPolicy::LeftToRight,
                    "r" => OrderPolicy::RightToLeft,
                    s if s.starts_with('s') => {
                        let seed = s
                            .strip_prefix("s:")
                            .and_then(|n| n.parse().ok())
                            .unwrap_or(0);
                        OrderPolicy::Seeded(seed)
                    }
                    _ => usage(),
                };
            }
            "--help" | "-h" => usage(),
            f if !f.starts_with('-') && out.file.is_none() => out.file = Some(f.to_string()),
            _ => usage(),
        }
    }
    out
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut session = Session::new();
    session.options.machine.order = args.order;

    if let Some(path) = &args.file {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("urk: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = session.load(&src) {
            eprintln!("urk: {e}");
            return ExitCode::FAILURE;
        }
    }

    if args.optimize {
        match session.optimize() {
            Ok(report) => eprintln!(
                "urk: optimiser performed {} rewrites (size {} -> {})",
                report.total_rewrites(),
                report.size_before,
                report.size_after
            ),
            Err(e) => {
                eprintln!("urk: optimiser failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if args.dump_core {
        for (name, rhs) in &session.program().binds {
            println!("{name} = {}", urk_syntax::pretty(rhs));
        }
        return ExitCode::SUCCESS;
    }

    if let Some(e) = &args.type_of {
        return match session.type_of(e) {
            Ok(t) => {
                println!("{e} :: {t}");
                ExitCode::SUCCESS
            }
            Err(err) => {
                eprintln!("urk: {err}");
                ExitCode::FAILURE
            }
        };
    }

    if let Some(e) = &args.denot {
        return match session.denot_show(e, 16) {
            Ok(d) => {
                println!("{d}");
                ExitCode::SUCCESS
            }
            Err(err) => {
                eprintln!("urk: {err}");
                ExitCode::FAILURE
            }
        };
    }

    if let Some(e) = &args.expr {
        return match session.eval(e) {
            Ok(r) => {
                println!("{}", r.rendered);
                if args.stats {
                    eprintln!(
                        "steps: {}  allocations: {}  updates: {}  max-stack: {}  gc-runs: {}  gc-freed: {}",
                        r.stats.steps,
                        r.stats.allocations,
                        r.stats.thunk_updates,
                        r.stats.max_stack_depth,
                        r.stats.gc_runs,
                        r.stats.gc_freed,
                    );
                }
                if r.exception.is_some() {
                    ExitCode::FAILURE
                } else {
                    ExitCode::SUCCESS
                }
            }
            Err(err) => {
                eprintln!("urk: {err}");
                ExitCode::FAILURE
            }
        };
    }

    // Perform main.
    let input = match &args.input {
        Some(s) => s.clone(),
        None => {
            let mut buf = String::new();
            if std::io::stdin().read_to_string(&mut buf).is_err() {
                buf.clear();
            }
            buf
        }
    };

    if args.concurrent {
        return match session.run_main_concurrent(&input) {
            Ok(out) => {
                print!("{}", out.trace.output());
                if args.trace {
                    eprintln!("\ntrace: {}", out.trace);
                }
                for (tid, r) in &out.threads {
                    eprintln!("thread {tid}: {r:?}");
                }
                match out.result_exit() {
                    true => ExitCode::SUCCESS,
                    false => ExitCode::FAILURE,
                }
            }
            Err(e) => {
                eprintln!("urk: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if args.semantic {
        match session.run_main_semantic(&input, args.seed) {
            Ok(out) => {
                print!("{}", out.trace.output());
                if args.trace {
                    eprintln!("\ntrace: {}", out.trace);
                }
                match out.result {
                    SemIoResult::Done(v) => {
                        eprintln!("\nmain returned: {v}");
                        ExitCode::SUCCESS
                    }
                    SemIoResult::Uncaught(set) => {
                        eprintln!("\nurk: uncaught exception set: {set}");
                        ExitCode::FAILURE
                    }
                    SemIoResult::Diverged => {
                        eprintln!("\nurk: the program diverges");
                        ExitCode::FAILURE
                    }
                    SemIoResult::OutOfInput => {
                        eprintln!("\nurk: getChar at end of input");
                        ExitCode::FAILURE
                    }
                }
            }
            Err(e) => {
                eprintln!("urk: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        match session.run_main(&input) {
            Ok(out) => {
                print!("{}", out.trace.output());
                if args.trace {
                    eprintln!("\ntrace: {}", out.trace);
                }
                match out.result {
                    IoResult::Done(v) => {
                        eprintln!("\nmain returned: {v}");
                        ExitCode::SUCCESS
                    }
                    IoResult::Uncaught(e) => {
                        // §4.4: "an uncaught exception, which the
                        // implementation should report".
                        eprintln!("\nurk: uncaught exception: {e}");
                        ExitCode::FAILURE
                    }
                    IoResult::OutOfInput => {
                        eprintln!("\nurk: getChar at end of input");
                        ExitCode::FAILURE
                    }
                    IoResult::MachineError(e) => {
                        eprintln!("\nurk: {e}");
                        ExitCode::FAILURE
                    }
                }
            }
            Err(e) => {
                eprintln!("urk: {e}");
                ExitCode::FAILURE
            }
        }
    }
}
