//! The `urk` command-line interpreter.
//!
//! ```text
//! urk program.urk                      # perform `main` (stdin as input)
//! urk program.urk --expr "f 42"        # evaluate an expression instead
//! urk --expr "1/0 + error \"Urk\""     # no file: Prelude only
//! urk program.urk --type "main"        # show an inferred type
//! urk program.urk --denot "f 0"        # show the denotation (exception sets)
//! urk program.urk --order r            # right-to-left machine policy
//! urk program.urk --optimize           # run the optimiser first
//! urk program.urk --input "abc"        # feed input without stdin
//! urk program.urk --semantic --seed 7  # perform main under the §4.4 LTS
//! urk program.urk --optimize --dump-core  # show the optimised core
//! urk --expr "f 9" --timeout-ms 500    # cancel at a wall-clock deadline
//! urk --expr "f 9" --chaos 42          # differential fault injection
//! urk --jobs 4 --batch exprs.txt       # pooled evaluation, one expr per line
//! urk --jobs 4 --batch exprs.txt --cache-cap 1024 --stats
//! urk --expr "f 9" --backend compiled  # run on the flat-code backend
//! urk --expr "f 9" --backend compiled --tier 2   # superinstruction codegen
//! urk lint program.urk                 # static exception-effect lint
//! urk lint --expr "head []"            # lint one expression
//! urk program.urk --backend compiled --verify-code   # check arenas in release
//! urk serve --listen 127.0.0.1:7199 --jobs 4          # network serving tier
//! urk serve program.urk --listen 127.0.0.1:0 --queue-cap 64 --cache-cap 1024
//! urk fuzz --seed 1 --execs 2000 --corpus corpus       # coverage-guided fuzzing
//! urk fuzz --replay corpus/cx-0123456789abcdef.urk     # replay one case
//! urk soak --duration-secs 60 --jobs 4 --serve         # long-run soak harness
//! ```

use std::io::Read;
use std::process::ExitCode;

use urk::{
    Backend, EvalPool, Exception, IoResult, OrderPolicy, PoolConfig, SemIoResult, ServeConfig,
    Server, Session, Supervisor, Tier,
};

struct Args {
    file: Option<String>,
    expr: Option<String>,
    type_of: Option<String>,
    denot: Option<String>,
    order: OrderPolicy,
    backend: Backend,
    tier: Tier,
    optimize: bool,
    dump_core: bool,
    stats: bool,
    input: Option<String>,
    semantic: bool,
    concurrent: bool,
    seed: u64,
    trace: bool,
    max_steps: Option<u64>,
    max_heap: Option<usize>,
    max_stack: Option<usize>,
    timeout_ms: Option<u64>,
    chaos: Option<u64>,
    jobs: Option<usize>,
    batch: Option<String>,
    cache_cap: Option<usize>,
    lint: bool,
    json: bool,
    verify_code: bool,
    validate_tier2: bool,
    serve: bool,
    listen: Option<String>,
    queue_cap: Option<usize>,
}

fn usage() -> ! {
    eprintln!(
        "usage: urk [FILE.urk] [--expr E | --type E | --denot E]\n\
         \x20          [--order l|r|s[:SEED]] [--backend tree|compiled] [--tier 1|2]\n\
         \x20          [--optimize] [--input STR]\n\
         \x20          [--semantic|--concurrent] [--seed N] [--trace] [--dump-core] [--stats]\n\
         \x20          [--max-steps N] [--max-heap N] [--max-stack N]\n\
         \x20          [--timeout-ms N] [--chaos SEED] [--verify-code] [--validate-tier2]\n\
         \x20          [--batch FILE] [--jobs N] [--cache-cap N]\n\
         \x20      urk lint [FILE.urk] [--expr E] [--optimize] [--json]\n\
         \x20      urk serve [FILE.urk] --listen ADDR [--jobs N] [--queue-cap N]\n\
         \x20          [--cache-cap N] [--timeout-ms N] [--backend tree|compiled] [--tier 1|2]\n\
         \x20      urk fuzz [--seed N] [--execs N] [--max-depth N] [--chaos-rounds N]\n\
         \x20          [--sabotage] [--interrupt-every N] [--corpus DIR] [--out DIR]\n\
         \x20          [--replay FILE]\n\
         \x20      urk soak [--duration-secs N] [--jobs N] [--seed N] [--batch N]\n\
         \x20          [--ring N] [--serve] [--report-every-secs N]"
    );
    std::process::exit(2)
}

/// `urk fuzz`: the coverage-guided differential fuzzer. Exit codes:
/// 0 = budget spent cleanly, 1 = counterexample found (or a replayed
/// case fails), 2 = usage/setup error.
fn fuzz_main(argv: &[String]) -> ExitCode {
    let mut cfg = urk_fuzz::FuzzConfig {
        execs: 2_000,
        ..urk_fuzz::FuzzConfig::default()
    };
    let mut replay: Option<String> = None;
    fn num<T: std::str::FromStr>(v: Option<&String>) -> T {
        v.and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
    }
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => cfg.seed = num(it.next()),
            "--execs" => cfg.execs = num(it.next()),
            "--max-depth" => cfg.max_depth = num(it.next()),
            "--chaos-rounds" => cfg.chaos_rounds = num(it.next()),
            "--interrupt-every" => cfg.interrupt_every = num(it.next()),
            "--sabotage" => cfg.sabotage = true,
            "--corpus" => cfg.corpus_dir = Some(num::<String>(it.next()).into()),
            "--out" => cfg.out_dir = Some(num::<String>(it.next()).into()),
            "--replay" => replay = Some(num(it.next())),
            _ => usage(),
        }
    }

    if let Some(path) = replay {
        let src = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("urk: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let case = match urk_fuzz::load_case(&src) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("urk: {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let oracle_cfg = urk_fuzz::OracleConfig {
            chaos_seeds: (0..cfg.chaos_rounds).collect(),
            sabotage: cfg.sabotage,
            ..urk_fuzz::OracleConfig::default()
        };
        let v = urk_fuzz::run_oracle(&case.ctx, &case.query, &oracle_cfg);
        return match v.failure {
            None => {
                println!(
                    "replay {path}: {}",
                    if v.skipped { "skipped" } else { "pass" }
                );
                ExitCode::SUCCESS
            }
            Some(f) => {
                println!("replay {path}: FAIL {} — {}", f.kind, f.detail);
                ExitCode::FAILURE
            }
        };
    }

    match urk_fuzz::run_fuzz(&cfg) {
        Err(e) => {
            eprintln!("urk: fuzz: {e}");
            ExitCode::from(2)
        }
        Ok(report) => {
            println!("{}", report.deterministic_summary());
            eprintln!(
                "elapsed {} ms ({:.0} execs/s)",
                report.elapsed_ms,
                report.execs as f64 / (report.elapsed_ms.max(1) as f64 / 1000.0)
            );
            match &report.counterexample {
                None => ExitCode::SUCCESS,
                Some(cx) => {
                    println!("counterexample ({}): {}", cx.kind, cx.minimized);
                    println!("  original: {}", cx.original);
                    println!("  detail:   {}", cx.detail);
                    if let Some(p) = &cx.path {
                        println!("  saved:    {}", p.display());
                    }
                    ExitCode::FAILURE
                }
            }
        }
    }
}

/// `urk soak`: the long-run invariant harness. Exit codes: 0 = clean,
/// 1 = violations recorded, 2 = setup error.
fn soak_main(argv: &[String]) -> ExitCode {
    let mut cfg = urk::SoakConfig::default();
    fn num<T: std::str::FromStr>(v: Option<&String>) -> T {
        v.and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
    }
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--duration-secs" => {
                cfg.duration = std::time::Duration::from_secs(num(it.next()));
            }
            "--report-every-secs" => {
                cfg.report_every = std::time::Duration::from_secs(num(it.next()));
            }
            "--jobs" => cfg.jobs = num(it.next()),
            "--seed" => cfg.seed = num(it.next()),
            "--batch" => cfg.batch = num(it.next()),
            "--ring" => cfg.ring = num(it.next()),
            "--serve" => cfg.serve = true,
            _ => usage(),
        }
    }
    match urk::run_soak(&cfg) {
        Err(e) => {
            eprintln!("urk: soak: {e}");
            ExitCode::from(2)
        }
        Ok(report) => {
            println!("{}", report.to_json());
            if report.is_clean() {
                eprintln!(
                    "soak clean: {} evaluations in {} ms",
                    report.evals, report.elapsed_ms
                );
                ExitCode::SUCCESS
            } else {
                for v in &report.violations {
                    eprintln!("violation: {v}");
                }
                eprintln!("soak FAILED: {} violations", report.violation_count);
                ExitCode::FAILURE
            }
        }
    }
}

fn parse_args() -> Args {
    let mut out = Args {
        file: None,
        expr: None,
        type_of: None,
        denot: None,
        order: OrderPolicy::LeftToRight,
        backend: Backend::Tree,
        tier: Tier::One,
        optimize: false,
        dump_core: false,
        stats: false,
        input: None,
        semantic: false,
        concurrent: false,
        seed: 0,
        trace: false,
        max_steps: None,
        max_heap: None,
        max_stack: None,
        timeout_ms: None,
        chaos: None,
        jobs: None,
        batch: None,
        cache_cap: None,
        lint: false,
        json: false,
        verify_code: false,
        validate_tier2: false,
        serve: false,
        listen: None,
        queue_cap: None,
    };
    fn num<T: std::str::FromStr>(v: Option<String>) -> T {
        v.and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
    }
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--max-steps" => out.max_steps = Some(num(args.next())),
            "--max-heap" => out.max_heap = Some(num(args.next())),
            "--max-stack" => out.max_stack = Some(num(args.next())),
            "--timeout-ms" => out.timeout_ms = Some(num(args.next())),
            "--chaos" => out.chaos = Some(num(args.next())),
            "--jobs" => out.jobs = Some(num(args.next())),
            "--cache-cap" => out.cache_cap = Some(num(args.next())),
            "--queue-cap" => out.queue_cap = Some(num(args.next())),
            "--listen" => out.listen = Some(args.next().unwrap_or_else(|| usage())),
            "--batch" => out.batch = Some(args.next().unwrap_or_else(|| usage())),
            "--expr" => out.expr = Some(args.next().unwrap_or_else(|| usage())),
            "--type" => out.type_of = Some(args.next().unwrap_or_else(|| usage())),
            "--denot" => out.denot = Some(args.next().unwrap_or_else(|| usage())),
            "--input" => out.input = Some(args.next().unwrap_or_else(|| usage())),
            "--optimize" => out.optimize = true,
            "--dump-core" => out.dump_core = true,
            "--stats" => out.stats = true,
            "--semantic" => out.semantic = true,
            "--concurrent" => out.concurrent = true,
            "--trace" => out.trace = true,
            "--seed" => {
                out.seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--order" => {
                let v = args.next().unwrap_or_else(|| usage());
                out.order = match v.as_str() {
                    "l" => OrderPolicy::LeftToRight,
                    "r" => OrderPolicy::RightToLeft,
                    s if s.starts_with('s') => {
                        let seed = s
                            .strip_prefix("s:")
                            .and_then(|n| n.parse().ok())
                            .unwrap_or(0);
                        OrderPolicy::Seeded(seed)
                    }
                    _ => usage(),
                };
            }
            "--backend" => {
                let v = args.next().unwrap_or_else(|| usage());
                out.backend = match v.as_str() {
                    "tree" => Backend::Tree,
                    "compiled" => Backend::Compiled,
                    _ => usage(),
                };
            }
            "--tier" => {
                let v = args.next().unwrap_or_else(|| usage());
                out.tier = match v.as_str() {
                    "1" => Tier::One,
                    "2" => Tier::Two,
                    _ => usage(),
                };
            }
            "--verify-code" => out.verify_code = true,
            "--validate-tier2" => out.validate_tier2 = true,
            "--json" => out.json = true,
            "--help" | "-h" => usage(),
            // The `lint`/`serve` subcommands, intercepted before the
            // bare positional is taken as a file name.
            "lint" if !out.lint && !out.serve && out.file.is_none() => out.lint = true,
            "serve" if !out.lint && !out.serve && out.file.is_none() => out.serve = true,
            f if !f.starts_with('-') && out.file.is_none() => out.file = Some(f.to_string()),
            _ => usage(),
        }
    }
    out
}

fn main() -> ExitCode {
    // `fuzz`/`soak` own their flag namespaces; intercept them before the
    // main parser sees the argument list.
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("fuzz") => return fuzz_main(&argv[1..]),
        Some("soak") => return soak_main(&argv[1..]),
        _ => {}
    }
    let args = parse_args();
    let mut session = Session::new();
    session.options.machine.order = args.order;
    session.options.machine.verify_code = args.verify_code;
    session.options.validate_tier2 |= args.validate_tier2;
    session.options.backend = args.backend;
    session.options.tier = args.tier;
    if let Some(n) = args.max_steps {
        session.options.machine.max_steps = n;
    }
    if let Some(n) = args.max_heap {
        session.options.machine.max_heap = n;
    }
    if let Some(n) = args.max_stack {
        session.options.machine.max_stack = n;
    }

    let mut file_src: Option<String> = None;
    if let Some(path) = &args.file {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("urk: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = session.load(&src) {
            eprintln!("urk: {e}");
            return ExitCode::FAILURE;
        }
        file_src = Some(src);
    }

    // The network serving tier: a TCP front-end over the worker pool.
    // Blocks until a client sends a `shutdown` frame.
    if args.serve {
        let Some(listen) = &args.listen else {
            eprintln!("urk: serve needs --listen ADDR (e.g. --listen 127.0.0.1:0)");
            return ExitCode::from(2);
        };
        // The pool's queue constructor clamps capacity 0 to 1 to keep
        // blocking submitters deadlock-free; for a *server* a zero
        // queue means "shed everything", which is never what an
        // operator wants — reject it up front instead of serving a
        // silently different configuration.
        if args.queue_cap == Some(0) {
            eprintln!("urk: --queue-cap 0 would shed every request; use a capacity of at least 1");
            return ExitCode::from(2);
        }

        let mut config = ServeConfig {
            addr: listen.clone(),
            pool: PoolConfig::default(),
        };
        if let Some(n) = args.jobs {
            config.pool.workers = n;
        }
        if let Some(n) = args.queue_cap {
            config.pool.queue_cap = n;
        }
        if let Some(n) = args.cache_cap {
            config.pool.cache_cap = n;
        }
        if let Some(ms) = args.timeout_ms {
            config.pool.supervisor.deadline = Some(std::time::Duration::from_millis(ms));
        }

        let sources: Vec<&str> = file_src.as_deref().into_iter().collect();
        let server = match Server::start(&sources, session.options.clone(), config) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("urk: {e}");
                return ExitCode::FAILURE;
            }
        };
        // The one line scripts parse to find the port (`--listen ...:0`
        // binds an ephemeral one).
        println!("listening on {}", server.local_addr());
        use std::io::Write;
        let _ = std::io::stdout().flush();
        server.join();
        eprintln!("urk: server stopped");
        return ExitCode::SUCCESS;
    }

    if args.optimize {
        match session.optimize() {
            Ok(report) => eprintln!(
                "urk: optimiser performed {} rewrites (size {} -> {})",
                report.total_rewrites(),
                report.size_before,
                report.size_after
            ),
            Err(e) => {
                eprintln!("urk: optimiser failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Static exception-effect lint: report and stop (exit 1 when the
    // analysis found something, so scripts can gate on it).
    if args.lint {
        let mut diags = session.lint();
        if let Some(e) = &args.expr {
            match session.lint_expr(e) {
                Ok(more) => diags.extend(more),
                Err(err) => {
                    eprintln!("urk: {err}");
                    return ExitCode::FAILURE;
                }
            }
        }
        if args.json {
            // Machine-readable findings: a stable array-of-objects schema
            // (`rule`, `binding`, `path`, `message`) for editor and CI
            // integration. The schema is pinned by a golden test.
            let arr = urk_io::Json::Arr(
                diags
                    .iter()
                    .map(|d| {
                        urk_io::Json::Obj(vec![
                            ("rule".into(), urk_io::Json::str(d.code.to_string())),
                            ("binding".into(), urk_io::Json::str(d.binding.to_string())),
                            (
                                "path".into(),
                                urk_io::Json::str(if d.path.is_empty() {
                                    "rhs".to_string()
                                } else {
                                    d.path.clone()
                                }),
                            ),
                            ("message".into(), urk_io::Json::str(d.message.clone())),
                        ])
                    })
                    .collect(),
            );
            println!("{arr}");
        } else {
            for d in &diags {
                println!("{d}");
            }
        }
        eprintln!("urk: lint reported {} finding(s)", diags.len());
        return if diags.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        };
    }

    if args.dump_core {
        for (name, rhs) in &session.program().binds {
            println!("{name} = {}", urk_syntax::pretty(rhs));
        }
        return ExitCode::SUCCESS;
    }

    if let Some(e) = &args.type_of {
        return match session.type_of(e) {
            Ok(t) => {
                println!("{e} :: {t}");
                ExitCode::SUCCESS
            }
            Err(err) => {
                eprintln!("urk: {err}");
                ExitCode::FAILURE
            }
        };
    }

    if let Some(e) = &args.denot {
        return match session.denot_show(e, 16) {
            Ok(d) => {
                println!("{d}");
                ExitCode::SUCCESS
            }
            Err(err) => {
                eprintln!("urk: {err}");
                ExitCode::FAILURE
            }
        };
    }

    // Pooled batch evaluation: one expression per line of the batch
    // file, served by `--jobs` worker sessions sharing a result cache.
    // Results print in submission order; exceptional outcomes render as
    // `(raise E)` and are *successful* answers — only front-end or pool
    // errors fail the run.
    if let Some(path) = &args.batch {
        let corpus_src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("urk: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let corpus: Vec<&str> = corpus_src
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .collect();

        let mut config = PoolConfig::default();
        if let Some(n) = args.jobs {
            config.workers = n;
        }
        if let Some(n) = args.cache_cap {
            config.cache_cap = n;
        }
        if let Some(ms) = args.timeout_ms {
            config.supervisor.deadline = Some(std::time::Duration::from_millis(ms));
        }

        let sources: Vec<&str> = file_src.as_deref().into_iter().collect();
        let pool = match EvalPool::start(&sources, session.options.clone(), config) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("urk: {e}");
                return ExitCode::FAILURE;
            }
        };

        let started = std::time::Instant::now();
        let results = pool.eval_batch(&corpus);
        let elapsed = started.elapsed();

        let mut failed = false;
        for (i, result) in results.iter().enumerate() {
            match result {
                Ok(out) => println!("{}", out.rendered),
                Err(e) => {
                    println!("<error>");
                    eprintln!("urk: job {i}: {e}");
                    failed = true;
                }
            }
        }
        if args.stats {
            let cache = pool.cache_stats();
            let secs = elapsed.as_secs_f64();
            eprintln!(
                "jobs: {}  workers: {}  elapsed: {:.3}s  throughput: {:.1}/s",
                results.len(),
                args.jobs.unwrap_or(4),
                secs,
                if secs > 0.0 {
                    results.len() as f64 / secs
                } else {
                    0.0
                },
            );
            eprintln!(
                "cache: {} hits  {} misses  ({:.0}% hit rate)  {} entries  {} evictions",
                cache.hits,
                cache.misses,
                cache.hit_rate() * 100.0,
                cache.entries,
                cache.evictions,
            );
        }
        pool.shutdown();
        return if failed {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    if let Some(seed) = args.chaos {
        let Some(e) = &args.expr else {
            eprintln!("urk: --chaos needs --expr");
            return ExitCode::FAILURE;
        };
        return match session.chaos_check(e, seed) {
            Ok(r) => {
                println!(
                    "chaos seed {}: outcome {}  oracle {}",
                    r.plan.seed, r.outcome, r.oracle
                );
                println!(
                    "  injections: {:?}  forced-gc: {:?}  heap-budget: {:?}  faults fired: {}",
                    r.plan.injections, r.plan.force_gc_at, r.plan.heap_budget, r.faults_fired
                );
                println!(
                    "  sound: {}  heap-consistent: {}  re-eval agrees: {}",
                    r.sound, r.heap_consistent, r.reeval_ok
                );
                if r.passed() {
                    ExitCode::SUCCESS
                } else {
                    eprintln!("urk: chaos invariant violated (seed {seed})");
                    ExitCode::FAILURE
                }
            }
            Err(err) => {
                eprintln!("urk: {err}");
                ExitCode::FAILURE
            }
        };
    }

    if let Some(e) = &args.expr {
        // Under a wall-clock deadline, evaluate supervised: a watchdog
        // delivers Timeout through the machine's interrupt handle.
        if let Some(ms) = args.timeout_ms {
            return match session.eval_supervised(e, &Supervisor::with_deadline(ms)) {
                Ok(sup) => {
                    println!("{}", sup.result.rendered);
                    if sup.timed_out {
                        eprintln!("urk: cancelled at the {ms}ms deadline");
                    }
                    if sup.result.exception.is_some() {
                        ExitCode::FAILURE
                    } else {
                        ExitCode::SUCCESS
                    }
                }
                Err(err) => {
                    eprintln!("urk: {err}");
                    ExitCode::FAILURE
                }
            };
        }
        return match session.eval(e) {
            Ok(r) => {
                println!("{}", r.rendered);
                if args.stats {
                    eprintln!(
                        "backend: {}  steps: {}  allocations: {}  updates: {}  max-stack: {}  gc-runs: {}  gc-freed: {}",
                        r.stats.backend.name(),
                        r.stats.steps,
                        r.stats.allocations,
                        r.stats.thunk_updates,
                        r.stats.max_stack_depth,
                        r.stats.gc_runs,
                        r.stats.gc_freed,
                    );
                    eprintln!(
                        "heap: {} minor-gcs  {} major-gcs  {} promoted  {} unboxed-hits",
                        r.stats.minor_gcs,
                        r.stats.major_gcs,
                        r.stats.nodes_promoted,
                        r.stats.unboxed_hits,
                    );
                    if r.stats.backend == Backend::Compiled {
                        eprintln!(
                            "compile: {} ops in {}µs (program + query lowering)",
                            r.stats.compile_ops, r.stats.compile_micros,
                        );
                        eprintln!(
                            "tier: {}  fused-steps: {}  ic-hits: {}  ic-misses: {}",
                            r.stats.tier.name(),
                            r.stats.fused_steps,
                            r.stats.ic_hits,
                            r.stats.ic_misses,
                        );
                    }
                    if let Ok(set) = session.predicted_exceptions(e) {
                        eprintln!("predicted exceptions: {set}");
                    }
                }
                if r.exception.is_some() {
                    ExitCode::FAILURE
                } else {
                    ExitCode::SUCCESS
                }
            }
            Err(err) => {
                eprintln!("urk: {err}");
                ExitCode::FAILURE
            }
        };
    }

    // Perform main.
    let input = match &args.input {
        Some(s) => s.clone(),
        None => {
            let mut buf = String::new();
            if std::io::stdin().read_to_string(&mut buf).is_err() {
                buf.clear();
            }
            buf
        }
    };

    // For IO actions the deadline is a detached watchdog arming the
    // machine's interrupt handle: past it, `main` observes an asynchronous
    // Timeout (uncaught unless the program runs under getException).
    if let Some(ms) = args.timeout_ms {
        let handle = urk::InterruptHandle::new();
        session.options.machine.interrupt = Some(handle.clone());
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            handle.deliver(Exception::Timeout);
        });
    }

    if args.concurrent {
        return match session.run_main_concurrent(&input) {
            Ok(out) => {
                print!("{}", out.trace.output());
                if args.trace {
                    eprintln!("\ntrace: {}", out.trace);
                }
                for (tid, r) in &out.threads {
                    eprintln!("thread {tid}: {r:?}");
                }
                match out.result_exit() {
                    true => ExitCode::SUCCESS,
                    false => ExitCode::FAILURE,
                }
            }
            Err(e) => {
                eprintln!("urk: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if args.semantic {
        match session.run_main_semantic(&input, args.seed) {
            Ok(out) => {
                print!("{}", out.trace.output());
                if args.trace {
                    eprintln!("\ntrace: {}", out.trace);
                }
                match out.result {
                    SemIoResult::Done(v) => {
                        eprintln!("\nmain returned: {v}");
                        ExitCode::SUCCESS
                    }
                    SemIoResult::Uncaught(set) => {
                        eprintln!("\nurk: uncaught exception set: {set}");
                        ExitCode::FAILURE
                    }
                    SemIoResult::Diverged => {
                        eprintln!("\nurk: the program diverges");
                        ExitCode::FAILURE
                    }
                    SemIoResult::OutOfInput => {
                        eprintln!("\nurk: getChar at end of input");
                        ExitCode::FAILURE
                    }
                }
            }
            Err(e) => {
                eprintln!("urk: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        match session.run_main(&input) {
            Ok(out) => {
                print!("{}", out.trace.output());
                if args.trace {
                    eprintln!("\ntrace: {}", out.trace);
                }
                match out.result {
                    IoResult::Done(v) => {
                        eprintln!("\nmain returned: {v}");
                        ExitCode::SUCCESS
                    }
                    IoResult::Uncaught(e) => {
                        // §4.4: "an uncaught exception, which the
                        // implementation should report".
                        eprintln!("\nurk: uncaught exception: {e}");
                        ExitCode::FAILURE
                    }
                    IoResult::OutOfInput => {
                        eprintln!("\nurk: getChar at end of input");
                        ExitCode::FAILURE
                    }
                    IoResult::MachineError(e) => {
                        eprintln!("\nurk: {e}");
                        ExitCode::FAILURE
                    }
                }
            }
            Err(e) => {
                eprintln!("urk: {e}");
                ExitCode::FAILURE
            }
        }
    }
}
