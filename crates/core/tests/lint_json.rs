//! Golden test for `urk lint --json`: the machine-readable diagnostics
//! schema is a published interface (editor plugins and CI gates parse
//! it), so its shape is pinned here against the real binary.
//!
//! Schema, per finding (an element of the top-level array):
//!
//! ```json
//! { "rule": "URK00N", "binding": "<name>", "path": "<breadcrumb>",
//!   "message": "<human text>" }
//! ```
//!
//! All four fields are strings, appear in every element, and no other
//! fields appear. `path` is `"rhs"` when the finding sits at a binding's
//! root. Exit status stays 1 when findings exist (0 when clean), exactly
//! as in the human-readable mode.

use std::process::Command;

use urk_io::{parse_json, Json};

/// A fixture tripping every rule family at least once: URK001 (always
/// raises), URK002 (shadowed alternative), URK004 (partial match),
/// URK005 (discarded imprecise exception), URK006 (dead handler).
const FIXTURE: &str = "\
boom n = 1 / 0 + n
shadowed = let k = 1 in case k of { 1 -> 10; 2 -> 20 }
fromJust m = case m of { Just x -> x }
discard = let u = 1 / 0 in 42
deadHandler = mapException (\\e -> e) 42
";

fn run_lint_json(src: &str) -> (Json, std::process::ExitStatus) {
    let dir = std::env::temp_dir().join(format!("urk-lint-json-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let file = dir.join("fixture.urk");
    std::fs::write(&file, src).expect("write fixture");
    let out = Command::new(env!("CARGO_BIN_EXE_urk"))
        .arg("lint")
        .arg(&file)
        .arg("--json")
        .output()
        .expect("run urk lint --json");
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
    let json = parse_json(&stdout).expect("stdout parses as JSON");
    (json, out.status)
}

#[test]
fn lint_json_matches_the_published_schema() {
    let (json, status) = run_lint_json(FIXTURE);
    assert_eq!(status.code(), Some(1), "findings exist, so exit 1");
    let arr = json.as_arr().expect("top level is an array");
    assert!(!arr.is_empty(), "the fixture trips findings");
    let mut rules: Vec<String> = Vec::new();
    for d in arr {
        let Json::Obj(pairs) = d else {
            panic!("every finding is an object, got {d}")
        };
        let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            vec!["rule", "binding", "path", "message"],
            "field set and order are pinned"
        );
        for field in &keys {
            let v = d.get(field).expect("field present");
            let s = v
                .as_str()
                .unwrap_or_else(|| panic!("{field} is a string, got {v}"));
            assert!(!s.is_empty(), "{field} is non-empty");
        }
        let rule = d.get("rule").and_then(Json::as_str).expect("rule");
        assert!(
            rule.len() == 6 && rule.starts_with("URK0"),
            "rule ids look like URK00N, got {rule}"
        );
        rules.push(rule.to_string());
    }
    for want in ["URK001", "URK002", "URK004", "URK005", "URK006"] {
        assert!(rules.iter().any(|r| r == want), "fixture trips {want}");
    }
}

#[test]
fn lint_json_on_a_clean_program_is_an_empty_array() {
    let (json, status) = run_lint_json("double x = x + x\n");
    assert_eq!(status.code(), Some(0), "no findings, so exit 0");
    assert_eq!(json, Json::Arr(Vec::new()));
}
