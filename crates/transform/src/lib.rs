//! # urk-transform
//!
//! The transformation layer of the PLDI 1999 reproduction:
//!
//! * [`transforms`] — the catalogue of rewrites the imprecise semantics is
//!   designed to keep (beta, inlining, commutation, case-of-case,
//!   strictness-driven call-by-value, ...), each a [`Transform`] usable
//!   with the [`rewrite`] engine;
//! * [`strictness`] — the two-point strictness analysis that licenses
//!   §3.4's "crucial" call-by-need → call-by-value transformation;
//! * [`licensed`] — rewrites that fire only under proofs from the
//!   `urk-analysis` exception-effect analysis (dead-alternative pruning,
//!   `unsafeIsException`/`unsafeGetException` folding, licensed
//!   alternative collapse);
//! * [`exval`] — the §2.2 explicit `ExVal` encoding baseline, used by the
//!   benchmarks to regenerate the paper's efficiency claims;
//! * [`laws`] — the law corpus and validator regenerating §4.5's
//!   identity/refinement/lost classification across all three candidate
//!   semantics.

pub mod exval;
pub mod laws;
pub mod licensed;
pub mod pipeline;
pub mod rewrite;
pub mod strictness;
pub mod transforms;

pub use exval::{encode_expr, encode_program, EncodeError};
pub use laws::{classify, classify_all, render_table, standard_laws, LawInstance, LawReport};
pub use licensed::LicensedRewriter;
pub use pipeline::{InlineWorkSafe, OptimizeOptions, OptimizeReport, Optimizer};
pub use rewrite::{apply_everywhere, apply_to_fixpoint, Transform};
pub use strictness::{analyze_program, forces, strict_in, StrictSigs};
pub use transforms::{
    BetaReduce, CaseOfCase, CaseOfKnownCon, CaseOfLiteral, CollapseIdenticalAlts, CommutePrimArgs,
    DeadLetElim, EtaReduce, InlineLet, LetToCase, StrictCallSites,
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;
    use urk_denot::{compare_denots, DenotEvaluator, Verdict};
    use urk_syntax::core::Expr;
    use urk_syntax::{desugar_expr, parse_expr_src, DataEnv};

    fn core(src: &str) -> Rc<Expr> {
        let data = DataEnv::new();
        Rc::new(desugar_expr(&parse_expr_src(src).expect("parses"), &data).expect("desugars"))
    }

    /// Every transformation in the catalogue, applied to a corpus of
    /// exception-heavy terms, must be a valid rewrite (identity or
    /// refinement) under the imprecise semantics.
    #[test]
    fn catalogue_is_sound_under_the_imprecise_semantics() {
        let corpus = [
            r#"(1/0) + raise (UserError "Urk")"#,
            r"(\x -> x + x) (1/0)",
            r"(\x -> 3) (raise Overflow)",
            "let x = raise Overflow in x + x",
            "let x = 1/0 in 42",
            "case Just (1/0) of { Just n -> n + 1; Nothing -> 0 }",
            "case 2 of { 1 -> 1/0; 2 -> 20; _ -> raise Overflow }",
            "case (case raise Overflow of { True -> False; False -> True }) of { True -> 1; False -> 2 }",
            "case raise Overflow of { True -> 7; False -> 7 }",
            "seq (1/0) (raise Overflow)",
            "(1 + 2) * (3 - 4)",
        ];
        let always_strict: &dyn Fn(urk_syntax::Symbol, &Expr) -> bool =
            &|x, b| strict_in(x, b, &StrictSigs::new());
        let transforms: Vec<Box<dyn Transform>> = vec![
            Box::new(BetaReduce),
            Box::new(InlineLet),
            Box::new(DeadLetElim),
            Box::new(CaseOfKnownCon),
            Box::new(CaseOfLiteral),
            Box::new(CommutePrimArgs),
            Box::new(CaseOfCase),
            Box::new(LetToCase {
                is_strict: always_strict,
            }),
        ];
        for src in corpus {
            let e = core(src);
            for t in &transforms {
                let (out, n) = apply_everywhere(t.as_ref(), &e);
                if n == 0 {
                    continue;
                }
                let data = DataEnv::new();
                let ev = DenotEvaluator::new(&data);
                let dl = ev.eval_closed(&e);
                let dr = ev.eval_closed(&Rc::new(out));
                let verdict = compare_denots(&ev, &dl, &dr, 8);
                assert!(
                    verdict.is_valid_rewrite(),
                    "{} on `{src}` gave {verdict:?}",
                    t.name()
                );
            }
        }
    }

    /// The two proof-obligation transforms (§5.3): collapsing identical
    /// alternatives is fine on normal scrutinees but invalid on
    /// exceptional ones — the checker must notice both.
    #[test]
    fn collapse_identical_alts_obligation_is_detected() {
        let data = DataEnv::new();
        let safe = core("case (1 < 2) of { True -> 7; False -> 7 }");
        let (out, n) = apply_everywhere(&CollapseIdenticalAlts, &safe);
        assert_eq!(n, 1);
        let ev = DenotEvaluator::new(&data);
        let verdict = compare_denots(
            &ev,
            &ev.eval_closed(&safe),
            &ev.eval_closed(&Rc::new(out)),
            8,
        );
        assert_eq!(verdict, Verdict::Equal);

        let unsafe_ = core("case raise Overflow of { True -> 7; False -> 7 }");
        let (out2, n2) = apply_everywhere(&CollapseIdenticalAlts, &unsafe_);
        assert_eq!(n2, 1);
        let verdict2 = compare_denots(
            &ev,
            &ev.eval_closed(&unsafe_),
            &ev.eval_closed(&Rc::new(out2)),
            8,
        );
        assert_eq!(verdict2, Verdict::Incomparable);
    }

    /// Eta reduction is the catalogue's designated counter-example: it is
    /// *not* valid (λx.⊥ ≠ ⊥), and the checker must notice.
    #[test]
    fn eta_reduction_is_caught_as_invalid() {
        let e = core(r"\x -> (raise Overflow) x");
        let (out, n) = apply_everywhere(&EtaReduce, &e);
        assert_eq!(n, 1);
        let data = DataEnv::new();
        let ev = DenotEvaluator::new(&data);
        let dl = ev.eval_closed(&e);
        let dr = ev.eval_closed(&Rc::new(out));
        assert_eq!(compare_denots(&ev, &dl, &dr, 8), Verdict::Incomparable);
    }

    /// The pipeline combination used by `urk`'s optimiser: analyse
    /// strictness, then let-to-case, then simplify — and the result still
    /// matches the original denotationally.
    #[test]
    fn optimisation_pipeline_preserves_meaning() {
        use urk_syntax::{desugar_program, parse_program};
        let mut data = DataEnv::new();
        let prog = desugar_program(
            &parse_program("sumTo n acc = if n == 0 then acc else sumTo (n - 1) (acc + n)")
                .expect("parses"),
            &mut data,
        )
        .expect("desugars");
        let sigs = analyze_program(&prog);
        assert_eq!(sigs[&urk_syntax::Symbol::intern("sumTo")], vec![true, true]);

        let e = core("let k = 3 * 4 in k + k");
        let pred: &dyn Fn(urk_syntax::Symbol, &Expr) -> bool = &|x, b| strict_in(x, b, &sigs);
        let (cbv, n) = apply_everywhere(&LetToCase { is_strict: pred }, &e);
        assert_eq!(n, 1);
        let ev = DenotEvaluator::new(&data);
        let a = ev.eval_closed(&e);
        let b = ev.eval_closed(&Rc::new(cbv));
        assert_eq!(compare_denots(&ev, &a, &b, 8), Verdict::Equal);
    }
}
