//! The optimisation pipeline — the paper's *point*, assembled.
//!
//! §2.3's goal is that "all transformations that are valid for ordinary
//! Haskell programs should be valid for the language extended with
//! exceptions"; this module is the compiler that banks on it. The
//! [`Optimizer`] runs a GHC-flavoured simplifier (beta, case-of-known,
//! case-of-literal, case-of-case, work-safe inlining, dead-let) to a
//! fixpoint, optionally followed by the strictness-analysis-driven
//! call-by-value pass of §3.4 — every one of them an evaluation-order- or
//! sharing-changing rewrite that only the imprecise semantics licenses
//! wholesale.
//!
//! With [`Optimizer::optimize_validated`], the pipeline double-checks
//! itself: each query expression's denotation after optimisation must be
//! an identity or refinement (`⊑`) of the one before, per §4.5's
//! criterion.

use std::rc::Rc;

use urk_denot::{compare_denots, DenotConfig, DenotEvaluator, Env, Verdict};
use urk_syntax::core::{CoreProgram, Expr};
use urk_syntax::{DataEnv, Symbol};

use crate::rewrite::{apply_everywhere, Transform};
use crate::strictness::{analyze_program, strict_in};
use crate::transforms::{
    BetaReduce, CaseOfCase, CaseOfKnownCon, CaseOfLiteral, DeadLetElim, LetToCase, StrictCallSites,
};

/// Work-safe let inlining: inline when the right-hand side is atomic (no
/// work to duplicate) or the binder occurs at most once (no duplication
/// at all).
pub struct InlineWorkSafe;

impl Transform for InlineWorkSafe {
    fn name(&self) -> &'static str {
        "inline-work-safe"
    }
    fn apply_root(&self, e: &Expr) -> Option<Expr> {
        let Expr::Let(x, r, b) = e else { return None };
        let atomic = matches!(
            &**r,
            Expr::Var(_) | Expr::Int(_) | Expr::Char(_) | Expr::Str(_)
        );
        if atomic || b.count_var(*x) <= 1 {
            Some(b.subst(*x, r))
        } else {
            None
        }
    }
}

/// Options for the pipeline.
#[derive(Clone, Debug)]
pub struct OptimizeOptions {
    /// Maximum simplifier sweeps (each sweep applies every pass once,
    /// bottom-up, everywhere).
    pub max_sweeps: usize,
    /// Run the strictness analysis and the §3.4 call-by-value passes.
    pub call_by_value: bool,
}

impl Default for OptimizeOptions {
    fn default() -> OptimizeOptions {
        OptimizeOptions {
            max_sweeps: 8,
            call_by_value: true,
        }
    }
}

/// What the pipeline did.
#[derive(Clone, Debug, Default)]
pub struct OptimizeReport {
    /// Rewrites per pass name, accumulated over sweeps.
    pub rewrites: Vec<(String, usize)>,
    /// AST size before and after.
    pub size_before: usize,
    pub size_after: usize,
    /// Verdicts for the validation queries (name kept parallel to the
    /// caller's query list), when validation ran.
    pub validation: Vec<Verdict>,
}

impl OptimizeReport {
    /// Total rewrites across passes.
    pub fn total_rewrites(&self) -> usize {
        self.rewrites.iter().map(|(_, n)| n).sum()
    }

    /// True if every validation query came back identity-or-refinement.
    pub fn validated(&self) -> bool {
        self.validation.iter().all(|v| v.is_valid_rewrite())
    }
}

/// The program optimizer.
#[derive(Default)]
pub struct Optimizer {
    pub options: OptimizeOptions,
}

impl Optimizer {
    /// Creates an optimizer with default options.
    pub fn new() -> Optimizer {
        Optimizer::default()
    }

    /// Optimises one binding group.
    pub fn optimize(&self, prog: &CoreProgram) -> (CoreProgram, OptimizeReport) {
        let mut report = OptimizeReport {
            size_before: prog.size(),
            ..OptimizeReport::default()
        };
        let bump = |name: &str, n: usize, report: &mut OptimizeReport| {
            if n == 0 {
                return;
            }
            match report.rewrites.iter_mut().find(|(p, _)| p == name) {
                Some((_, total)) => *total += n,
                None => report.rewrites.push((name.to_string(), n)),
            }
        };

        // The simplifier proper.
        let simplifier: Vec<Box<dyn Transform>> = vec![
            Box::new(BetaReduce),
            Box::new(CaseOfKnownCon),
            Box::new(CaseOfLiteral),
            Box::new(CaseOfCase),
            Box::new(InlineWorkSafe),
            Box::new(DeadLetElim),
        ];

        let mut binds: Vec<(Symbol, Rc<Expr>)> = prog.binds.clone();
        for _ in 0..self.options.max_sweeps {
            let mut any = 0;
            for (_, rhs) in binds.iter_mut() {
                let mut current: Expr = (**rhs).clone();
                for pass in &simplifier {
                    let (next, n) = apply_everywhere(pass.as_ref(), &current);
                    bump(pass.name(), n, &mut report);
                    any += n;
                    current = next;
                }
                *rhs = Rc::new(current);
            }
            if any == 0 {
                break;
            }
        }

        // The §3.4 worker: strictness-driven call-by-value.
        if self.options.call_by_value {
            let group = CoreProgram {
                binds: binds.clone(),
                sigs: Vec::new(),
            };
            let sigs = analyze_program(&group);
            let pred = |x: Symbol, b: &Expr| strict_in(x, b, &sigs);
            let call_sites = StrictCallSites { sigs: &sigs };
            let let_to_case = LetToCase { is_strict: &pred };
            for (_, rhs) in binds.iter_mut() {
                let (a, n1) = crate::rewrite::apply_to_fixpoint(&call_sites, rhs, 8);
                let (b, n2) = crate::rewrite::apply_to_fixpoint(&let_to_case, &a, 4);
                bump(call_sites.name(), n1, &mut report);
                bump(let_to_case.name(), n2, &mut report);
                *rhs = Rc::new(b);
            }
        }

        let out = CoreProgram {
            binds,
            sigs: prog.sigs.clone(),
        };
        report.size_after = out.size();
        (out, report)
    }

    /// Optimises and validates: each query's denotation under the
    /// optimised program must refine (or equal) its denotation under the
    /// original, per §4.5.
    pub fn optimize_validated(
        &self,
        prog: &CoreProgram,
        data: &DataEnv,
        queries: &[Rc<Expr>],
    ) -> (CoreProgram, OptimizeReport) {
        let (out, mut report) = self.optimize(prog);
        let config = DenotConfig {
            fuel: 2_000_000,
            ..DenotConfig::default()
        };
        for q in queries {
            let ev = DenotEvaluator::with_config(data, config.clone());
            let before_env = ev.bind_recursive(&prog.binds, &Env::empty());
            let before = ev.eval(q, &before_env);
            let after_env = ev.bind_recursive(&out.binds, &Env::empty());
            let after = ev.eval(q, &after_env);
            report
                .validation
                .push(compare_denots(&ev, &before, &after, 8));
        }
        (out, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urk_syntax::{desugar_expr, desugar_program, parse_expr_src, parse_program};

    fn program(src: &str) -> (DataEnv, CoreProgram) {
        let mut data = DataEnv::new();
        let prog =
            desugar_program(&parse_program(src).expect("parses"), &mut data).expect("desugars");
        (data, prog)
    }

    fn query(src: &str, data: &DataEnv) -> Rc<Expr> {
        Rc::new(desugar_expr(&parse_expr_src(src).expect("parses"), data).expect("desugars"))
    }

    #[test]
    fn pipeline_simplifies_redexes_away() {
        let (_, prog) =
            program(r"f x = (\y -> y + y) (case Just x of { Just n -> n; Nothing -> 0 })");
        let opt = Optimizer::new();
        let (out, report) = opt.optimize(&prog);
        assert!(report.total_rewrites() >= 2, "{:?}", report.rewrites);
        assert!(
            out.size() < prog.size(),
            "simplified {} -> {}",
            prog.size(),
            out.size()
        );
    }

    #[test]
    fn pipeline_validates_itself_on_exceptional_queries() {
        let (data, prog) = program(
            "safe n = if n == 0 then raise DivideByZero else 100 / n\n\
             twice f x = f (f x)\n\
             compute n = (\\u -> u + u) (safe n)",
        );
        let queries = vec![
            query("compute 5", &data),
            query("compute 0", &data),
            query("safe 0", &data),
        ];
        let opt = Optimizer::new();
        let (_, report) = opt.optimize_validated(&prog, &data, &queries);
        assert_eq!(report.validation.len(), 3);
        assert!(report.validated(), "{:?}", report.validation);
    }

    #[test]
    fn cbv_pass_fires_in_the_pipeline() {
        let (_, prog) = program("sumTo n acc = if n == 0 then acc else sumTo (n - 1) (acc + n)");
        let opt = Optimizer::new();
        let (_, report) = opt.optimize(&prog);
        assert!(
            report
                .rewrites
                .iter()
                .any(|(name, n)| name.contains("call-by-value") && *n > 0),
            "{:?}",
            report.rewrites
        );
    }

    #[test]
    fn cbv_can_be_disabled() {
        let (_, prog) = program("sumTo n acc = if n == 0 then acc else sumTo (n - 1) (acc + n)");
        let opt = Optimizer {
            options: OptimizeOptions {
                call_by_value: false,
                ..OptimizeOptions::default()
            },
        };
        let (_, report) = opt.optimize(&prog);
        assert!(report
            .rewrites
            .iter()
            .all(|(name, _)| !name.contains("call-by-value")));
    }

    #[test]
    fn inline_work_safe_inlines_atomic_and_single_use_only() {
        let data = DataEnv::new();
        let atomic = query("let x = 3 in x + x", &data);
        let (out, n) = apply_everywhere(&InlineWorkSafe, &atomic);
        assert_eq!(n, 1);
        assert!(out.alpha_eq(&query("3 + 3", &data)));

        // A used-twice non-atomic rhs is NOT inlined (work duplication).
        let shared = query("let x = 1 + 2 in x + x", &data);
        let (_, n2) = apply_everywhere(&InlineWorkSafe, &shared);
        assert_eq!(n2, 0);

        // A used-once non-atomic rhs is inlined.
        let once = query("let x = 1 + 2 in x * 3", &data);
        let (out3, n3) = apply_everywhere(&InlineWorkSafe, &once);
        assert_eq!(n3, 1);
        assert!(out3.alpha_eq(&query("(1 + 2) * 3", &data)));
    }

    #[test]
    fn optimized_prelude_still_computes() {
        // Optimize a small program and compare machine results.
        use urk_machine::{MEnv, Machine, MachineConfig, Outcome};
        let (data, prog) = program(
            "fib n = if n < 2 then n else fib (n - 1) + fib (n - 2)\n\
             go = fib 12",
        );
        let _ = data;
        let opt = Optimizer::new();
        let (out, _) = opt.optimize(&prog);
        for p in [&prog, &out] {
            let mut m = Machine::new(MachineConfig::default());
            let env = m.bind_recursive(&p.binds, &MEnv::empty());
            let r = m
                .eval(Rc::new(Expr::var("go")), &env, false)
                .expect("terminates");
            let Outcome::Value(n) = r else {
                panic!("{r:?}")
            };
            assert_eq!(m.render(n, 4), "144");
        }
    }
}
