//! The optimisation pipeline — the paper's *point*, assembled.
//!
//! §2.3's goal is that "all transformations that are valid for ordinary
//! Haskell programs should be valid for the language extended with
//! exceptions"; this module is the compiler that banks on it. The
//! [`Optimizer`] runs a GHC-flavoured simplifier (beta, case-of-known,
//! case-of-literal, case-of-case, work-safe inlining, dead-let) to a
//! fixpoint, optionally followed by the strictness-analysis-driven
//! call-by-value pass of §3.4 — every one of them an evaluation-order- or
//! sharing-changing rewrite that only the imprecise semantics licenses
//! wholesale.
//!
//! With [`Optimizer::optimize_validated`], the pipeline double-checks
//! itself: each query expression's denotation after optimisation must be
//! an identity or refinement (`⊑`) of the one before, per §4.5's
//! criterion.

use std::rc::Rc;

use urk_denot::{compare_denots, DenotConfig, DenotEvaluator, Env, Verdict};
use urk_syntax::core::{CoreProgram, Expr};
use urk_syntax::{DataEnv, Symbol};

use crate::licensed::LicensedRewriter;
use crate::rewrite::{apply_everywhere, Transform};
use crate::strictness::{analyze_program, strict_in};
use crate::transforms::{
    BetaReduce, CaseOfCase, CaseOfKnownCon, CaseOfLiteral, DeadLetElim, LetToCase, StrictCallSites,
};

/// Work-safe let inlining: inline when the right-hand side is atomic (no
/// work to duplicate) or the binder occurs at most once — and that one
/// occurrence is not under a lambda. A single occurrence inside a lambda
/// body re-evaluates the right-hand side on *every call*, where the `let`
/// evaluated (and shared) it once; such occurrences count as many.
pub struct InlineWorkSafe;

/// Does `v` occur free under a lambda within `e`?
fn occurs_under_lambda(e: &Expr, v: Symbol) -> bool {
    match e {
        Expr::Var(_) | Expr::Int(_) | Expr::Char(_) | Expr::Str(_) => false,
        Expr::Con(_, args) | Expr::Prim(_, args) => args.iter().any(|a| occurs_under_lambda(a, v)),
        Expr::App(f, a) => occurs_under_lambda(f, v) || occurs_under_lambda(a, v),
        Expr::Lam(x, b) => *x != v && b.count_var(v) > 0,
        Expr::Let(x, r, b) => occurs_under_lambda(r, v) || (*x != v && occurs_under_lambda(b, v)),
        Expr::LetRec(binds, b) => {
            if binds.iter().any(|(x, _)| *x == v) {
                false
            } else {
                binds.iter().any(|(_, r)| occurs_under_lambda(r, v)) || occurs_under_lambda(b, v)
            }
        }
        Expr::Case(s, alts) => {
            occurs_under_lambda(s, v)
                || alts
                    .iter()
                    .any(|a| !a.binders.contains(&v) && occurs_under_lambda(&a.rhs, v))
        }
        Expr::Raise(x) => occurs_under_lambda(x, v),
    }
}

impl Transform for InlineWorkSafe {
    fn name(&self) -> &'static str {
        "inline-work-safe"
    }
    fn apply_root(&self, e: &Expr) -> Option<Expr> {
        let Expr::Let(x, r, b) = e else { return None };
        let atomic = matches!(
            &**r,
            Expr::Var(_) | Expr::Int(_) | Expr::Char(_) | Expr::Str(_)
        );
        if atomic || (b.count_var(*x) <= 1 && !occurs_under_lambda(b, *x)) {
            Some(b.subst(*x, r))
        } else {
            None
        }
    }
}

/// Options for the pipeline.
#[derive(Clone, Debug)]
pub struct OptimizeOptions {
    /// Maximum simplifier sweeps (each sweep applies every pass once,
    /// bottom-up, everywhere).
    pub max_sweeps: usize,
    /// Run the strictness analysis and the §3.4 call-by-value passes.
    pub call_by_value: bool,
    /// Run the whole-program exception-effect analysis and the rewrites
    /// it licenses (dead-alternative pruning, `unsafeIsException` /
    /// `unsafeGetException` folding, licensed alternative collapse, and
    /// the WHNF-safety upgrade to the call-by-value pass).
    pub exception_analysis: bool,
}

impl Default for OptimizeOptions {
    fn default() -> OptimizeOptions {
        OptimizeOptions {
            max_sweeps: 8,
            call_by_value: true,
            exception_analysis: true,
        }
    }
}

/// What the pipeline did.
#[derive(Clone, Debug, Default)]
pub struct OptimizeReport {
    /// Rewrites per pass name, accumulated over sweeps.
    pub rewrites: Vec<(String, usize)>,
    /// AST size before and after.
    pub size_before: usize,
    pub size_after: usize,
    /// Verdicts for the validation queries (name kept parallel to the
    /// caller's query list), when validation ran.
    pub validation: Vec<Verdict>,
}

impl OptimizeReport {
    /// Total rewrites across passes.
    pub fn total_rewrites(&self) -> usize {
        self.rewrites.iter().map(|(_, n)| n).sum()
    }

    /// True if every validation query came back identity-or-refinement.
    pub fn validated(&self) -> bool {
        self.validation.iter().all(|v| v.is_valid_rewrite())
    }
}

/// The program optimizer.
#[derive(Default)]
pub struct Optimizer {
    pub options: OptimizeOptions,
}

impl Optimizer {
    /// Creates an optimizer with default options.
    pub fn new() -> Optimizer {
        Optimizer::default()
    }

    /// Optimises one binding group with an empty [`DataEnv`] (the
    /// licensed rewrites then only see the built-in constructor
    /// families; see [`Optimizer::optimize_with_data`]).
    pub fn optimize(&self, prog: &CoreProgram) -> (CoreProgram, OptimizeReport) {
        self.optimize_with_data(prog, &DataEnv::new())
    }

    /// Optimises one binding group against the program's data
    /// environment, enabling the analysis-licensed rewrites to reason
    /// about user-declared constructor families.
    pub fn optimize_with_data(
        &self,
        prog: &CoreProgram,
        data: &DataEnv,
    ) -> (CoreProgram, OptimizeReport) {
        let mut report = OptimizeReport {
            size_before: prog.size(),
            ..OptimizeReport::default()
        };
        let bump = |name: &str, n: usize, report: &mut OptimizeReport| {
            if n == 0 {
                return;
            }
            match report.rewrites.iter_mut().find(|(p, _)| p == name) {
                Some((_, total)) => *total += n,
                None => report.rewrites.push((name.to_string(), n)),
            }
        };

        // The simplifier proper.
        let simplifier: Vec<Box<dyn Transform>> = vec![
            Box::new(BetaReduce),
            Box::new(CaseOfKnownCon),
            Box::new(CaseOfLiteral),
            Box::new(CaseOfCase),
            Box::new(InlineWorkSafe),
            Box::new(DeadLetElim),
        ];

        let mut binds: Vec<(Symbol, Rc<Expr>)> = prog.binds.clone();
        for _ in 0..self.options.max_sweeps {
            let mut any = 0;
            for (_, rhs) in binds.iter_mut() {
                let mut current: Expr = (**rhs).clone();
                for pass in &simplifier {
                    let (next, n) = apply_everywhere(pass.as_ref(), &current);
                    bump(pass.name(), n, &mut report);
                    any += n;
                    current = next;
                }
                *rhs = Rc::new(current);
            }
            if any == 0 {
                break;
            }
        }

        // The exception-effect analysis and the rewrites it licenses.
        let effects = if self.options.exception_analysis {
            let group = CoreProgram {
                binds: binds.clone(),
                sigs: Vec::new(),
            };
            let analysis = urk_analysis::analyze_program(&group, data);
            let mut rewriter = LicensedRewriter::new(&analysis, data);
            for (_, rhs) in binds.iter_mut() {
                *rhs = Rc::new(rewriter.rewrite(rhs));
            }
            let fired = rewriter.total();
            for (rule, n) in rewriter.counts() {
                bump(rule, *n, &mut report);
            }
            if fired > 0 {
                // Licensed folds expose fresh syntactic redexes; one
                // more cleanup sweep picks them up.
                for (_, rhs) in binds.iter_mut() {
                    let mut current: Expr = (**rhs).clone();
                    for pass in &simplifier {
                        let (next, n) = apply_everywhere(pass.as_ref(), &current);
                        bump(pass.name(), n, &mut report);
                        current = next;
                    }
                    *rhs = Rc::new(current);
                }
            }
            // Re-analyse the rewritten group for the call-by-value
            // upgrade below.
            let group = CoreProgram {
                binds: binds.clone(),
                sigs: Vec::new(),
            };
            Some(urk_analysis::analyze_program(&group, data))
        } else {
            None
        };

        // The §3.4 worker: strictness-driven call-by-value, upgraded to
        // also fire on provably WHNF-safe arguments when the effect
        // analysis ran.
        if self.options.call_by_value {
            let group = CoreProgram {
                binds: binds.clone(),
                sigs: Vec::new(),
            };
            let sigs = analyze_program(&group);
            let pred = |x: Symbol, b: &Expr| strict_in(x, b, &sigs);
            let safe = effects
                .as_ref()
                .map(|a| move |e: &Expr| a.effect_of(e, data).whnf_safe());
            let call_sites = StrictCallSites {
                sigs: &sigs,
                arg_safe: safe.as_ref().map(|f| f as &dyn Fn(&Expr) -> bool),
            };
            let let_to_case = LetToCase { is_strict: &pred };
            for (_, rhs) in binds.iter_mut() {
                let (a, n1) = crate::rewrite::apply_to_fixpoint(&call_sites, rhs, 8);
                let (b, n2) = crate::rewrite::apply_to_fixpoint(&let_to_case, &a, 4);
                bump(call_sites.name(), n1, &mut report);
                bump(let_to_case.name(), n2, &mut report);
                *rhs = Rc::new(b);
            }
        }

        let out = CoreProgram {
            binds,
            sigs: prog.sigs.clone(),
        };
        report.size_after = out.size();
        (out, report)
    }

    /// Optimises and validates: each query's denotation under the
    /// optimised program must refine (or equal) its denotation under the
    /// original, per §4.5.
    pub fn optimize_validated(
        &self,
        prog: &CoreProgram,
        data: &DataEnv,
        queries: &[Rc<Expr>],
    ) -> (CoreProgram, OptimizeReport) {
        let (out, mut report) = self.optimize_with_data(prog, data);
        let config = DenotConfig {
            fuel: 2_000_000,
            ..DenotConfig::default()
        };
        for q in queries {
            let ev = DenotEvaluator::with_config(data, config.clone());
            let before_env = ev.bind_recursive(&prog.binds, &Env::empty());
            let before = ev.eval(q, &before_env);
            let after_env = ev.bind_recursive(&out.binds, &Env::empty());
            let after = ev.eval(q, &after_env);
            report
                .validation
                .push(compare_denots(&ev, &before, &after, 8));
        }
        (out, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urk_syntax::{desugar_expr, desugar_program, parse_expr_src, parse_program};

    fn program(src: &str) -> (DataEnv, CoreProgram) {
        let mut data = DataEnv::new();
        let prog =
            desugar_program(&parse_program(src).expect("parses"), &mut data).expect("desugars");
        (data, prog)
    }

    fn query(src: &str, data: &DataEnv) -> Rc<Expr> {
        Rc::new(desugar_expr(&parse_expr_src(src).expect("parses"), data).expect("desugars"))
    }

    #[test]
    fn pipeline_simplifies_redexes_away() {
        let (_, prog) =
            program(r"f x = (\y -> y + y) (case Just x of { Just n -> n; Nothing -> 0 })");
        let opt = Optimizer::new();
        let (out, report) = opt.optimize(&prog);
        assert!(report.total_rewrites() >= 2, "{:?}", report.rewrites);
        assert!(
            out.size() < prog.size(),
            "simplified {} -> {}",
            prog.size(),
            out.size()
        );
    }

    #[test]
    fn pipeline_validates_itself_on_exceptional_queries() {
        let (data, prog) = program(
            "safe n = if n == 0 then raise DivideByZero else 100 / n\n\
             twice f x = f (f x)\n\
             compute n = (\\u -> u + u) (safe n)",
        );
        let queries = vec![
            query("compute 5", &data),
            query("compute 0", &data),
            query("safe 0", &data),
        ];
        let opt = Optimizer::new();
        let (_, report) = opt.optimize_validated(&prog, &data, &queries);
        assert_eq!(report.validation.len(), 3);
        assert!(report.validated(), "{:?}", report.validation);
    }

    #[test]
    fn cbv_pass_fires_in_the_pipeline() {
        let (_, prog) = program("sumTo n acc = if n == 0 then acc else sumTo (n - 1) (acc + n)");
        let opt = Optimizer::new();
        let (_, report) = opt.optimize(&prog);
        assert!(
            report
                .rewrites
                .iter()
                .any(|(name, n)| name.contains("call-by-value") && *n > 0),
            "{:?}",
            report.rewrites
        );
    }

    #[test]
    fn cbv_can_be_disabled() {
        let (_, prog) = program("sumTo n acc = if n == 0 then acc else sumTo (n - 1) (acc + n)");
        let opt = Optimizer {
            options: OptimizeOptions {
                call_by_value: false,
                ..OptimizeOptions::default()
            },
        };
        let (_, report) = opt.optimize(&prog);
        assert!(report
            .rewrites
            .iter()
            .all(|(name, _)| !name.contains("call-by-value")));
    }

    #[test]
    fn inline_work_safe_inlines_atomic_and_single_use_only() {
        let data = DataEnv::new();
        let atomic = query("let x = 3 in x + x", &data);
        let (out, n) = apply_everywhere(&InlineWorkSafe, &atomic);
        assert_eq!(n, 1);
        assert!(out.alpha_eq(&query("3 + 3", &data)));

        // A used-twice non-atomic rhs is NOT inlined (work duplication).
        let shared = query("let x = 1 + 2 in x + x", &data);
        let (_, n2) = apply_everywhere(&InlineWorkSafe, &shared);
        assert_eq!(n2, 0);

        // A used-once non-atomic rhs is inlined.
        let once = query("let x = 1 + 2 in x * 3", &data);
        let (out3, n3) = apply_everywhere(&InlineWorkSafe, &once);
        assert_eq!(n3, 1);
        assert!(out3.alpha_eq(&query("(1 + 2) * 3", &data)));
    }

    #[test]
    fn inline_work_safe_keeps_work_out_of_lambdas() {
        let data = DataEnv::new();
        // One syntactic occurrence — but under a lambda, so inlining
        // would redo `1 + 2` on every call where the let shared it.
        let shared = query(r"let x = 1 + 2 in \y -> x + y", &data);
        let (_, n) = apply_everywhere(&InlineWorkSafe, &shared);
        assert_eq!(n, 0, "must not inline work into a lambda body");

        // Atomic right-hand sides are still fine anywhere.
        let atomic = query(r"let x = 3 in \y -> x + y", &data);
        let (out, n2) = apply_everywhere(&InlineWorkSafe, &atomic);
        assert_eq!(n2, 1);
        assert!(out.alpha_eq(&query(r"\y -> 3 + y", &data)));

        // A shadowed occurrence under a lambda does not count.
        let shadowed = query(r"let x = 1 + 2 in (\x -> x) x", &data);
        let (_, n3) = apply_everywhere(&InlineWorkSafe, &shadowed);
        assert_eq!(n3, 1, "the under-lambda x is a different binder");
    }

    #[test]
    fn licensed_rewrites_fire_and_validate() {
        let (data, prog) = program(
            "deadIs = case unsafeIsException 42 of { True -> 1 / 0; False -> 7 }\n\
             getOk = case unsafeGetException (3 + 4) of { OK v -> v; Bad e -> 0 }\n\
             pruned = let k = 10 / 2 in case k of { 5 -> 1; 6 -> 2 }\n\
             collapse x = case unsafeIsException x of { True -> 9; False -> 9 }",
        );
        let opt = Optimizer::new();
        let queries = vec![
            query("deadIs", &data),
            query("getOk", &data),
            query("pruned", &data),
            query("collapse 1", &data),
            query("collapse (1 / 0)", &data),
        ];
        let (out, report) = opt.optimize_validated(&prog, &data, &queries);
        let fired: Vec<&str> = report
            .rewrites
            .iter()
            .filter(|(name, _)| name.starts_with("licensed-"))
            .map(|(name, _)| name.as_str())
            .collect();
        assert!(fired.contains(&"licensed-is-exn"), "{:?}", report.rewrites);
        assert!(fired.contains(&"licensed-get-exn"), "{:?}", report.rewrites);
        assert!(
            fired.contains(&"licensed-prune-alt"),
            "{:?}",
            report.rewrites
        );
        assert!(
            fired.contains(&"licensed-collapse-alts"),
            "{:?}",
            report.rewrites
        );
        assert!(report.validated(), "{:?}", report.validation);
        assert!(out.size() < prog.size());
    }

    #[test]
    fn licensed_rewrites_respect_opacity() {
        // `x` is an unknown argument: the observer must NOT fold, because
        // the caller may pass an exceptional value.
        let (data, prog) =
            program("observe x = case unsafeIsException x of { True -> 1; False -> 2 }");
        let opt = Optimizer::new();
        let queries = vec![query("observe 5", &data), query("observe (1 / 0)", &data)];
        let (_, report) = opt.optimize_validated(&prog, &data, &queries);
        assert!(
            report
                .rewrites
                .iter()
                .all(|(name, _)| name != "licensed-is-exn"),
            "{:?}",
            report.rewrites
        );
        assert!(report.validated(), "{:?}", report.validation);
    }

    #[test]
    fn analysis_upgrades_strict_call_sites_on_safe_args() {
        // `lazyf` is lazy in `y` (only one branch forces it), so plain
        // strictness cannot pre-evaluate the argument — but `5 * 5` is
        // provably WHNF-safe, so the analysis licenses it anyway.
        let (data, prog) = program(
            "lazyf x y = case x of { True -> y + 1; False -> 0 }\n\
             use = lazyf True (5 * 5)",
        );
        let opt = Optimizer {
            options: OptimizeOptions {
                // Keep the simplifier from folding `use` away first.
                max_sweeps: 0,
                ..OptimizeOptions::default()
            },
        };
        let queries = vec![query("use", &data)];
        let (_, report) = opt.optimize_validated(&prog, &data, &queries);
        assert!(
            report
                .rewrites
                .iter()
                .any(|(name, n)| name.contains("call-by-value") && *n > 0),
            "{:?}",
            report.rewrites
        );
        assert!(report.validated(), "{:?}", report.validation);
    }

    #[test]
    fn optimized_prelude_still_computes() {
        // Optimize a small program and compare machine results.
        use urk_machine::{MEnv, Machine, MachineConfig, Outcome};
        let (data, prog) = program(
            "fib n = if n < 2 then n else fib (n - 1) + fib (n - 2)\n\
             go = fib 12",
        );
        let _ = data;
        let opt = Optimizer::new();
        let (out, _) = opt.optimize(&prog);
        for p in [&prog, &out] {
            let mut m = Machine::new(MachineConfig::default());
            let env = m.bind_recursive(&p.binds, &MEnv::empty());
            let r = m
                .eval(Rc::new(Expr::var("go")), &env, false)
                .expect("terminates");
            let Outcome::Value(n) = r else {
                panic!("{r:?}")
            };
            assert_eq!(m.render(n, 4), "144");
        }
    }
}
