//! The law corpus and validator — the machine-checked version of §4.5's
//! discussion of which identities hold, which become refinements, and
//! which are lost, across the three competing semantics of §3.4.
//!
//! Each [`LawInstance`] is a concrete lhs/rhs pair (typically the paper's
//! own worked example). [`classify`] evaluates both sides under
//!
//! * the **imprecise** denotational semantics (exception sets),
//! * the **precise** baseline, both left-to-right and right-to-left, and
//! * the **non-deterministic** baseline (outcome-set enumeration),
//!
//! and reports a [`Verdict`] for each. `examples/law_tables.rs` prints the
//! resulting table; `EXPERIMENTS.md` records it against the paper's
//! claims.

use std::collections::BTreeSet;
use std::rc::Rc;

use urk_denot::{
    compare_denots, compare_pdenots, enumerate_outcomes, DenotConfig, DenotEvaluator, EvalOrder,
    NondetConfig, PreciseConfig, PreciseEvaluator, Verdict,
};
use urk_syntax::core::Expr;
use urk_syntax::{desugar_expr, parse_expr_src, DataEnv, Symbol};

use crate::rewrite::apply_everywhere;
use crate::transforms::{CaseOfCase, LetToCase};

/// One concrete law: a lhs/rhs pair of closed core expressions.
#[derive(Clone, Debug)]
pub struct LawInstance {
    /// Short identifier, e.g. `plus-commute`.
    pub name: &'static str,
    /// Paper section the law comes from.
    pub section: &'static str,
    /// One-line description.
    pub description: &'static str,
    pub lhs: Rc<Expr>,
    pub rhs: Rc<Expr>,
}

/// The verdicts for one law under every semantics.
#[derive(Clone, Debug)]
pub struct LawReport {
    pub name: &'static str,
    pub section: &'static str,
    pub description: &'static str,
    /// The paper's semantics (§4).
    pub imprecise: Verdict,
    /// Precise baseline, left-to-right (§3.4 design 1).
    pub precise_l2r: Verdict,
    /// Precise baseline, right-to-left.
    pub precise_r2l: Verdict,
    /// Non-deterministic baseline (§3.4 design 2), judged on outcome sets.
    pub nondet: Verdict,
}

impl LawReport {
    /// True if the lhs→rhs rewrite is legitimate under the imprecise
    /// semantics (identity or refinement) — the paper's criterion.
    pub fn valid_under_imprecise(&self) -> bool {
        self.imprecise.is_valid_rewrite()
    }
}

fn core(src: &str) -> Rc<Expr> {
    let data = DataEnv::new();
    Rc::new(desugar_expr(&parse_expr_src(src).expect("law parses"), &data).expect("law desugars"))
}

/// The standard corpus: every law the paper discusses, instantiated on the
/// paper's own example terms.
pub fn standard_laws() -> Vec<LawInstance> {
    let mut laws = vec![
        LawInstance {
            name: "plus-commute-exceptional",
            section: "§3.4",
            description: "e1 + e2 = e2 + e1 when both raise",
            lhs: core(r#"(1/0) + raise (UserError "Urk")"#),
            rhs: core(r#"raise (UserError "Urk") + (1/0)"#),
        },
        LawInstance {
            name: "plus-commute-normal",
            section: "§3.4",
            description: "e1 + e2 = e2 + e1 on normal values",
            lhs: core("(1 + 2) + (3 * 4)"),
            rhs: core("(3 * 4) + (1 + 2)"),
        },
        LawInstance {
            name: "beta-discard",
            section: "§4.2",
            description: "(\\x -> 3)(1/0) = 3: unused exceptional arguments vanish",
            lhs: core(r"(\x -> 3) (1/0)"),
            rhs: core("3"),
        },
        LawInstance {
            name: "let-inline-pure",
            section: "§3.5",
            description: "let x = e in x + x  =  e + e (work duplication only)",
            lhs: core("let x = (1/0) + raise Overflow in x + x"),
            rhs: core("((1/0) + raise Overflow) + ((1/0) + raise Overflow)"),
        },
        LawInstance {
            name: "let-inline-get-exception",
            section: "§3.4–3.5",
            description: "the paper's beta example with getException in the result",
            lhs: core(
                r#"let x = (1/0) + raise (UserError "Urk")
                   in (getException x, getException x)"#,
            ),
            rhs: core(
                r#"(getException ((1/0) + raise (UserError "Urk")),
                    getException ((1/0) + raise (UserError "Urk")))"#,
            ),
        },
        LawInstance {
            name: "case-switch",
            section: "§4",
            description: "case x of (a,b) -> case y of (p,q) -> e  =  case y ... case x ...",
            lhs: core(
                "case raise Overflow of { (a, b) ->
                   case raise DivideByZero of { (p, q) -> a + p } }",
            ),
            rhs: core(
                "case raise DivideByZero of { (p, q) ->
                   case raise Overflow of { (a, b) -> a + p } }",
            ),
        },
        LawInstance {
            name: "case-pushdown",
            section: "§4.5",
            description: "(case e of {T->f;F->g}) x ⊑ case e of {T->f x; F->g x} (the paper's refinement)",
            lhs: core(
                "(case raise Overflow of { True -> \\v -> 1; False -> \\v -> 1 })
                   (raise DivideByZero)",
            ),
            rhs: core(
                "case raise Overflow of
                   { True -> (\\v -> 1) (raise DivideByZero)
                   ; False -> (\\v -> 1) (raise DivideByZero) }",
            ),
        },
        LawInstance {
            name: "error-this-that",
            section: "§4.5",
            description: "error \"This\" = error \"That\" — the lost law, lost rightly",
            lhs: core(r#"raise (UserError "This")"#),
            rhs: core(r#"raise (UserError "That")"#),
        },
        LawInstance {
            name: "eta-reduction",
            section: "§4.2",
            description: "\\x -> f x = f fails when f is exceptional (λx.⊥ ≠ ⊥)",
            lhs: core(r"\x -> (raise Overflow) x"),
            rhs: core("raise Overflow"),
        },
        LawInstance {
            name: "collapse-identical-alts-exceptional",
            section: "§5.3",
            description:
                "case v of {T->e;F->e} vs e with exceptional v — the -fno-pedantic-bottoms proof obligation",
            lhs: core("case raise Overflow of { True -> 42; False -> 42 }"),
            rhs: core("42"),
        },
        LawInstance {
            name: "collapse-identical-alts-normal",
            section: "§5.3",
            description: "case v of {T->e;F->e} = e when v is a normal value",
            lhs: core("case (1 < 2) of { True -> 42; False -> 42 }"),
            rhs: core("42"),
        },
        LawInstance {
            name: "collapse-identical-alts-bottom",
            section: "§5.3",
            description: "case ⊥ of {T->e;F->e} ⊑ e (refinement at ⊥)",
            lhs: {
                let diverge = Expr::diverge();
                Rc::new(Expr::case(
                    diverge,
                    vec![
                        urk_syntax::core::Alt::con("True", vec![], Expr::int(42)),
                        urk_syntax::core::Alt::con("False", vec![], Expr::int(42)),
                    ],
                ))
            },
            rhs: core("42"),
        },
        LawInstance {
            name: "map-exception-identity",
            section: "§5.4",
            description: "mapException id e = e (pure, set-wide)",
            lhs: core(r"mapException (\e -> e) ((1/0) + raise Overflow)"),
            rhs: core("(1/0) + raise Overflow"),
        },
        LawInstance {
            name: "map-exception-compose",
            section: "§5.4",
            description: "mapException f . mapException g = mapException (f . g)",
            lhs: core(
                r#"mapException (\e -> Overflow)
                     (mapException (\e -> UserError "g") ((1/0) + raise Overflow))"#,
            ),
            rhs: core(r"mapException (\e -> Overflow) ((1/0) + raise Overflow)"),
        },
        LawInstance {
            name: "map-exception-normal",
            section: "§5.4",
            description: "mapException f v = v on normal values (f never forced)",
            lhs: core(r#"mapException (\e -> UserError "Urk") (6 * 7)"#),
            rhs: core("42"),
        },
        LawInstance {
            name: "seq-of-value",
            section: "§3.2",
            description: "seq v e = e when v is a normal value",
            lhs: core("seq 5 (1/0)"),
            rhs: core("1/0"),
        },
        LawInstance {
            name: "let-float-from-lambda",
            section: "§2.3",
            description: "\\x -> let y = e in b  =  let y = e in \\x -> b (full laziness)",
            lhs: core(r"\x -> let y = 1/0 in y + x"),
            rhs: core(r"let y = 1/0 in \x -> y + x"),
        },
    ];

    // case-of-case, on an exceptional scrutinee, rhs generated by the
    // actual transformation.
    let coc_lhs = core(
        "case (case raise Overflow of { True -> False; False -> True }) of
           { True -> 1/0; False -> 2 }",
    );
    let (coc_rhs, n) = apply_everywhere(&CaseOfCase, &coc_lhs);
    debug_assert!(n >= 1, "case-of-case should fire");
    laws.push(LawInstance {
        name: "case-of-case",
        section: "§2.3/§4.5",
        description: "pushing an outer case into the inner alternatives",
        lhs: coc_lhs,
        rhs: Rc::new(coc_rhs),
    });

    // The strictness-driven call-by-value transformation (§3.4), rhs
    // generated by LetToCase with an always-strict oracle on a genuinely
    // strict body.
    let cbv_lhs = core(r#"let x = raise Overflow in raise (UserError "Y") + x"#);
    let always: &dyn Fn(Symbol, &Expr) -> bool = &|_, _| true;
    let (cbv_rhs, n) = apply_everywhere(&LetToCase { is_strict: always }, &cbv_lhs);
    debug_assert!(n >= 1, "let-to-case should fire");
    laws.push(LawInstance {
        name: "strictness-call-by-value",
        section: "§3.4",
        description: "let x = e in b  =  case e of x {_ -> b} when b is strict in x",
        lhs: cbv_lhs,
        rhs: Rc::new(cbv_rhs),
    });

    laws
}

/// Classifies one law under all semantics.
pub fn classify(law: &LawInstance) -> LawReport {
    let data = DataEnv::new();

    // Imprecise.
    let imprecise = {
        let ev = DenotEvaluator::with_config(
            &data,
            DenotConfig {
                fuel: 200_000,
                ..DenotConfig::default()
            },
        );
        let l = ev.eval_closed(&law.lhs);
        let r = ev.eval_closed(&law.rhs);
        compare_denots(&ev, &l, &r, 8)
    };

    let precise = |order: EvalOrder| {
        let ev = PreciseEvaluator::new(PreciseConfig {
            fuel: 200_000,
            order,
            ..PreciseConfig::default()
        });
        let l = ev.eval_closed(&law.lhs);
        let r = ev.eval_closed(&law.rhs);
        compare_pdenots(&ev, &l, &r, 8)
    };

    // Non-deterministic: outcome-set comparison. A rewrite is valid when
    // it does not *introduce* behaviours.
    let nondet = {
        let cfg = NondetConfig::default();
        let l = enumerate_outcomes(&law.lhs, &cfg);
        let r = enumerate_outcomes(&law.rhs, &cfg);
        outcome_verdict(&l, &r)
    };

    LawReport {
        name: law.name,
        section: law.section,
        description: law.description,
        imprecise,
        precise_l2r: precise(EvalOrder::LeftToRight),
        precise_r2l: precise(EvalOrder::RightToLeft),
        nondet,
    }
}

fn outcome_verdict(l: &BTreeSet<String>, r: &BTreeSet<String>) -> Verdict {
    if l == r {
        Verdict::Equal
    } else if r.is_subset(l) {
        // The rewrite removes behaviours: acceptable (refinement).
        Verdict::LeftRefinesToRight
    } else if l.is_subset(r) {
        // The rewrite introduces behaviours: invalid as lhs → rhs.
        Verdict::RightRefinesToLeft
    } else {
        Verdict::Incomparable
    }
}

/// Classifies the whole standard corpus.
pub fn classify_all() -> Vec<LawReport> {
    standard_laws().iter().map(classify).collect()
}

/// Renders reports as a markdown table (used by `examples/law_tables.rs`
/// and `EXPERIMENTS.md`).
pub fn render_table(reports: &[LawReport]) -> String {
    let mut out = String::new();
    out.push_str("| law | paper | imprecise (sets) | precise L→R | precise R→L | nondet |\n");
    out.push_str("|---|---|---|---|---|---|\n");
    for r in reports {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} |\n",
            r.name,
            r.section,
            short(r.imprecise),
            short(r.precise_l2r),
            short(r.precise_r2l),
            short(r.nondet),
        ));
    }
    out
}

fn short(v: Verdict) -> &'static str {
    match v {
        Verdict::Equal => "identity",
        Verdict::LeftRefinesToRight => "refinement",
        Verdict::RightRefinesToLeft => "anti-refinement",
        Verdict::Incomparable => "INVALID",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(name: &str) -> LawReport {
        standard_laws()
            .iter()
            .find(|l| l.name == name)
            .map(classify)
            .unwrap_or_else(|| panic!("law '{name}' not in corpus"))
    }

    #[test]
    fn commutativity_holds_imprecisely_fails_precisely() {
        let r = report("plus-commute-exceptional");
        assert_eq!(r.imprecise, Verdict::Equal);
        assert_eq!(r.precise_l2r, Verdict::Incomparable);
        assert_eq!(r.precise_r2l, Verdict::Incomparable);
        // The nondet design also keeps commutativity (same outcome sets).
        assert_eq!(r.nondet, Verdict::Equal);
    }

    #[test]
    fn commutativity_on_normal_values_holds_everywhere() {
        let r = report("plus-commute-normal");
        assert_eq!(r.imprecise, Verdict::Equal);
        assert_eq!(r.precise_l2r, Verdict::Equal);
        assert_eq!(r.precise_r2l, Verdict::Equal);
        assert_eq!(r.nondet, Verdict::Equal);
    }

    #[test]
    fn beta_discard_holds_imprecisely() {
        let r = report("beta-discard");
        assert_eq!(r.imprecise, Verdict::Equal);
        // Laziness makes it hold in the baselines too.
        assert_eq!(r.precise_l2r, Verdict::Equal);
    }

    #[test]
    fn let_inlining_with_get_exception_fails_only_for_nondet() {
        // The paper's key argument for putting getException in IO (§3.5):
        // inlining is an identity in the imprecise semantics but
        // introduces behaviours in the nondeterministic design.
        let r = report("let-inline-get-exception");
        assert_eq!(r.imprecise, Verdict::Equal);
        assert_eq!(r.nondet, Verdict::RightRefinesToLeft);
        assert!(!r.nondet.is_valid_rewrite());
    }

    #[test]
    fn case_switch_is_the_paper_s_section_4_example() {
        let r = report("case-switch");
        assert_eq!(r.imprecise, Verdict::Equal);
        assert_eq!(r.precise_l2r, Verdict::Incomparable);
        assert_eq!(r.precise_r2l, Verdict::Incomparable);
    }

    #[test]
    fn case_pushdown_is_a_refinement_imprecisely() {
        // §4.5: lhs ⊑ rhs, "Bad {E,X}" vs "Bad {E}".
        let r = report("case-pushdown");
        assert_eq!(r.imprecise, Verdict::LeftRefinesToRight);
        assert!(r.valid_under_imprecise());
    }

    #[test]
    fn error_this_that_is_lost_everywhere() {
        let r = report("error-this-that");
        assert_eq!(r.imprecise, Verdict::Incomparable);
        assert_eq!(r.precise_l2r, Verdict::Incomparable);
        assert_eq!(r.nondet, Verdict::Incomparable);
    }

    #[test]
    fn eta_reduction_is_invalid() {
        let r = report("eta-reduction");
        assert!(!r.valid_under_imprecise());
    }

    #[test]
    fn collapse_identical_alts_needs_the_proof_obligation() {
        // §5.3: valid for normal scrutinees, a refinement at ⊥, INVALID on
        // exceptional scrutinees — hence -fno-pedantic-bottoms's proof
        // obligation.
        let normal = report("collapse-identical-alts-normal");
        assert_eq!(normal.imprecise, Verdict::Equal);
        let bottom = report("collapse-identical-alts-bottom");
        assert_eq!(bottom.imprecise, Verdict::LeftRefinesToRight);
        let exceptional = report("collapse-identical-alts-exceptional");
        assert_eq!(exceptional.imprecise, Verdict::Incomparable);
        assert_eq!(exceptional.precise_l2r, Verdict::Incomparable);
    }

    #[test]
    fn strictness_cbv_valid_imprecisely_invalid_precisely() {
        // §3.4's "crucial transformation".
        let r = report("strictness-call-by-value");
        assert_eq!(r.imprecise, Verdict::Equal);
        // Precise L→R evaluates the body's left operand first: UserError
        // "Y"; the case version forces Overflow first. Invalid.
        assert_eq!(r.precise_l2r, Verdict::Incomparable);
    }

    #[test]
    fn case_of_case_is_valid_imprecisely() {
        let r = report("case-of-case");
        assert!(r.valid_under_imprecise(), "{:?}", r.imprecise);
    }

    #[test]
    fn map_exception_algebra_holds() {
        for name in [
            "map-exception-identity",
            "map-exception-compose",
            "map-exception-normal",
        ] {
            let r = report(name);
            assert_eq!(r.imprecise, Verdict::Equal, "{name}");
        }
    }

    #[test]
    fn remaining_laws_are_valid_imprecise_rewrites() {
        for name in ["seq-of-value", "let-float-from-lambda", "let-inline-pure"] {
            let r = report(name);
            assert!(
                r.valid_under_imprecise(),
                "{name} should be valid, got {:?}",
                r.imprecise
            );
        }
    }

    #[test]
    fn table_renders_every_law() {
        let reports = classify_all();
        let table = render_table(&reports);
        for r in &reports {
            assert!(table.contains(r.name));
        }
        assert!(table.contains("identity"));
        assert!(table.contains("INVALID"));
    }
}
