//! Strictness analysis by abstract interpretation.
//!
//! §3.4 singles out strictness analysis — turning call-by-need into
//! call-by-value — as the "crucial transformation" that changes evaluation
//! order and is therefore licensed only by the imprecise semantics. This
//! module computes, for each top-level function, which arguments it is
//! strict in, using the classic two-point abstract domain:
//!
//! * an abstract value is a Boolean: *does forcing this expression to WHNF
//!   force the variable under scrutiny?*
//! * known functions get strictness signatures, computed as a Mycroft-style
//!   fixpoint (start all-strict, iterate the abstract semantics until
//!   stable);
//! * everything unknown is treated conservatively as lazy.
//!
//! In the imprecise semantics, "forces x" means the result's exception set
//! incorporates x's (the factorization that makes let-to-case an
//! identity); `raise e` therefore forces exactly what `e` forces, a strict
//! primitive forces what *either* operand forces (the set union of §4.2),
//! and `case` forces its scrutinee or whatever *all* alternatives force.

use std::collections::HashMap;

use urk_syntax::core::{CoreProgram, Expr, PrimOp};
use urk_syntax::Symbol;

/// Per-function strictness signatures: `sig[i]` is true when the function
/// is strict in its `i`-th argument.
pub type StrictSigs = HashMap<Symbol, Vec<bool>>;

/// Analyses one mutually recursive top-level group.
pub fn analyze_program(prog: &CoreProgram) -> StrictSigs {
    // Peel lambda arity for each binding.
    let arities: Vec<(Symbol, Vec<Symbol>, &Expr)> = prog
        .binds
        .iter()
        .map(|(name, rhs)| {
            let mut params = Vec::new();
            let mut body: &Expr = rhs;
            while let Expr::Lam(x, b) = body {
                params.push(*x);
                body = b;
            }
            (*name, params, body)
        })
        .collect();

    // Mycroft iteration: start optimistic (all strict), weaken until
    // stable. The abstract semantics is monotone in the signatures, so
    // this terminates.
    let mut sigs: StrictSigs = arities
        .iter()
        .map(|(name, params, _)| (*name, vec![true; params.len()]))
        .collect();

    for _round in 0..64 {
        let mut changed = false;
        for (name, params, body) in &arities {
            let current = sigs[name].clone();
            let mut next = Vec::with_capacity(params.len());
            for (i, _) in params.iter().enumerate() {
                // Strict in arg i: forcing the body forces params[i] when
                // every other variable is "not the one".
                let mut env = HashMap::new();
                for (j, p) in params.iter().enumerate() {
                    env.insert(*p, i == j);
                }
                next.push(forces(body, &env, &sigs));
            }
            if next != current {
                sigs.insert(*name, next);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    sigs
}

/// Does forcing `e` to WHNF force the scrutinised variable? `env` maps each
/// in-scope variable to whether *it* is (or forces) the scrutinised one.
pub fn forces(e: &Expr, env: &HashMap<Symbol, bool>, sigs: &StrictSigs) -> bool {
    match e {
        Expr::Var(v) => env.get(v).copied().unwrap_or(false),
        Expr::Int(_) | Expr::Char(_) | Expr::Str(_) => false,
        // Constructors and lambdas are WHNF already.
        Expr::Con(_, _) | Expr::Lam(_, _) => false,
        Expr::App(_, _) => {
            // Flatten the spine and consult a signature for a known head.
            let mut args = Vec::new();
            let mut head = e;
            while let Expr::App(f, a) = head {
                args.push(&**a);
                head = f;
            }
            args.reverse();
            match head {
                Expr::Var(f) => {
                    // Forcing the head itself forces x?
                    if env.get(f).copied().unwrap_or(false) {
                        return true;
                    }
                    match sigs.get(f) {
                        Some(sig) if sig.len() == args.len() => sig
                            .iter()
                            .zip(&args)
                            .any(|(strict, a)| *strict && forces(a, env, sigs)),
                        _ => false, // unknown or partial application
                    }
                }
                Expr::Lam(x, b) => {
                    // (\x -> b) a1 ... : b forces x and a1 forces target,
                    // or b forces target directly. Approximate one level.
                    if args.is_empty() {
                        return false;
                    }
                    let mut inner = env.clone();
                    inner.insert(*x, forces(args[0], env, sigs));
                    forces(b, &inner, sigs) && args.len() == 1
                }
                _ => false,
            }
        }
        Expr::Let(x, r, b) => {
            let mut inner = env.clone();
            inner.insert(*x, forces(r, env, sigs));
            forces(b, &inner, sigs)
        }
        Expr::LetRec(binds, b) => {
            // Conservative: recursive locals assumed not to force.
            let mut inner = env.clone();
            for (n, _) in binds {
                inner.insert(*n, false);
            }
            forces(b, &inner, sigs)
        }
        Expr::Case(s, alts) => {
            if forces(s, env, sigs) {
                return true;
            }
            // Every alternative must force it (whichever branch runs).
            !alts.is_empty()
                && alts.iter().all(|a| {
                    let mut inner = env.clone();
                    for b in &a.binders {
                        inner.insert(*b, false);
                    }
                    forces(&a.rhs, &inner, sigs)
                })
        }
        Expr::Prim(op, args) => match op {
            // seq is NOT union-like: `seq (Bad s) b = Bad s` cuts b's set
            // off entirely, so demand through the *second* argument does
            // not guarantee incorporation. Only the first argument's set
            // always reaches the result.
            PrimOp::Seq => forces(&args[0], env, sigs),
            // mapException REPLACES its subject's exception set, and the
            // unsafe observers CONSUME it (Bad s becomes True / Bad e):
            // none of them incorporate x's exceptions into the result, so
            // none justify pre-evaluation.
            PrimOp::MapExn | PrimOp::UnsafeIsException | PrimOp::UnsafeGetException => false,
            // The (+) family: the §4.2 union means *either* operand's
            // exceptions reach the result.
            _ => args.iter().any(|a| forces(a, env, sigs)),
        },
        // raise propagates its argument's set.
        Expr::Raise(x) => forces(x, env, sigs),
    }
}

/// Convenience: is `body` strict in `x` given signatures?
pub fn strict_in(x: Symbol, body: &Expr, sigs: &StrictSigs) -> bool {
    let mut env = HashMap::new();
    env.insert(x, true);
    forces(body, &env, sigs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use urk_syntax::{desugar_program, parse_program, DataEnv};

    fn analyze(src: &str) -> StrictSigs {
        let mut env = DataEnv::new();
        let prog =
            desugar_program(&parse_program(src).expect("parses"), &mut env).expect("desugars");
        analyze_program(&prog)
    }

    fn sig(sigs: &StrictSigs, name: &str) -> Vec<bool> {
        sigs[&Symbol::intern(name)].clone()
    }

    #[test]
    fn arithmetic_is_strict_in_both_arguments() {
        let s = analyze("plus a b = a + b");
        assert_eq!(sig(&s, "plus"), vec![true, true]);
    }

    #[test]
    fn const_is_lazy_in_its_second_argument() {
        let s = analyze("konst a b = a\nignore a b = b + 0");
        // Returning `a` forces it to WHNF; `b` is never touched.
        assert_eq!(sig(&s, "konst"), vec![true, false]);
        assert_eq!(sig(&s, "ignore"), vec![false, true]);
    }

    #[test]
    fn returning_a_variable_forces_it() {
        // f x = x : forcing f's result to WHNF forces x.
        let s = analyze("f x = x");
        assert_eq!(sig(&s, "f"), vec![true]);
    }

    #[test]
    fn conditional_strictness_requires_all_branches() {
        let s = analyze(
            "both c x = if c then x + 1 else x - 1\n\
             onearm c x = if c then x + 1 else 0",
        );
        // Strict in c (scrutinised) and x (both branches force it).
        assert_eq!(sig(&s, "both"), vec![true, true]);
        // Strict in c only.
        assert_eq!(sig(&s, "onearm"), vec![true, false]);
    }

    #[test]
    fn constructors_are_lazy() {
        let s = analyze("box x = Just x\npair x y = (x, y)");
        assert_eq!(sig(&s, "box"), vec![false]);
        assert_eq!(sig(&s, "pair"), vec![false, false]);
    }

    #[test]
    fn recursive_accumulator_is_strict() {
        // sumTo is strict in both: the base case returns acc, the
        // recursive case feeds acc into +.
        let s = analyze("sumTo n acc = if n == 0 then acc else sumTo (n - 1) (acc + n)");
        assert_eq!(sig(&s, "sumTo"), vec![true, true]);
    }

    #[test]
    fn mutual_recursion_converges() {
        let s = analyze(
            "isEven n = if n == 0 then True else isOdd (n - 1)\n\
             isOdd n = if n == 0 then False else isEven (n - 1)",
        );
        assert_eq!(sig(&s, "isEven"), vec![true]);
        assert_eq!(sig(&s, "isOdd"), vec![true]);
    }

    #[test]
    fn seq_is_strict_in_its_first_argument_only() {
        // `seq (Bad s) b = Bad s`: the second argument's exception set is
        // cut off when the first raises, so the analysis must not claim
        // incorporation through it. (Found by the optimizer property test
        // — see `tests/properties.rs::optimizer_pipeline_is_a_valid_rewrite`.)
        let s = analyze("strictSnd a b = seq a b");
        assert_eq!(sig(&s, "strictSnd"), vec![true, false]);
    }

    #[test]
    fn exception_consumers_do_not_propagate_demand() {
        // mapException replaces the set; unsafeIsException consumes it.
        let s = analyze(
            "remap e = mapException (\\x -> Overflow) e\n\
             probe e = unsafeIsException e\n\
             fetch e = unsafeGetException e",
        );
        assert_eq!(sig(&s, "remap"), vec![false]);
        assert_eq!(sig(&s, "probe"), vec![false]);
        assert_eq!(sig(&s, "fetch"), vec![false]);
    }

    #[test]
    fn seq_cutoff_regression_from_the_property_test() {
        // The distilled counterexample: the body demands m only under a
        // seq whose first argument always raises; forcing m early adds
        // exceptions the original never had.
        let s = analyze("f m = seq (raise Overflow) ((if 0 < m then 0 else m) + 0)");
        assert_eq!(sig(&s, "f"), vec![false]);
    }

    #[test]
    fn raise_propagates_demand() {
        let s = analyze("boom e = raise e\nquiet e = raise Overflow");
        assert_eq!(sig(&s, "boom"), vec![true]);
        assert_eq!(sig(&s, "quiet"), vec![false]);
    }

    #[test]
    fn lazy_list_producers_are_lazy() {
        let s = analyze("rep x = x : rep x");
        assert_eq!(sig(&s, "rep"), vec![false]);
    }

    #[test]
    fn strict_in_helper_works_on_open_terms() {
        let sigs = StrictSigs::new();
        let env = DataEnv::new();
        let e =
            urk_syntax::desugar_expr(&urk_syntax::parse_expr_src("x + 1").expect("parses"), &env)
                .expect("desugars");
        assert!(strict_in(Symbol::intern("x"), &e, &sigs));
        let e2 =
            urk_syntax::desugar_expr(&urk_syntax::parse_expr_src("Just x").expect("parses"), &env)
                .expect("desugars");
        assert!(!strict_in(Symbol::intern("x"), &e2, &sigs));
    }
}
