//! Rewrites licensed by the static exception-effect analysis.
//!
//! The simplifier in [`crate::transforms`] is purely syntactic; the
//! passes here fire only when `urk-analysis` *proves* the licence:
//!
//! * **`licensed-prune-alt`** — drop a `case` alternative that can never
//!   be selected: it follows the default, duplicates an earlier pattern,
//!   or cannot match a statically-known scrutinee. On a normal scrutinee
//!   this is semantics-preserving; on an exceptional one the §4.3
//!   exception-finding mode explores *every* alternative, so dropping
//!   one can only shrink the denoted set — a refinement, valid by §4.5.
//! * **`licensed-is-exn`** — fold `case unsafeIsException e of …` to its
//!   `False` branch when `e` is provably WHNF-safe, or its `True` branch
//!   when `e` provably raises (without the possibility of divergence).
//!   This is precisely the fragment of §5.4's `isException` that *is*
//!   implementable: the cases where the imprecise set never needs to be
//!   inspected.
//! * **`licensed-get-exn`** — fold `case unsafeGetException e of { OK v
//!   -> r; … }` to `let v = e in r` when `e` is provably safe.
//! * **`licensed-collapse-alts`** — `case e of { … -> r }` with every
//!   alternative binder-free and alpha-equal collapses to `r` when the
//!   alternatives cover and `e`'s proper exception set is provably
//!   empty. `e` may still diverge: collapsing `⊥` to `r` is a
//!   refinement (the syntactic [`crate::transforms::CollapseIdenticalAlts`]
//!   is *invalid* in general — `crate::tests` exhibits the `Incomparable`
//!   verdict — which is exactly why this licensed form exists).
//!
//! Every pass is exercised under [`crate::Optimizer::optimize_validated`],
//! whose §4.5 check accepts identities and refinements only.

use std::rc::Rc;

use urk_analysis::analyze::{Analyzer, LEnv};
use urk_analysis::{Analysis, Effect, Val};
use urk_syntax::core::{Alt, AltCon, Expr, PrimOp};
use urk_syntax::{DataEnv, Symbol};

/// An environment-carrying rewriter (the env-free [`crate::Transform`]
/// protocol cannot see binder effects, which these rewrites need).
pub struct LicensedRewriter<'a> {
    an: Analyzer<'a>,
    counts: Vec<(&'static str, usize)>,
}

impl<'a> LicensedRewriter<'a> {
    /// A rewriter over a program analysis.
    pub fn new(analysis: &'a Analysis, data: &'a DataEnv) -> LicensedRewriter<'a> {
        LicensedRewriter {
            an: analysis.analyzer(data),
            counts: Vec::new(),
        }
    }

    /// Rewrites fired so far, by rule name.
    pub fn counts(&self) -> &[(&'static str, usize)] {
        &self.counts
    }

    /// Total rewrites fired so far.
    pub fn total(&self) -> usize {
        self.counts.iter().map(|(_, n)| n).sum()
    }

    fn bump(&mut self, rule: &'static str) {
        match self.counts.iter_mut().find(|(r, _)| *r == rule) {
            Some((_, n)) => *n += 1,
            None => self.counts.push((rule, 1)),
        }
    }

    /// Rewrite a top-level right-hand side.
    pub fn rewrite(&mut self, e: &Expr) -> Expr {
        self.go(e, &mut Vec::new())
    }

    fn go(&mut self, e: &Expr, env: &mut LEnv) -> Expr {
        match e {
            Expr::Var(_) | Expr::Int(_) | Expr::Char(_) | Expr::Str(_) => e.clone(),
            Expr::Con(c, args) => {
                Expr::Con(*c, args.iter().map(|a| Rc::new(self.go(a, env))).collect())
            }
            Expr::App(f, a) => Expr::App(Rc::new(self.go(f, env)), Rc::new(self.go(a, env))),
            Expr::Lam(x, b) => {
                env.push((*x, Effect::opaque_arg()));
                let b2 = self.go(b, env);
                env.pop();
                Expr::Lam(*x, Rc::new(b2))
            }
            Expr::Let(x, r, b) => {
                let r2 = self.go(r, env);
                let re = self.an.effect(&r2, env);
                env.push((*x, re));
                let b2 = self.go(b, env);
                env.pop();
                Expr::Let(*x, Rc::new(r2), Rc::new(b2))
            }
            Expr::LetRec(binds, b) => {
                for (x, _) in binds {
                    env.push((*x, Effect::bottom()));
                }
                let binds2: Vec<(Symbol, Rc<Expr>)> = binds
                    .iter()
                    .map(|(x, r)| (*x, Rc::new(self.go(r, env))))
                    .collect();
                let b2 = self.go(b, env);
                env.truncate(env.len() - binds.len());
                Expr::LetRec(binds2, Rc::new(b2))
            }
            Expr::Case(s, alts) => self.go_case(s, alts, env),
            Expr::Prim(op, args) => {
                Expr::Prim(*op, args.iter().map(|a| Rc::new(self.go(a, env))).collect())
            }
            Expr::Raise(x) => Expr::Raise(Rc::new(self.go(x, env))),
        }
    }

    fn go_case(&mut self, s: &Rc<Expr>, alts: &[Alt], env: &mut LEnv) -> Expr {
        let s2 = Rc::new(self.go(s, env));
        let se = self.an.effect(&s2, env);

        // Fold the §5.4 observers when the analysis proves the answer.
        if let Some(folded) = self.fold_observer(&s2, alts, &se, env) {
            return folded;
        }

        // Rewrite the alternatives under their binders.
        let mut alts2: Vec<Alt> = Vec::with_capacity(alts.len());
        for alt in alts {
            let bound = bind_alt(alt, &se, env);
            let rhs2 = self.go(&alt.rhs, env);
            env.truncate(env.len() - bound);
            alts2.push(Alt {
                con: alt.con.clone(),
                binders: alt.binders.clone(),
                rhs: Rc::new(rhs2),
            });
        }

        // Prune provably unreachable alternatives.
        let mut kept: Vec<Alt> = Vec::with_capacity(alts2.len());
        let mut seen_default = false;
        let mut matched = false;
        for alt in alts2 {
            let dup = alt.con != AltCon::Default && kept.iter().any(|k| k.con == alt.con);
            let unmatchable = match &se.val {
                Some(v) => !alt_matches_val(v, &alt.con),
                None => false,
            };
            if seen_default || matched || dup || unmatchable {
                self.bump("licensed-prune-alt");
                continue;
            }
            if let Some(v) = &se.val {
                matched = matched || alt_matches_val(v, &alt.con);
            }
            seen_default = seen_default || alt.con == AltCon::Default;
            kept.push(alt);
        }

        // Collapse alpha-equal binder-free alternatives when the
        // scrutinee's proper set is provably empty (divergence may
        // collapse too: a refinement; opacity vetoes).
        if kept.len() > 1
            && kept.iter().all(|a| a.binders.is_empty())
            && kept[1..].iter().all(|a| a.rhs.alpha_eq(&kept[0].rhs))
            && self.an.covers(&kept)
            && se.exns.is_empty()
            && !se.opaque
        {
            self.bump("licensed-collapse-alts");
            return (*kept[0].rhs).clone();
        }

        Expr::Case(s2, kept)
    }

    /// `case unsafeIsException e of …` / `case unsafeGetException e of …`
    /// with a provable subject: select the branch statically.
    fn fold_observer(
        &mut self,
        s: &Rc<Expr>,
        alts: &[Alt],
        se: &Effect,
        env: &mut LEnv,
    ) -> Option<Expr> {
        let Expr::Prim(op, args) = &**s else {
            return None;
        };
        match op {
            PrimOp::UnsafeIsException => {
                // `se.val` already folds both directions (whnf-safe ->
                // False, must-raise-without-divergence -> True) — reuse it.
                let Some(Val::Con(tag)) = &se.val else {
                    return None;
                };
                let tag = *tag;
                let picked = pick_con_alt(alts, tag)?;
                let out = match (&picked.con, picked.binders.first()) {
                    (AltCon::Default, Some(b)) => {
                        Expr::Let(*b, Rc::new(Expr::Con(tag, Vec::new())), picked.rhs.clone())
                    }
                    _ => (*picked.rhs).clone(),
                };
                self.bump("licensed-is-exn");
                Some(self.go(&out, env))
            }
            PrimOp::UnsafeGetException => {
                let subject = self.an.effect(&args[0], env);
                if !subject.whnf_safe() {
                    return None;
                }
                // The observer yields `OK <subject>`: bind the payload.
                let ok = Symbol::intern("OK");
                let picked = pick_con_alt(alts, ok)?;
                let out = match (&picked.con, picked.binders.as_slice()) {
                    (AltCon::Con(_), [v]) => Expr::Let(*v, args[0].clone(), picked.rhs.clone()),
                    (AltCon::Default, [b]) => Expr::Let(
                        *b,
                        Rc::new(Expr::Con(ok, vec![args[0].clone()])),
                        picked.rhs.clone(),
                    ),
                    (AltCon::Default, []) => (*picked.rhs).clone(),
                    _ => return None,
                };
                self.bump("licensed-get-exn");
                Some(self.go(&out, env))
            }
            _ => None,
        }
    }
}

/// First alternative a value with constructor `tag` selects.
fn pick_con_alt(alts: &[Alt], tag: Symbol) -> Option<&Alt> {
    alts.iter()
        .find(|a| a.con == AltCon::Con(tag) || a.con == AltCon::Default)
}

/// Mirror of the analyzer's binder discipline.
fn bind_alt(alt: &Alt, se: &Effect, env: &mut LEnv) -> usize {
    match &alt.con {
        AltCon::Con(_) => {
            for b in &alt.binders {
                env.push((*b, Effect::bottom()));
            }
            alt.binders.len()
        }
        AltCon::Default => match alt.binders.first() {
            Some(b) => {
                let eff = if se.whnf_safe() {
                    se.clone()
                } else {
                    Effect::opaque_arg()
                };
                env.push((*b, eff));
                1
            }
            None => 0,
        },
        _ => 0,
    }
}

fn alt_matches_val(v: &Val, con: &AltCon) -> bool {
    match (v, con) {
        (_, AltCon::Default) => true,
        (Val::Con(t), AltCon::Con(c)) => t == c,
        (Val::Int(n), AltCon::Int(m)) => n == m,
        (Val::Char(a), AltCon::Char(b)) => a == b,
        (Val::Str(a), AltCon::Str(b)) => **a == **b,
        _ => false,
    }
}
