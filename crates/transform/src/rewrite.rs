//! The rewriting engine: transformations as root rewrites applied
//! bottom-up everywhere.

use std::rc::Rc;

use urk_syntax::core::{Alt, Expr};

/// A program transformation, expressed as an optional rewrite at the root
/// of an expression.
pub trait Transform {
    /// A short kebab-case name for reports.
    fn name(&self) -> &'static str;

    /// Attempts to rewrite at the root; `None` means not applicable.
    fn apply_root(&self, e: &Expr) -> Option<Expr>;
}

/// Applies `t` bottom-up over the whole expression, returning the result
/// and the number of rewrites performed. When nothing fires the input
/// comes back with its structure shared, not rebuilt.
pub fn apply_everywhere(t: &dyn Transform, e: &Expr) -> (Expr, usize) {
    let mut count = 0;
    match go(t, e, &mut count) {
        Some(out) => (out, count),
        None => (e.clone(), 0),
    }
}

/// Applies `t` repeatedly (bottom-up sweeps) until no rewrite fires or the
/// sweep limit is reached. The closing zero-rewrite sweep — and a wholly
/// inapplicable transform — cost no reconstruction at all: `current`
/// stays `None` until a sweep actually changes something.
pub fn apply_to_fixpoint(t: &dyn Transform, e: &Expr, max_sweeps: usize) -> (Expr, usize) {
    let mut current: Option<Expr> = None;
    let mut total = 0;
    for _ in 0..max_sweeps {
        let mut n = 0;
        match go(t, current.as_ref().unwrap_or(e), &mut n) {
            Some(next) => {
                total += n;
                current = Some(next);
            }
            None => break,
        }
    }
    (current.unwrap_or_else(|| e.clone()), total)
}

/// One bottom-up pass; `None` means no rewrite fired anywhere in the
/// subtree, so the caller keeps its existing node (and `Rc`s) untouched.
/// Rebuilding happens only on the spine above an actual rewrite;
/// unchanged siblings are shared via `Rc::clone`.
fn go(t: &dyn Transform, e: &Expr, count: &mut usize) -> Option<Expr> {
    // First rebuild children (where anything fired), then try the root.
    let rebuilt = match e {
        Expr::Var(_) | Expr::Int(_) | Expr::Char(_) | Expr::Str(_) => None,
        Expr::Con(c, args) => go_args(t, args, count).map(|args| Expr::Con(*c, args)),
        Expr::Prim(op, args) => go_args(t, args, count).map(|args| Expr::Prim(*op, args)),
        Expr::App(f, x) => {
            let nf = go_rc(t, f, count);
            let nx = go_rc(t, x, count);
            (nf.is_some() || nx.is_some()).then(|| {
                Expr::App(
                    nf.unwrap_or_else(|| Rc::clone(f)),
                    nx.unwrap_or_else(|| Rc::clone(x)),
                )
            })
        }
        Expr::Lam(x, b) => go_rc(t, b, count).map(|b| Expr::Lam(*x, b)),
        Expr::Let(x, r, b) => {
            let nr = go_rc(t, r, count);
            let nb = go_rc(t, b, count);
            (nr.is_some() || nb.is_some()).then(|| {
                Expr::Let(
                    *x,
                    nr.unwrap_or_else(|| Rc::clone(r)),
                    nb.unwrap_or_else(|| Rc::clone(b)),
                )
            })
        }
        Expr::LetRec(binds, b) => {
            let news: Vec<Option<Rc<Expr>>> =
                binds.iter().map(|(_, r)| go_rc(t, r, count)).collect();
            let nb = go_rc(t, b, count);
            (news.iter().any(Option::is_some) || nb.is_some()).then(|| {
                Expr::LetRec(
                    binds
                        .iter()
                        .zip(news)
                        .map(|((n, r), new)| (*n, new.unwrap_or_else(|| Rc::clone(r))))
                        .collect(),
                    nb.unwrap_or_else(|| Rc::clone(b)),
                )
            })
        }
        Expr::Case(s, alts) => {
            let ns = go_rc(t, s, count);
            let news: Vec<Option<Rc<Expr>>> =
                alts.iter().map(|a| go_rc(t, &a.rhs, count)).collect();
            (ns.is_some() || news.iter().any(Option::is_some)).then(|| {
                Expr::Case(
                    ns.unwrap_or_else(|| Rc::clone(s)),
                    alts.iter()
                        .zip(news)
                        .map(|(a, new)| Alt {
                            con: a.con.clone(),
                            binders: a.binders.clone(),
                            rhs: new.unwrap_or_else(|| Rc::clone(&a.rhs)),
                        })
                        .collect(),
                )
            })
        }
        Expr::Raise(x) => go_rc(t, x, count).map(Expr::Raise),
    };
    match t.apply_root(rebuilt.as_ref().unwrap_or(e)) {
        Some(next) => {
            *count += 1;
            Some(next)
        }
        None => rebuilt,
    }
}

fn go_rc(t: &dyn Transform, e: &Rc<Expr>, count: &mut usize) -> Option<Rc<Expr>> {
    go(t, e, count).map(Rc::new)
}

fn go_args(t: &dyn Transform, args: &[Rc<Expr>], count: &mut usize) -> Option<Vec<Rc<Expr>>> {
    let news: Vec<Option<Rc<Expr>>> = args.iter().map(|a| go_rc(t, a, count)).collect();
    news.iter().any(Option::is_some).then(|| {
        args.iter()
            .zip(news)
            .map(|(a, new)| new.unwrap_or_else(|| Rc::clone(a)))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use urk_syntax::core::PrimOp;

    /// A toy transform: rewrite `0 + e` to `e`.
    struct DropZeroAdd;
    impl Transform for DropZeroAdd {
        fn name(&self) -> &'static str {
            "drop-zero-add"
        }
        fn apply_root(&self, e: &Expr) -> Option<Expr> {
            let Expr::Prim(PrimOp::Add, args) = e else {
                return None;
            };
            matches!(&*args[0], Expr::Int(0)).then(|| (*args[1]).clone())
        }
    }

    #[test]
    fn applies_bottom_up_everywhere() {
        // 0 + (0 + 5) rewrites twice in one sweep.
        let e = Expr::add(Expr::int(0), Expr::add(Expr::int(0), Expr::int(5)));
        let (out, n) = apply_everywhere(&DropZeroAdd, &e);
        assert_eq!(n, 2);
        assert!(out.alpha_eq(&Expr::int(5)));
    }

    #[test]
    fn fixpoint_terminates() {
        let e = Expr::add(Expr::int(1), Expr::int(2));
        let (out, n) = apply_to_fixpoint(&DropZeroAdd, &e, 10);
        assert_eq!(n, 0);
        assert!(out.alpha_eq(&e));
    }

    #[test]
    fn noop_sweeps_share_the_input_structure() {
        // A transform that never fires must hand back the very same
        // subtrees, not deep copies of them.
        let shared = Rc::new(Expr::add(Expr::int(1), Expr::int(2)));
        let e = Expr::Lam(urk_syntax::Symbol::intern("x"), Rc::clone(&shared));
        let (out, n) = apply_to_fixpoint(&DropZeroAdd, &e, 10);
        assert_eq!(n, 0);
        let Expr::Lam(_, body) = &out else {
            panic!("shape preserved")
        };
        assert!(
            Rc::ptr_eq(body, &shared),
            "a zero-rewrite fixpoint must not rebuild the expression"
        );
    }

    #[test]
    fn partial_rewrites_share_untouched_siblings() {
        // Lam body rewrites; the untouched sibling arm of the App must be
        // the original Rc.
        let untouched = Rc::new(Expr::add(Expr::int(1), Expr::int(2)));
        let rewritable = Rc::new(Expr::add(Expr::int(0), Expr::int(5)));
        let e = Expr::App(Rc::clone(&untouched), Rc::clone(&rewritable));
        let (out, n) = apply_everywhere(&DropZeroAdd, &e);
        assert_eq!(n, 1);
        let Expr::App(f, x) = &out else {
            panic!("shape preserved")
        };
        assert!(Rc::ptr_eq(f, &untouched), "unchanged sibling was rebuilt");
        assert!(x.alpha_eq(&Expr::int(5)));
    }
}
