//! The rewriting engine: transformations as root rewrites applied
//! bottom-up everywhere.

use std::rc::Rc;

use urk_syntax::core::{Alt, Expr};

/// A program transformation, expressed as an optional rewrite at the root
/// of an expression.
pub trait Transform {
    /// A short kebab-case name for reports.
    fn name(&self) -> &'static str;

    /// Attempts to rewrite at the root; `None` means not applicable.
    fn apply_root(&self, e: &Expr) -> Option<Expr>;
}

/// Applies `t` bottom-up over the whole expression, returning the result
/// and the number of rewrites performed.
pub fn apply_everywhere(t: &dyn Transform, e: &Expr) -> (Expr, usize) {
    let mut count = 0;
    let out = go(t, e, &mut count);
    (out, count)
}

/// Applies `t` repeatedly (bottom-up sweeps) until no rewrite fires or the
/// sweep limit is reached.
pub fn apply_to_fixpoint(t: &dyn Transform, e: &Expr, max_sweeps: usize) -> (Expr, usize) {
    let mut current = e.clone();
    let mut total = 0;
    for _ in 0..max_sweeps {
        let (next, n) = apply_everywhere(t, &current);
        total += n;
        current = next;
        if n == 0 {
            break;
        }
    }
    (current, total)
}

fn go(t: &dyn Transform, e: &Expr, count: &mut usize) -> Expr {
    // First rebuild children, then try the root.
    let rebuilt = match e {
        Expr::Var(_) | Expr::Int(_) | Expr::Char(_) | Expr::Str(_) => e.clone(),
        Expr::Con(c, args) => {
            Expr::Con(*c, args.iter().map(|a| Rc::new(go(t, a, count))).collect())
        }
        Expr::Prim(op, args) => {
            Expr::Prim(*op, args.iter().map(|a| Rc::new(go(t, a, count))).collect())
        }
        Expr::App(f, x) => Expr::App(Rc::new(go(t, f, count)), Rc::new(go(t, x, count))),
        Expr::Lam(x, b) => Expr::Lam(*x, Rc::new(go(t, b, count))),
        Expr::Let(x, r, b) => Expr::Let(*x, Rc::new(go(t, r, count)), Rc::new(go(t, b, count))),
        Expr::LetRec(binds, b) => Expr::LetRec(
            binds
                .iter()
                .map(|(n, r)| (*n, Rc::new(go(t, r, count))))
                .collect(),
            Rc::new(go(t, b, count)),
        ),
        Expr::Case(s, alts) => Expr::Case(
            Rc::new(go(t, s, count)),
            alts.iter()
                .map(|a| Alt {
                    con: a.con.clone(),
                    binders: a.binders.clone(),
                    rhs: Rc::new(go(t, &a.rhs, count)),
                })
                .collect(),
        ),
        Expr::Raise(x) => Expr::Raise(Rc::new(go(t, x, count))),
    };
    match t.apply_root(&rebuilt) {
        Some(next) => {
            *count += 1;
            next
        }
        None => rebuilt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urk_syntax::core::PrimOp;

    /// A toy transform: rewrite `0 + e` to `e`.
    struct DropZeroAdd;
    impl Transform for DropZeroAdd {
        fn name(&self) -> &'static str {
            "drop-zero-add"
        }
        fn apply_root(&self, e: &Expr) -> Option<Expr> {
            let Expr::Prim(PrimOp::Add, args) = e else {
                return None;
            };
            matches!(&*args[0], Expr::Int(0)).then(|| (*args[1]).clone())
        }
    }

    #[test]
    fn applies_bottom_up_everywhere() {
        // 0 + (0 + 5) rewrites twice in one sweep.
        let e = Expr::add(Expr::int(0), Expr::add(Expr::int(0), Expr::int(5)));
        let (out, n) = apply_everywhere(&DropZeroAdd, &e);
        assert_eq!(n, 2);
        assert!(out.alpha_eq(&Expr::int(5)));
    }

    #[test]
    fn fixpoint_terminates() {
        let e = Expr::add(Expr::int(1), Expr::int(2));
        let (out, n) = apply_to_fixpoint(&DropZeroAdd, &e, 10);
        assert_eq!(n, 0);
        assert!(out.alpha_eq(&e));
    }
}
