//! The transformation catalogue — the rewrites whose validity the paper's
//! semantics is designed to preserve (§2.3, §3.4, §4.5).
//!
//! Each transformation is a [`Transform`]; the law validator in
//! [`crate::laws`] checks, per semantics, whether each one is an identity,
//! a refinement, or invalid.

use std::rc::Rc;

use urk_syntax::core::{Alt, AltCon, Expr};
use urk_syntax::Symbol;

use crate::rewrite::Transform;

/// Beta reduction preserving sharing: `(\x -> b) a  ⇒  let x = a in b`.
pub struct BetaReduce;

impl Transform for BetaReduce {
    fn name(&self) -> &'static str {
        "beta-reduction"
    }
    fn apply_root(&self, e: &Expr) -> Option<Expr> {
        let Expr::App(f, a) = e else { return None };
        let Expr::Lam(x, b) = &**f else { return None };
        Some(Expr::Let(*x, a.clone(), b.clone()))
    }
}

/// Let inlining (full substitution): `let x = r in b  ⇒  b[r/x]`.
///
/// Valid in the imprecise semantics (this is the §3.5 point of putting
/// `getException` in `IO`); *invalid* in the non-deterministic design.
pub struct InlineLet;

impl Transform for InlineLet {
    fn name(&self) -> &'static str {
        "let-inlining"
    }
    fn apply_root(&self, e: &Expr) -> Option<Expr> {
        let Expr::Let(x, r, b) = e else { return None };
        Some(b.subst(*x, r))
    }
}

/// Dead-let elimination: `let x = r in b  ⇒  b` when `x ∉ fv(b)`.
pub struct DeadLetElim;

impl Transform for DeadLetElim {
    fn name(&self) -> &'static str {
        "dead-let-elimination"
    }
    fn apply_root(&self, e: &Expr) -> Option<Expr> {
        let Expr::Let(x, _, b) = e else { return None };
        (!b.free_vars().contains(x)).then(|| (**b).clone())
    }
}

/// Case-of-known-constructor: `case C a b of { ...; C x y -> r; ... } ⇒
/// let x = a in let y = b in r`.
pub struct CaseOfKnownCon;

impl Transform for CaseOfKnownCon {
    fn name(&self) -> &'static str {
        "case-of-known-constructor"
    }
    fn apply_root(&self, e: &Expr) -> Option<Expr> {
        let Expr::Case(s, alts) = e else { return None };
        let (con, args): (Symbol, &[Rc<Expr>]) = match &**s {
            Expr::Con(c, args) => (*c, args),
            _ => return None,
        };
        for alt in alts {
            match &alt.con {
                AltCon::Con(c) if *c == con => {
                    let mut out = (*alt.rhs).clone();
                    for (b, a) in alt.binders.iter().zip(args).rev() {
                        out = Expr::Let(*b, a.clone(), Rc::new(out));
                    }
                    return Some(out);
                }
                AltCon::Default => {
                    let mut out = (*alt.rhs).clone();
                    if let Some(b) = alt.binders.first() {
                        out = Expr::Let(*b, s.clone(), Rc::new(out));
                    }
                    return Some(out);
                }
                _ => continue,
            }
        }
        None
    }
}

/// Literal-case selection: `case 3 of { 3 -> a; ... } ⇒ a`.
pub struct CaseOfLiteral;

impl Transform for CaseOfLiteral {
    fn name(&self) -> &'static str {
        "case-of-literal"
    }
    fn apply_root(&self, e: &Expr) -> Option<Expr> {
        let Expr::Case(s, alts) = e else { return None };
        let lit = match &**s {
            Expr::Int(n) => AltCon::Int(*n),
            Expr::Char(c) => AltCon::Char(*c),
            Expr::Str(st) => AltCon::Str(st.clone()),
            _ => return None,
        };
        for alt in alts {
            if alt.con == lit {
                return Some((*alt.rhs).clone());
            }
            if alt.con == AltCon::Default {
                let mut out = (*alt.rhs).clone();
                if let Some(b) = alt.binders.first() {
                    out = Expr::Let(*b, s.clone(), Rc::new(out));
                }
                return Some(out);
            }
        }
        None
    }
}

/// Commute the arguments of a commutative primitive: `a + b ⇒ b + a`.
///
/// The paper's motivating transformation (§3.4): valid with exception
/// *sets*, invalid in the precise design.
pub struct CommutePrimArgs;

impl Transform for CommutePrimArgs {
    fn name(&self) -> &'static str {
        "commute-primop-arguments"
    }
    fn apply_root(&self, e: &Expr) -> Option<Expr> {
        let Expr::Prim(op, args) = e else { return None };
        (op.is_commutative() && args.len() == 2)
            .then(|| Expr::Prim(*op, vec![args[1].clone(), args[0].clone()]))
    }
}

/// Case-of-case: push an outer case into the alternatives of an inner one.
///
/// ```text
/// case (case s of { p -> r; ... }) of alts
///   ⇒ case s of { p -> case r of alts; ... }
/// ```
pub struct CaseOfCase;

impl Transform for CaseOfCase {
    fn name(&self) -> &'static str {
        "case-of-case"
    }
    fn apply_root(&self, e: &Expr) -> Option<Expr> {
        let Expr::Case(s, outer_alts) = e else {
            return None;
        };
        let Expr::Case(inner_s, inner_alts) = &**s else {
            return None;
        };
        // Binder capture: inner binders must not capture the free
        // variables of the outer alternatives.
        let outer_fv: std::collections::BTreeSet<Symbol> = outer_alts
            .iter()
            .flat_map(|a| {
                let mut fv = a.rhs.free_vars();
                for b in &a.binders {
                    fv.remove(b);
                }
                fv
            })
            .collect();
        if inner_alts
            .iter()
            .any(|a| a.binders.iter().any(|b| outer_fv.contains(b)))
        {
            return None;
        }
        let pushed: Vec<Alt> = inner_alts
            .iter()
            .map(|a| Alt {
                con: a.con.clone(),
                binders: a.binders.clone(),
                rhs: Rc::new(Expr::Case(a.rhs.clone(), outer_alts.clone())),
            })
            .collect();
        Some(Expr::Case(inner_s.clone(), pushed))
    }
}

/// Eta reduction: `\x -> f x ⇒ f` when `x ∉ fv(f)`.
///
/// *Invalid* under the paper's semantics (`λx.⊥x ≠ ⊥`); kept in the
/// catalogue so the law validator can demonstrate the loss.
pub struct EtaReduce;

impl Transform for EtaReduce {
    fn name(&self) -> &'static str {
        "eta-reduction"
    }
    fn apply_root(&self, e: &Expr) -> Option<Expr> {
        let Expr::Lam(x, b) = e else { return None };
        let Expr::App(f, a) = &**b else { return None };
        let Expr::Var(v) = &**a else { return None };
        (v == x && !f.free_vars().contains(x)).then(|| (**f).clone())
    }
}

/// Collapse a case whose alternatives are all identical and binder-free:
/// `case v of { True -> e; False -> e } ⇒ e`.
///
/// This is the `-fno-pedantic-bottoms` family (§5.3's footnote): it holds
/// when `v` is a *normal* value, and is a refinement when `v = ⊥` — but it
/// is **invalid** when `v` is a proper exceptional value (`lhs` then
/// carries `S(v)`, which `rhs` forgets). Enabling it therefore carries the
/// paper's proof obligation; the law validator exhibits all three cases.
pub struct CollapseIdenticalAlts;

impl Transform for CollapseIdenticalAlts {
    fn name(&self) -> &'static str {
        "collapse-identical-alternatives"
    }
    fn apply_root(&self, e: &Expr) -> Option<Expr> {
        let Expr::Case(_, alts) = e else { return None };
        let first = alts.first()?;
        if !first.binders.is_empty() {
            return None;
        }
        let all_same = alts
            .iter()
            .all(|a| a.binders.is_empty() && a.rhs.alpha_eq(&first.rhs));
        // Only sound-as-refinement when the alternatives cover the normal
        // cases; require a default or treat any-match as fine (the rewrite
        // is a refinement either way: failure branches only shrink the set).
        all_same.then(|| (*first.rhs).clone())
    }
}

/// Strictness-driven call-by-value: `let x = r in b ⇒ case r of x { _ -> b }`
/// when `b` is strict in `x`.
///
/// "Haskell compilers perform strictness analysis to turn call-by-need
/// into call-by-value. This crucial transformation changes the evaluation
/// order" (§3.4) — valid with exception sets, invalid in the precise
/// design. The strictness predicate is supplied by
/// [`crate::strictness`].
pub struct LetToCase<'a> {
    /// Decides whether `body` is strict in `x`.
    pub is_strict: &'a dyn Fn(Symbol, &Expr) -> bool,
}

impl Transform for LetToCase<'_> {
    fn name(&self) -> &'static str {
        "let-to-case (call-by-value)"
    }
    fn apply_root(&self, e: &Expr) -> Option<Expr> {
        let Expr::Let(x, r, b) = e else { return None };
        // Avoid self-referential bindings and re-transforming.
        if r.free_vars().contains(x) {
            return None;
        }
        if matches!(
            &**r,
            Expr::Var(_) | Expr::Int(_) | Expr::Lam(_, _) | Expr::Con(_, _)
        ) {
            return None; // already cheap / already a value
        }
        ((self.is_strict)(*x, b))
            .then(|| Expr::Case(r.clone(), vec![Alt::default_bind(*x, (**b).clone())]))
    }
}

/// Call-site call-by-value: `f e1 ... en ⇒ case e_i of v_i { _ -> f ... v_i ... }`
/// for every argument position the strictness signature marks strict.
///
/// This is how §3.4's "crucial transformation" actually lands in compiled
/// code: a strict argument is evaluated *before* the call instead of being
/// suspended in a thunk — saving the allocation, the later forced entry,
/// and the update. Changing the evaluation order like this is exactly what
/// the exception-set semantics licenses.
pub struct StrictCallSites<'a> {
    pub sigs: &'a crate::strictness::StrictSigs,
    /// Optional upgrade from the exception-effect analysis: an argument
    /// this predicate proves WHNF-safe (cannot raise, cannot diverge) may
    /// be pre-evaluated even in a position plain strictness is
    /// inconclusive about — moving a provably-effect-free evaluation
    /// earlier is invisible.
    pub arg_safe: Option<&'a dyn Fn(&Expr) -> bool>,
}

/// Arguments that are already values (or variables) gain nothing from
/// pre-evaluation.
fn is_atomic(e: &Expr) -> bool {
    matches!(
        e,
        Expr::Var(_) | Expr::Int(_) | Expr::Char(_) | Expr::Str(_) | Expr::Lam(_, _)
    ) || matches!(e, Expr::Con(_, args) if args.is_empty())
}

impl Transform for StrictCallSites<'_> {
    fn name(&self) -> &'static str {
        "strict-call-sites (call-by-value)"
    }
    fn apply_root(&self, e: &Expr) -> Option<Expr> {
        // Flatten the application spine.
        let mut args: Vec<Rc<Expr>> = Vec::new();
        let mut head = e;
        while let Expr::App(f, a) = head {
            args.push(a.clone());
            head = f;
        }
        let Expr::Var(f) = head else { return None };
        args.reverse();
        let sig = self.sigs.get(f)?;
        if sig.len() != args.len() {
            return None; // partial or over-saturated application
        }
        let worth_it: Vec<usize> = (0..args.len())
            .filter(|&i| {
                (sig[i] || self.arg_safe.is_some_and(|safe| safe(&args[i]))) && !is_atomic(&args[i])
            })
            .collect();
        if worth_it.is_empty() {
            return None;
        }
        // case a_i of v_i { _ -> ... f ... v_i ... }, left to right.
        let mut new_args = args.clone();
        let mut binds = Vec::new();
        for &i in &worth_it {
            let v = Symbol::fresh("str");
            binds.push((v, args[i].clone()));
            new_args[i] = Rc::new(Expr::Var(v));
        }
        let call = Expr::apps(Expr::Var(*f), new_args.iter().map(|a| (**a).clone()));
        let out = binds.into_iter().rev().fold(call, |acc, (v, scrut)| {
            Expr::Case(scrut, vec![Alt::default_bind(v, acc)])
        });
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rewrite::{apply_everywhere, apply_to_fixpoint};
    use urk_syntax::{desugar_expr, parse_expr_src, DataEnv};

    fn core(src: &str) -> Expr {
        let env = DataEnv::new();
        desugar_expr(&parse_expr_src(src).expect("parses"), &env).expect("desugars")
    }

    #[test]
    fn beta_builds_a_let() {
        let e = core(r"(\x -> x + x) (1/0)");
        let (out, n) = apply_everywhere(&BetaReduce, &e);
        assert_eq!(n, 1);
        assert!(matches!(out, Expr::Let(_, _, _)));
    }

    #[test]
    fn inline_let_substitutes() {
        let e = core("let x = 1 + 2 in x * x");
        let (out, n) = apply_everywhere(&InlineLet, &e);
        assert_eq!(n, 1);
        assert!(out.alpha_eq(&core("(1 + 2) * (1 + 2)")));
    }

    #[test]
    fn dead_let_fires_only_when_unused() {
        let dead = core("let x = 1/0 in 42");
        let (out, n) = apply_everywhere(&DeadLetElim, &dead);
        assert_eq!(n, 1);
        assert!(out.alpha_eq(&Expr::int(42)));
        let live = core("let x = 1 in x");
        let (_, n2) = apply_everywhere(&DeadLetElim, &live);
        assert_eq!(n2, 0);
    }

    #[test]
    fn case_of_known_constructor_selects() {
        let e = core("case Just 3 of { Just n -> n + 1; Nothing -> 0 }");
        let (out, n) = apply_to_fixpoint(&CaseOfKnownCon, &e, 4);
        assert!(n >= 1);
        // After also inlining the let, we'd get 3 + 1; here a let remains.
        let (inlined, _) = apply_to_fixpoint(&InlineLet, &out, 4);
        assert!(inlined.alpha_eq(&core("3 + 1")), "{inlined:?}");
    }

    #[test]
    fn case_of_literal_selects() {
        let e = core("case 2 of { 1 -> 10; 2 -> 20; _ -> 30 }");
        let (out, n) = apply_everywhere(&CaseOfLiteral, &e);
        assert_eq!(n, 1);
        assert!(out.alpha_eq(&Expr::int(20)));
    }

    #[test]
    fn commute_swaps_commutative_ops_only() {
        let add = core("1 + 2");
        let (out, n) = apply_everywhere(&CommutePrimArgs, &add);
        assert_eq!(n, 1);
        assert!(out.alpha_eq(&core("2 + 1")));
        let sub = core("1 - 2");
        let (_, n2) = apply_everywhere(&CommutePrimArgs, &sub);
        assert_eq!(n2, 0);
    }

    #[test]
    fn case_of_case_pushes_the_outer_case_in() {
        let e =
            core("case (case b of { True -> False; False -> True }) of { True -> 1; False -> 2 }");
        let (out, n) = apply_everywhere(&CaseOfCase, &e);
        assert_eq!(n, 1);
        let Expr::Case(s, alts) = &out else {
            panic!("{out:?}")
        };
        assert!(matches!(&**s, Expr::Var(_)));
        assert!(matches!(&*alts[0].rhs, Expr::Case(_, _)));
    }

    #[test]
    fn eta_reduce_fires_with_capture_check() {
        let e = core(r"\x -> f x");
        let (out, n) = apply_everywhere(&EtaReduce, &e);
        assert_eq!(n, 1);
        assert!(out.alpha_eq(&Expr::var("f")));
        // \x -> x x must not eta-reduce.
        let (_, n2) = apply_everywhere(&EtaReduce, &core(r"\x -> g x x"));
        assert_eq!(n2, 0);
    }

    #[test]
    fn collapse_identical_alternatives() {
        let e = core("case b of { True -> 42; False -> 42 }");
        let (out, n) = apply_everywhere(&CollapseIdenticalAlts, &e);
        assert_eq!(n, 1);
        assert!(out.alpha_eq(&Expr::int(42)));
        let differing = core("case b of { True -> 1; False -> 2 }");
        let (_, n2) = apply_everywhere(&CollapseIdenticalAlts, &differing);
        assert_eq!(n2, 0);
    }

    #[test]
    fn strict_call_sites_force_strict_arguments_only() {
        use crate::strictness::StrictSigs;
        let mut sigs = StrictSigs::new();
        sigs.insert(
            urk_syntax::Symbol::intern("f"),
            vec![true, false], // strict in the first argument only
        );
        let e = core("f (1 + 2) (3 + 4)");
        let t = StrictCallSites {
            sigs: &sigs,
            arg_safe: None,
        };
        let (out, n) = apply_everywhere(&t, &e);
        assert_eq!(n, 1);
        // Shape: case (1+2) of v { _ -> f v (3+4) }
        let Expr::Case(scrut, alts) = &out else {
            panic!("{out:?}")
        };
        assert!(matches!(&**scrut, Expr::Prim(_, _)));
        assert_eq!(alts.len(), 1);
        assert_eq!(alts[0].binders.len(), 1);
        // Atomic arguments are left alone.
        let (_, n2) = apply_everywhere(&t, &core("f x (3 + 4)"));
        assert_eq!(n2, 0);
        // Partial applications are left alone.
        let (_, n3) = apply_everywhere(&t, &core("f (1 + 2)"));
        assert_eq!(n3, 0);
    }

    #[test]
    fn strict_call_sites_reach_a_fixpoint() {
        use crate::strictness::StrictSigs;
        let mut sigs = StrictSigs::new();
        sigs.insert(urk_syntax::Symbol::intern("g"), vec![true]);
        let e = core("g (g (1 + 2))");
        let t = StrictCallSites {
            sigs: &sigs,
            arg_safe: None,
        };
        let (out, n) = apply_to_fixpoint(&t, &e, 8);
        assert_eq!(n, 2);
        // No further rewrites.
        let (_, n2) = apply_everywhere(&t, &out);
        assert_eq!(n2, 0);
    }

    #[test]
    fn let_to_case_respects_the_strictness_predicate() {
        let strict_everything: &dyn Fn(Symbol, &Expr) -> bool = &|_, _| true;
        let e = core("let x = 1 + 2 in x * 3");
        let (out, n) = apply_everywhere(
            &LetToCase {
                is_strict: strict_everything,
            },
            &e,
        );
        assert_eq!(n, 1);
        let Expr::Case(_, alts) = &out else {
            panic!("{out:?}")
        };
        assert_eq!(alts[0].con, AltCon::Default);
        assert_eq!(alts[0].binders.len(), 1);

        let never: &dyn Fn(Symbol, &Expr) -> bool = &|_, _| false;
        let (_, n2) = apply_everywhere(&LetToCase { is_strict: never }, &e);
        assert_eq!(n2, 0);
    }
}
