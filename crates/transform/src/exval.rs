//! The explicit `ExVal` encoding — §2.1/§2.2's "exceptions as values in
//! the un-extended language" baseline.
//!
//! Every expression is monadified into the `ExVal` type:
//!
//! ```text
//! data ExVal a = OK a | Bad Exception
//! ```
//!
//! so `(f x) + (g y)` becomes the paper's clutter:
//!
//! ```text
//! case f x of
//!   Bad ex -> Bad ex
//!   OK xv  -> case g y of
//!               Bad ex -> Bad ex
//!               OK yv  -> OK (xv + yv)
//! ```
//!
//! The encoder supports the first-order sub-language the paper's
//! efficiency discussion concerns (top-level functions over scalars and
//! data, `let`, `case`, `if`, recursion); higher-order code is rejected
//! with [`EncodeError`], mirroring §2.2's "loss of modularity and code
//! re-use, especially for higher-order functions". The encoding is also
//! *stricter* than the original (§2.2's "increased strictness"):
//! constructor arguments and `let` bindings are forced at bind time.
//!
//! The benchmark harness uses the encoder to regenerate the paper's
//! efficiency claim: "an explicit encoding forces a test-and-propagate at
//! every call site, with a substantial cost in code size and speed".

use std::collections::BTreeSet;
use std::fmt;
use std::rc::Rc;

use urk_syntax::core::{Alt, AltCon, CoreProgram, Expr, PrimOp};
use urk_syntax::Symbol;

/// An expression the encoder cannot handle (higher-order, letrec-local, …).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EncodeError(pub String);

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "explicit-encoding error: {}", self.0)
    }
}

impl std::error::Error for EncodeError {}

/// Encodes a whole program: every top-level function returns `ExVal`.
///
/// # Errors
///
/// Returns [`EncodeError`] for constructs outside the first-order subset.
pub fn encode_program(prog: &CoreProgram) -> Result<CoreProgram, EncodeError> {
    let known: BTreeSet<Symbol> = prog.binds.iter().map(|(n, _)| *n).collect();
    let mut out = CoreProgram::default();
    for (name, rhs) in &prog.binds {
        // Peel parameters; they stay plain values.
        let mut params = Vec::new();
        let mut body: &Expr = rhs;
        while let Expr::Lam(x, b) = body {
            params.push(*x);
            body = b;
        }
        let encoded = encode(body, &known, &params.iter().copied().collect())?;
        out.binds
            .push((*name, Rc::new(Expr::lams(params, encoded))));
    }
    Ok(out)
}

/// Encodes a single (closed up to `known` functions) expression.
///
/// # Errors
///
/// Returns [`EncodeError`] for constructs outside the first-order subset.
pub fn encode_expr(e: &Expr, known: &BTreeSet<Symbol>) -> Result<Expr, EncodeError> {
    encode(e, known, &BTreeSet::new())
}

/// `case scrut of { OK v -> k; Bad e -> Bad e }` — the ubiquitous
/// test-and-propagate.
fn case_ok(scrut: Expr, v: Symbol, k: Expr) -> Expr {
    let e = Symbol::fresh("ex");
    Expr::Case(
        Rc::new(scrut),
        vec![
            Alt {
                con: AltCon::Con(Symbol::intern("OK")),
                binders: vec![v],
                rhs: Rc::new(k),
            },
            Alt {
                con: AltCon::Con(Symbol::intern("Bad")),
                binders: vec![e],
                rhs: Rc::new(Expr::con("Bad", [Expr::Var(e)])),
            },
        ],
    )
}

fn ok(e: Expr) -> Expr {
    Expr::con("OK", [e])
}

/// Sequentially binds encoded sub-expressions, then applies `finish` to
/// the plain values.
fn bind_all(
    exprs: &[Rc<Expr>],
    known: &BTreeSet<Symbol>,
    locals: &BTreeSet<Symbol>,
    finish: impl FnOnce(Vec<Expr>) -> Expr,
) -> Result<Expr, EncodeError> {
    let vars: Vec<Symbol> = (0..exprs.len()).map(|_| Symbol::fresh("v")).collect();
    let body = finish(vars.iter().map(|v| Expr::Var(*v)).collect());
    let mut out = body;
    for (e, v) in exprs.iter().zip(&vars).rev() {
        let enc = encode(e, known, locals)?;
        out = case_ok(enc, *v, out);
    }
    Ok(out)
}

fn encode(
    e: &Expr,
    known: &BTreeSet<Symbol>,
    locals: &BTreeSet<Symbol>,
) -> Result<Expr, EncodeError> {
    match e {
        Expr::Int(_) | Expr::Char(_) | Expr::Str(_) => Ok(ok(e.clone())),
        Expr::Var(v) => {
            if locals.contains(v) {
                Ok(ok(e.clone()))
            } else if known.contains(v) {
                // A known zero-argument binding is already encoded.
                Ok(e.clone())
            } else {
                Err(EncodeError(format!("unknown variable '{v}'")))
            }
        }
        Expr::Lam(_, _) => Err(EncodeError(
            "higher-order code cannot be encoded (a lambda escaped)".into(),
        )),
        Expr::LetRec(_, _) => Err(EncodeError(
            "local recursion cannot be encoded; lift it to the top level".into(),
        )),
        Expr::Con(c, args) => bind_all(args, known, locals, |vs| ok(Expr::con(*c, vs))),
        Expr::Prim(op, args) => encode_prim(*op, args, known, locals),
        Expr::Raise(x) => {
            // raise e  ⇒  Bad e (forcing e's own encoding first).
            match &**x {
                // The common shape: a literal exception constructor.
                Expr::Con(_, payload) if payload.iter().all(|p| matches!(&**p, Expr::Str(_))) => {
                    Ok(Expr::con("Bad", [(**x).clone()]))
                }
                _ => {
                    let v = Symbol::fresh("exn");
                    let enc = encode(x, known, locals)?;
                    Ok(case_ok(enc, v, Expr::con("Bad", [Expr::Var(v)])))
                }
            }
        }
        Expr::Let(x, r, b) => {
            let enc_r = encode(r, known, locals)?;
            let mut locals2 = locals.clone();
            locals2.insert(*x);
            let enc_b = encode(b, known, &locals2)?;
            Ok(case_ok(enc_r, *x, enc_b))
        }
        Expr::Case(s, alts) => {
            let v = Symbol::fresh("s");
            let enc_s = encode(s, known, locals)?;
            let mut out_alts = Vec::with_capacity(alts.len());
            for a in alts {
                let mut locals2 = locals.clone();
                locals2.extend(a.binders.iter().copied());
                out_alts.push(Alt {
                    con: a.con.clone(),
                    binders: a.binders.clone(),
                    rhs: Rc::new(encode(&a.rhs, known, &locals2)?),
                });
            }
            Ok(case_ok(
                enc_s,
                v,
                Expr::Case(Rc::new(Expr::Var(v)), out_alts),
            ))
        }
        Expr::App(_, _) => {
            // Flatten; the head must be a known top-level function.
            let mut args = Vec::new();
            let mut head = e;
            while let Expr::App(f, a) = head {
                args.push(a.clone());
                head = f;
            }
            args.reverse();
            let Expr::Var(f) = head else {
                return Err(EncodeError(
                    "only applications of named top-level functions can be encoded".into(),
                ));
            };
            if !known.contains(f) {
                return Err(EncodeError(format!(
                    "application of unknown function '{f}'"
                )));
            }
            let f = *f;
            bind_all(&args, known, locals, |vs| Expr::apps(Expr::Var(f), vs))
        }
    }
}

fn encode_prim(
    op: PrimOp,
    args: &[Rc<Expr>],
    known: &BTreeSet<Symbol>,
    locals: &BTreeSet<Symbol>,
) -> Result<Expr, EncodeError> {
    match op {
        PrimOp::Seq => {
            let v = Symbol::fresh("u");
            let enc0 = encode(&args[0], known, locals)?;
            let enc1 = encode(&args[1], known, locals)?;
            Ok(case_ok(enc0, v, enc1))
        }
        PrimOp::MapExn | PrimOp::UnsafeIsException | PrimOp::UnsafeGetException => {
            Err(EncodeError(format!(
                "primitive '{}' has no explicit encoding",
                op.name()
            )))
        }
        PrimOp::Div | PrimOp::Mod => {
            // The checked operations must encode their own failure.
            bind_all(args, known, locals, |vs| {
                let zero_test = Expr::prim(PrimOp::IntEq, [vs[1].clone(), Expr::int(0)]);
                Expr::case(
                    zero_test,
                    vec![
                        Alt::con(
                            "True",
                            vec![],
                            Expr::con("Bad", [Expr::con("DivideByZero", [])]),
                        ),
                        Alt::con(
                            "False",
                            vec![],
                            ok(Expr::Prim(op, vs.into_iter().map(Rc::new).collect())),
                        ),
                    ],
                )
            })
        }
        _ => bind_all(args, known, locals, |vs| {
            ok(Expr::Prim(op, vs.into_iter().map(Rc::new).collect()))
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urk_machine::{MEnv, Machine, MachineConfig, Outcome};
    use urk_syntax::{desugar_expr, desugar_program, parse_expr_src, parse_program, DataEnv};

    fn program(src: &str) -> CoreProgram {
        let mut env = DataEnv::new();
        desugar_program(&parse_program(src).expect("parses"), &mut env).expect("desugars")
    }

    fn run_with_program(prog: &CoreProgram, expr: &str) -> (String, urk_machine::Stats) {
        let data = DataEnv::new();
        let mut m = Machine::new(MachineConfig::default());
        let env = m.bind_recursive(&prog.binds, &MEnv::empty());
        let e =
            Rc::new(desugar_expr(&parse_expr_src(expr).expect("parses"), &data).expect("desugars"));
        let out = m.eval(e, &env, false).expect("no machine error");
        let rendered = match out {
            Outcome::Value(n) => m.render(n, 16),
            Outcome::Caught(e) | Outcome::Uncaught(e) => format!("(raise {e})"),
        };
        (rendered, m.stats().clone())
    }

    const FIB: &str = "fib n = if n < 2 then n else fib (n - 1) + fib (n - 2)";

    #[test]
    fn encoded_fib_computes_the_same_answer_wrapped_in_ok() {
        let orig = program(FIB);
        let enc = encode_program(&orig).expect("first-order");
        let (a, sa) = run_with_program(&orig, "fib 12");
        let (b, sb) = run_with_program(&enc, "fib 12");
        assert_eq!(a, "144");
        assert_eq!(b, "OK 144");
        // §2.2's "poor efficiency": test-and-propagate at every call site.
        assert!(
            sb.steps > sa.steps * 2,
            "encoded: {} steps, native: {} steps",
            sb.steps,
            sa.steps
        );
    }

    #[test]
    fn encoded_division_propagates_bad_values_explicitly() {
        let orig = program("half n = 100 / n");
        let enc = encode_program(&orig).expect("first-order");
        let (a, _) = run_with_program(&enc, "half 0");
        assert_eq!(a, "Bad DivideByZero");
        let (b, _) = run_with_program(&enc, "half 4");
        assert_eq!(b, "OK 25");
    }

    #[test]
    fn encoded_raise_becomes_a_bad_value() {
        let orig = program(r#"boom n = if n > 0 then n else raise (UserError "Urk")"#);
        let enc = encode_program(&orig).expect("first-order");
        let (a, _) = run_with_program(&enc, "boom 0");
        assert_eq!(a, "Bad (UserError \"Urk\")");
        let (b, _) = run_with_program(&enc, "boom 7");
        assert_eq!(b, "OK 7");
    }

    #[test]
    fn code_size_blowup_is_measurable() {
        let orig = program(FIB);
        let enc = encode_program(&orig).expect("first-order");
        // §2.2: "a substantial cost in code size".
        assert!(
            enc.size() > orig.size() * 2,
            "encoded {} vs original {}",
            enc.size(),
            orig.size()
        );
    }

    #[test]
    fn higher_order_code_is_rejected() {
        let prog = program("twice f x = f (f x)");
        let err = encode_program(&prog).expect_err("higher-order");
        assert!(
            err.0.contains("unknown function") || err.0.contains("lambda"),
            "{err}"
        );
    }

    #[test]
    fn data_and_case_encode() {
        let orig = program(
            "len xs = case xs of { [] -> 0; y:ys -> 1 + len ys }\n\
             range n = if n == 0 then [] else n : range (n - 1)",
        );
        let enc = encode_program(&orig).expect("first-order");
        // The query expression must itself be encoded: encoded functions
        // consume plain values and produce ExVal results.
        let data = DataEnv::new();
        let known: BTreeSet<Symbol> = orig.binds.iter().map(|(n, _)| *n).collect();
        let query = desugar_expr(&parse_expr_src("len (range 5)").expect("parses"), &data)
            .expect("desugars");
        let encoded_query = encode_expr(&query, &known).expect("first-order query");

        let mut m = Machine::new(MachineConfig::default());
        let env = m.bind_recursive(&enc.binds, &MEnv::empty());
        let out = m
            .eval(Rc::new(encoded_query), &env, false)
            .expect("no machine error");
        let Outcome::Value(n) = out else {
            panic!("{out:?}")
        };
        assert_eq!(m.render(n, 16), "OK 5");
    }

    #[test]
    fn increased_strictness_is_observable() {
        // §2.2: the encoding is stricter — a let-bound exceptional value
        // is forced even when unused.
        let orig = program("lazy n = let unused = 1 / n in 42");
        let (native, _) = run_with_program(&orig, "lazy 0");
        assert_eq!(native, "42");
        let enc = encode_program(&orig).expect("first-order");
        let (encoded, _) = run_with_program(&enc, "lazy 0");
        assert_eq!(encoded, "Bad DivideByZero");
    }
}
