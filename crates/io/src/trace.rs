//! Labelled traces for the §4.4 transition system.
//!
//! The behaviour of a program "is the set of traces obtained from the
//! labelled transition system"; a [`Trace`] records one run's labels:
//! `?c` for input, `!c` for output, plus the exception choices and
//! asynchronous deliveries that the rules of §4.4/§5.1 make observable.

use std::fmt;

use urk_syntax::Exception;

/// One observable transition label.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Event {
    /// `?c` — a character was read.
    Input(char),
    /// `!c` — a character was written.
    Output(char),
    /// A whole string was written (`putStr`).
    OutputStr(String),
    /// `getException` chose this member of an exception set (§3.5/§4.4).
    ChoseException(Exception),
    /// An asynchronous event was delivered through `getException` (§5.1).
    AsyncDelivered(Exception),
    /// `forkIO` spawned this thread (the §4.4 concurrency extension).
    Forked(u64),
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Input(c) => write!(f, "?{c}"),
            Event::Output(c) => write!(f, "!{c}"),
            Event::OutputStr(s) => write!(f, "!{s:?}"),
            Event::ChoseException(e) => write!(f, "choose[{e}]"),
            Event::AsyncDelivered(e) => write!(f, "async[{e}]"),
            Event::Forked(tid) => write!(f, "fork[{tid}]"),
        }
    }
}

/// A sequence of transition labels.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Trace(pub Vec<Event>);

impl Trace {
    /// An empty trace.
    pub fn new() -> Trace {
        Trace(Vec::new())
    }

    /// Appends an event.
    pub fn push(&mut self, e: Event) {
        self.0.push(e);
    }

    /// All output characters and strings, concatenated — "what the program
    /// printed".
    pub fn output(&self) -> String {
        let mut out = String::new();
        for e in &self.0 {
            match e {
                Event::Output(c) => out.push(*c),
                Event::OutputStr(s) => out.push_str(s),
                _ => {}
            }
        }
        out
    }

    /// The events.
    pub fn events(&self) -> &[Event] {
        &self.0
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, e) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

/// An input source for `getChar`.
pub trait Input {
    /// The next character, or `None` at end of input.
    fn get_char(&mut self) -> Option<char>;
}

/// Input from a fixed string.
#[derive(Clone, Debug, Default)]
pub struct StringInput {
    chars: Vec<char>,
    pos: usize,
}

impl StringInput {
    /// Creates an input source over `s`.
    pub fn new(s: &str) -> StringInput {
        StringInput {
            chars: s.chars().collect(),
            pos: 0,
        }
    }
}

impl Input for StringInput {
    fn get_char(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_renders_labels() {
        let mut t = Trace::new();
        t.push(Event::Input('a'));
        t.push(Event::Output('a'));
        t.push(Event::ChoseException(Exception::DivideByZero));
        assert_eq!(t.to_string(), "?a !a choose[DivideByZero]");
        assert_eq!(t.output(), "a");
    }

    #[test]
    fn string_input_yields_then_ends() {
        let mut i = StringInput::new("ab");
        assert_eq!(i.get_char(), Some('a'));
        assert_eq!(i.get_char(), Some('b'));
        assert_eq!(i.get_char(), None);
        assert_eq!(i.get_char(), None);
    }
}
